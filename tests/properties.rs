//! Property-based integration tests: arbitrary (valid) benchmark models
//! and machine variations must never break the simulator's invariants.

use proptest::prelude::*;
use smtsim::avf::{profiler, AvfCollector};
use smtsim::reliability::Scheme;
use smtsim::sim::pipeline::PipelinePolicies;
use smtsim::sim::{FetchPolicyKind, MachineConfig, Pipeline, SimLimits};
use smtsim::workloads::{generate_program, BenchClass, BenchmarkModel};
use std::sync::Arc;

/// Strategy: a structurally valid benchmark model with wide-ranging
/// behaviour knobs.
fn arb_model() -> impl Strategy<Value = BenchmarkModel> {
    (
        0.0f64..0.9,   // frac_fp
        0.05f64..0.45, // frac_mem
        0.02f64..0.18, // frac_branch
        1.5f64..6.0,   // dep_chain_depth
        16u64..65_536, // footprint KB
        0.0f64..0.8,   // scatter_frac
        2u32..64,      // avg_loop_trip
        0.0f64..0.4,   // hard_branch_frac
        0.0f64..0.3,   // dead_code_frac
        0.0f64..0.3,   // mixed_ace_frac
        2u32..16,      // num_regions
    )
        .prop_map(
            |(fp, mem, br, dep, fkb, scat, trip, hard, dead, mixed, regions)| BenchmarkModel {
                name: "prop",
                class: if fkb > 2048 {
                    BenchClass::MemIntensive
                } else {
                    BenchClass::CpuIntensive
                },
                frac_fp: fp,
                frac_mem: mem,
                frac_branch: br,
                frac_nop: 0.04,
                load_frac: 0.72,
                dep_chain_depth: dep,
                dep_locality: 0.3,
                footprint: fkb * 1024,
                scatter_frac: scat,
                stride_bytes: 8,
                avg_loop_trip: trip,
                branch_bias: 0.6,
                hard_branch_frac: hard,
                dead_code_frac: dead,
                mixed_ace_frac: mixed,
                num_regions: regions,
                block_len: (4, 14),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid model generates a well-formed program whose profile and
    /// short simulation respect the global invariants.
    #[test]
    fn random_models_simulate_within_invariants(model in arb_model()) {
        prop_assume!(model.validate().is_ok());
        let program = Arc::new(generate_program(&model));
        prop_assert!(program.len() > 50);
        for inst in &program.insts {
            prop_assert!(inst.is_well_formed());
        }

        // Profile: accuracy and ACE fractions are probabilities; the
        // PC fold admits no false negatives (accuracy >= ACE share).
        let (tagged, profile) = profiler::profile_and_tag(&program, 20_000, 10_000);
        prop_assert!((0.0..=1.0).contains(&profile.accuracy));
        prop_assert!(profile.accuracy + 1e-9 >= profile.dynamic_ace_fraction());

        // Simulate 4 copies under VISA+opt2 (the most intrusive
        // open-loop scheme).
        let machine = MachineConfig::table2();
        let (policies, _) = Scheme::VisaOpt2.policies(FetchPolicyKind::Icount, machine.iq_size);
        let programs = vec![tagged; 4];
        let mut pipeline = Pipeline::new(machine.clone(), programs, policies);
        let mut collector = AvfCollector::new(&machine, 10_000, 5_000);
        let result = pipeline.run(SimLimits::instructions(15_000), &mut collector);
        prop_assert!(!result.deadlocked);
        prop_assert!(result.stats.throughput_ipc() <= 8.0 + 1e-9);
        let report = collector.report();
        for avf in [report.iq_avf, report.rob_avf, report.rf_avf, report.fu_avf, report.lsq_avf] {
            prop_assert!((0.0..=1.0).contains(&avf), "AVF {avf}");
        }
        for s in report.iq_interval_avf.samples() {
            prop_assert!((0.0..=1.0).contains(s), "interval AVF {s}");
        }
    }

    /// DVM respects its contract for arbitrary targets: no deadlock, and
    /// the PVE never *exceeds* the baseline's by more than noise.
    #[test]
    fn dvm_never_makes_reliability_worse(frac in 0.2f64..0.9) {
        let mix = smtsim::workloads::mix_by_name("MIX-C").unwrap();
        let tagged: Vec<_> = mix.programs().iter()
            .map(|p| profiler::profile_and_tag(p, 20_000, 10_000).0)
            .collect();
        let machine = MachineConfig::table2();
        let run = |policies: PipelinePolicies| {
            let mut pipeline = Pipeline::new(machine.clone(), tagged.clone(), policies);
            let start = pipeline.warm_up(120_000);
            let mut collector = AvfCollector::standard(&machine).with_start_cycle(start);
            let r = pipeline.run(SimLimits::cycles(60_000), &mut collector);
            prop_assert!(!r.deadlocked);
            Ok(collector.report())
        };
        let (bp, _) = Scheme::Baseline.policies(FetchPolicyKind::Icount, machine.iq_size);
        let base = run(bp)?;
        let target = frac * base.max_interval_iq_avf();
        let (dp, _) = Scheme::DvmDynamic { target }.policies(FetchPolicyKind::Icount, machine.iq_size);
        let dvm = run(dp)?;
        let base_pve = base.iq_interval_avf.pve(target);
        let dvm_pve = dvm.iq_interval_avf.pve(target);
        prop_assert!(dvm_pve <= base_pve + 0.34,
            "DVM worsened PVE: {dvm_pve} vs {base_pve} at frac {frac}");
    }
}
