//! Cross-crate integration: the full profile → tag → simulate → analyze
//! loop, determinism, and the paper's headline scheme ordering.

use smtsim::avf::{profiler, AvfCollector};
use smtsim::reliability::Scheme;
use smtsim::sim::{FetchPolicyKind, MachineConfig, Pipeline, SimLimits};
use smtsim::workloads::mix_by_name;
use std::sync::Arc;

fn tagged(mix: &str) -> Vec<Arc<smtsim::workloads::Program>> {
    mix_by_name(mix)
        .unwrap()
        .programs()
        .iter()
        .map(|p| profiler::profile_and_tag(p, 60_000, 40_000).0)
        .collect()
}

fn run(
    programs: &[Arc<smtsim::workloads::Program>],
    scheme: Scheme,
    fetch: FetchPolicyKind,
) -> (smtsim::avf::AvfReport, smtsim::sim::SimStats) {
    let machine = MachineConfig::table2();
    let (policies, _) = scheme.policies(fetch, machine.iq_size);
    let mut pipeline = Pipeline::new(machine.clone(), programs.to_vec(), policies);
    let start = pipeline.warm_up(250_000);
    let mut collector = AvfCollector::standard(&machine).with_start_cycle(start);
    let result = pipeline.run(SimLimits::cycles(120_000), &mut collector);
    assert!(!result.deadlocked, "deadlock under {scheme:?}/{fetch:?}");
    (collector.report(), result.stats)
}

#[test]
fn full_loop_produces_consistent_reports() {
    let programs = tagged("CPU-B");
    let (report, stats) = run(&programs, Scheme::Baseline, FetchPolicyKind::Icount);
    // Cross-crate consistency: the collector and the pipeline agree on
    // scale.
    assert!(report.committed > 0);
    assert!(report.committed <= stats.total_committed());
    assert!(report.cycles <= stats.cycles + 1);
    for avf in [
        report.iq_avf,
        report.rob_avf,
        report.rf_avf,
        report.fu_avf,
        report.lsq_avf,
    ] {
        assert!((0.0..=1.0).contains(&avf), "AVF out of range: {avf}");
    }
    assert!(stats.throughput_ipc() <= 8.0 + 1e-9, "beyond machine width");
    assert!(stats.harmonic_ipc() <= stats.throughput_ipc() + 1e-9);
}

#[test]
fn determinism_across_identical_campaigns() {
    let a = {
        let programs = tagged("MIX-B");
        run(&programs, Scheme::VisaOpt2, FetchPolicyKind::Icount)
    };
    let b = {
        let programs = tagged("MIX-B");
        run(&programs, Scheme::VisaOpt2, FetchPolicyKind::Icount)
    };
    assert_eq!(a.1.total_committed(), b.1.total_committed());
    assert_eq!(a.1.l2_misses, b.1.l2_misses);
    assert_eq!(a.1.mispredicts, b.1.mispredicts);
    assert!((a.0.iq_avf - b.0.iq_avf).abs() < 1e-12);
}

#[test]
fn visa_family_reduces_iq_avf_on_mem_mix() {
    let programs = tagged("MEM-C");
    let (base, base_stats) = run(&programs, Scheme::Baseline, FetchPolicyKind::Icount);
    let (visa, _) = run(&programs, Scheme::Visa, FetchPolicyKind::Icount);
    let (opt2, opt2_stats) = run(&programs, Scheme::VisaOpt2, FetchPolicyKind::Icount);
    assert!(
        visa.iq_avf <= base.iq_avf * 1.05,
        "VISA must not inflate AVF: {} vs {}",
        visa.iq_avf,
        base.iq_avf
    );
    assert!(
        opt2.iq_avf < base.iq_avf * 0.9,
        "VISA+opt2 must cut MEM AVF: {} vs {}",
        opt2.iq_avf,
        base.iq_avf
    );
    // opt2 must not collapse throughput (the paper's point vs opt1).
    assert!(
        opt2_stats.throughput_ipc() > base_stats.throughput_ipc() * 0.5,
        "opt2 IPC collapsed: {} vs {}",
        opt2_stats.throughput_ipc(),
        base_stats.throughput_ipc()
    );
}

#[test]
fn hints_survive_the_decode_path() {
    // The profiled bit must be visible on committed instructions: run
    // with an observer that checks hint presence statistics.
    use smtsim::sim::{RetireEvent, SimObserver};
    struct HintCounter {
        committed: u64,
        hinted: u64,
    }
    impl SimObserver for HintCounter {
        fn on_commit(&mut self, ev: &RetireEvent) {
            self.committed += 1;
            if ev.inst.ace_hint {
                self.hinted += 1;
            }
        }
    }
    let programs = tagged("CPU-C");
    let machine = MachineConfig::table2();
    let (policies, _) = Scheme::Visa.policies(FetchPolicyKind::Icount, machine.iq_size);
    let mut pipeline = Pipeline::new(machine, programs, policies);
    let mut obs = HintCounter {
        committed: 0,
        hinted: 0,
    };
    pipeline.run(SimLimits::instructions(50_000), &mut obs);
    let share = obs.hinted as f64 / obs.committed as f64;
    assert!(
        (0.2..0.95).contains(&share),
        "hinted share {share} implausible"
    );
}

#[test]
fn warmup_then_measure_has_no_cold_start_artifacts() {
    // Measured stats must start from zero after warm_up.
    let programs = tagged("CPU-A");
    let machine = MachineConfig::table2();
    let (policies, _) = Scheme::Baseline.policies(FetchPolicyKind::Icount, machine.iq_size);
    let mut pipeline = Pipeline::new(machine, programs, policies);
    pipeline.warm_up(100_000);
    assert_eq!(pipeline.stats().total_committed(), 0);
    assert_eq!(pipeline.stats().l2_misses, 0);
    let mut sink = smtsim::sim::NullObserver;
    let r = pipeline.run(SimLimits::cycles(20_000), &mut sink);
    assert_eq!(r.stats.cycles, 20_000);
}
