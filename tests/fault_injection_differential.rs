//! Differential validation: statistical fault injection vs ACE analysis.
//!
//! For several salted workloads, a Monte-Carlo SEU campaign and the
//! analytical ACE model measure the *same* golden run. The two must
//! agree — the injection-derived IQ vulnerability interval has to cover
//! the analytical IQ AVF — and the DVM scheme has to show its benefit
//! empirically: pooled across salts, strictly fewer injected faults may
//! survive to an architectural consequence than on the baseline.

use std::sync::Arc;

use smtsim::avf::profiler::profile_and_tag;
use smtsim::faultinject::{run_campaign, CampaignConfig, CampaignResult};
use smtsim::reliability::Scheme;
use smtsim::sim::pipeline::PipelinePolicies;
use smtsim::sim::{FetchPolicyKind, MachineConfig};
use smtsim::workloads::{generate_program_salted, model_by_name, Program};

const SALTS: [u64; 3] = [1, 2, 3];
const IQ_TRIALS: u64 = 150;

/// Hint-tagged CPU-class mix (DVM's online estimator reads the hints).
fn tagged_mix(salt: u64) -> Vec<Arc<Program>> {
    ["bzip2", "gcc", "eon", "perlbmk"]
        .iter()
        .map(|m| {
            let raw = Arc::new(generate_program_salted(&model_by_name(m).unwrap(), salt));
            profile_and_tag(&raw, 60_000, 40_000).0
        })
        .collect()
}

fn campaign(salt: u64, make_policies: &dyn Fn() -> PipelinePolicies) -> CampaignResult {
    let cfg = CampaignConfig {
        machine: MachineConfig::table2(),
        warmup_insts: 60_000,
        run_cycles: 40_000,
        watchdog_cycles: 8_000,
        iq_trials: IQ_TRIALS,
        rob_trials: 0,
        rf_trials: 0,
        ace_window: 40_000,
        seed: salt,
    };
    run_campaign(
        &cfg,
        &tagged_mix(salt),
        make_policies,
        &smtsim::metrics::Metrics::off(),
        &smtsim::trace::Tracer::off(),
    )
}

#[test]
fn injection_estimate_brackets_ace_avf_and_dvm_beats_baseline() {
    let iq_size = MachineConfig::table2().iq_size;
    let mut pooled_base = (0u64, 0u64);
    let mut pooled_dvm = (0u64, 0u64);

    for salt in SALTS {
        let base = campaign(salt, &|| {
            Scheme::Baseline
                .policies(FetchPolicyKind::Icount, iq_size)
                .0
        });
        let target = 0.5 * base.ace_max_interval_iq_avf;
        assert!(target > 0.0, "salt {salt}: golden run saw no IQ AVF");
        let dvm = campaign(salt, &|| {
            Scheme::DvmDynamic { target }
                .policies(FetchPolicyKind::Icount, iq_size)
                .0
        });

        for (label, run) in [("baseline", &base), ("DVM", &dvm)] {
            let iq = run.structure("iq").expect("IQ statistics present");
            assert_eq!(iq.trials, IQ_TRIALS);
            assert!(
                iq.ci95.contains(run.ace_iq_avf),
                "salt {salt} {label}: ACE IQ AVF {:.4} outside injection CI95 \
                 [{:.4}, {:.4}] (estimate {:.4}, {} trials)",
                run.ace_iq_avf,
                iq.ci95.lo,
                iq.ci95.hi,
                iq.avf_estimate,
                iq.trials
            );
        }

        let b = base.structure("iq").unwrap();
        let d = dvm.structure("iq").unwrap();
        pooled_base = (pooled_base.0 + b.vulnerable(), pooled_base.1 + b.trials);
        pooled_dvm = (pooled_dvm.0 + d.vulnerable(), pooled_dvm.1 + d.trials);
    }

    let base_rate = pooled_base.0 as f64 / pooled_base.1 as f64;
    let dvm_rate = pooled_dvm.0 as f64 / pooled_dvm.1 as f64;
    assert!(
        base_rate > 0.0,
        "baseline campaigns found no vulnerable faults at all"
    );
    assert!(
        dvm_rate < base_rate,
        "DVM injected vulnerability {dvm_rate:.4} not strictly below baseline {base_rate:.4}"
    );
}
