//! Smoke coverage of the experiment harness from outside the crate: the
//! static exhibits render correctly and the umbrella crate's quickstart
//! path works.

use smtsim::experiments::context::{ExperimentContext, ExperimentParams};
use smtsim::experiments::{quick, table2, table3};

#[test]
fn quickstart_smoke() {
    let summary = quick::visa_demo_config().run_smoke();
    assert!(summary.cycles > 0);
    assert!(summary.ipc > 0.0);
    assert!((0.0..=1.0).contains(&summary.iq_avf));
}

#[test]
fn static_exhibits_render() {
    let ctx = ExperimentContext::new(ExperimentParams::fast());
    let t2 = table2::render(&ctx.machine).to_text();
    assert!(t2.contains("96 entries (shared)"));
    let t3 = table3::render().to_text();
    assert!(t3.contains("bzip2, eon, gcc, perlbmk"));
}

#[test]
fn umbrella_reexports_cover_every_subsystem() {
    // Compile-time visibility check: each re-export resolves and basic
    // constructors work.
    let _ = smtsim::isa::OpClass::Load;
    let _ = smtsim::workloads::standard_mixes();
    let _ = smtsim::bpred::BranchPredictor::table2(2);
    let _ = smtsim::mem::MemoryHierarchy::table2();
    let _ = smtsim::sim::MachineConfig::table2();
    let _ = smtsim::reliability::Scheme::Baseline;
    let _ = smtsim::stats::Histogram::new();
}
