//! Minimal fixed-width text and CSV table rendering for experiment
//! output. The experiment runners print the same rows/series the paper's
//! tables and figures report; this keeps that output aligned and
//! machine-readable without pulling in a formatting dependency.

/// A simple rectangular table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Fixed-width, pipe-separated rendering.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str(" | ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// CSV rendering (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a ratio as a percentage with one decimal ("42.0%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]).row(vec!["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.425), "42.5%");
        assert_eq!(f3(1.23456), "1.235");
    }
}
