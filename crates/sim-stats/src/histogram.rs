//! Integer-bucket histograms.

use serde::{Deserialize, Serialize};
use sim_snapshot::{Snap, SnapError, SnapReader, SnapWriter};

/// A dense histogram over small non-negative integer values
/// (e.g. ready-queue length per cycle, 0..=IQ size).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Largest value observed, or `None` if empty.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Fraction of observations equal to `value`.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fraction of observations strictly less than `value`.
    pub fn fraction_below(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self.counts.iter().take(value).sum();
        below as f64 / self.total as f64
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The value with the highest count (distribution peak).
    pub fn mode(&self) -> Option<usize> {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .filter(|(_, &c)| c > 0)
            .map(|(v, _)| v)
    }

    /// Iterate `(value, count)` over observed buckets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }
}

/// A histogram whose every bucket also accumulates a companion ratio —
/// the paper's Figure 2: for each ready-queue length, the average
/// percentage of ACE instructions among the ready instructions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompanionHistogram {
    hist: Histogram,
    /// Per-bucket sum of companion numerators and denominators.
    num: Vec<f64>,
    den: Vec<f64>,
}

impl CompanionHistogram {
    pub fn new() -> CompanionHistogram {
        CompanionHistogram::default()
    }

    /// Record an observation of `value` with a companion ratio sample
    /// `num/den` (skipped when `den == 0`).
    pub fn record(&mut self, value: usize, num: f64, den: f64) {
        self.hist.record(value);
        if value >= self.num.len() {
            self.num.resize(value + 1, 0.0);
            self.den.resize(value + 1, 0.0);
        }
        self.num[value] += num;
        self.den[value] += den;
    }

    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Mean companion ratio for a bucket, or `None` if never observed
    /// with a nonzero denominator.
    pub fn companion(&self, value: usize) -> Option<f64> {
        let den = *self.den.get(value)?;
        if den == 0.0 {
            None
        } else {
            Some(self.num[value] / den)
        }
    }

    /// Overall companion ratio across all buckets.
    pub fn companion_overall(&self) -> Option<f64> {
        let den: f64 = self.den.iter().sum();
        if den == 0.0 {
            None
        } else {
            Some(self.num.iter().sum::<f64>() / den)
        }
    }
}

impl Snap for Histogram {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.counts);
        w.put(&self.total);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let counts: Vec<u64> = r.get()?;
        let total: u64 = r.get()?;
        if counts.iter().sum::<u64>() != total {
            return Err(SnapError::Corrupt("histogram total mismatch".into()));
        }
        Ok(Histogram { counts, total })
    }
}

impl Snap for CompanionHistogram {
    fn save(&self, w: &mut SnapWriter) {
        self.hist.save(w);
        w.put(&self.num);
        w.put(&self.den);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let hist = Histogram::load(r)?;
        let num: Vec<f64> = r.get()?;
        let den: Vec<f64> = r.get()?;
        if num.len() != den.len() {
            return Err(SnapError::Corrupt("companion array length mismatch".into()));
        }
        Ok(CompanionHistogram { hist, num, den })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_fractions() {
        let mut h = Histogram::new();
        for v in [1, 1, 2, 5] {
            h.record(v);
        }
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert!((h.fraction(1) - 0.5).abs() < 1e-12);
        assert!((h.fraction_below(2) - 0.5).abs() < 1e-12);
        assert_eq!(h.max_value(), Some(5));
        assert_eq!(h.mode(), Some(1));
        assert!((h.mean() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.mode(), None);
        assert_eq!(h.fraction(3), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn iter_skips_empty_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(7);
        let items: Vec<_> = h.iter().collect();
        assert_eq!(items, vec![(0, 1), (7, 1)]);
    }

    #[test]
    fn companion_tracks_per_bucket_ratio() {
        let mut c = CompanionHistogram::new();
        // Bucket 4: two samples, 3/4 and 1/4 ACE -> pooled 4/8 = 0.5.
        c.record(4, 3.0, 4.0);
        c.record(4, 1.0, 4.0);
        c.record(9, 9.0, 9.0);
        assert!((c.companion(4).unwrap() - 0.5).abs() < 1e-12);
        assert!((c.companion(9).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(c.companion(5), None);
        assert!((c.companion_overall().unwrap() - 13.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_buckets_read_as_empty() {
        let mut h = Histogram::new();
        h.record(3);
        // Reads past the densely allocated range are defined, not panics.
        assert_eq!(h.count(100), 0);
        assert_eq!(h.fraction(100), 0.0);
        assert!((h.fraction_below(100) - 1.0).abs() < 1e-12);
        assert_eq!(h.max_value(), Some(3));
    }

    #[test]
    fn companion_out_of_range_is_none() {
        let mut c = CompanionHistogram::new();
        c.record(2, 1.0, 2.0);
        assert_eq!(c.companion(3), None, "bucket past the allocated range");
        assert_eq!(c.companion(usize::MAX), None);
        assert_eq!(c.histogram().count(usize::MAX), 0);
    }

    #[test]
    fn companion_zero_denominator_ignored() {
        let mut c = CompanionHistogram::new();
        c.record(0, 0.0, 0.0);
        assert_eq!(c.companion(0), None);
        assert_eq!(c.companion_overall(), None);
        assert_eq!(c.histogram().total(), 1, "the count itself still lands");
    }
}
