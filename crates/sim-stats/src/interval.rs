//! Per-interval sample series and the PVE metric.
//!
//! The paper samples workload behaviour in fixed 10K-cycle intervals
//! (Sections 2.2 and 5.1) and evaluates DVM by the *percentage of
//! vulnerability emergencies* — the fraction of intervals whose IQ AVF
//! exceeds the pre-set reliability target (Section 5.2).

use serde::{Deserialize, Serialize};
use sim_snapshot::{Snap, SnapError, SnapReader, SnapWriter};

/// A series of per-interval scalar samples (e.g. interval IQ AVF).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IntervalSeries {
    samples: Vec<f64>,
}

impl IntervalSeries {
    pub fn new() -> IntervalSeries {
        IntervalSeries::default()
    }

    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample (the paper's MaxIQ_AVF when applied to interval
    /// AVF values of a baseline run).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(f64::MIN, f64::max)
    }

    /// Percentage of vulnerability emergencies: the fraction of intervals
    /// in which the sample exceeds `threshold`. Returns a value in [0,1].
    pub fn pve(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let over = self.samples.iter().filter(|&&v| v > threshold).count();
        over as f64 / self.samples.len() as f64
    }

    /// Fraction of emergency intervals whose excursion over `threshold`
    /// is at most `margin` (the paper notes most MEM emergencies surpass
    /// the threshold by ≤ 2 % AVF).
    pub fn pve_within_margin(&self, threshold: f64, margin: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let slight = self
            .samples
            .iter()
            .filter(|&&v| v > threshold && v <= threshold + margin)
            .count();
        slight as f64 / self.samples.len() as f64
    }
}

impl Snap for IntervalSeries {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.samples);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(IntervalSeries { samples: r.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> IntervalSeries {
        let mut s = IntervalSeries::new();
        for &v in vals {
            s.push(v);
        }
        s
    }

    #[test]
    fn pve_counts_exceedances() {
        let s = series(&[0.1, 0.5, 0.3, 0.7]);
        assert!((s.pve(0.4) - 0.5).abs() < 1e-12);
        assert_eq!(s.pve(1.0), 0.0);
        assert_eq!(s.pve(0.0), 1.0);
    }

    #[test]
    fn pve_is_strict_exceedance() {
        let s = series(&[0.5, 0.5]);
        assert_eq!(s.pve(0.5), 0.0, "equal-to-threshold is not an emergency");
    }

    #[test]
    fn max_and_mean() {
        let s = series(&[0.2, 0.8, 0.5]);
        assert!((s.max() - 0.8).abs() < 1e-12);
        assert!((s.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = IntervalSeries::new();
        assert_eq!(s.pve(0.5), 0.0);
        assert_eq!(s.pve(0.0), 0.0, "no intervals means no emergencies");
        assert_eq!(s.pve_within_margin(0.5, 0.02), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample_series() {
        let s = series(&[0.42]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pve(0.41), 1.0);
        assert_eq!(s.pve(0.42), 0.0);
        assert!((s.max() - 0.42).abs() < 1e-12);
        assert!((s.mean() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_preserves_samples() {
        let s = series(&[0.1, 0.9, 0.5]);
        let text = serde::json::to_string(&s);
        let back: IntervalSeries = serde::json::from_str(&text).unwrap();
        assert_eq!(back.samples(), s.samples());
    }

    #[test]
    fn margin_classification() {
        let s = series(&[0.51, 0.56, 0.4]);
        // threshold 0.5, margin 0.02: only 0.51 is a "slight" emergency.
        assert!((s.pve_within_margin(0.5, 0.02) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.pve(0.5) - 2.0 / 3.0).abs() < 1e-12);
    }
}
