//! Cross-seed aggregation: mean, stddev and 95 % confidence intervals
//! over N independently-seeded runs of one exhibit.
//!
//! A single seeded run of the synthetic workload generator is one draw
//! from the benchmark model's distribution; any conclusion drawn from
//! it ("MEM mixes run 1.4× slower") is hostage to that draw. The
//! campaign report and the regression baseline therefore aggregate over
//! several seeds and report `mean ± CI95`, with the half-width from the
//! two-sided Student-t quantile at the run count's degrees of freedom —
//! the small-sample correction matters because bench runs use n = 3–10,
//! far from the z ≈ 1.96 asymptote.

use serde::{Deserialize, Serialize};

/// Two-sided 97.5 % Student-t quantiles for df = 1..=30 (CI95
/// half-width multiplier `t * s / sqrt(n)`); the z quantile beyond.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

fn t_quantile_975(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T_975.len() {
        T_975[df - 1]
    } else {
        1.96
    }
}

/// Mean/stddev/CI95 digest of one metric over N seeded runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SeedSummary {
    /// Number of seeded runs aggregated.
    pub n: u64,
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator); 0 for n < 2.
    pub stddev: f64,
    /// Half-width of the 95 % confidence interval on the mean
    /// (Student-t); 0 for n < 2.
    pub ci95: f64,
}

impl SeedSummary {
    pub fn from_samples(samples: &[f64]) -> SeedSummary {
        let n = samples.len();
        if n == 0 {
            return SeedSummary::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return SeedSummary {
                n: 1,
                mean,
                stddev: 0.0,
                ci95: 0.0,
            };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let stddev = var.sqrt();
        let ci95 = t_quantile_975(n - 1) * stddev / (n as f64).sqrt();
        SeedSummary {
            n: n as u64,
            mean,
            stddev,
            ci95,
        }
    }

    /// `mean ± ci95` with the given precision, for report tables.
    pub fn display(&self, precision: usize) -> String {
        if self.n <= 1 {
            format!("{:.*}", precision, self.mean)
        } else {
            format!("{:.*} ±{:.*}", precision, self.mean, precision, self.ci95)
        }
    }
}

/// Median of a sample set (midpoint of the two central order statistics
/// for even n). Robust location estimate for noisy ratio assertions.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Wilson score interval on a binomial proportion.
///
/// The fault-injection campaign estimates vulnerability as
/// `non_masked / trials`; the Wilson interval is the right tool there
/// because the proportion sits near 0 for protected structures, where
/// the naive normal ("Wald") interval collapses to zero width and
/// under-covers badly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WilsonCi {
    /// Point estimate `successes / trials` (0 for zero trials).
    pub estimate: f64,
    pub lo: f64,
    pub hi: f64,
}

impl WilsonCi {
    /// Does the interval contain `value`?
    pub fn contains(&self, value: f64) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Wilson score interval for `successes` out of `trials` at normal
/// quantile `z`. Zero trials yields the vacuous `[0, 1]` interval.
pub fn wilson_ci(successes: u64, trials: u64, z: f64) -> WilsonCi {
    assert!(successes <= trials, "successes exceed trials");
    if trials == 0 {
        return WilsonCi {
            estimate: 0.0,
            lo: 0.0,
            hi: 1.0,
        };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    WilsonCi {
        estimate: p,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// [`wilson_ci`] at the 95 % level (z = 1.96).
pub fn wilson_ci95(successes: u64, trials: u64) -> WilsonCi {
    wilson_ci(successes, trials, 1.96)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(SeedSummary::from_samples(&[]), SeedSummary::default());
        let s = SeedSummary::from_samples(&[2.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.display(2), "2.50");
    }

    #[test]
    fn known_small_sample() {
        // n=5, mean 3, variance 2.5, stddev ~1.5811.
        let s = SeedSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.stddev - 2.5f64.sqrt()).abs() < 1e-9);
        // t(df=4) = 2.776: CI95 = 2.776 * 1.5811 / sqrt(5) ≈ 1.963.
        assert!((s.ci95 - 2.776 * 2.5f64.sqrt() / 5f64.sqrt()).abs() < 1e-9);
        assert!(s.display(2).starts_with("3.00 ±1.96"));
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let s = SeedSummary::from_samples(&[7.0; 8]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn t_quantile_shrinks_with_df() {
        assert!(t_quantile_975(1) > t_quantile_975(4));
        assert!(t_quantile_975(4) > t_quantile_975(29));
        assert_eq!(t_quantile_975(100), 1.96);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[9.0]), 9.0);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let s = SeedSummary::from_samples(&[1.0, 2.0, 4.0]);
        let back: SeedSummary = serde::json::from_str(&serde::json::to_string(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn wilson_known_value() {
        // Classic check: 10/100 at 95 % → roughly [0.055, 0.174].
        let ci = wilson_ci95(10, 100);
        assert!((ci.estimate - 0.10).abs() < 1e-12);
        assert!((ci.lo - 0.0552).abs() < 5e-3, "lo = {}", ci.lo);
        assert!((ci.hi - 0.1744).abs() < 5e-3, "hi = {}", ci.hi);
        assert!(ci.contains(0.10));
        assert!(!ci.contains(0.30));
    }

    #[test]
    fn wilson_edges_stay_in_unit_interval() {
        let zero = wilson_ci95(0, 50);
        assert_eq!(zero.estimate, 0.0);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0 && zero.hi < 0.2, "hi = {}", zero.hi);
        let full = wilson_ci95(50, 50);
        assert_eq!(full.hi, 1.0);
        assert!(full.lo > 0.8 && full.lo < 1.0);
        let none = wilson_ci95(0, 0);
        assert_eq!((none.lo, none.hi), (0.0, 1.0));
    }

    #[test]
    fn wilson_narrows_with_trials() {
        let small = wilson_ci95(5, 50);
        let large = wilson_ci95(100, 1000);
        assert!(large.half_width() < small.half_width());
    }

    #[test]
    #[should_panic(expected = "successes exceed trials")]
    fn wilson_rejects_impossible_counts() {
        wilson_ci95(5, 4);
    }
}
