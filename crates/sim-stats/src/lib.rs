//! # `sim-stats` — measurement toolkit
//!
//! Everything the experiment harness needs to turn raw pipeline counters
//! into the paper's tables and figures:
//!
//! * [`Histogram`] with an attached per-bucket companion metric — exactly
//!   the shape of the paper's Figure 2 (ready-queue-length distribution
//!   with per-length ACE-instruction percentage);
//! * [`IntervalSeries`] — per-interval samples (AVF, IPC, L2 misses) with
//!   the PVE (*percentage of vulnerability emergencies*) computation of
//!   Section 5.2;
//! * [`metrics`] — throughput IPC and the fairness-aware harmonic IPC of
//!   Luo et al. that the paper reports in Figures 8–9;
//! * [`aggregate`] — cross-seed statistics (mean/stddev/95 % CI over N
//!   seeded runs, plus a robust median) for campaign reports and the
//!   regression baseline;
//! * [`table`] — fixed-width text and CSV rendering for experiment output.

pub mod aggregate;
pub mod histogram;
pub mod interval;
pub mod metrics;
pub mod table;

pub use aggregate::{median, wilson_ci, wilson_ci95, SeedSummary, WilsonCi};
pub use histogram::{CompanionHistogram, Histogram};
pub use interval::IntervalSeries;
pub use metrics::{geometric_mean, harmonic_ipc, mean, throughput_ipc};
pub use table::Table;
