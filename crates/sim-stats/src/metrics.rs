//! SMT performance metrics.

/// Throughput IPC: total committed instructions across all contexts per
/// cycle — the paper's primary performance metric.
pub fn throughput_ipc(committed_per_thread: &[u64], cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    committed_per_thread.iter().sum::<u64>() as f64 / cycles as f64
}

/// Harmonic-mean IPC (Luo, Gummaraju, Franklin — ISPASS 2001): the
/// fairness-aware metric the paper reports alongside throughput in
/// Figures 8–9. `N / Σ(1/IPC_i)` over per-thread IPCs; a scheme that
/// starves one thread is punished even if total throughput rises.
pub fn harmonic_ipc(committed_per_thread: &[u64], cycles: u64) -> f64 {
    if cycles == 0 || committed_per_thread.is_empty() {
        return 0.0;
    }
    let mut denom = 0.0;
    for &c in committed_per_thread {
        if c == 0 {
            return 0.0; // a fully starved thread ⇒ harmonic IPC → 0
        }
        denom += cycles as f64 / c as f64;
    }
    committed_per_thread.len() as f64 / denom
}

/// Arithmetic mean, 0 on empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean, 0 on empty input; requires positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_sums_threads() {
        assert!((throughput_ipc(&[100, 300], 100) - 4.0).abs() < 1e-12);
        assert_eq!(throughput_ipc(&[5], 0), 0.0);
    }

    #[test]
    fn harmonic_equals_throughput_when_balanced() {
        let c = [200u64, 200, 200, 200];
        let h = harmonic_ipc(&c, 100);
        let per_thread = 2.0;
        assert!((h - per_thread).abs() < 1e-12);
    }

    #[test]
    fn harmonic_punishes_imbalance() {
        // Same total commits, unbalanced: harmonic must drop.
        let balanced = harmonic_ipc(&[200, 200], 100);
        let skewed = harmonic_ipc(&[390, 10], 100);
        assert!(skewed < balanced);
    }

    #[test]
    fn starved_thread_zeroes_harmonic() {
        assert_eq!(harmonic_ipc(&[100, 0], 100), 0.0);
    }

    #[test]
    fn means() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
