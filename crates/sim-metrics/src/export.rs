//! Exporters for a frozen [`MetricsSnapshot`].
//!
//! * [`write_series_jsonl`] — one JSON object per sampling interval,
//!   carrying every series value recorded for that interval. Stream-
//!   friendly: plotting scripts read it line by line, and partial files
//!   (from an aborted run) stay parseable up to the break.
//! * [`render_prometheus`] — Prometheus text exposition format
//!   (`# TYPE` comments, `_count`/`_sum`/`_bucket{le=...}` histogram
//!   expansion), so standard scrape tooling can chart a run's final
//!   state without a bespoke parser.

use crate::{MetricsSnapshot, SeriesPoint};
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One JSONL row: a closed interval and every series point recorded
/// at that interval index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesRow {
    pub interval: u64,
    pub start_cycle: u64,
    pub cycles: u64,
    /// `(series_name, value)` pairs, sorted by name.
    pub values: Vec<(String, f64)>,
}

/// Group a snapshot's series by interval index into JSONL rows.
pub fn series_rows(snapshot: &MetricsSnapshot) -> Vec<SeriesRow> {
    let mut rows: Vec<SeriesRow> = snapshot
        .intervals
        .iter()
        .map(|meta| SeriesRow {
            interval: meta.index,
            start_cycle: meta.start_cycle,
            cycles: meta.cycles,
            values: Vec::new(),
        })
        .collect();
    for (name, points) in &snapshot.series {
        for SeriesPoint { interval, value } in points {
            if let Some(row) = rows.iter_mut().find(|r| r.interval == *interval) {
                row.values.push((name.clone(), *value));
            }
        }
    }
    // Series iteration is name-sorted (BTreeMap order preserved into the
    // snapshot), so values within a row are already sorted by name.
    rows
}

/// Write the per-interval time series as JSONL, one row per interval.
pub fn write_series_jsonl(snapshot: &MetricsSnapshot, out: &mut dyn Write) -> io::Result<()> {
    for row in series_rows(snapshot) {
        out.write_all(serde::json::to_string(&row).as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Sanitize a dotted metric name into a Prometheus identifier.
fn prom_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 7);
    s.push_str("smtsim_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            s.push(c);
        } else {
            s.push('_');
        }
    }
    s
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render the snapshot's final state in Prometheus text exposition
/// format. Series are represented by their last value (a gauge) — the
/// full trajectory lives in the JSONL export.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", fmt_f64(*value)));
    }
    for (name, points) in &snapshot.series {
        // Gauges were already emitted above under the same name.
        if snapshot.gauge(name).is_some() {
            continue;
        }
        if let Some(last) = points.last() {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} gauge\n{p} {}\n", fmt_f64(last.value)));
        }
    }
    for (name, h) in &snapshot.histograms {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} histogram\n"));
        let mut cumulative = 0u64;
        for (i, bound) in h.bounds.iter().enumerate() {
            cumulative += h.counts[i];
            out.push_str(&format!(
                "{p}_bucket{{le=\"{}\"}} {cumulative}\n",
                fmt_f64(*bound)
            ));
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{p}_sum {}\n", fmt_f64(h.sum)));
        out.push_str(&format!("{p}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn sample_snapshot() -> MetricsSnapshot {
        let m = Metrics::new();
        m.counter_add("dvm.triggers", 3);
        m.gauge_set("dvm.wq_ratio", || 4.0);
        m.sample("iq.ready_len", 0, || 11.0);
        m.interval_rollover(0, 0, 10_000);
        m.gauge_set("dvm.wq_ratio", || 2.0);
        m.sample("iq.ready_len", 1, || 9.0);
        m.interval_rollover(1, 10_000, 10_000);
        m.observe("interval.ipc", || 1.5);
        m.observe("interval.ipc", || 3.0);
        m.snapshot()
    }

    #[test]
    fn jsonl_rows_group_by_interval() {
        let rows = series_rows(&sample_snapshot());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].interval, 0);
        assert_eq!(
            rows[0].values,
            vec![
                ("dvm.wq_ratio".to_string(), 4.0),
                ("iq.ready_len".to_string(), 11.0)
            ]
        );
        assert_eq!(rows[1].start_cycle, 10_000);
        assert_eq!(rows[1].values[0], ("dvm.wq_ratio".to_string(), 2.0));
    }

    #[test]
    fn jsonl_lines_roundtrip() {
        let mut buf = Vec::new();
        write_series_jsonl(&sample_snapshot(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let row: SeriesRow = serde::json::from_str(line).unwrap();
            assert_eq!(row.cycles, 10_000);
            assert!(!row.values.is_empty());
        }
    }

    #[test]
    fn prometheus_text_has_all_instrument_kinds() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE smtsim_dvm_triggers counter"));
        assert!(text.contains("smtsim_dvm_triggers 3"));
        assert!(text.contains("# TYPE smtsim_dvm_wq_ratio gauge"));
        assert!(text.contains("smtsim_dvm_wq_ratio 2\n"));
        // Series without a gauge: last value exported.
        assert!(text.contains("smtsim_iq_ready_len 9"));
        // Histogram expansion with cumulative buckets.
        assert!(text.contains("smtsim_interval_ipc_bucket{le=\"2\"} 1"));
        assert!(text.contains("smtsim_interval_ipc_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("smtsim_interval_ipc_count 2"));
        // Gauge-backed series are not emitted twice.
        assert_eq!(text.matches("# TYPE smtsim_dvm_wq_ratio gauge").count(), 1);
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = MetricsSnapshot::default();
        let mut buf = Vec::new();
        write_series_jsonl(&snap, &mut buf).unwrap();
        assert!(buf.is_empty());
        assert!(render_prometheus(&snap).is_empty());
    }
}
