//! Compact per-run metrics digest for run manifests.
//!
//! A full [`MetricsSnapshot`] can hold hundreds of series points; run
//! manifests want a skimmable digest instead. [`MetricsSummary`]
//! carries every counter and final gauge verbatim but reduces each
//! time series to its point count, mean, min/max and last value —
//! enough to spot a misbehaving run in a manifest diff without opening
//! the JSONL export.

use crate::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Digest of one per-interval time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    pub name: String,
    pub points: u64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub last: f64,
}

/// Digest of a whole registry, merged into run manifests.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSummary {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub series: Vec<SeriesSummary>,
}

impl MetricsSummary {
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> MetricsSummary {
        let series = snapshot
            .series
            .iter()
            .filter(|(_, pts)| !pts.is_empty())
            .map(|(name, pts)| {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut sum = 0.0;
                for p in pts {
                    min = min.min(p.value);
                    max = max.max(p.value);
                    sum += p.value;
                }
                SeriesSummary {
                    name: name.clone(),
                    points: pts.len() as u64,
                    mean: sum / pts.len() as f64,
                    min,
                    max,
                    last: pts.last().expect("non-empty").value,
                }
            })
            .collect();
        MetricsSummary {
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            series,
        }
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    pub fn series(&self, name: &str) -> Option<&SeriesSummary> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    #[test]
    fn summary_digests_series() {
        let m = Metrics::new();
        m.counter_add("opt1.cap_changes", 4);
        for (i, v) in [10.0, 20.0, 6.0].iter().enumerate() {
            m.sample("iq.ready_len", i as u64, || *v);
            m.interval_rollover(i as u64, i as u64 * 10_000, 10_000);
        }
        let sum = MetricsSummary::from_snapshot(&m.snapshot());
        assert_eq!(sum.counter("opt1.cap_changes"), Some(4));
        let s = sum.series("iq.ready_len").unwrap();
        assert_eq!(s.points, 3);
        assert_eq!(s.min, 6.0);
        assert_eq!(s.max, 20.0);
        assert_eq!(s.last, 6.0);
        assert!((s.mean - 12.0).abs() < 1e-12);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let m = Metrics::new();
        m.gauge_set("dvm.wq_ratio", || 1.5);
        m.sample("iq.interval_avf", 0, || 0.25);
        m.interval_rollover(0, 0, 10_000);
        let sum = MetricsSummary::from_snapshot(&m.snapshot());
        let text = serde::json::to_string(&sum);
        let back: MetricsSummary = serde::json::from_str(&text).unwrap();
        assert_eq!(back, sum);
    }

    #[test]
    fn empty_snapshot_gives_empty_summary() {
        let sum = MetricsSummary::from_snapshot(&MetricsSnapshot::default());
        assert_eq!(sum, MetricsSummary::default());
    }
}
