//! Quantitative observability for the SMT simulator.
//!
//! PR 1's `sim-trace` answers *what happened* (typed events, audit
//! logs); this crate answers *how much, over time*. The paper's central
//! exhibits are statements about distributions and time series — Fig. 2
//! is a ready-queue occupancy histogram, Fig. 7's DVM triggers on the
//! per-interval AVF estimate, Figs. 8–10 trade throughput IPC against
//! vulnerability — so the simulator needs a numeric substrate that can
//! be sampled every interval without perturbing the run.
//!
//! The design mirrors [`sim_trace::Tracer`]: instrumented code holds a
//! cheap cloneable [`Metrics`] handle. When no registry is attached
//! (the default, [`Metrics::off`]) every call is one `Option` test and
//! the value expression is never evaluated — metrics cost nothing
//! unless switched on. When attached, all clones share one locked
//! [`Registry`] holding four instrument kinds:
//!
//! * **counters** — monotonically increasing `u64` totals
//!   (`dvm.triggers`, `opt1.cap_changes`);
//! * **gauges** — last-written `f64` values (`dvm.wq_ratio`,
//!   `opt1.iql_cap`, `opt2.flush_mode`);
//! * **histograms** — bucketed `f64` distributions (`interval.ipc`);
//! * **series** — per-interval time series, one point per sampling
//!   interval, indexed by the pipeline's interval counter
//!   (`iq.ready_len`, `iq.ace_fraction`, `iq.interval_avf`).
//!
//! The pipeline drives the interval clock: at each rollover it calls
//! [`Metrics::interval_rollover`], which records the interval's
//! metadata and snapshots every live gauge into a same-named series —
//! so governor state (wq_ratio, IQL cap, flush mode) becomes a time
//! series for free, aligned with the IQ/AVF series on the same clock
//! that `sim-trace` stamps its `IntervalRollover` events with.
//!
//! Export paths (module [`export`]): JSONL time series (one line per
//! interval), Prometheus-style text, and a compact [`MetricsSummary`]
//! merged into run manifests.

pub mod export;
pub mod summary;

pub use summary::{MetricsSummary, SeriesSummary};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default histogram bucket upper bounds. Geometric, covering the
/// magnitudes the simulator produces (IPC 0–8, queue lengths 0–96,
/// latencies up to a few hundred cycles).
pub const DEFAULT_BUCKETS: [f64; 10] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// A bucketed distribution. Buckets are cumulative-style on export
/// (Prometheus `le` semantics) but stored per-bucket internally.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus a final overflow slot.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Frozen histogram state, serializable for export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds; `counts` has one extra overflow slot.
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One point of a per-interval time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Interval index (the pipeline's rollover counter).
    pub interval: u64,
    pub value: f64,
}

/// Metadata for one closed sampling interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalMeta {
    pub index: u64,
    pub start_cycle: u64,
    pub cycles: u64,
}

/// The shared instrument store behind a [`Metrics`] handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    series: BTreeMap<&'static str, Vec<SeriesPoint>>,
    intervals: Vec<IntervalMeta>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.to_string(), h.snapshot()))
                .collect(),
            series: self
                .series
                .iter()
                .map(|(k, pts)| (k.to_string(), pts.clone()))
                .collect(),
            intervals: self.intervals.clone(),
        }
    }
}

/// Frozen registry state. Keys are sorted name/value pairs rather than
/// maps so the vendored serde derive can round-trip it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
    pub series: Vec<(String, Vec<SeriesPoint>)>,
    pub intervals: Vec<IntervalMeta>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    pub fn series(&self, name: &str) -> Option<&[SeriesPoint]> {
        self.series
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, pts)| pts.as_slice())
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }
}

/// Cloneable handle the instrumented code records through. The default
/// ([`Metrics::off`]) carries no registry: every call reduces to one
/// `Option` test and value expressions are never evaluated.
#[derive(Clone, Default)]
pub struct Metrics(Option<Arc<Mutex<Registry>>>);

impl Metrics {
    /// A handle with no registry; every call is a no-op.
    pub fn off() -> Metrics {
        Metrics(None)
    }

    /// A handle backed by a fresh registry.
    pub fn new() -> Metrics {
        Metrics(Some(Arc::new(Mutex::new(Registry::new()))))
    }

    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Add `delta` to a monotonic counter (created on first use).
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(reg) = &self.0 {
            *reg.lock().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Set a gauge to the value produced by `value()`. The closure runs
    /// only when a registry is attached.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: impl FnOnce() -> f64) {
        if let Some(reg) = &self.0 {
            reg.lock().gauges.insert(name, value());
        }
    }

    /// Record one observation into a histogram (created on first use
    /// with [`DEFAULT_BUCKETS`]).
    #[inline]
    pub fn observe(&self, name: &'static str, value: impl FnOnce() -> f64) {
        if let Some(reg) = &self.0 {
            reg.lock()
                .histograms
                .entry(name)
                .or_insert_with(|| Histogram::new(&DEFAULT_BUCKETS))
                .observe(value());
        }
    }

    /// Record one observation into a histogram with explicit bucket
    /// bounds (bounds apply on first use only).
    #[inline]
    pub fn observe_with_buckets(
        &self,
        name: &'static str,
        bounds: &[f64],
        value: impl FnOnce() -> f64,
    ) {
        if let Some(reg) = &self.0 {
            reg.lock()
                .histograms
                .entry(name)
                .or_insert_with(|| Histogram::new(bounds))
                .observe(value());
        }
    }

    /// Append a point to a per-interval time series. `interval` is the
    /// index of the (usually just-closed) sampling interval.
    #[inline]
    pub fn sample(&self, name: &'static str, interval: u64, value: impl FnOnce() -> f64) {
        if let Some(reg) = &self.0 {
            reg.lock()
                .series
                .entry(name)
                .or_default()
                .push(SeriesPoint {
                    interval,
                    value: value(),
                });
        }
    }

    /// Close a sampling interval: record its metadata and snapshot every
    /// live gauge into a same-named series, so slowly-changing governor
    /// state becomes a time series on the shared interval clock.
    pub fn interval_rollover(&self, index: u64, start_cycle: u64, cycles: u64) {
        if let Some(reg) = &self.0 {
            let mut reg = reg.lock();
            reg.intervals.push(IntervalMeta {
                index,
                start_cycle,
                cycles,
            });
            let gauges: Vec<(&'static str, f64)> =
                reg.gauges.iter().map(|(k, v)| (*k, *v)).collect();
            for (name, value) in gauges {
                reg.series.entry(name).or_default().push(SeriesPoint {
                    interval: index,
                    value,
                });
            }
        }
    }

    /// Discard everything accumulated so far — counters, histograms,
    /// series points, interval metadata — keeping gauges, which are
    /// live state rather than accumulation. The pipeline calls this
    /// when warmup ends, so exported series and totals cover only the
    /// measured window (interval indices restart at 0 there; without
    /// the reset, warmup and measured points would share indices).
    pub fn reset_accumulated(&self) {
        if let Some(reg) = &self.0 {
            let mut reg = reg.lock();
            reg.counters.clear();
            reg.histograms.clear();
            reg.series.clear();
            reg.intervals.clear();
        }
    }

    /// Freeze the current registry state. Returns an empty snapshot for
    /// an off handle.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.0 {
            Some(reg) => reg.lock().snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Serialize the full registry (counters, gauges, histograms, series,
    /// interval metadata) for a mid-run checkpoint. An off handle writes
    /// just an off marker.
    pub fn save_state(&self, w: &mut sim_snapshot::SnapWriter) {
        use sim_snapshot::Snap;
        let reg = match &self.0 {
            None => {
                w.put(&false);
                return;
            }
            Some(reg) => reg.lock(),
        };
        w.put(&true);
        w.put_u64(reg.counters.len() as u64);
        for (k, v) in &reg.counters {
            k.to_string().save(w);
            v.save(w);
        }
        w.put_u64(reg.gauges.len() as u64);
        for (k, v) in &reg.gauges {
            k.to_string().save(w);
            v.save(w);
        }
        w.put_u64(reg.histograms.len() as u64);
        for (k, h) in &reg.histograms {
            k.to_string().save(w);
            h.bounds.save(w);
            h.counts.save(w);
            h.count.save(w);
            h.sum.save(w);
            h.min.save(w);
            h.max.save(w);
        }
        w.put_u64(reg.series.len() as u64);
        for (k, pts) in &reg.series {
            k.to_string().save(w);
            w.put_u64(pts.len() as u64);
            for p in pts {
                p.interval.save(w);
                p.value.save(w);
            }
        }
        w.put_u64(reg.intervals.len() as u64);
        for iv in &reg.intervals {
            iv.index.save(w);
            iv.start_cycle.save(w);
            iv.cycles.save(w);
        }
    }

    /// Restore registry contents saved by [`Self::save_state`],
    /// replacing everything accumulated so far. The snapshot's on/off
    /// state must match this handle's — a run resumed without the same
    /// `--metrics` setting would silently diverge otherwise.
    ///
    /// Instrument names are interned (leaked) to satisfy the registry's
    /// `&'static str` keys; the set of names is small and fixed per
    /// binary, so this is bounded.
    pub fn restore_state(
        &self,
        r: &mut sim_snapshot::SnapReader<'_>,
    ) -> Result<(), sim_snapshot::SnapError> {
        use sim_snapshot::{SnapError, SnapReader};
        let was_on: bool = r.get()?;
        let reg = match (&self.0, was_on) {
            (None, false) => return Ok(()),
            (Some(reg), true) => reg,
            _ => {
                return Err(SnapError::Corrupt(
                    "metrics on/off state differs from snapshot (re-run with the same --metrics setting)"
                        .into(),
                ))
            }
        };
        fn intern(r: &mut SnapReader<'_>) -> Result<&'static str, SnapError> {
            let s: String = r.get()?;
            Ok(Box::leak(s.into_boxed_str()))
        }
        let mut fresh = Registry::new();
        for _ in 0..r.get_u64()? {
            let k = intern(r)?;
            fresh.counters.insert(k, r.get()?);
        }
        for _ in 0..r.get_u64()? {
            let k = intern(r)?;
            fresh.gauges.insert(k, r.get()?);
        }
        for _ in 0..r.get_u64()? {
            let k = intern(r)?;
            let bounds: Vec<f64> = r.get()?;
            let counts: Vec<u64> = r.get()?;
            if counts.len() != bounds.len() + 1 {
                return Err(SnapError::Corrupt("histogram bucket count mismatch".into()));
            }
            let h = Histogram {
                bounds,
                counts,
                count: r.get()?,
                sum: r.get()?,
                min: r.get()?,
                max: r.get()?,
            };
            fresh.histograms.insert(k, h);
        }
        for _ in 0..r.get_u64()? {
            let k = intern(r)?;
            let n = r.get_u64()? as usize;
            let mut pts = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                pts.push(SeriesPoint {
                    interval: r.get()?,
                    value: r.get()?,
                });
            }
            fresh.series.insert(k, pts);
        }
        for _ in 0..r.get_u64()? {
            fresh.intervals.push(IntervalMeta {
                index: r.get()?,
                start_cycle: r.get()?,
                cycles: r.get()?,
            });
        }
        *reg.lock() = fresh;
        Ok(())
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_on() {
            "Metrics(on)"
        } else {
            "Metrics(off)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_evaluates_values() {
        let m = Metrics::off();
        let mut ran = false;
        m.gauge_set("g", || {
            ran = true;
            1.0
        });
        m.observe("h", || {
            ran = true;
            1.0
        });
        m.sample("s", 0, || {
            ran = true;
            1.0
        });
        m.counter_add("c", 1);
        m.interval_rollover(0, 0, 10_000);
        assert!(!ran);
        assert!(!m.is_on());
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let m = Metrics::new();
        m.counter_add("dvm.triggers", 2);
        m.counter_add("dvm.triggers", 3);
        m.gauge_set("dvm.wq_ratio", || 4.0);
        m.gauge_set("dvm.wq_ratio", || 2.0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("dvm.triggers"), Some(5));
        assert_eq!(snap.gauge("dvm.wq_ratio"), Some(2.0));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn clones_share_one_registry() {
        let a = Metrics::new();
        let b = a.clone();
        a.counter_add("c", 1);
        b.counter_add("c", 1);
        assert_eq!(a.snapshot().counter("c"), Some(2));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let m = Metrics::new();
        for v in [0.3, 1.5, 1.9, 300.0] {
            m.observe("interval.ipc", || v);
        }
        let snap = m.snapshot();
        let h = snap.histogram("interval.ipc").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.counts[0], 1); // ≤ 0.5
        assert_eq!(h.counts[2], 2); // (1, 2]
        assert_eq!(*h.counts.last().unwrap(), 1); // overflow
        assert_eq!(h.min, 0.3);
        assert_eq!(h.max, 300.0);
        assert!((h.mean() - (0.3 + 1.5 + 1.9 + 300.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn rollover_samples_gauges_into_series() {
        let m = Metrics::new();
        m.gauge_set("opt1.iql_cap", || 96.0);
        m.sample("iq.ready_len", 0, || 12.5);
        m.interval_rollover(0, 0, 10_000);
        m.gauge_set("opt1.iql_cap", || 32.0);
        m.sample("iq.ready_len", 1, || 7.5);
        m.interval_rollover(1, 10_000, 10_000);
        let snap = m.snapshot();
        let cap = snap.series("opt1.iql_cap").unwrap();
        assert_eq!(cap.len(), 2);
        assert_eq!(cap[0].value, 96.0);
        assert_eq!(cap[1].value, 32.0);
        assert_eq!(cap[1].interval, 1);
        let ready = snap.series("iq.ready_len").unwrap();
        assert_eq!(ready.len(), 2);
        assert_eq!(snap.intervals.len(), 2);
        assert_eq!(snap.intervals[1].start_cycle, 10_000);
    }

    #[test]
    fn state_roundtrips_through_snapshot_codec() {
        let m = Metrics::new();
        m.counter_add("snap.c", 7);
        m.gauge_set("snap.g", || 1.25);
        m.observe("snap.h", || 3.0);
        m.sample("snap.s", 0, || 0.5);
        m.interval_rollover(0, 0, 10_000);
        let mut w = sim_snapshot::SnapWriter::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();
        let fresh = Metrics::new();
        fresh
            .restore_state(&mut sim_snapshot::SnapReader::new(&bytes))
            .unwrap();
        assert_eq!(fresh.snapshot(), m.snapshot());
    }

    #[test]
    fn restore_rejects_on_off_mismatch() {
        let on = Metrics::new();
        let mut w = sim_snapshot::SnapWriter::new();
        on.save_state(&mut w);
        let bytes = w.into_bytes();
        let off = Metrics::off();
        assert!(off
            .restore_state(&mut sim_snapshot::SnapReader::new(&bytes))
            .is_err());
        // And the symmetric case.
        let mut w = sim_snapshot::SnapWriter::new();
        Metrics::off().save_state(&mut w);
        let bytes = w.into_bytes();
        assert!(Metrics::new()
            .restore_state(&mut sim_snapshot::SnapReader::new(&bytes))
            .is_err());
        assert!(Metrics::off()
            .restore_state(&mut sim_snapshot::SnapReader::new(&bytes))
            .is_ok());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        m.counter_add("c", 7);
        m.gauge_set("g", || 1.25);
        m.observe("h", || 3.0);
        m.sample("s", 0, || 0.5);
        m.interval_rollover(0, 0, 10_000);
        let snap = m.snapshot();
        let text = serde::json::to_string(&snap);
        let back: MetricsSnapshot = serde::json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
