//! Property tests for the micro-ISA: encodings round-trip for every
//! representable instruction, and branch semantics stay deterministic
//! and well-calibrated over arbitrary parameters.

use micro_isa::{
    AddressPattern, BranchInfo, BranchKind, BranchSem, EncodedInst, OpClass, Reg, StaticInst,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32, prop::bool::ANY).prop_map(|(n, fp)| if fp { Reg::fp(n) } else { Reg::int(n) })
}

fn arb_operand() -> impl Strategy<Value = Option<Reg>> {
    prop_oneof![Just(None), arb_reg().prop_map(Some)]
}

fn arb_compute_op() -> impl Strategy<Value = OpClass> {
    prop::sample::select(vec![
        OpClass::IAlu,
        OpClass::IMul,
        OpClass::IDiv,
        OpClass::FAlu,
        OpClass::FMul,
        OpClass::FDiv,
        OpClass::FSqrt,
        OpClass::Output,
    ])
}

proptest! {
    /// Every architectural field of a compute instruction survives the
    /// 64-bit encode/decode round trip.
    #[test]
    fn encoding_round_trips_all_fields(
        op in arb_compute_op(),
        dest in arb_operand(),
        s0 in arb_operand(),
        s1 in arb_operand(),
        ace in prop::bool::ANY,
        pc in 0u64..1_000_000,
    ) {
        let mut inst = StaticInst {
            pc,
            op,
            dest,
            srcs: [s0, s1],
            mem: None,
            branch: None,
            ace_hint: ace,
        };
        inst.ace_hint = ace;
        let decoded = EncodedInst::encode(&inst).decode().expect("valid opcode");
        prop_assert_eq!(decoded.op, op);
        prop_assert_eq!(decoded.dest, dest);
        prop_assert_eq!(decoded.srcs, [s0, s1]);
        prop_assert_eq!(decoded.ace_hint, ace);
    }

    /// Branch targets survive through the immediate field (37 bits).
    #[test]
    fn branch_target_round_trips(target in 0u64..(1u64 << 37)) {
        let inst = StaticInst::control(
            0,
            OpClass::CondBranch,
            Some(Reg::int(1)),
            BranchInfo { kind: BranchKind::Cond, target, sem: BranchSem::Always },
        );
        let decoded = EncodedInst::encode(&inst).decode().unwrap();
        prop_assert_eq!(decoded.imm, target);
    }

    /// Loop-back semantics: exactly one not-taken per `trip` executions,
    /// at the trip boundary.
    #[test]
    fn loopback_falls_through_once_per_trip(trip in 1u32..200, rounds in 1u64..5) {
        let b = BranchInfo {
            kind: BranchKind::Cond,
            target: 0,
            sem: BranchSem::LoopBack { trip },
        };
        let total = trip as u64 * rounds;
        let not_taken = (0..total).filter(|&k| !b.outcome(k, 7)).count() as u64;
        prop_assert_eq!(not_taken, rounds);
        for r in 0..rounds {
            prop_assert!(!b.outcome(r * trip as u64 + trip as u64 - 1, 7));
        }
    }

    /// Biased outcomes are pure functions of (k, pc) and land within a
    /// loose calibration band of the requested probability.
    #[test]
    fn biased_outcomes_deterministic_and_calibrated(
        prob in 0.05f32..0.95,
        pc in 0u64..10_000,
    ) {
        let b = BranchInfo {
            kind: BranchKind::Cond,
            target: 0,
            sem: BranchSem::Biased { taken_prob: prob },
        };
        let n = 4_000u64;
        let taken = (0..n).filter(|&k| b.outcome(k, pc)).count() as f64 / n as f64;
        prop_assert!((taken - prob as f64).abs() < 0.08, "taken {taken} vs prob {prob}");
        for k in 0..64 {
            prop_assert_eq!(b.outcome(k, pc), b.outcome(k, pc));
        }
    }

    /// Address patterns always stay within their declared region and are
    /// pure functions of the execution index.
    #[test]
    fn address_patterns_stay_in_region(
        base in 0u64..(1u64 << 30),
        span in 64u64..(1u64 << 22),
        stride in 1u64..512,
        salt in 0u64..1_000_000,
        k in 0u64..1_000_000,
    ) {
        let stride_pat = AddressPattern::Stride { base, stride, span };
        let a = stride_pat.address(k);
        prop_assert!(a >= base && a < base + span);
        prop_assert_eq!(a, stride_pat.address(k));

        let scatter = AddressPattern::Scatter { base, span, salt };
        let a = scatter.address(k);
        prop_assert!(a >= base && a < base + span);
        prop_assert_eq!(a, scatter.address(k));
    }

    /// Register flat indices are a bijection over the 64-register space.
    #[test]
    fn reg_flat_index_bijective(n in 0u8..32, fp in prop::bool::ANY) {
        let r = if fp { Reg::fp(n) } else { Reg::int(n) };
        prop_assert_eq!(Reg::from_flat_index(r.flat_index()), r);
        prop_assert_eq!(Reg::decode6(r.encode6()), r);
    }
}
