//! Binary instruction encoding and the bit layout used for AVF accounting.
//!
//! The paper computes AVF at *bit* granularity: an issue-queue entry is a
//! vector of latches, and only some of them hold architecturally required
//! state at a given moment. This module pins down the 64-bit instruction
//! word all structures store, with named fields so the `avf` crate can
//! attach per-field ACE semantics:
//!
//! ```text
//!  63        27 26    20 19    13 12     6  5        4..0
//! +------------+--------+--------+--------+---+---------+
//! | immediate  |  src1  |  src0  |  dest  |ACE| opcode  |
//! |  (37 bits) |(7 bits)|(7 bits)|(7 bits)|bit|(5 bits) |
//! +------------+--------+--------+--------+---+---------+
//! ```
//!
//! Operand fields are 7 bits: a valid bit plus a 6-bit register name
//! (class + number). The immediate holds the low 37 bits of a branch
//! target or memory base — enough for the synthetic address spaces the
//! workload generator emits.
//!
//! The encoding is *architecturally lossy* for the simulator-only parts of
//! a [`StaticInst`] (address-pattern shape, branch trip counts): those are
//! trace-generation metadata, not machine state, and therefore carry no
//! soft-error vulnerability.

use crate::{OpClass, Reg, StaticInst};

/// Width of the encoded instruction word in bits.
pub const ENCODED_BITS: u32 = 64;

/// Bit offset/width of each field (LSB-first).
pub mod fields {
    /// Opcode: bits 0..=4.
    pub const OPCODE_LO: u32 = 0;
    pub const OPCODE_BITS: u32 = 5;
    /// ACE-ness hint (the paper's ISA extension): bit 5.
    pub const ACE_BIT: u32 = 5;
    /// Destination operand (valid bit + 6-bit reg): bits 6..=12.
    pub const DEST_LO: u32 = 6;
    /// First source operand: bits 13..=19.
    pub const SRC0_LO: u32 = 13;
    /// Second source operand: bits 20..=26.
    pub const SRC1_LO: u32 = 20;
    /// Operand field width.
    pub const OPERAND_BITS: u32 = 7;
    /// Immediate / displacement: bits 27..=63.
    pub const IMM_LO: u32 = 27;
    pub const IMM_BITS: u32 = 37;
}

/// An encoded 64-bit instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedInst(pub u64);

/// The architectural fields recovered by decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedFields {
    pub op: OpClass,
    pub ace_hint: bool,
    pub dest: Option<Reg>,
    pub srcs: [Option<Reg>; 2],
    pub imm: u64,
}

fn encode_operand(reg: Option<Reg>) -> u64 {
    match reg {
        Some(r) => 0x40 | r.encode6() as u64, // bit 6 = valid
        None => 0,
    }
}

fn decode_operand(bits: u64) -> Option<Reg> {
    if bits & 0x40 != 0 {
        Some(Reg::decode6((bits & 0x3f) as u8))
    } else {
        None
    }
}

impl EncodedInst {
    /// Encode the architectural fields of a static instruction.
    ///
    /// The immediate slot carries the branch target for control ops and
    /// the low bits of the address-pattern base for memory ops.
    pub fn encode(inst: &StaticInst) -> EncodedInst {
        use fields::*;
        let imm: u64 = if let Some(b) = &inst.branch {
            b.target & ((1u64 << IMM_BITS) - 1)
        } else if let Some(m) = &inst.mem {
            let base = match *m {
                crate::AddressPattern::Stride { base, .. } => base,
                crate::AddressPattern::Scatter { base, .. } => base,
                crate::AddressPattern::Fixed { addr } => addr,
            };
            base & ((1u64 << IMM_BITS) - 1)
        } else {
            0
        };
        let word = (inst.op.opcode() as u64) << OPCODE_LO
            | (inst.ace_hint as u64) << ACE_BIT
            | encode_operand(inst.dest) << DEST_LO
            | encode_operand(inst.srcs[0]) << SRC0_LO
            | encode_operand(inst.srcs[1]) << SRC1_LO
            | imm << IMM_LO;
        EncodedInst(word)
    }

    /// Decode the architectural fields. Returns `None` on an invalid
    /// opcode (which a real machine would trap on).
    pub fn decode(self) -> Option<DecodedFields> {
        use fields::*;
        let w = self.0;
        let op = OpClass::from_opcode(((w >> OPCODE_LO) & ((1 << OPCODE_BITS) - 1)) as u8)?;
        Some(DecodedFields {
            op,
            ace_hint: (w >> ACE_BIT) & 1 != 0,
            dest: decode_operand((w >> DEST_LO) & ((1 << OPERAND_BITS) - 1)),
            srcs: [
                decode_operand((w >> SRC0_LO) & ((1 << OPERAND_BITS) - 1)),
                decode_operand((w >> SRC1_LO) & ((1 << OPERAND_BITS) - 1)),
            ],
            imm: (w >> IMM_LO) & ((1u64 << IMM_BITS) - 1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressPattern, BranchInfo, BranchKind, BranchSem};

    #[test]
    fn fields_tile_the_word_exactly() {
        use fields::*;
        assert_eq!(ACE_BIT, OPCODE_LO + OPCODE_BITS);
        assert_eq!(DEST_LO, ACE_BIT + 1);
        assert_eq!(SRC0_LO, DEST_LO + OPERAND_BITS);
        assert_eq!(SRC1_LO, SRC0_LO + OPERAND_BITS);
        assert_eq!(IMM_LO, SRC1_LO + OPERAND_BITS);
        assert_eq!(IMM_LO + IMM_BITS, ENCODED_BITS);
    }

    #[test]
    fn compute_round_trips() {
        let mut inst = StaticInst::compute(
            0x123,
            OpClass::IMul,
            Some(Reg::int(7)),
            [Some(Reg::int(1)), Some(Reg::fp(2))],
        );
        inst.ace_hint = true;
        let d = EncodedInst::encode(&inst).decode().unwrap();
        assert_eq!(d.op, OpClass::IMul);
        assert!(d.ace_hint);
        assert_eq!(d.dest, Some(Reg::int(7)));
        assert_eq!(d.srcs, [Some(Reg::int(1)), Some(Reg::fp(2))]);
    }

    #[test]
    fn branch_target_survives() {
        let inst = StaticInst::control(
            0x50,
            OpClass::CondBranch,
            Some(Reg::int(4)),
            BranchInfo {
                kind: BranchKind::Cond,
                target: 0xabcd,
                sem: BranchSem::Biased { taken_prob: 0.5 },
            },
        );
        let d = EncodedInst::encode(&inst).decode().unwrap();
        assert_eq!(d.imm, 0xabcd);
        assert_eq!(d.op, OpClass::CondBranch);
    }

    #[test]
    fn memory_base_survives() {
        let inst = StaticInst::load(
            0x60,
            Reg::fp(9),
            Some(Reg::int(3)),
            AddressPattern::Stride {
                base: 0x4000,
                stride: 8,
                span: 1024,
            },
        );
        let d = EncodedInst::encode(&inst).decode().unwrap();
        assert_eq!(d.imm, 0x4000);
        assert_eq!(d.dest, Some(Reg::fp(9)));
        assert_eq!(d.srcs[0], Some(Reg::int(3)));
    }

    #[test]
    fn missing_operands_decode_as_none() {
        let d = EncodedInst::encode(&StaticInst::nop(0)).decode().unwrap();
        assert_eq!(d.op, OpClass::Nop);
        assert_eq!(d.dest, None);
        assert_eq!(d.srcs, [None, None]);
        assert!(!d.ace_hint);
    }

    #[test]
    fn invalid_opcode_rejected() {
        assert!(EncodedInst(31).decode().is_none()); // opcode 31 undefined
    }
}
