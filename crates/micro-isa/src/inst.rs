//! Static instructions (program text) and dynamic instances (pipeline
//! payload).

use crate::{AddressPattern, OpClass, Pc, Reg, ThreadId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Control-transfer kind, as seen by the branch predictor front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch.
    Cond,
    /// Unconditional direct jump.
    Jump,
    /// Call: unconditional, pushes the return-address stack.
    Call,
    /// Return: indirect through the return-address stack.
    Ret,
}

/// Deterministic branch semantics of a *static* control instruction.
///
/// Outcomes must be a pure function of the per-instruction execution index
/// so that squash-and-replay (branch recovery, FLUSH rollback) regenerates
/// the identical dynamic stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BranchSem {
    /// A loop back edge with a fixed trip count: taken on executions
    /// `k` with `k % trip != trip - 1`, falls through on every `trip`-th.
    LoopBack { trip: u32 },
    /// Data-dependent branch modelled as a biased pseudo-random coin,
    /// hashed from the execution index (deterministic, replayable).
    Biased { taken_prob: f32 },
    /// Unconditional (jumps and calls).
    Always,
    /// Return: target comes from the software call stack maintained by
    /// the workload engine.
    Return,
}

/// Static description of one control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchInfo {
    pub kind: BranchKind,
    /// Taken target PC (ignored for `Ret`, whose target is dynamic).
    pub target: Pc,
    pub sem: BranchSem,
}

impl BranchInfo {
    /// Resolve the outcome of the `k`-th dynamic execution.
    /// `Ret` outcomes cannot be resolved here (they need the call stack);
    /// callers handle returns separately.
    #[inline]
    pub fn outcome(&self, k: u64, pc: Pc) -> bool {
        match self.sem {
            BranchSem::LoopBack { trip } => {
                let t = trip.max(1) as u64;
                k % t != t - 1
            }
            BranchSem::Biased { taken_prob } => {
                // Hash (k, pc) to a uniform [0,1) sample; same finalizer as
                // AddressPattern::Scatter so the whole ISA shares one
                // deterministic randomness primitive.
                let mut z = k
                    .wrapping_mul(0x2545f4914f6cdd1d)
                    .wrapping_add(pc.wrapping_mul(0x9e3779b97f4a7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                (u as f32) < taken_prob
            }
            BranchSem::Always => true,
            BranchSem::Return => true,
        }
    }
}

/// One static program location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticInst {
    pub pc: Pc,
    pub op: OpClass,
    pub dest: Option<Reg>,
    pub srcs: [Option<Reg>; 2],
    /// Address generator, present iff `op.is_mem()`.
    pub mem: Option<AddressPattern>,
    /// Control info, present iff `op.is_control()`.
    pub branch: Option<BranchInfo>,
    /// The paper's ISA extension (Section 2.1): one bit of offline
    /// vulnerability profile. `true` = this PC produced at least one ACE
    /// dynamic instance during profiling, so the issue logic must treat
    /// every instance as reliability-critical.
    pub ace_hint: bool,
}

impl StaticInst {
    /// A plain computational instruction.
    pub fn compute(pc: Pc, op: OpClass, dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> StaticInst {
        debug_assert!(!op.is_mem() && !op.is_control());
        StaticInst {
            pc,
            op,
            dest,
            srcs,
            mem: None,
            branch: None,
            ace_hint: false,
        }
    }

    /// A no-op at `pc`.
    pub fn nop(pc: Pc) -> StaticInst {
        StaticInst::compute(pc, OpClass::Nop, None, [None, None])
    }

    /// A load of `dest` via `pattern`, with optional index register.
    pub fn load(pc: Pc, dest: Reg, addr_src: Option<Reg>, pattern: AddressPattern) -> StaticInst {
        StaticInst {
            pc,
            op: OpClass::Load,
            dest: Some(dest),
            srcs: [addr_src, None],
            mem: Some(pattern),
            branch: None,
            ace_hint: false,
        }
    }

    /// A store of `value` via `pattern`, with optional index register.
    pub fn store(pc: Pc, value: Reg, addr_src: Option<Reg>, pattern: AddressPattern) -> StaticInst {
        StaticInst {
            pc,
            op: OpClass::Store,
            dest: None,
            srcs: [Some(value), addr_src],
            mem: Some(pattern),
            branch: None,
            ace_hint: false,
        }
    }

    /// A control instruction.
    pub fn control(pc: Pc, op: OpClass, cond_src: Option<Reg>, info: BranchInfo) -> StaticInst {
        debug_assert!(op.is_control());
        StaticInst {
            pc,
            op,
            dest: None,
            srcs: [cond_src, None],
            mem: None,
            branch: Some(info),
            ace_hint: false,
        }
    }

    /// Number of register source operands actually present.
    #[inline]
    pub fn num_srcs(&self) -> usize {
        self.srcs.iter().flatten().count()
    }

    /// Structural sanity: memory ops have patterns, control ops have
    /// branch info, and nothing else does.
    pub fn is_well_formed(&self) -> bool {
        self.mem.is_some() == self.op.is_mem()
            && self.branch.is_some() == self.op.is_control()
            && (self.op != OpClass::Nop || (self.dest.is_none() && self.num_srcs() == 0))
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:06x}: {:?}", self.pc, self.op)?;
        if let Some(d) = self.dest {
            write!(f, " {d} <-")?;
        }
        for s in self.srcs.iter().flatten() {
            write!(f, " {s}")?;
        }
        if let Some(b) = &self.branch {
            write!(f, " -> {:06x} ({:?})", b.target, b.kind)?;
        }
        if self.ace_hint {
            write!(f, " [ACE]")?;
        }
        Ok(())
    }
}

/// Global dynamic sequence number: strictly increasing in fetch order
/// across all threads. Serves as the "age" for oldest-first selection.
pub type DynSeq = u64;

/// Resolved outcome of a dynamic control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlOutcome {
    pub taken: bool,
    /// Actual next PC (target if taken, fall-through otherwise).
    pub next_pc: Pc,
}

/// One dynamic instruction instance flowing through the pipeline.
///
/// `DynInst` is an immutable descriptor: the pipeline keeps its own
/// per-stage bookkeeping and never mutates the instance, which makes
/// squash-and-replay (FLUSH policy, branch recovery) a matter of
/// re-queuing the same descriptors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynInst {
    /// Global fetch-order age (assigned by the pipeline front end).
    pub seq: DynSeq,
    pub tid: ThreadId,
    /// Per-thread correct-path dynamic instruction index. Wrong-path
    /// instances carry the index they were fetched at (only used for
    /// diagnostics; they never commit).
    pub dyn_idx: u64,
    pub pc: Pc,
    pub op: OpClass,
    pub dest: Option<Reg>,
    pub srcs: [Option<Reg>; 2],
    /// Resolved effective address for memory ops.
    pub mem_addr: Option<u64>,
    /// Resolved outcome for control ops.
    pub ctrl: Option<CtrlOutcome>,
    /// Decoded ACE-ness hint (the profiled ISA bit of the static inst).
    pub ace_hint: bool,
    /// Fetched down a mispredicted path; will be squashed, never commits.
    pub wrong_path: bool,
}

impl DynInst {
    /// Number of register source operands actually present.
    #[inline]
    pub fn num_srcs(&self) -> usize {
        self.srcs.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegClass;

    #[test]
    fn loopback_outcome_pattern() {
        let b = BranchInfo {
            kind: BranchKind::Cond,
            target: 10,
            sem: BranchSem::LoopBack { trip: 4 },
        };
        let outcomes: Vec<bool> = (0..8).map(|k| b.outcome(k, 100)).collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn loopback_trip_one_never_taken() {
        let b = BranchInfo {
            kind: BranchKind::Cond,
            target: 10,
            sem: BranchSem::LoopBack { trip: 1 },
        };
        assert!((0..10).all(|k| !b.outcome(k, 0)));
    }

    #[test]
    fn biased_outcome_is_deterministic_and_roughly_calibrated() {
        let b = BranchInfo {
            kind: BranchKind::Cond,
            target: 10,
            sem: BranchSem::Biased { taken_prob: 0.7 },
        };
        let n = 10_000u64;
        let taken = (0..n).filter(|&k| b.outcome(k, 55)).count() as f64;
        let rate = taken / n as f64;
        assert!((rate - 0.7).abs() < 0.03, "rate = {rate}");
        // Determinism.
        for k in 0..100 {
            assert_eq!(b.outcome(k, 55), b.outcome(k, 55));
        }
    }

    #[test]
    fn always_taken() {
        let b = BranchInfo {
            kind: BranchKind::Jump,
            target: 42,
            sem: BranchSem::Always,
        };
        assert!(b.outcome(0, 0) && b.outcome(999, 7));
    }

    #[test]
    fn constructors_produce_well_formed_insts() {
        let pc = 0;
        assert!(StaticInst::nop(pc).is_well_formed());
        assert!(StaticInst::compute(
            pc,
            OpClass::IAlu,
            Some(Reg::int(1)),
            [Some(Reg::int(2)), None]
        )
        .is_well_formed());
        assert!(
            StaticInst::load(pc, Reg::int(1), None, AddressPattern::Fixed { addr: 0x10 })
                .is_well_formed()
        );
        assert!(StaticInst::store(
            pc,
            Reg::int(1),
            Some(Reg::int(2)),
            AddressPattern::Fixed { addr: 0x10 }
        )
        .is_well_formed());
        assert!(StaticInst::control(
            pc,
            OpClass::CondBranch,
            Some(Reg::int(3)),
            BranchInfo {
                kind: BranchKind::Cond,
                target: 4,
                sem: BranchSem::Biased { taken_prob: 0.5 },
            }
        )
        .is_well_formed());
    }

    #[test]
    fn ill_formed_detected() {
        let mut i = StaticInst::nop(0);
        i.mem = Some(AddressPattern::Fixed { addr: 0 });
        assert!(!i.is_well_formed());
    }

    #[test]
    fn display_contains_operands() {
        let i = StaticInst::compute(
            0x20,
            OpClass::FMul,
            Some(Reg {
                class: RegClass::Fp,
                num: 3,
            }),
            [Some(Reg::fp(1)), Some(Reg::fp(2))],
        );
        let s = i.to_string();
        assert!(s.contains("FMul") && s.contains("f3") && s.contains("f1"));
    }
}
