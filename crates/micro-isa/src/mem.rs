//! Deterministic memory-address patterns for load/store instructions.
//!
//! Real SPEC binaries produce address streams with characteristic locality;
//! the synthetic programs reproduce that with explicit per-instruction
//! address generators. Each pattern is a pure function of the dynamic
//! execution index of its instruction, so replays (branch-misprediction
//! squash + re-fetch, FLUSH rollback) regenerate identical addresses and
//! the whole simulation stays deterministic.
//!
//! The pattern mix per benchmark model is what separates the paper's
//! CPU-intensive group (small footprints, high locality, few L2 misses)
//! from the MEM-intensive group (large footprints, pointer-chase-like
//! scatter, frequent L2 misses).

use serde::{Deserialize, Serialize};

/// An address generator attached to one static load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressPattern {
    /// Sequential walk: `base + (k * stride) % span`, cache-friendly for
    /// small strides. Models array streaming (bzip2, swim inner loops).
    Stride {
        base: u64,
        stride: u64,
        /// Region size in bytes; the walk wraps inside it.
        span: u64,
    },
    /// Pseudo-random scatter within `[base, base + span)`, derived from a
    /// multiplicative hash of the execution index. Models pointer chasing
    /// and hash-table access (mcf, vpr). Large spans defeat the L2.
    Scatter { base: u64, span: u64, salt: u64 },
    /// Fixed address: stack slot / global scalar. Always hits after the
    /// first access.
    Fixed { addr: u64 },
}

impl AddressPattern {
    /// The address of the `k`-th dynamic execution of this instruction.
    #[inline]
    pub fn address(&self, k: u64) -> u64 {
        match *self {
            AddressPattern::Stride { base, stride, span } => {
                if span == 0 {
                    base
                } else {
                    base + (k.wrapping_mul(stride)) % span
                }
            }
            AddressPattern::Scatter { base, span, salt } => {
                if span == 0 {
                    base
                } else {
                    // SplitMix64-style finalizer: cheap, well distributed,
                    // and a pure function of (k, salt).
                    let mut z = k.wrapping_add(salt).wrapping_add(0x9e3779b97f4a7c15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                    z ^= z >> 31;
                    base + (z % span)
                }
            }
            AddressPattern::Fixed { addr } => addr,
        }
    }

    /// The byte span of the region this pattern touches (0 for `Fixed`).
    #[inline]
    pub fn footprint(&self) -> u64 {
        match *self {
            AddressPattern::Stride { span, .. } | AddressPattern::Scatter { span, .. } => span,
            AddressPattern::Fixed { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_wraps_within_span() {
        let p = AddressPattern::Stride {
            base: 0x1000,
            stride: 64,
            span: 256,
        };
        for k in 0..100 {
            let a = p.address(k);
            assert!((0x1000..0x1000 + 256).contains(&a));
        }
        assert_eq!(p.address(0), 0x1000);
        assert_eq!(p.address(1), 0x1040);
        assert_eq!(p.address(4), 0x1000); // wrapped
    }

    #[test]
    fn scatter_stays_in_region_and_is_deterministic() {
        let p = AddressPattern::Scatter {
            base: 0x10_0000,
            span: 1 << 20,
            salt: 42,
        };
        for k in 0..1000 {
            let a = p.address(k);
            assert!((0x10_0000..0x10_0000 + (1 << 20)).contains(&a));
            assert_eq!(a, p.address(k), "pure function of k");
        }
    }

    #[test]
    fn scatter_actually_scatters() {
        let p = AddressPattern::Scatter {
            base: 0,
            span: 1 << 24,
            salt: 7,
        };
        // Consecutive indices should not land in the same 128-byte L2 line
        // most of the time.
        let same_line = (0..1000u64)
            .filter(|&k| p.address(k) / 128 == p.address(k + 1) / 128)
            .count();
        assert!(same_line < 10, "scatter too local: {same_line}");
    }

    #[test]
    fn fixed_is_constant() {
        let p = AddressPattern::Fixed { addr: 0xdead00 };
        assert_eq!(p.address(0), 0xdead00);
        assert_eq!(p.address(123456), 0xdead00);
        assert_eq!(p.footprint(), 0);
    }

    #[test]
    fn zero_span_degenerates_to_base() {
        let s = AddressPattern::Stride {
            base: 8,
            stride: 8,
            span: 0,
        };
        assert_eq!(s.address(17), 8);
        let sc = AddressPattern::Scatter {
            base: 8,
            span: 0,
            salt: 1,
        };
        assert_eq!(sc.address(17), 8);
    }
}
