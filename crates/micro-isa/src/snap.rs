//! Snapshot codec impls for ISA types.
//!
//! `DynInst` descriptors sit in every pipeline structure a checkpoint
//! must capture (fetch queues, IQ, ROB payloads), so the ISA crate owns
//! their bit-exact serialization. Encodings reuse the ISA's own compact
//! forms — `OpClass::opcode()` and `Reg::encode6()` — so a snapshot
//! cannot disagree with the instruction-word encoding about what a
//! register or opcode number means.

use crate::{CtrlOutcome, DynInst, OpClass, Reg};
use sim_snapshot::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for OpClass {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(self.opcode());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let code = r.get_u8()?;
        OpClass::from_opcode(code).ok_or_else(|| SnapError::Corrupt(format!("bad opcode {code}")))
    }
}

impl Snap for Reg {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(self.encode6());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let bits = r.get_u8()?;
        if bits & !0x3f != 0 {
            return Err(SnapError::Corrupt(format!(
                "bad register encoding {bits:#x}"
            )));
        }
        Ok(Reg::decode6(bits))
    }
}

impl Snap for CtrlOutcome {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.taken);
        w.put(&self.next_pc);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CtrlOutcome {
            taken: r.get()?,
            next_pc: r.get()?,
        })
    }
}

impl Snap for DynInst {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.seq);
        w.put_u8(self.tid);
        w.put(&self.dyn_idx);
        w.put(&self.pc);
        w.put(&self.op);
        w.put(&self.dest);
        w.put(&self.srcs);
        w.put(&self.mem_addr);
        w.put(&self.ctrl);
        w.put(&self.ace_hint);
        w.put(&self.wrong_path);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DynInst {
            seq: r.get()?,
            tid: r.get_u8()?,
            dyn_idx: r.get()?,
            pc: r.get()?,
            op: r.get()?,
            dest: r.get()?,
            srcs: r.get()?,
            mem_addr: r.get()?,
            ctrl: r.get()?,
            ace_hint: r.get()?,
            wrong_path: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_inst() -> DynInst {
        DynInst {
            seq: 321,
            tid: 2,
            dyn_idx: 17,
            pc: 0x4000,
            op: OpClass::Load,
            dest: Some(Reg::int(7)),
            srcs: [Some(Reg::int(3)), None],
            mem_addr: Some(0xdead_0000),
            ctrl: None,
            ace_hint: true,
            wrong_path: false,
        }
    }

    #[test]
    fn dyn_inst_roundtrips() {
        let inst = sample_inst();
        let mut w = SnapWriter::new();
        w.put(&inst);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get::<DynInst>().unwrap(), inst);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn ctrl_outcome_and_fp_regs_roundtrip() {
        let inst = DynInst {
            op: OpClass::CondBranch,
            dest: None,
            srcs: [Some(Reg::fp(31)), Some(Reg::int(0))],
            mem_addr: None,
            ctrl: Some(CtrlOutcome {
                taken: true,
                next_pc: 0x88,
            }),
            ..sample_inst()
        };
        let mut w = SnapWriter::new();
        w.put(&inst);
        let bytes = w.into_bytes();
        assert_eq!(SnapReader::new(&bytes).get::<DynInst>().unwrap(), inst);
    }

    #[test]
    fn bad_opcode_rejected() {
        let mut r = SnapReader::new(&[0x1f]);
        assert!(matches!(r.get::<OpClass>(), Err(SnapError::Corrupt(_))));
        let mut r = SnapReader::new(&[0xff]);
        assert!(matches!(r.get::<Reg>(), Err(SnapError::Corrupt(_))));
    }
}
