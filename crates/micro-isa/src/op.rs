//! Operation classes and their mapping onto function units and latencies.
//!
//! The paper's Table 2 machine has four function-unit pools:
//! 8 integer ALUs, 4 integer MUL/DIV units, 4 load/store ports,
//! 8 FP ALUs and 4 FP MUL/DIV/SQRT units. Each [`OpClass`] maps onto
//! exactly one [`FuKind`] and carries a fixed execution latency (loads and
//! stores additionally pay the memory-hierarchy latency resolved by
//! `mem-hier` at execute time).

use serde::{Deserialize, Serialize};

/// Operation class of an instruction.
///
/// This is deliberately coarse — the paper's mechanisms (VISA issue,
/// dynamic IQ allocation, DVM) depend on *which pool an instruction
/// occupies and for how long*, not on arithmetic semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer add/sub/logic/shift/compare. 1-cycle.
    IAlu,
    /// Integer multiply. 3-cycle, pipelined.
    IMul,
    /// Integer divide. 12-cycle, unpipelined.
    IDiv,
    /// Floating-point add/sub/convert/compare. 2-cycle, pipelined.
    FAlu,
    /// Floating-point multiply. 4-cycle, pipelined.
    FMul,
    /// Floating-point divide. 12-cycle, unpipelined.
    FDiv,
    /// Floating-point square root. 24-cycle, unpipelined.
    FSqrt,
    /// Memory load. 1-cycle address generation + memory-hierarchy latency.
    Load,
    /// Memory store. 1-cycle address generation; data is written at commit.
    Store,
    /// Conditional branch. 1-cycle; resolves at execute.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Call (pushes the return-address stack of the branch predictor).
    Call,
    /// Return (pops the return-address stack).
    Ret,
    /// No-operation. Occupies a pipeline slot but computes nothing; always
    /// un-ACE (a classic source of un-ACE bits in Mukherjee's taxonomy).
    Nop,
    /// Program-output operation (models a syscall that externalises a
    /// value, e.g. a write). Always ACE, and an ACE *sink*: every value
    /// that transitively reaches one is architecturally required.
    Output,
}

/// Function-unit pool kinds of the Table 2 machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Integer ALUs (8 units). Branches and outputs also execute here.
    IntAlu,
    /// Integer multiply/divide units (4 units).
    IntMulDiv,
    /// Load/store ports (4 units).
    LoadStore,
    /// FP ALUs (8 units).
    FpAlu,
    /// FP multiply/divide/sqrt units (4 units).
    FpMulDiv,
}

impl FuKind {
    /// All pool kinds, in a fixed order usable for dense indexing.
    pub const ALL: [FuKind; 5] = [
        FuKind::IntAlu,
        FuKind::IntMulDiv,
        FuKind::LoadStore,
        FuKind::FpAlu,
        FuKind::FpMulDiv,
    ];

    /// Dense index of this pool kind (matches the order of [`Self::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMulDiv => 1,
            FuKind::LoadStore => 2,
            FuKind::FpAlu => 3,
            FuKind::FpMulDiv => 4,
        }
    }

    /// Number of units in this pool on the paper's Table 2 machine.
    #[inline]
    pub fn default_pool_size(self) -> usize {
        match self {
            FuKind::IntAlu => 8,
            FuKind::IntMulDiv => 4,
            FuKind::LoadStore => 4,
            FuKind::FpAlu => 8,
            FuKind::FpMulDiv => 4,
        }
    }
}

impl OpClass {
    /// All operation classes (for exhaustive iteration in tests/encoders).
    pub const ALL: [OpClass; 15] = [
        OpClass::IAlu,
        OpClass::IMul,
        OpClass::IDiv,
        OpClass::FAlu,
        OpClass::FMul,
        OpClass::FDiv,
        OpClass::FSqrt,
        OpClass::Load,
        OpClass::Store,
        OpClass::CondBranch,
        OpClass::Jump,
        OpClass::Call,
        OpClass::Ret,
        OpClass::Nop,
        OpClass::Output,
    ];

    /// The function-unit pool this class executes on.
    #[inline]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::IAlu
            | OpClass::CondBranch
            | OpClass::Jump
            | OpClass::Call
            | OpClass::Ret
            | OpClass::Nop
            | OpClass::Output => FuKind::IntAlu,
            OpClass::IMul | OpClass::IDiv => FuKind::IntMulDiv,
            OpClass::Load | OpClass::Store => FuKind::LoadStore,
            OpClass::FAlu => FuKind::FpAlu,
            OpClass::FMul | OpClass::FDiv | OpClass::FSqrt => FuKind::FpMulDiv,
        }
    }

    /// Fixed execution latency in cycles, *excluding* memory-hierarchy
    /// latency for loads (which is added by the simulator after the cache
    /// lookup resolves).
    #[inline]
    pub fn base_latency(self) -> u32 {
        match self {
            OpClass::IAlu
            | OpClass::CondBranch
            | OpClass::Jump
            | OpClass::Call
            | OpClass::Ret
            | OpClass::Nop
            | OpClass::Output => 1,
            OpClass::IMul => 3,
            OpClass::IDiv => 12,
            OpClass::FAlu => 2,
            OpClass::FMul => 4,
            OpClass::FDiv => 12,
            OpClass::FSqrt => 24,
            OpClass::Load | OpClass::Store => 1,
        }
    }

    /// Whether the unit is pipelined (can accept a new op every cycle) or
    /// blocks its unit for the full latency.
    #[inline]
    pub fn pipelined(self) -> bool {
        !matches!(self, OpClass::IDiv | OpClass::FDiv | OpClass::FSqrt)
    }

    /// Is this any control-transfer instruction (handled by the branch
    /// predictor and resolved at execute)?
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            OpClass::CondBranch | OpClass::Jump | OpClass::Call | OpClass::Ret
        )
    }

    /// Is this a memory operation?
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Is this an ACE *sink* — an operation whose inputs are by definition
    /// architecturally required (stores that leave the pipeline, taken
    /// program outputs, and control decisions)?
    ///
    /// This mirrors the classification used by the ground-truth ACE
    /// analysis in the `avf` crate: a value is ACE iff it transitively
    /// reaches a sink before being overwritten (within the analysis
    /// window).
    #[inline]
    pub fn is_ace_sink(self) -> bool {
        matches!(
            self,
            OpClass::Store | OpClass::Output | OpClass::CondBranch | OpClass::Ret
        )
    }

    /// Numeric opcode used by the binary encoding (5 bits).
    #[inline]
    pub fn opcode(self) -> u8 {
        match self {
            OpClass::IAlu => 0,
            OpClass::IMul => 1,
            OpClass::IDiv => 2,
            OpClass::FAlu => 3,
            OpClass::FMul => 4,
            OpClass::FDiv => 5,
            OpClass::FSqrt => 6,
            OpClass::Load => 7,
            OpClass::Store => 8,
            OpClass::CondBranch => 9,
            OpClass::Jump => 10,
            OpClass::Call => 11,
            OpClass::Ret => 12,
            OpClass::Nop => 13,
            OpClass::Output => 14,
        }
    }

    /// Inverse of [`Self::opcode`].
    pub fn from_opcode(code: u8) -> Option<OpClass> {
        Some(match code {
            0 => OpClass::IAlu,
            1 => OpClass::IMul,
            2 => OpClass::IDiv,
            3 => OpClass::FAlu,
            4 => OpClass::FMul,
            5 => OpClass::FDiv,
            6 => OpClass::FSqrt,
            7 => OpClass::Load,
            8 => OpClass::Store,
            9 => OpClass::CondBranch,
            10 => OpClass::Jump,
            11 => OpClass::Call,
            12 => OpClass::Ret,
            13 => OpClass::Nop,
            14 => OpClass::Output,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_round_trips() {
        for op in [
            OpClass::IAlu,
            OpClass::IMul,
            OpClass::IDiv,
            OpClass::FAlu,
            OpClass::FMul,
            OpClass::FDiv,
            OpClass::FSqrt,
            OpClass::Load,
            OpClass::Store,
            OpClass::CondBranch,
            OpClass::Jump,
            OpClass::Call,
            OpClass::Ret,
            OpClass::Nop,
            OpClass::Output,
        ] {
            assert_eq!(OpClass::from_opcode(op.opcode()), Some(op));
        }
    }

    #[test]
    fn from_opcode_rejects_out_of_range() {
        assert_eq!(OpClass::from_opcode(15), None);
        assert_eq!(OpClass::from_opcode(255), None);
    }

    #[test]
    fn fu_pool_sizes_match_table2() {
        assert_eq!(FuKind::IntAlu.default_pool_size(), 8);
        assert_eq!(FuKind::IntMulDiv.default_pool_size(), 4);
        assert_eq!(FuKind::LoadStore.default_pool_size(), 4);
        assert_eq!(FuKind::FpAlu.default_pool_size(), 8);
        assert_eq!(FuKind::FpMulDiv.default_pool_size(), 4);
    }

    #[test]
    fn fu_indices_are_dense_and_consistent() {
        for (i, kind) in FuKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn unpipelined_ops_are_the_long_dividers() {
        assert!(!OpClass::IDiv.pipelined());
        assert!(!OpClass::FDiv.pipelined());
        assert!(!OpClass::FSqrt.pipelined());
        assert!(OpClass::IMul.pipelined());
        assert!(OpClass::Load.pipelined());
    }

    #[test]
    fn control_ops_classified() {
        assert!(OpClass::CondBranch.is_control());
        assert!(OpClass::Jump.is_control());
        assert!(OpClass::Call.is_control());
        assert!(OpClass::Ret.is_control());
        assert!(!OpClass::Load.is_control());
        assert!(!OpClass::Output.is_control());
    }

    #[test]
    fn sink_ops_classified() {
        assert!(OpClass::Store.is_ace_sink());
        assert!(OpClass::Output.is_ace_sink());
        assert!(OpClass::CondBranch.is_ace_sink());
        assert!(!OpClass::IAlu.is_ace_sink());
        assert!(!OpClass::Nop.is_ace_sink());
    }

    #[test]
    fn latencies_are_positive() {
        for code in 0..15u8 {
            let op = OpClass::from_opcode(code).unwrap();
            assert!(op.base_latency() >= 1);
        }
    }
}
