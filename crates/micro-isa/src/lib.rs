//! # `micro-isa` — the trace micro-ISA of the simulator
//!
//! The ICPP 2008 paper evaluates on SPEC CPU2000 binaries compiled for the
//! Alpha ISA, running under a heavily modified M-Sim. Neither the binaries
//! nor an Alpha functional front end are reproducible here, so this crate
//! defines the *closest synthetic equivalent*: a compact trace micro-ISA
//! whose instructions carry exactly the state the paper's mechanisms care
//! about —
//!
//! * an **operation class** that maps onto the simulated function-unit pools
//!   and execution latencies of the paper's Table 2 machine,
//! * **register operands** (32 integer + 32 floating-point architectural
//!   registers per hardware context) that drive wakeup/select and the
//!   ACE-ness dataflow analysis,
//! * **memory operands** expressed as deterministic address-pattern
//!   generators (the workload models in `workload-gen` instantiate these),
//! * **control operands** (branch targets and loop trip counts), and
//! * the paper's proposed **1-bit ACE-ness hint**: the ISA extension of
//!   Section 2.1 that lets the decoder tag each instruction as
//!   reliability-critical using offline profiling information.
//!
//! Two instruction forms exist:
//!
//! * [`StaticInst`] — one *static* program location (a PC). Programs built
//!   by `workload-gen` are sequences of static instructions organised into
//!   basic blocks and loops.
//! * [`DynInst`] — one *dynamic* instance flowing through the pipeline,
//!   with resolved addresses and branch outcomes.
//!
//! The binary encoding ([`encoding`]) packs a static instruction into a
//! 64-bit word. The bit layout is load-bearing: the AVF accounting in the
//! `avf` crate counts *bits*, not instructions, and derives its per-field
//! ACE masks from this layout (cf. Mukherjee et al., MICRO 2003 — un-ACE
//! instructions still hold ACE opcode bits).

pub mod encoding;
pub mod inst;
pub mod mem;
pub mod op;
pub mod reg;
pub mod snap;

pub use encoding::{EncodedInst, ENCODED_BITS};
pub use inst::{BranchInfo, BranchKind, BranchSem, CtrlOutcome, DynInst, DynSeq, StaticInst};
pub use mem::AddressPattern;
pub use op::{FuKind, OpClass};
pub use reg::{Reg, RegClass, NUM_FP_REGS, NUM_INT_REGS};

/// A program counter. PCs are word-indexed (one per static instruction)
/// rather than byte-indexed; the fetch hardware of the simulated machine
/// fetches up to eight consecutive words per cycle.
pub type Pc = u64;

/// Hardware-context (thread) identifier inside one SMT processor.
pub type ThreadId = u8;

/// The maximum number of hardware contexts the encoding and the simulator
/// support. The paper's experiments use 4-context workloads (Table 3).
pub const MAX_THREADS: usize = 8;
