//! Architectural register model.
//!
//! Each hardware context owns 32 integer and 32 floating-point
//! architectural registers, mirroring the Alpha ISA register file the
//! paper's workloads were compiled for. The simulator tracks readiness
//! and vulnerability per architectural register (a scoreboard-style
//! design); a separate physical register file is not modelled because
//! none of the paper's mechanisms depend on renaming capacity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer architectural registers per context.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers per context.
pub const NUM_FP_REGS: usize = 32;

/// Register class: integer or floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    Int,
    Fp,
}

/// One architectural register of a hardware context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg {
    pub class: RegClass,
    /// Register number within its class, `< 32`.
    pub num: u8,
}

impl Reg {
    /// An integer register. Panics if `num >= 32`.
    #[inline]
    pub fn int(num: u8) -> Reg {
        assert!((num as usize) < NUM_INT_REGS, "int register out of range");
        Reg {
            class: RegClass::Int,
            num,
        }
    }

    /// A floating-point register. Panics if `num >= 32`.
    #[inline]
    pub fn fp(num: u8) -> Reg {
        assert!((num as usize) < NUM_FP_REGS, "fp register out of range");
        Reg {
            class: RegClass::Fp,
            num,
        }
    }

    /// Dense index over the combined (int ++ fp) register space of one
    /// context: integer registers occupy `0..32`, FP registers `32..64`.
    /// Used by scoreboards and the register-file AVF tracker.
    #[inline]
    pub fn flat_index(self) -> usize {
        match self.class {
            RegClass::Int => self.num as usize,
            RegClass::Fp => NUM_INT_REGS + self.num as usize,
        }
    }

    /// Inverse of [`Self::flat_index`]. Panics if out of range.
    #[inline]
    pub fn from_flat_index(idx: usize) -> Reg {
        if idx < NUM_INT_REGS {
            Reg::int(idx as u8)
        } else {
            assert!(idx < NUM_INT_REGS + NUM_FP_REGS, "flat index out of range");
            Reg::fp((idx - NUM_INT_REGS) as u8)
        }
    }

    /// 6-bit encoding used by the instruction word: bit 5 is the class,
    /// bits 4..0 the register number.
    #[inline]
    pub fn encode6(self) -> u8 {
        let class_bit = match self.class {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        };
        (class_bit << 5) | (self.num & 0x1f)
    }

    /// Inverse of [`Self::encode6`].
    #[inline]
    pub fn decode6(bits: u8) -> Reg {
        let num = bits & 0x1f;
        if bits & 0x20 == 0 {
            Reg::int(num)
        } else {
            Reg::fp(num)
        }
    }
}

/// Total number of architectural registers per context, integer + FP.
pub const NUM_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.num),
            RegClass::Fp => write!(f, "f{}", self.num),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_round_trips() {
        for idx in 0..NUM_REGS {
            assert_eq!(Reg::from_flat_index(idx).flat_index(), idx);
        }
    }

    #[test]
    fn encode6_round_trips() {
        for n in 0..32u8 {
            assert_eq!(Reg::decode6(Reg::int(n).encode6()), Reg::int(n));
            assert_eq!(Reg::decode6(Reg::fp(n).encode6()), Reg::fp(n));
        }
    }

    #[test]
    fn int_and_fp_spaces_disjoint() {
        assert_ne!(Reg::int(3).flat_index(), Reg::fp(3).flat_index());
        assert_eq!(Reg::fp(0).flat_index(), NUM_INT_REGS);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_register_range_checked() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_register_range_checked() {
        let _ = Reg::fp(32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::int(5).to_string(), "r5");
        assert_eq!(Reg::fp(31).to_string(), "f31");
    }
}
