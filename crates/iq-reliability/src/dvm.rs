//! DVM — dynamic vulnerability management (paper Section 5, Figure 7).
//!
//! Goal: keep the runtime IQ AVF below a pre-set reliability target with
//! minimal performance cost. The controller is a trigger/response loop:
//!
//! * **Online estimation** — the hardware ACE-bit counter (the IQ's
//!   hint-bit total, accumulated per cycle by the pipeline) divided by
//!   elapsed cycles × total IQ bits estimates the running interval's AVF.
//! * **Trigger** — the estimate is sampled five times per 10 K-cycle
//!   interval and compared against 90 % of the reliability target; any
//!   L2 cache miss triggers immediately (its dependents would otherwise
//!   sit in the IQ for hundreds of cycles).
//! * **Response** — dispatch is throttled through `wq_ratio`: new IQ
//!   entries are granted only while waiting/ready stays at or below the
//!   ratio (the division is evaluated once every 50 cycles, as the paper
//!   notes an integer divide is too expensive per cycle). The ratio
//!   adapts by *slow increases and rapid decreases*; the static variant
//!   pins it.
//! * **Restore** — when the estimate falls back under the trigger, the
//!   thread with the fewest ACE-hinted instructions in its fetch queue is
//!   released first: its instructions add little vulnerability but keep
//!   the pipeline exploiting ILP.

use micro_isa::ThreadId;
use parking_lot::Mutex;
use sim_metrics::Metrics;
use sim_snapshot::{SnapError, SnapReader, SnapWriter};
use sim_trace::{GovernorEvent, TraceEvent, Tracer};
use smt_sim::{DispatchGovernor, GovernorView, IntervalSnapshot};
use std::sync::Arc;

/// Ratio adaptation mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DvmMode {
    /// Paper default: slow-increase / rapid-decrease adaptation.
    DynamicRatio,
    /// "DVM (static)": the ratio is fixed at construction.
    StaticRatio(f64),
}

/// Observable controller state, shared out so experiments can read the
/// average ratio (the paper derives the static variant's ratio from the
/// dynamic run's average) and decision counts after the pipeline consumed
/// the boxed governor.
#[derive(Debug, Default)]
pub struct DvmTelemetry {
    pub ratio_sum: f64,
    pub ratio_samples: u64,
    pub triggers: u64,
    pub l2_triggers: u64,
    pub denied_dispatches: u64,
    pub restores: u64,
}

impl DvmTelemetry {
    pub fn average_ratio(&self) -> f64 {
        if self.ratio_samples == 0 {
            0.0
        } else {
            self.ratio_sum / self.ratio_samples as f64
        }
    }
}

/// Shared handle to a controller's telemetry.
pub type DvmHandle = Arc<Mutex<DvmTelemetry>>;

/// The DVM dispatch governor.
pub struct DvmController {
    /// Reliability target (absolute IQ AVF, e.g. `0.5 × MaxIQ_AVF`).
    target: f64,
    /// Trigger threshold as a fraction of the target (paper: 0.9).
    trigger_frac: f64,
    mode: DvmMode,
    /// Estimate samples per interval (paper: 5).
    samples_per_interval: u64,
    interval_cycles: u64,
    /// Ratio-check period in cycles (paper: 50).
    ratio_period: u64,

    wq_ratio: f64,
    response_active: bool,
    /// Dispatch permission from the last ratio evaluation.
    ratio_ok: bool,
    /// Thread released by the restore rule while throttling.
    restore_tid: Option<ThreadId>,
    /// ACE-bit counter and cycle count at the previous sample, so each
    /// sample evaluates the AVF of its own window (the hardware simply
    /// subtracts the previous counter reading).
    prev_bits: u64,
    prev_cycles: u64,
    telemetry: DvmHandle,
    tracer: Tracer,
    metrics: Metrics,
    /// Most recent windowed AVF estimate (audit context for the
    /// cycle-less `on_l2_miss` trigger path).
    last_est: f64,
    /// Cycle of the most recent `begin_cycle` (same purpose).
    last_now: u64,
}

/// Adaptation bounds for the dynamic ratio.
const RATIO_MIN: f64 = 0.25;
const RATIO_MAX: f64 = 8.0;
const RATIO_INCREASE: f64 = 0.25; // slow, additive
const RATIO_DECREASE: f64 = 0.5; // rapid, multiplicative

impl DvmController {
    /// A controller holding IQ AVF under `target` (absolute AVF). The
    /// paper's configuration: `trigger_frac = 0.9`, 5 samples per
    /// 10 K-cycle interval, ratio re-evaluated every 50 cycles.
    pub fn new(target: f64, mode: DvmMode) -> DvmController {
        DvmController::with_params(target, mode, 0.9, 5, 10_000, 50)
    }

    pub fn with_params(
        target: f64,
        mode: DvmMode,
        trigger_frac: f64,
        samples_per_interval: u64,
        interval_cycles: u64,
        ratio_period: u64,
    ) -> DvmController {
        assert!(target >= 0.0 && (0.0..=1.0).contains(&trigger_frac));
        assert!(samples_per_interval >= 1 && interval_cycles >= samples_per_interval);
        let wq_ratio = match mode {
            DvmMode::DynamicRatio => RATIO_MAX / 2.0,
            DvmMode::StaticRatio(r) => r,
        };
        DvmController {
            target,
            trigger_frac,
            mode,
            samples_per_interval,
            interval_cycles,
            ratio_period,
            wq_ratio,
            response_active: false,
            ratio_ok: true,
            restore_tid: None,
            prev_bits: 0,
            prev_cycles: 0,
            telemetry: Arc::new(Mutex::new(DvmTelemetry::default())),
            tracer: Tracer::off(),
            metrics: Metrics::off(),
            last_est: 0.0,
            last_now: 0,
        }
    }

    /// Telemetry handle (clone before handing the controller to the
    /// pipeline).
    pub fn handle(&self) -> DvmHandle {
        Arc::clone(&self.telemetry)
    }

    pub fn target(&self) -> f64 {
        self.target
    }

    pub fn current_ratio(&self) -> f64 {
        self.wq_ratio
    }

    pub fn response_active(&self) -> bool {
        self.response_active
    }

    fn trigger_level(&self) -> f64 {
        self.target * self.trigger_frac
    }

    fn on_sample(&mut self, view: &GovernorView) {
        // Windowed estimate: ACE-bit-cycles accumulated since the last
        // sample, over the cycles elapsed since then. The pipeline's
        // counter resets at interval boundaries, so a smaller reading
        // means a fresh interval.
        let (bits, cycles) = (view.interval_hint_bits, view.interval_cycles);
        let (db, dc) = if bits >= self.prev_bits && cycles > self.prev_cycles {
            (bits - self.prev_bits, cycles - self.prev_cycles)
        } else {
            (bits, cycles.max(1))
        };
        self.prev_bits = bits;
        self.prev_cycles = cycles;
        let total_bits = view.iq_size as u64 * smt_sim::layout::IQ_ENTRY_BITS as u64;
        let est = db as f64 / (dc.max(1) * total_bits) as f64;
        self.last_est = est;
        let old_ratio = self.wq_ratio;
        let was_active = self.response_active;
        if est >= self.trigger_level() {
            if !was_active {
                self.telemetry.lock().triggers += 1;
                self.metrics.counter_add("dvm.triggers", 1);
            }
            self.response_active = true;
            self.restore_tid = None;
            if self.mode == DvmMode::DynamicRatio {
                self.wq_ratio = (self.wq_ratio * RATIO_DECREASE).max(RATIO_MIN);
            }
            if !was_active {
                self.tracer.emit(|| {
                    TraceEvent::Governor(GovernorEvent::DvmTrigger {
                        cycle: view.now,
                        hint_avf: est,
                        target: self.target,
                        // The offender, if one stands out, is the thread
                        // with the deepest outstanding-L2-miss backlog.
                        offender: view
                            .threads
                            .iter()
                            .filter(|th| th.l2_pending > 0)
                            .max_by_key(|th| (th.l2_pending, th.tid))
                            .map(|th| th.tid as usize),
                        thread_ace: view
                            .threads
                            .iter()
                            .map(|th| th.fetch_queue_ace as u64)
                            .collect(),
                    })
                });
            }
        } else {
            if was_active {
                // Restore rule: release the thread with the fewest
                // ACE-hinted instructions in its fetch queue first.
                self.restore_tid = view
                    .threads
                    .iter()
                    .filter(|th| !th.flush_blocked)
                    .min_by_key(|th| (th.fetch_queue_ace, th.tid))
                    .map(|th| th.tid);
                self.telemetry.lock().restores += 1;
                self.metrics.counter_add("dvm.restores", 1);
                let restored = self.restore_tid;
                self.tracer.emit(|| {
                    TraceEvent::Governor(GovernorEvent::DvmRestore {
                        cycle: view.now,
                        hint_avf: est,
                        target: self.target,
                        restored_tid: restored.map(|t| t as usize),
                    })
                });
            }
            self.response_active = false;
            if self.mode == DvmMode::DynamicRatio {
                self.wq_ratio = (self.wq_ratio + RATIO_INCREASE).min(RATIO_MAX);
            }
        }
        if self.wq_ratio != old_ratio {
            let new_ratio = self.wq_ratio;
            self.tracer.emit(|| {
                TraceEvent::Governor(GovernorEvent::WqRatioAdjust {
                    cycle: view.now,
                    old_ratio,
                    new_ratio,
                    hint_avf: est,
                    ready_len: view.ready_len,
                })
            });
            self.metrics.counter_add("dvm.ratio_adjusts", 1);
        }
        // Controller state as gauges: the pipeline's interval rollover
        // snapshots these into the same-named time series, so the
        // wq_ratio and trigger-state trajectories line up with the
        // iq.interval_avf series they react to.
        let (ratio, active) = (self.wq_ratio, self.response_active);
        self.metrics.gauge_set("dvm.wq_ratio", || ratio);
        self.metrics
            .gauge_set("dvm.response_active", || if active { 1.0 } else { 0.0 });
        self.metrics.gauge_set("dvm.avf_estimate", || est);
        let mut t = self.telemetry.lock();
        t.ratio_sum += self.wq_ratio;
        t.ratio_samples += 1;
    }
}

impl DispatchGovernor for DvmController {
    fn name(&self) -> &'static str {
        match self.mode {
            DvmMode::DynamicRatio => "dvm-dynamic",
            DvmMode::StaticRatio(_) => "dvm-static",
        }
    }

    fn begin_cycle(&mut self, view: &GovernorView) {
        self.last_now = view.now;
        let sample_period = self.interval_cycles / self.samples_per_interval;
        if view.now.is_multiple_of(sample_period) && view.now > 0 {
            self.on_sample(view);
        }
        // The waiting/ready division runs once per ratio period; the
        // verdict is held between evaluations.
        if view.now.is_multiple_of(self.ratio_period) {
            let ready = view.ready_len.max(1) as f64;
            self.ratio_ok = (view.waiting_len as f64 / ready) <= self.wq_ratio;
        }
    }

    fn on_interval(&mut self, _snapshot: &IntervalSnapshot, _view: &GovernorView) {}

    fn allow_dispatch(&mut self, view: &GovernorView, tid: ThreadId) -> bool {
        if !self.response_active {
            return true;
        }
        if self.restore_tid == Some(tid) {
            return true;
        }
        // The response throttles the *offending* threads — those holding
        // an outstanding L2 miss — whose dependents would sit in the IQ
        // as vulnerable waiting state for hundreds of cycles ("preventing
        // fetching instructions from offending threads is beneficial for
        // allocating IQ entries for other threads", Section 5.2). The
        // throttle is proportional, not bang-bang: it engages only while
        // the waiting/ready ratio exceeds the adaptive `wq_ratio`, whose
        // slow-increase/rapid-decrease adjustment sets the duty cycle.
        //
        // Exception (the paper's all-stalled rule): "If all threads stall
        // due to L2 cache misses, the SMT processor can not make any
        // progress" — so when every thread is an offender, the one with
        // the fewest ACE-hinted instructions in its fetch queue keeps
        // dispatching: its instructions add little vulnerability but keep
        // the pipeline busy.
        let offender = view
            .threads
            .get(tid as usize)
            .map(|t| t.l2_pending > 0)
            .unwrap_or(false);
        if offender {
            let all_stalled = view.threads.iter().all(|t| t.l2_pending > 0);
            if all_stalled {
                let least_ace = view
                    .threads
                    .iter()
                    .min_by_key(|t| (t.fetch_queue_ace, t.tid))
                    .map(|t| t.tid);
                if least_ace == Some(tid) {
                    return true;
                }
            }
            self.telemetry.lock().denied_dispatches += 1;
            self.metrics.counter_add("dvm.denied_dispatches", 1);
            return false;
        }
        // Non-offending threads are throttled through the adaptive
        // waiting/ready ratio: vulnerability beyond what L2 misses cause
        // comes from over-eager dispatch-ahead, which the ratio bounds.
        if self.ratio_ok {
            true
        } else {
            self.telemetry.lock().denied_dispatches += 1;
            self.metrics.counter_add("dvm.denied_dispatches", 1);
            false
        }
    }

    fn on_l2_miss(&mut self, tid: ThreadId) {
        // "a L2 cache miss will immediately enable the response
        // mechanism": dependents of the miss would sit in the IQ for
        // hundreds of cycles.
        let was_active = self.response_active;
        {
            let mut t = self.telemetry.lock();
            if !was_active {
                t.triggers += 1;
                self.metrics.counter_add("dvm.triggers", 1);
            }
            t.l2_triggers += 1;
        }
        self.metrics.counter_add("dvm.l2_triggers", 1);
        self.response_active = true;
        self.restore_tid = None;
        self.metrics.gauge_set("dvm.response_active", || 1.0);
        if !was_active {
            self.tracer.emit(|| {
                TraceEvent::Governor(GovernorEvent::DvmTrigger {
                    cycle: self.last_now,
                    hint_avf: self.last_est,
                    target: self.target,
                    offender: Some(tid as usize),
                    // This path fires mid-issue without a governor view;
                    // per-thread ACE context is unavailable.
                    thread_ace: Vec::new(),
                })
            });
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        // Seed the state gauges so the series start at the controller's
        // initial configuration rather than first-change.
        let (ratio, active) = (self.wq_ratio, self.response_active);
        metrics.gauge_set("dvm.wq_ratio", || ratio);
        metrics.gauge_set("dvm.response_active", || if active { 1.0 } else { 0.0 });
        self.metrics = metrics;
    }

    /// The controller loop state plus the shared telemetry contents —
    /// the telemetry must round-trip so the static-ratio derivation
    /// (average of the dynamic run's ratio) matches an uninterrupted
    /// run's. Configuration (target, mode, periods) is reconstructed by
    /// the caller and covered by the snapshot config hash.
    fn save_state(&self, w: &mut SnapWriter) {
        w.put(&self.wq_ratio);
        w.put(&self.response_active);
        w.put(&self.ratio_ok);
        w.put(&self.restore_tid);
        w.put(&self.prev_bits);
        w.put(&self.prev_cycles);
        w.put(&self.last_est);
        w.put(&self.last_now);
        let t = self.telemetry.lock();
        w.put(&t.ratio_sum);
        w.put(&t.ratio_samples);
        w.put(&t.triggers);
        w.put(&t.l2_triggers);
        w.put(&t.denied_dispatches);
        w.put(&t.restores);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let wq_ratio: f64 = r.get()?;
        if !wq_ratio.is_finite() || wq_ratio < 0.0 {
            return Err(SnapError::Corrupt(format!(
                "DVM wq_ratio {wq_ratio} is not a valid ratio"
            )));
        }
        self.wq_ratio = wq_ratio;
        self.response_active = r.get()?;
        self.ratio_ok = r.get()?;
        self.restore_tid = r.get()?;
        self.prev_bits = r.get()?;
        self.prev_cycles = r.get()?;
        self.last_est = r.get()?;
        self.last_now = r.get()?;
        let mut t = self.telemetry.lock();
        t.ratio_sum = r.get()?;
        t.ratio_samples = r.get()?;
        t.triggers = r.get()?;
        t.l2_triggers = r.get()?;
        t.denied_dispatches = r.get()?;
        t.restores = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::dispatch::ThreadView;

    fn thread_view(tid: ThreadId, fq_ace: usize, blocked: bool) -> ThreadView {
        ThreadView {
            tid,
            fetch_queue_len: fq_ace + 2,
            fetch_queue_ace: fq_ace,
            l2_pending: 0,
            l1d_pending: 0,
            flush_blocked: blocked,
            in_flight: 0,
            iq_occupancy: 0,
            rob_ace: 0,
        }
    }

    /// Build a view whose online estimate is `est` (via hint bits).
    fn view_with<'a>(
        now: u64,
        est: f64,
        waiting: usize,
        ready: usize,
        last: &'a IntervalSnapshot,
        threads: &'a [ThreadView],
    ) -> GovernorView<'a> {
        let total_bits = 96u64 * smt_sim::layout::IQ_ENTRY_BITS as u64;
        let cycles = 1_000u64;
        GovernorView {
            now,
            iq_size: 96,
            iq_len: waiting + ready,
            ready_len: ready,
            waiting_len: waiting,
            last_interval: last,
            interval_hint_bits: (est * (cycles * total_bits) as f64) as u64,
            interval_cycles: cycles,
            threads,
        }
    }

    #[test]
    fn quiet_system_dispatches_freely() {
        let mut dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
        let last = IntervalSnapshot::default();
        let threads = [thread_view(0, 1, false)];
        let v = view_with(2_000, 0.1, 50, 10, &last, &threads);
        dvm.begin_cycle(&v);
        assert!(!dvm.response_active());
        assert!(dvm.allow_dispatch(&v, 0));
    }

    #[test]
    fn exceeding_trigger_throttles_and_shrinks_ratio() {
        let mut dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
        let r0 = dvm.current_ratio();
        let last = IntervalSnapshot::default();
        let threads = [thread_view(0, 1, false)];
        // Estimate 0.39 ≥ 0.36 trigger; waiting/ready = 80/5 = 16 > ratio.
        let v = view_with(2_000, 0.39, 80, 5, &last, &threads);
        dvm.begin_cycle(&v);
        assert!(dvm.response_active());
        assert!(dvm.current_ratio() < r0, "rapid decrease");
        assert!(!dvm.allow_dispatch(&v, 0));
    }

    #[test]
    fn ratio_recovers_slowly() {
        let mut dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
        let last = IntervalSnapshot::default();
        let threads = [thread_view(0, 1, false)];
        let hot = view_with(2_000, 0.5, 10, 10, &last, &threads);
        dvm.begin_cycle(&hot);
        let after_drop = dvm.current_ratio();
        let cool = view_with(4_000, 0.0, 10, 10, &last, &threads);
        dvm.begin_cycle(&cool);
        let after_rise = dvm.current_ratio();
        assert!(after_rise > after_drop);
        // One rapid decrease outweighs one slow increase.
        assert!(after_rise < DvmController::new(0.4, DvmMode::DynamicRatio).current_ratio());
    }

    #[test]
    fn l2_miss_triggers_immediately() {
        let mut dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
        assert!(!dvm.response_active());
        dvm.on_l2_miss(2);
        assert!(dvm.response_active());
        assert_eq!(dvm.handle().lock().l2_triggers, 1);
    }

    #[test]
    fn restore_picks_fewest_ace_thread() {
        let mut dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
        let last = IntervalSnapshot::default();
        let threads = [
            thread_view(0, 9, false),
            thread_view(1, 2, false),
            thread_view(2, 5, true), // flush-blocked: ineligible
        ];
        // Trigger, then cool below trigger.
        dvm.begin_cycle(&view_with(2_000, 0.9, 90, 2, &last, &threads));
        assert!(dvm.response_active());
        dvm.begin_cycle(&view_with(4_000, 0.0, 90, 2, &last, &threads));
        assert!(!dvm.response_active());
        // During the *next* throttle episode the remembered restore thread
        // is cleared; but immediately after the cool sample the episode is
        // over, so dispatch is free anyway.
        let v = view_with(4_001, 0.0, 90, 2, &last, &threads);
        assert!(dvm.allow_dispatch(&v, 0));
        assert_eq!(dvm.handle().lock().restores, 1);
    }

    #[test]
    fn restore_thread_dispatches_while_others_throttle() {
        let mut dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
        let last = IntervalSnapshot::default();
        let threads = [thread_view(0, 9, false), thread_view(1, 2, false)];
        // Manually drive: trigger first, then set restore by a cool
        // sample, then re-trigger via L2 miss keeps restore cleared.
        dvm.begin_cycle(&view_with(2_000, 0.9, 90, 2, &last, &threads));
        dvm.begin_cycle(&view_with(4_000, 0.0, 90, 2, &last, &threads));
        // Now force response back on *without* a sample (L2 path keeps
        // restore_tid = None), then check the sample-path restore:
        dvm.begin_cycle(&view_with(6_000, 0.9, 90, 2, &last, &threads));
        dvm.begin_cycle(&view_with(8_000, 0.0, 90, 2, &last, &threads));
        assert!(!dvm.response_active());
    }

    #[test]
    fn static_mode_never_adapts() {
        let mut dvm = DvmController::new(0.4, DvmMode::StaticRatio(1.5));
        let last = IntervalSnapshot::default();
        let threads = [thread_view(0, 1, false)];
        dvm.begin_cycle(&view_with(2_000, 0.9, 90, 2, &last, &threads));
        assert_eq!(dvm.current_ratio(), 1.5);
        dvm.begin_cycle(&view_with(4_000, 0.0, 90, 2, &last, &threads));
        assert_eq!(dvm.current_ratio(), 1.5);
    }

    #[test]
    fn ratio_check_runs_on_period_only() {
        let mut dvm = DvmController::new(0.0, DvmMode::StaticRatio(0.5));
        let last = IntervalSnapshot::default();
        let threads = [thread_view(0, 1, false)];
        // Target 0 → always triggered. waiting/ready high → deny at the
        // periodic evaluation.
        let v = view_with(2_000, 0.9, 90, 2, &last, &threads);
        dvm.begin_cycle(&v); // now=2000 is a ratio-period multiple
        assert!(!dvm.allow_dispatch(&v, 0));
        // Off-period cycle with a *good* ratio: verdict held from last
        // evaluation (still denied).
        let good = view_with(2_001, 0.9, 1, 50, &last, &threads);
        dvm.begin_cycle(&good);
        assert!(!dvm.allow_dispatch(&good, 0));
        // On-period: re-evaluated, now allowed.
        let good = view_with(2_050, 0.9, 1, 50, &last, &threads);
        dvm.begin_cycle(&good);
        assert!(dvm.allow_dispatch(&good, 0));
    }

    #[test]
    fn telemetry_average_ratio() {
        let dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
        let h = dvm.handle();
        {
            let mut t = h.lock();
            t.ratio_sum = 6.0;
            t.ratio_samples = 3;
        }
        assert!((h.lock().average_ratio() - 2.0).abs() < 1e-12);
        assert_eq!(DvmTelemetry::default().average_ratio(), 0.0);
    }
}
