//! Opt1 — dynamic IQ resource allocation (paper Figure 3).
//!
//! Each sampling interval, the allocator sets `IQL` (the number of IQ
//! entries the dispatch stage may keep allocated) from the previous
//! interval's throughput IPC band and mean ready-queue length `RQL`:
//!
//! ```text
//! 0 < IPC ≤ 2:  IQL = min(RQL + IQ/6,  IQ/3)
//! 2 < IPC ≤ 4:  IQL = min(RQL + IQ/3,  IQ/2)
//! 4 < IPC ≤ 6:  IQL = min(RQL + IQ/2, 2IQ/3)
//! 6 < IPC ≤ 8:  IQL = min(RQL + 2IQ/3,  IQ)
//! ```
//!
//! The static caps "give vulnerability reduction a priority"; the RQL
//! term protects performance (the ready queue is what the issue stage
//! feeds on). The paper reports that four IPC regions outperform other
//! region counts — the table is parameterised so the ablation bench can
//! reproduce that comparison.

use micro_isa::ThreadId;
use sim_metrics::Metrics;
use sim_snapshot::{SnapError, SnapReader, SnapWriter};
use sim_trace::{GovernorEvent, TraceEvent, Tracer};
use smt_sim::{DispatchGovernor, GovernorView, IntervalSnapshot};

/// One IPC region row: `(ipc_upper_bound, (margin_num, margin_den),
/// (cap_num, cap_den))` expressing `IQL = min(RQL + IQ*margin, IQ*cap)`.
type Region = (f64, (u64, u64), (u64, u64));

/// One row per IPC region (see [`Region`]).
#[derive(Debug, Clone)]
pub struct IplRegionTable {
    rows: Vec<Region>,
}

impl IplRegionTable {
    /// The paper's four-region table (Figure 3), for a machine of commit
    /// width 8.
    pub fn figure3() -> IplRegionTable {
        IplRegionTable {
            rows: vec![
                (2.0, (1, 6), (1, 3)),
                (4.0, (1, 3), (1, 2)),
                (6.0, (1, 2), (2, 3)),
                (f64::INFINITY, (2, 3), (1, 1)),
            ],
        }
    }

    /// An even split of `[0, width]` into `n` regions with margins/caps
    /// interpolating the Figure 3 progression — used by the region-count
    /// ablation ("our experimental results show that 4 regions outperform
    /// other number of regions").
    pub fn even_regions(n: usize, width: f64) -> IplRegionTable {
        assert!(n >= 1);
        let rows = (1..=n)
            .map(|i| {
                let bound = if i == n {
                    f64::INFINITY
                } else {
                    width * i as f64 / n as f64
                };
                // Interpolate margin 1/6 → 2/3 and cap 1/3 → 1 in
                // 24ths/12ths to stay in integer arithmetic.
                let t = (i - 1) as f64 / (n.max(2) - 1) as f64;
                let margin_24 = (4.0 + t * 12.0).round() as u64; // 4/24..16/24
                let cap_12 = (4.0 + t * 8.0).round() as u64; // 4/12..12/12
                (bound, (margin_24, 24), (cap_12, 12))
            })
            .collect();
        IplRegionTable { rows }
    }

    pub fn num_regions(&self) -> usize {
        self.rows.len()
    }

    /// Zero-based index of the IPC region `ipc` falls in.
    pub fn region_index(&self, ipc: f64) -> usize {
        self.rows
            .iter()
            .position(|(bound, _, _)| ipc <= *bound)
            .unwrap_or(self.rows.len() - 1)
    }

    /// The IQ-entry cap for an interval with the given IPC and mean RQL.
    pub fn iql(&self, ipc: f64, rql: f64, iq_size: usize) -> usize {
        let iq = iq_size as f64;
        let row = self
            .rows
            .iter()
            .find(|(bound, _, _)| ipc <= *bound)
            .unwrap_or_else(|| self.rows.last().expect("empty region table"));
        let (mn, md) = row.1;
        let (cn, cd) = row.2;
        let margin = iq * mn as f64 / md as f64;
        let cap = iq * cn as f64 / cd as f64;
        ((rql + margin).min(cap).round() as usize).clamp(1, iq_size)
    }
}

/// The opt1 dispatch governor.
pub struct DynamicIqAllocator {
    table: IplRegionTable,
    /// Current interval's allocation cap.
    iql: usize,
    tracer: Tracer,
    metrics: Metrics,
}

impl DynamicIqAllocator {
    pub fn new(table: IplRegionTable, iq_size: usize) -> DynamicIqAllocator {
        DynamicIqAllocator {
            table,
            iql: iq_size, // uncapped until the first interval closes
            tracer: Tracer::off(),
            metrics: Metrics::off(),
        }
    }

    /// Paper configuration: Figure 3 table.
    pub fn figure3(iq_size: usize) -> DynamicIqAllocator {
        DynamicIqAllocator::new(IplRegionTable::figure3(), iq_size)
    }

    pub fn current_iql(&self) -> usize {
        self.iql
    }

    /// Recompute the cap from a closed interval (shared with opt2).
    pub(crate) fn update_from_interval(&mut self, snap: &IntervalSnapshot, iq_size: usize) {
        let old_cap = self.iql;
        self.iql = self.table.iql(snap.ipc(), snap.avg_ready_len, iq_size);
        if self.iql != old_cap {
            let new_cap = self.iql;
            self.tracer.emit(|| {
                TraceEvent::Governor(GovernorEvent::Opt1CapChange {
                    cycle: snap.start_cycle + snap.cycles,
                    old_cap,
                    new_cap,
                    avg_ready_len: snap.avg_ready_len,
                    region: self.table.region_index(snap.ipc()),
                })
            });
            self.metrics.counter_add("opt1.cap_changes", 1);
        }
        // Gauge reflects the cap governing the *next* interval; the
        // pipeline's rollover snapshots it into the `opt1.iql_cap`
        // series right after this hook returns.
        let cap = self.iql;
        self.metrics.gauge_set("opt1.iql_cap", || cap as f64);
    }

    pub(crate) fn set_tracer_inner(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    pub(crate) fn set_metrics_inner(&mut self, metrics: Metrics) {
        metrics.gauge_set("opt1.iql_cap", || self.iql as f64);
        self.metrics = metrics;
    }
}

impl DispatchGovernor for DynamicIqAllocator {
    fn name(&self) -> &'static str {
        "opt1-dynamic-iq-allocation"
    }

    fn on_interval(&mut self, snapshot: &IntervalSnapshot, view: &GovernorView) {
        self.update_from_interval(snapshot, view.iq_size);
    }

    fn allow_dispatch(&mut self, view: &GovernorView, _tid: ThreadId) -> bool {
        view.iq_len < self.iql
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.set_tracer_inner(tracer);
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        self.set_metrics_inner(metrics);
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put(&(self.iql as u64));
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.iql = r.get_u64()? as usize;
        if self.iql == 0 {
            return Err(SnapError::Corrupt("opt1 IQL cap of 0 is invalid".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_caps_match_paper() {
        let t = IplRegionTable::figure3();
        let iq = 96;
        // Low IPC, tiny RQL: RQL + 16 vs cap 32.
        assert_eq!(t.iql(1.0, 4.0, iq), 20);
        // Low IPC, huge RQL: capped at IQ/3 = 32.
        assert_eq!(t.iql(1.5, 60.0, iq), 32);
        // Mid IPC band: RQL + 32 vs cap 48.
        assert_eq!(t.iql(3.0, 10.0, iq), 42);
        assert_eq!(t.iql(3.0, 40.0, iq), 48);
        // High band: RQL + 48 vs cap 64.
        assert_eq!(t.iql(5.0, 10.0, iq), 58);
        // Top band: RQL + 64 vs full IQ.
        assert_eq!(t.iql(7.5, 50.0, iq), 96);
    }

    #[test]
    fn region_boundaries_are_inclusive_upper() {
        let t = IplRegionTable::figure3();
        // IPC exactly 2 falls in the first region.
        assert_eq!(t.iql(2.0, 0.0, 96), 16);
        // Just above 2 falls in the second.
        assert_eq!(t.iql(2.01, 0.0, 96), 32);
    }

    #[test]
    fn iql_always_in_bounds() {
        let t = IplRegionTable::figure3();
        for ipc10 in 0..=90 {
            for rql in 0..=96 {
                let iql = t.iql(ipc10 as f64 / 10.0, rql as f64, 96);
                assert!((1..=96).contains(&iql));
            }
        }
    }

    #[test]
    fn even_region_table_scales_with_count() {
        for n in [2usize, 4, 8] {
            let t = IplRegionTable::even_regions(n, 8.0);
            assert_eq!(t.num_regions(), n);
            // Monotone caps: higher IPC never tightens the cap.
            let mut prev = 0;
            for i in 0..n {
                let ipc = 8.0 * (i as f64 + 0.5) / n as f64;
                let iql = t.iql(ipc, 0.0, 96);
                assert!(iql >= prev, "n={n} i={i}");
                prev = iql;
            }
        }
    }

    #[test]
    fn governor_blocks_at_cap() {
        let mut g = DynamicIqAllocator::figure3(96);
        // Force a low-IPC interval: cap becomes min(5 + 16, 32) = 21.
        let snap = IntervalSnapshot {
            cycles: 10_000,
            committed: 10_000, // IPC 1
            avg_ready_len: 5.0,
            ..Default::default()
        };
        g.update_from_interval(&snap, 96);
        assert_eq!(g.current_iql(), 21);
        let last = IntervalSnapshot::default();
        let mk = |iq_len| GovernorView {
            now: 0,
            iq_size: 96,
            iq_len,
            ready_len: 0,
            waiting_len: 0,
            last_interval: &last,
            interval_hint_bits: 0,
            interval_cycles: 0,
            threads: &[],
        };
        assert!(g.allow_dispatch(&mk(20), 0));
        assert!(!g.allow_dispatch(&mk(21), 0));
        assert!(!g.allow_dispatch(&mk(90), 0));
    }

    #[test]
    fn uncapped_before_first_interval() {
        let mut g = DynamicIqAllocator::figure3(96);
        let last = IntervalSnapshot::default();
        let view = GovernorView {
            now: 0,
            iq_size: 96,
            iq_len: 95,
            ready_len: 0,
            waiting_len: 0,
            last_interval: &last,
            interval_hint_bits: 0,
            interval_cycles: 0,
            threads: &[],
        };
        assert!(g.allow_dispatch(&view, 0));
    }
}
