//! Extension: ROB vulnerability management.
//!
//! The paper closes with "we believe our technique could be extended to
//! other microarchitecture structures". This module implements that
//! direction for the reorder buffer, in the spirit of Soundararajan et
//! al.'s dispatch-stall mechanism for bounding ROB vulnerability
//! (ISCA 2007): a dispatch governor that caps the number of ACE-hinted
//! instructions each thread may hold in its ROB.
//!
//! Rationale: a ROB entry's vulnerable lifetime runs from dispatch to
//! commit — under a long-latency head-of-line instruction, completed ACE
//! instructions pile up behind it, exposed. Capping the *hinted*
//! occupancy per thread bounds exactly that accumulation, with un-ACE
//! instructions left free to fill the machine (the same asymmetry VISA
//! and DVM exploit).
//!
//! The governor composes with the IQ-side mechanisms: see
//! [`ComposedGovernor`] for running it alongside opt1/opt2/DVM.

use micro_isa::ThreadId;
use smt_sim::{DispatchGovernor, GovernorView, IntervalSnapshot};

/// Cap on ACE-hinted ROB occupancy per thread.
pub struct RobVulnGovernor {
    /// Maximum hinted instructions a thread may hold in its ROB.
    pub max_ace_per_thread: usize,
    denied: u64,
}

impl RobVulnGovernor {
    /// A cap expressed as a fraction of the per-thread ROB size (the
    /// natural configuration: `with_cap_fraction(&machine, 0.25)` bounds
    /// hinted occupancy to a quarter of each ROB).
    pub fn with_cap_fraction(rob_size: usize, fraction: f64) -> RobVulnGovernor {
        assert!((0.0..=1.0).contains(&fraction));
        RobVulnGovernor {
            max_ace_per_thread: ((rob_size as f64 * fraction) as usize).max(1),
            denied: 0,
        }
    }

    pub fn denied(&self) -> u64 {
        self.denied
    }
}

impl DispatchGovernor for RobVulnGovernor {
    fn name(&self) -> &'static str {
        "rob-vulnerability-cap"
    }

    fn allow_dispatch(&mut self, view: &GovernorView, tid: ThreadId) -> bool {
        // Conservative: the instruction at the head of the fetch queue
        // may or may not be hinted; denying at the cap bounds the
        // worst case. Un-hinted dispatch resumes as soon as hinted
        // instructions commit.
        let over = view
            .threads
            .get(tid as usize)
            .map(|t| t.rob_ace >= self.max_ace_per_thread)
            .unwrap_or(false);
        if over {
            self.denied += 1;
        }
        !over
    }
}

/// Run two dispatch governors in conjunction: dispatch is granted only
/// if both agree; lifecycle hooks fan out to both.
pub struct ComposedGovernor<A, B> {
    pub first: A,
    pub second: B,
}

impl<A: DispatchGovernor, B: DispatchGovernor> DispatchGovernor for ComposedGovernor<A, B> {
    fn name(&self) -> &'static str {
        "composed"
    }

    fn begin_cycle(&mut self, view: &GovernorView) {
        self.first.begin_cycle(view);
        self.second.begin_cycle(view);
    }

    fn on_interval(&mut self, snapshot: &IntervalSnapshot, view: &GovernorView) {
        self.first.on_interval(snapshot, view);
        self.second.on_interval(snapshot, view);
    }

    fn allow_dispatch(&mut self, view: &GovernorView, tid: ThreadId) -> bool {
        // Evaluate both (no short-circuit) so each keeps its telemetry
        // and adaptation consistent.
        let a = self.first.allow_dispatch(view, tid);
        let b = self.second.allow_dispatch(view, tid);
        a && b
    }

    fn on_l2_miss(&mut self, tid: ThreadId) {
        self.first.on_l2_miss(tid);
        self.second.on_l2_miss(tid);
    }

    fn flush_override(&self) -> bool {
        self.first.flush_override() || self.second.flush_override()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::dispatch::ThreadView;
    use smt_sim::UnlimitedDispatch;

    fn view_with_rob_ace<'a>(
        threads: &'a [ThreadView],
        last: &'a IntervalSnapshot,
    ) -> GovernorView<'a> {
        GovernorView {
            now: 0,
            iq_size: 96,
            iq_len: 0,
            ready_len: 0,
            waiting_len: 0,
            last_interval: last,
            interval_hint_bits: 0,
            interval_cycles: 0,
            threads,
        }
    }

    fn thread(tid: u8, rob_ace: usize) -> ThreadView {
        ThreadView {
            tid,
            fetch_queue_len: 0,
            fetch_queue_ace: 0,
            l2_pending: 0,
            l1d_pending: 0,
            flush_blocked: false,
            in_flight: 0,
            iq_occupancy: 0,
            rob_ace,
        }
    }

    #[test]
    fn cap_blocks_only_over_limit_threads() {
        let mut g = RobVulnGovernor::with_cap_fraction(96, 0.25); // cap 24
        assert_eq!(g.max_ace_per_thread, 24);
        let last = IntervalSnapshot::default();
        let threads = [thread(0, 30), thread(1, 10)];
        let v = view_with_rob_ace(&threads, &last);
        assert!(!g.allow_dispatch(&v, 0));
        assert!(g.allow_dispatch(&v, 1));
        assert_eq!(g.denied(), 1);
    }

    #[test]
    fn cap_fraction_clamps_to_at_least_one() {
        let g = RobVulnGovernor::with_cap_fraction(96, 0.0);
        assert_eq!(g.max_ace_per_thread, 1);
    }

    #[test]
    fn composition_requires_both_to_agree() {
        let rob = RobVulnGovernor::with_cap_fraction(96, 0.25);
        let mut g = ComposedGovernor {
            first: UnlimitedDispatch,
            second: rob,
        };
        let last = IntervalSnapshot::default();
        let threads = [thread(0, 30)];
        let v = view_with_rob_ace(&threads, &last);
        assert!(!g.allow_dispatch(&v, 0), "ROB cap must veto");
        let threads = [thread(0, 3)];
        let v = view_with_rob_ace(&threads, &last);
        assert!(g.allow_dispatch(&v, 0));
        assert!(!g.flush_override());
    }
}
