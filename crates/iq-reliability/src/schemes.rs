//! Scheme assembly: every configuration the paper evaluates, expressed as
//! a `PipelinePolicies` bundle.
//!
//! | scheme | issue | dispatch governor | notes |
//! |---|---|---|---|
//! | Baseline | oldest-first | unlimited | per-fetch-policy baselines |
//! | VISA | VISA | unlimited | Section 2.1 |
//! | VISA+opt1 | VISA | Figure 3 allocator | Section 2.2 (1) |
//! | VISA+opt2 | VISA | Figure 4 allocator | Section 2.2 (2) |
//! | DVM (dynamic) | oldest-first | DVM, adaptive ratio | Section 5 |
//! | DVM (static) | oldest-first | DVM, pinned ratio | Figure 10 |
//!
//! Any scheme composes with any of the five fetch policies (the paper's
//! Figures 5–6 crossed exactly this matrix).

use crate::dvm::{DvmController, DvmHandle, DvmMode};
use crate::opt1::DynamicIqAllocator;
use crate::opt2::L2MissSensitiveAllocator;
use crate::visa::VisaIssue;
use smt_sim::pipeline::PipelinePolicies;
use smt_sim::{FetchPolicyKind, OldestFirst, UnlimitedDispatch};

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    Baseline,
    Visa,
    VisaOpt1,
    VisaOpt2,
    /// DVM with the adaptive ratio; `target` is the absolute IQ AVF
    /// reliability threshold (e.g. `0.5 × MaxIQ_AVF`).
    DvmDynamic {
        target: f64,
    },
    /// DVM with a pinned ratio (the paper sets it to the dynamic run's
    /// average ratio).
    DvmStatic {
        target: f64,
        ratio: f64,
    },
}

impl Scheme {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::Visa => "VISA",
            Scheme::VisaOpt1 => "VISA+opt1",
            Scheme::VisaOpt2 => "VISA+opt2",
            Scheme::DvmDynamic { .. } => "DVM (dynamic ratio)",
            Scheme::DvmStatic { .. } => "DVM (static ratio)",
        }
    }

    /// Build the policy bundle for this scheme under `fetch`. For DVM
    /// schemes the returned handle exposes controller telemetry; it is
    /// `None` otherwise.
    pub fn policies(
        &self,
        fetch: FetchPolicyKind,
        iq_size: usize,
    ) -> (PipelinePolicies, Option<DvmHandle>) {
        let fetch_box = fetch.build();
        match *self {
            Scheme::Baseline => (
                PipelinePolicies {
                    fetch: fetch_box,
                    issue: Box::new(OldestFirst),
                    governor: Box::new(UnlimitedDispatch),
                },
                None,
            ),
            Scheme::Visa => (
                PipelinePolicies {
                    fetch: fetch_box,
                    issue: Box::new(VisaIssue),
                    governor: Box::new(UnlimitedDispatch),
                },
                None,
            ),
            Scheme::VisaOpt1 => (
                PipelinePolicies {
                    fetch: fetch_box,
                    issue: Box::new(VisaIssue),
                    governor: Box::new(DynamicIqAllocator::figure3(iq_size)),
                },
                None,
            ),
            Scheme::VisaOpt2 => (
                PipelinePolicies {
                    fetch: fetch_box,
                    issue: Box::new(VisaIssue),
                    governor: Box::new(L2MissSensitiveAllocator::figure4(iq_size)),
                },
                None,
            ),
            Scheme::DvmDynamic { target } => {
                let dvm = DvmController::new(target, DvmMode::DynamicRatio);
                let handle = dvm.handle();
                (
                    PipelinePolicies {
                        fetch: fetch_box,
                        issue: Box::new(OldestFirst),
                        governor: Box::new(dvm),
                    },
                    Some(handle),
                )
            }
            Scheme::DvmStatic { target, ratio } => {
                let dvm = DvmController::new(target, DvmMode::StaticRatio(ratio));
                let handle = dvm.handle();
                (
                    PipelinePolicies {
                        fetch: fetch_box,
                        issue: Box::new(OldestFirst),
                        governor: Box::new(dvm),
                    },
                    Some(handle),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let schemes = [
            Scheme::Baseline,
            Scheme::Visa,
            Scheme::VisaOpt1,
            Scheme::VisaOpt2,
            Scheme::DvmDynamic { target: 0.3 },
            Scheme::DvmStatic {
                target: 0.3,
                ratio: 1.0,
            },
        ];
        let mut labels: Vec<&str> = schemes.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn dvm_schemes_return_handles() {
        let (_, h) = Scheme::DvmDynamic { target: 0.4 }.policies(FetchPolicyKind::Icount, 96);
        assert!(h.is_some());
        let (_, h) = Scheme::Visa.policies(FetchPolicyKind::Flush, 96);
        assert!(h.is_none());
    }

    #[test]
    fn policy_names_match_scheme_intent() {
        let (p, _) = Scheme::VisaOpt2.policies(FetchPolicyKind::Stall, 96);
        assert_eq!(p.issue.name(), "VISA");
        assert_eq!(p.governor.name(), "opt2-l2-miss-sensitive");
        assert_eq!(p.fetch.name(), "STALL");
        let (p, _) = Scheme::DvmStatic {
            target: 0.2,
            ratio: 2.0,
        }
        .policies(FetchPolicyKind::Icount, 96);
        assert_eq!(p.governor.name(), "dvm-static");
        assert_eq!(p.issue.name(), "oldest-first");
    }
}
