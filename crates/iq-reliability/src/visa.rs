//! VISA — Vulnerable-InStruction-Aware issue (paper Section 2.1).
//!
//! "…gives the ACE instructions higher priority than the un-ACE
//! instructions. Therefore, once there is a ready ACE instruction, it can
//! bypass all the ready-to-execute un-ACE instructions. If there are
//! several ready ACE instructions, they will be issued in the program
//! order. … If the number of ready ACE instructions is less than the
//! number of available issue slots, the ready un-ACE instructions can
//! also be issued in their program order."
//!
//! ACE-ness comes from the decoded 1-bit ISA hint written by the offline
//! profiler (`avf::profiler`); hardware never needs ground truth. Global
//! fetch age serves as program order (within a thread, fetch order *is*
//! program order; across threads it is the conventional age-based
//! tiebreak).

use smt_sim::{IssuePolicy, ReadyInst};

/// The VISA issue-selection policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct VisaIssue;

impl IssuePolicy for VisaIssue {
    fn name(&self) -> &'static str {
        "VISA"
    }

    fn prioritize(&mut self, ready: &mut Vec<ReadyInst>) {
        // ACE first (false < true, so negate), then age. `seq` is unique
        // across threads, so the key is a *total* order: the result is
        // independent of the incoming permutation even though the ready
        // list inherits the IQ's swap_remove-scrambled storage order —
        // a replayed seed issues identically. (`sort_unstable` is safe
        // for the same reason: no ties exist for stability to preserve.)
        ready.sort_unstable_by_key(|r| (!r.ace_hint, r.seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micro_isa::OpClass;

    fn ri(seq: u64, ace: bool) -> ReadyInst {
        ReadyInst {
            id: seq as usize,
            seq,
            tid: 0,
            op: OpClass::IAlu,
            ace_hint: ace,
            wrong_path: false,
        }
    }

    #[test]
    fn ace_bypasses_older_unace() {
        let mut v = vec![ri(1, false), ri(2, true), ri(3, false), ri(4, true)];
        VisaIssue.prioritize(&mut v);
        let order: Vec<(u64, bool)> = v.iter().map(|r| (r.seq, r.ace_hint)).collect();
        assert_eq!(order, vec![(2, true), (4, true), (1, false), (3, false)]);
    }

    #[test]
    fn program_order_within_each_class() {
        let mut v = vec![ri(9, true), ri(3, true), ri(7, false), ri(1, false)];
        VisaIssue.prioritize(&mut v);
        let seqs: Vec<u64> = v.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 9, 1, 7]);
    }

    #[test]
    fn all_unace_degrades_to_oldest_first() {
        let mut v = vec![ri(5, false), ri(2, false), ri(8, false)];
        VisaIssue.prioritize(&mut v);
        let seqs: Vec<u64> = v.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 5, 8]);
    }

    #[test]
    fn empty_ready_queue_is_fine() {
        let mut v: Vec<ReadyInst> = Vec::new();
        VisaIssue.prioritize(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn selection_is_invariant_to_input_permutation() {
        // The ready list arrives in IQ storage order, which depends on
        // the history of swap_remove compactions. Issue selection must
        // not: every permutation of the same ready set has to produce
        // the same priority order, or replayed seeds diverge.
        let base = vec![
            ri(11, false),
            ri(4, true),
            ri(8, true),
            ri(2, false),
            ri(6, true),
        ];
        let mut expect = base.clone();
        VisaIssue.prioritize(&mut expect);
        let expect: Vec<u64> = expect.iter().map(|r| r.seq).collect();
        // Cycle through enough distinct rotations/reversals to cover
        // representative orders without a factorial blowup.
        for rot in 0..base.len() {
            let mut v = base.clone();
            v.rotate_left(rot);
            VisaIssue.prioritize(&mut v);
            assert_eq!(v.iter().map(|r| r.seq).collect::<Vec<_>>(), expect);
            let mut v = base.clone();
            v.rotate_left(rot);
            v.reverse();
            VisaIssue.prioritize(&mut v);
            assert_eq!(v.iter().map(|r| r.seq).collect::<Vec<_>>(), expect);
        }
    }
}
