//! Opt2 — L2-cache-miss-sensitive IQ resource allocation (paper
//! Figure 4).
//!
//! Capping IQ allocation (opt1) backfires under frequent L2 misses: the
//! ready queue and IPC both collapse during a miss, the Figure 3 table
//! therefore picks a small `IQL`, and when the miss returns there are too
//! few waiting instructions to refill the ready queue. Opt2 keeps opt1's
//! behaviour while the interval's L2-miss count stays at or below
//! `Tcache_miss`, and above it *escalates to the FLUSH fetch policy*: the
//! offending thread is rolled back past the missing load and its
//! resources handed to the others — vulnerability mitigation through
//! de-clogging rather than capping.
//!
//! The paper performed a sensitivity analysis and chose `Tcache_miss =
//! 16`; the threshold is a constructor parameter so the ablation bench
//! can reproduce that sweep.

use crate::opt1::{DynamicIqAllocator, IplRegionTable};
use micro_isa::ThreadId;
use sim_metrics::Metrics;
use sim_snapshot::{SnapError, SnapReader, SnapWriter};
use sim_trace::{GovernorEvent, TraceEvent, Tracer};
use smt_sim::{DispatchGovernor, GovernorView, IntervalSnapshot};

/// The paper's chosen L2-miss threshold (misses per 10 K-cycle interval).
pub const DEFAULT_TCACHE_MISS: u64 = 16;

/// The opt2 dispatch governor.
pub struct L2MissSensitiveAllocator {
    opt1: DynamicIqAllocator,
    tcache_miss: u64,
    /// Current interval decision: true = FLUSH mode, false = opt1 caps.
    flush_mode: bool,
    /// IQ-entry budget for a thread with an outstanding L2 miss while in
    /// FLUSH mode.
    miss_budget: usize,
    tracer: Tracer,
    metrics: Metrics,
}

impl L2MissSensitiveAllocator {
    pub fn new(table: IplRegionTable, iq_size: usize, tcache_miss: u64) -> Self {
        L2MissSensitiveAllocator {
            opt1: DynamicIqAllocator::new(table, iq_size),
            tcache_miss,
            flush_mode: false,
            miss_budget: (iq_size / 12).max(1),
            tracer: Tracer::off(),
            metrics: Metrics::off(),
        }
    }

    /// Override the FLUSH-mode IQ budget for L2-missing threads.
    pub fn with_miss_budget(mut self, budget: usize) -> Self {
        self.miss_budget = budget.max(1);
        self
    }

    /// Paper configuration: Figure 3 table + `Tcache_miss = 16`.
    pub fn figure4(iq_size: usize) -> Self {
        L2MissSensitiveAllocator::new(IplRegionTable::figure3(), iq_size, DEFAULT_TCACHE_MISS)
    }

    pub fn in_flush_mode(&self) -> bool {
        self.flush_mode
    }

    pub fn tcache_miss(&self) -> u64 {
        self.tcache_miss
    }
}

impl DispatchGovernor for L2MissSensitiveAllocator {
    fn name(&self) -> &'static str {
        "opt2-l2-miss-sensitive"
    }

    fn on_interval(&mut self, snapshot: &IntervalSnapshot, view: &GovernorView) {
        let was = self.flush_mode;
        self.flush_mode = snapshot.l2_misses > self.tcache_miss;
        if self.flush_mode != was {
            let enabled = self.flush_mode;
            self.tracer.emit(|| {
                TraceEvent::Governor(GovernorEvent::Opt2FlushMode {
                    cycle: snapshot.start_cycle + snapshot.cycles,
                    enabled,
                    interval_l2_misses: snapshot.l2_misses,
                    threshold: self.tcache_miss,
                })
            });
            self.metrics.counter_add("opt2.mode_switches", 1);
        }
        let mode = self.flush_mode;
        self.metrics
            .gauge_set("opt2.flush_mode", || if mode { 1.0 } else { 0.0 });
        self.opt1.update_from_interval(snapshot, view.iq_size);
    }

    fn allow_dispatch(&mut self, view: &GovernorView, tid: ThreadId) -> bool {
        if self.flush_mode {
            // FLUSH de-clogs by rollback; additionally, a thread with an
            // outstanding L2 miss is held to a small IQ budget — enough
            // entries to keep its memory-level parallelism alive, but not
            // enough to fill the shared queue with waiting vulnerable
            // state for hundreds of cycles (same rationale as DVM's
            // immediate L2-miss trigger). Miss-free threads are uncapped.
            let budget = self.miss_budget;
            view.threads
                .get(tid as usize)
                .map(|t| t.l2_pending == 0 || t.iq_occupancy < budget)
                .unwrap_or(true)
        } else {
            self.opt1.allow_dispatch(view, tid)
        }
    }

    fn flush_override(&self) -> bool {
        self.flush_mode
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.opt1.set_tracer_inner(tracer.clone());
        self.tracer = tracer;
    }

    fn set_metrics(&mut self, metrics: Metrics) {
        self.opt1.set_metrics_inner(metrics.clone());
        let mode = self.flush_mode;
        metrics.gauge_set("opt2.flush_mode", || if mode { 1.0 } else { 0.0 });
        self.metrics = metrics;
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put(&self.flush_mode);
        self.opt1.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.flush_mode = r.get()?;
        self.opt1.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(last: &IntervalSnapshot, iq_len: usize) -> GovernorView<'_> {
        GovernorView {
            now: 0,
            iq_size: 96,
            iq_len,
            ready_len: 0,
            waiting_len: 0,
            last_interval: last,
            interval_hint_bits: 0,
            interval_cycles: 0,
            threads: &[],
        }
    }

    fn interval(ipc: f64, rql: f64, l2: u64) -> IntervalSnapshot {
        IntervalSnapshot {
            cycles: 10_000,
            committed: (ipc * 10_000.0) as u64,
            avg_ready_len: rql,
            l2_misses: l2,
            ..Default::default()
        }
    }

    #[test]
    fn low_miss_interval_behaves_like_opt1() {
        let mut g = L2MissSensitiveAllocator::figure4(96);
        let snap = interval(1.0, 5.0, 10);
        g.on_interval(&snap, &view(&snap, 0));
        assert!(!g.in_flush_mode());
        assert!(!g.flush_override());
        // opt1 cap for IPC 1, RQL 5 is 21.
        assert!(g.allow_dispatch(&view(&snap, 20), 0));
        assert!(!g.allow_dispatch(&view(&snap, 25), 0));
    }

    #[test]
    fn heavy_miss_interval_escalates_to_flush() {
        let mut g = L2MissSensitiveAllocator::figure4(96);
        let snap = interval(0.5, 2.0, 40);
        g.on_interval(&snap, &view(&snap, 0));
        assert!(g.in_flush_mode());
        assert!(g.flush_override());
        // No allocation cap in FLUSH mode.
        assert!(g.allow_dispatch(&view(&snap, 95), 0));
    }

    #[test]
    fn threshold_is_strictly_greater() {
        let mut g = L2MissSensitiveAllocator::figure4(96);
        let at = interval(1.0, 5.0, DEFAULT_TCACHE_MISS);
        g.on_interval(&at, &view(&at, 0));
        assert!(!g.in_flush_mode(), "exactly T misses must not escalate");
        let above = interval(1.0, 5.0, DEFAULT_TCACHE_MISS + 1);
        g.on_interval(&above, &view(&above, 0));
        assert!(g.in_flush_mode());
    }

    #[test]
    fn mode_flips_back_when_misses_subside() {
        let mut g = L2MissSensitiveAllocator::figure4(96);
        let hot = interval(0.5, 2.0, 100);
        g.on_interval(&hot, &view(&hot, 0));
        assert!(g.in_flush_mode());
        let cool = interval(3.0, 20.0, 0);
        g.on_interval(&cool, &view(&cool, 0));
        assert!(!g.in_flush_mode());
    }

    #[test]
    fn custom_threshold_respected() {
        let mut g = L2MissSensitiveAllocator::new(IplRegionTable::figure3(), 96, 4);
        assert_eq!(g.tcache_miss(), 4);
        let snap = interval(1.0, 5.0, 5);
        g.on_interval(&snap, &view(&snap, 0));
        assert!(g.in_flush_mode());
    }
}
