//! # `iq-reliability` — the paper's soft-error mitigation mechanisms
//!
//! This crate is the reproduction target proper: the microarchitecture
//! techniques of *"Optimizing Issue Queue Reliability to Soft Errors on
//! Simultaneous Multithreaded Architectures"* (ICPP 2008), implemented as
//! plug-in policies for the `smt-sim` pipeline seams:
//!
//! * [`VisaIssue`](visa::VisaIssue) — **V**ulnerable-**I**n**S**truction-
//!   **A**ware issue (Section 2.1): ready instructions whose decoded
//!   ACE-ness hint is set bypass all ready un-ACE instructions; within
//!   each class, program order. Cuts the residency of ACE bits in the IQ.
//! * [`DynamicIqAllocator`](opt1::DynamicIqAllocator) — **opt1**
//!   (Figure 3): each 10 K-cycle interval sets an IQ allocation cap from
//!   the previous interval's IPC band and ready-queue length, preventing
//!   excess vulnerable bits from entering the IQ.
//! * [`L2MissSensitiveAllocator`](opt2::L2MissSensitiveAllocator) —
//!   **opt2** (Figure 4): opt1 while L2 misses stay below `Tcache_miss`;
//!   above it, escalate to the FLUSH fetch policy so clogged threads are
//!   rolled back instead of capped.
//! * [`DvmController`](dvm::DvmController) — **DVM** (Section 5): an
//!   online ACE-bit counter estimates the interval IQ AVF; crossing 90 %
//!   of the reliability target (or any L2 miss) turns on a dispatch
//!   throttle keyed to an adaptive waiting/ready ratio (`wq_ratio`,
//!   slow-increase / rapid-decrease); when the estimate falls back below
//!   the trigger, dispatch is restored starting with the thread holding
//!   the fewest ACE instructions in its fetch queue. A static-ratio
//!   variant reproduces the paper's "DVM (static)" comparison point.
//!
//! [`schemes::Scheme`] assembles any of the paper's evaluated
//! configurations into a `PipelinePolicies` bundle.
//!
//! Beyond the paper: [`rob_ext::RobVulnGovernor`] carries the concluding
//! "extend to other structures" suggestion to the reorder buffer, and
//! [`rob_ext::ComposedGovernor`] lets it run alongside any IQ-side
//! governor.

pub mod dvm;
pub mod opt1;
pub mod opt2;
pub mod rob_ext;
pub mod schemes;
pub mod visa;

pub use dvm::{DvmController, DvmHandle, DvmMode};
pub use opt1::{DynamicIqAllocator, IplRegionTable};
pub use opt2::L2MissSensitiveAllocator;
pub use rob_ext::{ComposedGovernor, RobVulnGovernor};
pub use schemes::Scheme;
pub use visa::VisaIssue;
