//! Property tests for the paper's mechanisms: VISA's bypass invariant,
//! the Figure 3 allocation algebra, and DVM's ratio adaptation bounds.

use iq_reliability::opt1::IplRegionTable;
use iq_reliability::{DvmController, DvmMode, VisaIssue};
use micro_isa::OpClass;
use proptest::prelude::*;
use smt_sim::dispatch::{DispatchGovernor, ThreadView};
use smt_sim::issue::{IssuePolicy, ReadyInst};
use smt_sim::{GovernorView, IntervalSnapshot};

fn arb_ready() -> impl Strategy<Value = Vec<ReadyInst>> {
    prop::collection::vec((0u64..100_000, prop::bool::ANY), 0..64).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (seq, ace))| ReadyInst {
                id: i,
                seq: seq * 64 + i as u64,
                tid: (i % 4) as u8,
                op: OpClass::IAlu,
                ace_hint: ace,
                wrong_path: false,
            })
            .collect()
    })
}

proptest! {
    /// THE VISA INVARIANT (paper Section 2.1): no ready un-ACE
    /// instruction may be ordered before any ready ACE instruction, and
    /// both classes preserve program (age) order internally.
    #[test]
    fn visa_never_orders_unace_before_ace(ready in arb_ready()) {
        let mut v = ready.clone();
        VisaIssue.prioritize(&mut v);
        let first_unace = v.iter().position(|r| !r.ace_hint).unwrap_or(v.len());
        for (i, r) in v.iter().enumerate() {
            if i >= first_unace {
                prop_assert!(!r.ace_hint, "ACE inst after an un-ACE inst");
            }
        }
        for w in v[..first_unace].windows(2) {
            prop_assert!(w[0].seq <= w[1].seq, "ACE class out of program order");
        }
        for w in v[first_unace..].windows(2) {
            prop_assert!(w[0].seq <= w[1].seq, "un-ACE class out of program order");
        }
        // Permutation check.
        let mut a: Vec<u64> = ready.iter().map(|r| r.seq).collect();
        let mut b: Vec<u64> = v.iter().map(|r| r.seq).collect();
        a.sort_unstable(); b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Figure 3 algebra: IQL is monotone in RQL, bounded by the static
    /// cap, and the caps themselves are monotone in the IPC band.
    #[test]
    fn figure3_iql_is_monotone_and_bounded(
        ipc in 0.0f64..8.0,
        rql_lo in 0.0f64..48.0,
        delta in 0.0f64..48.0,
        iq_size in 16usize..256,
    ) {
        let t = IplRegionTable::figure3();
        let lo = t.iql(ipc, rql_lo, iq_size);
        let hi = t.iql(ipc, rql_lo + delta, iq_size);
        prop_assert!(hi >= lo, "IQL not monotone in RQL");
        prop_assert!(lo >= 1 && hi <= iq_size);
        // Band caps: a higher IPC band never yields a *smaller* cap at
        // saturating RQL.
        let cap_here = t.iql(ipc, 1e9, iq_size);
        let cap_up = t.iql((ipc + 2.0).min(8.0), 1e9, iq_size);
        prop_assert!(cap_up >= cap_here);
    }

    /// DVM's adaptive ratio stays within its configured bounds through
    /// any sequence of hot/cold samples, and only moves in the direction
    /// the sample dictates.
    #[test]
    fn dvm_ratio_bounded_and_directional(samples in prop::collection::vec(prop::bool::ANY, 1..100)) {
        let mut dvm = DvmController::new(0.3, DvmMode::DynamicRatio);
        let last = IntervalSnapshot::default();
        let threads = [ThreadView {
            tid: 0,
            fetch_queue_len: 4,
            fetch_queue_ace: 1,
            l2_pending: 0,
            l1d_pending: 0,
            flush_blocked: false,
            in_flight: 0,
            iq_occupancy: 0,
            rob_ace: 0,
        }];
        let total_bits = 96u64 * smt_sim::layout::IQ_ENTRY_BITS as u64;
        for (i, hot) in samples.iter().enumerate() {
            let before = dvm.current_ratio();
            // Hot sample: estimate 0.9 (over trigger 0.27); cold: 0.
            let est = if *hot { 0.9 } else { 0.0 };
            let cycles = 2_000u64 * (i as u64 + 1);
            let view = GovernorView {
                now: 2_000 * (i as u64 + 1),
                iq_size: 96,
                iq_len: 50,
                ready_len: 10,
                waiting_len: 40,
                last_interval: &last,
                interval_hint_bits: (est * (cycles * total_bits) as f64) as u64,
                interval_cycles: cycles,
                threads: &threads,
            };
            dvm.begin_cycle(&view);
            let after = dvm.current_ratio();
            prop_assert!((0.25..=8.0).contains(&after), "ratio {after} out of bounds");
            if *hot {
                prop_assert!(after <= before, "hot sample must not raise the ratio");
            } else {
                prop_assert!(after >= before, "cold sample must not lower the ratio");
            }
        }
    }
}
