//! One source of truth, two views: governor control decisions must
//! appear identically in the sim-trace audit log (events) and the
//! sim-metrics registry (gauges/counters). These tests drive the DVM
//! and opt1 governors through synthetic machine states with both
//! observability layers attached and cross-check them.

use iq_reliability::{DvmController, DvmMode, DynamicIqAllocator};
use sim_metrics::Metrics;
use sim_trace::sinks::RingSink;
use sim_trace::{GovernorEvent, TraceEvent, Tracer};
use smt_sim::dispatch::{DispatchGovernor, GovernorView, ThreadView};
use smt_sim::IntervalSnapshot;

fn thread_view(tid: u8, fq_ace: usize) -> ThreadView {
    ThreadView {
        tid,
        fetch_queue_len: fq_ace + 2,
        fetch_queue_ace: fq_ace,
        l2_pending: 0,
        l1d_pending: 0,
        flush_blocked: false,
        in_flight: 0,
        iq_occupancy: 0,
        rob_ace: 0,
    }
}

/// A view whose online AVF estimate evaluates to `est`.
fn view_with<'a>(
    now: u64,
    est: f64,
    last: &'a IntervalSnapshot,
    threads: &'a [ThreadView],
) -> GovernorView<'a> {
    let total_bits = 96u64 * smt_sim::layout::IQ_ENTRY_BITS as u64;
    let cycles = 1_000u64;
    GovernorView {
        now,
        iq_size: 96,
        iq_len: 40,
        ready_len: 10,
        waiting_len: 30,
        last_interval: last,
        interval_hint_bits: (est * (cycles * total_bits) as f64) as u64,
        interval_cycles: cycles,
        threads,
    }
}

#[test]
fn dvm_trigger_and_restore_agree_across_trace_and_metrics() {
    let mut dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
    let sink = RingSink::new(256);
    let ring = sink.handle();
    dvm.set_tracer(Tracer::new(sink));
    let metrics = Metrics::new();
    dvm.set_metrics(metrics.clone());

    // Initial state gauges are seeded at attach time.
    let snap0 = metrics.snapshot();
    assert_eq!(snap0.gauge("dvm.response_active"), Some(0.0));
    let initial_ratio = snap0.gauge("dvm.wq_ratio").unwrap();

    let last = IntervalSnapshot::default();
    let threads = [thread_view(0, 9), thread_view(1, 2)];
    // Hot sample (est 0.9 ≥ 0.36 trigger level) → trigger; then two cool
    // samples → one restore.
    dvm.begin_cycle(&view_with(2_000, 0.9, &last, &threads));
    dvm.begin_cycle(&view_with(4_000, 0.0, &last, &threads));
    dvm.begin_cycle(&view_with(6_000, 0.0, &last, &threads));

    let snap = metrics.snapshot();
    let trigger_events = ring.of_kind("dvm_trigger");
    let restore_events = ring.of_kind("dvm_restore");
    assert_eq!(trigger_events.len(), 1);
    assert_eq!(restore_events.len(), 1);
    assert_eq!(snap.counter("dvm.triggers"), Some(1));
    assert_eq!(snap.counter("dvm.restores"), Some(1));
    // Ratio gauge tracks the adaptive state and every adjustment is
    // audited.
    let ratio_now = snap.gauge("dvm.wq_ratio").unwrap();
    assert_ne!(ratio_now, initial_ratio);
    assert_eq!(
        snap.counter("dvm.ratio_adjusts").unwrap(),
        ring.of_kind("wq_ratio").len() as u64
    );
    // After the final cool sample the response is off in both views.
    assert_eq!(snap.gauge("dvm.response_active"), Some(0.0));
    match restore_events[0] {
        TraceEvent::Governor(GovernorEvent::DvmRestore { restored_tid, .. }) => {
            // Restore rule: fewest fetch-queue ACE instructions → tid 1.
            assert_eq!(restored_tid, Some(1));
        }
        ref e => panic!("unexpected event {e:?}"),
    }
}

#[test]
fn dvm_l2_trigger_agrees_across_views() {
    let mut dvm = DvmController::new(0.4, DvmMode::DynamicRatio);
    let sink = RingSink::new(64);
    let ring = sink.handle();
    dvm.set_tracer(Tracer::new(sink));
    let metrics = Metrics::new();
    dvm.set_metrics(metrics.clone());

    dvm.on_l2_miss(2);
    dvm.on_l2_miss(2); // already active: no second trigger event

    let snap = metrics.snapshot();
    assert_eq!(ring.of_kind("dvm_trigger").len(), 1);
    assert_eq!(snap.counter("dvm.triggers"), Some(1));
    assert_eq!(snap.counter("dvm.l2_triggers"), Some(2));
    assert_eq!(snap.gauge("dvm.response_active"), Some(1.0));
}

#[test]
fn opt1_cap_moves_agree_across_views() {
    let mut opt1 = DynamicIqAllocator::figure3(96);
    let sink = RingSink::new(64);
    let ring = sink.handle();
    opt1.set_tracer(Tracer::new(sink));
    let metrics = Metrics::new();
    opt1.set_metrics(metrics.clone());

    // Gauge seeded with the uncapped initial state.
    assert_eq!(metrics.snapshot().gauge("opt1.iql_cap"), Some(96.0));

    let threads: [ThreadView; 0] = [];
    // Low-IPC interval: cap becomes min(5 + 16, 32) = 21.
    let low = IntervalSnapshot {
        cycles: 10_000,
        committed: 10_000,
        avg_ready_len: 5.0,
        ..Default::default()
    };
    opt1.on_interval(&low, &view_with(10_000, 0.0, &low, &threads));
    // Same interval again: no change, no event.
    opt1.on_interval(&low, &view_with(20_000, 0.0, &low, &threads));
    // High-IPC interval: cap opens up to min(40 + 64, 96) = 96.
    let high = IntervalSnapshot {
        cycles: 10_000,
        committed: 70_000,
        avg_ready_len: 40.0,
        ..Default::default()
    };
    opt1.on_interval(&high, &view_with(30_000, 0.0, &high, &threads));

    let snap = metrics.snapshot();
    let cap_events = ring.of_kind("opt1_cap");
    assert_eq!(cap_events.len(), 2);
    assert_eq!(snap.counter("opt1.cap_changes"), Some(2));
    assert_eq!(snap.gauge("opt1.iql_cap"), Some(96.0));
    // The audit events carry the same trajectory the gauge followed.
    match (&cap_events[0], &cap_events[1]) {
        (
            TraceEvent::Governor(GovernorEvent::Opt1CapChange {
                old_cap: o1,
                new_cap: n1,
                ..
            }),
            TraceEvent::Governor(GovernorEvent::Opt1CapChange {
                old_cap: o2,
                new_cap: n2,
                ..
            }),
        ) => {
            assert_eq!((*o1, *n1), (96, 21));
            assert_eq!((*o2, *n2), (21, 96));
        }
        other => panic!("unexpected events {other:?}"),
    }
}
