//! Resume-identity property: interrupting any scheme × fetch-policy
//! combination at an interval boundary, snapshotting the pipeline *and*
//! the AVF collector, and continuing on freshly constructed objects
//! must reproduce the uninterrupted run bit for bit — machine state,
//! AVF report (every f64 compared by bit pattern) and DVM telemetry.

use avf::{AvfCollector, AvfReport};
use iq_reliability::Scheme;
use proptest::prelude::*;
use sim_snapshot::{SnapReader, SnapWriter};
use smt_sim::{FetchPolicyKind, HookAction, MachineConfig, Pipeline, SimLimits};
use std::sync::Arc;
use workload_gen::{generate_program_salted, model_by_name};

const WORKLOAD_POOL: [&str; 8] = [
    "gcc", "mcf", "vpr", "perlbmk", "equake", "swim", "bzip2", "eon",
];
const INTERVAL: u64 = 10_000;
const ACE_WINDOW: usize = 2_000;
const INSTRUCTIONS: u64 = 60_000;

fn scheme_by_index(i: usize) -> Scheme {
    match i {
        0 => Scheme::Baseline,
        1 => Scheme::Visa,
        2 => Scheme::VisaOpt1,
        3 => Scheme::VisaOpt2,
        4 => Scheme::DvmDynamic { target: 0.3 },
        _ => Scheme::DvmStatic {
            target: 0.3,
            ratio: 1.5,
        },
    }
}

fn build(
    scheme: Scheme,
    fetch: FetchPolicyKind,
    salt: u64,
) -> (Pipeline, AvfCollector, Option<iq_reliability::DvmHandle>) {
    let cfg = MachineConfig::table2();
    let programs = (0..4)
        .map(|i| {
            let name = WORKLOAD_POOL[(salt as usize + i) % WORKLOAD_POOL.len()];
            Arc::new(generate_program_salted(&model_by_name(name).unwrap(), salt))
        })
        .collect();
    let (policies, handle) = scheme.policies(fetch, cfg.iq_size);
    let collector = AvfCollector::new(&cfg, ACE_WINDOW, INTERVAL);
    (Pipeline::new(cfg, programs, policies), collector, handle)
}

fn assert_reports_identical(a: &AvfReport, b: &AvfReport) {
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
    for (x, y, what) in [
        (a.iq_avf, b.iq_avf, "iq_avf"),
        (a.rob_avf, b.rob_avf, "rob_avf"),
        (a.rf_avf, b.rf_avf, "rf_avf"),
        (a.fu_avf, b.fu_avf, "fu_avf"),
        (a.lsq_avf, b.lsq_avf, "lsq_avf"),
        (a.ace_fraction, b.ace_fraction, "ace_fraction"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} differs: {x} vs {y}");
    }
    let (sa, sb) = (a.iq_interval_avf.samples(), b.iq_interval_avf.samples());
    assert_eq!(sa.len(), sb.len(), "interval series length");
    for (k, (x, y)) in sa.iter().zip(sb.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "interval {k} AVF differs");
    }
}

fn check_resume_identity(scheme: Scheme, fetch: FetchPolicyKind, salt: u64) {
    let limits = SimLimits::instructions(INSTRUCTIONS);

    // Uninterrupted reference.
    let (mut p_ref, mut c_ref, h_ref) = build(scheme, fetch, salt);
    let r_ref = p_ref.run(limits, &mut c_ref);
    assert!(!r_ref.deadlocked && !r_ref.cancelled);
    let ref_machine = p_ref.save_snapshot();
    let ref_report = c_ref.report();

    // Interrupted at the first interval boundary: snapshot the machine
    // and the collector, stop. Both must be captured *inside* the hook
    // — it fires before the observer's `on_finish` drains the ACE
    // window — so the collector is shared between the observer seat and
    // the hook through a RefCell (the harness pattern).
    let mut machine_snap: Option<Vec<u8>> = None;
    let mut collector_snap: Option<Vec<u8>> = None;
    let (mut p2, c2, _h2) = build(scheme, fetch, salt);
    let shared = std::cell::RefCell::new(c2);
    struct SharedObserver<'a>(&'a std::cell::RefCell<AvfCollector>);
    impl smt_sim::SimObserver for SharedObserver<'_> {
        fn on_commit(&mut self, ev: &smt_sim::RetireEvent) {
            self.0.borrow_mut().on_commit(ev);
        }
        fn on_squash(&mut self, ev: &smt_sim::RetireEvent) {
            self.0.borrow_mut().on_squash(ev);
        }
        fn on_finish(&mut self, final_cycle: u64) {
            self.0.borrow_mut().on_finish(final_cycle);
        }
    }
    let mut obs = SharedObserver(&shared);
    let r2 = p2.run_hooked(limits, &mut obs, &mut |p| {
        if p.cycle() >= INTERVAL {
            machine_snap = Some(p.save_snapshot());
            let mut w = SnapWriter::new();
            shared.borrow().save_state(&mut w);
            collector_snap = Some(w.into_bytes());
            return HookAction::Stop;
        }
        HookAction::Continue
    });
    assert!(r2.cancelled);
    let machine_snap = machine_snap.expect("run crossed an interval boundary");
    let collector_snap = collector_snap.unwrap();

    // Resume on freshly constructed objects.
    let (mut p3, mut c3, h3) = build(scheme, fetch, salt);
    p3.restore_snapshot(&machine_snap).unwrap();
    p3.check_invariants().unwrap();
    let mut r = SnapReader::new(&collector_snap);
    c3.restore_state(&mut r).unwrap();
    assert_eq!(r.remaining(), 0, "collector snapshot fully consumed");
    let r3 = p3.run(limits, &mut c3);
    assert!(!r3.deadlocked && !r3.cancelled);

    assert_eq!(
        p3.save_snapshot(),
        ref_machine,
        "resumed machine state differs from uninterrupted run"
    );
    assert_reports_identical(&c3.report(), &ref_report);

    // DVM telemetry must also round-trip (it feeds the static-ratio
    // derivation), including counts accrued before the checkpoint.
    if let (Some(a), Some(b)) = (h_ref, h3) {
        let (a, b) = (a.lock(), b.lock());
        assert_eq!(a.ratio_sum.to_bits(), b.ratio_sum.to_bits());
        assert_eq!(a.ratio_samples, b.ratio_samples);
        assert_eq!(a.triggers, b.triggers);
        assert_eq!(a.l2_triggers, b.l2_triggers);
        assert_eq!(a.denied_dispatches, b.denied_dispatches);
        assert_eq!(a.restores, b.restores);
    }
}

proptest! {
    // Full-pipeline runs are expensive on one core; a handful of random
    // scheme × fetch × salt draws per invocation keeps the suite fast
    // while the dedicated unit tests below pin the paper's headline
    // configurations.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn resume_identity_over_random_configs(
        scheme_idx in 0usize..6,
        fetch_idx in 0usize..5,
        salt in 0u64..64,
    ) {
        check_resume_identity(
            scheme_by_index(scheme_idx),
            FetchPolicyKind::ALL[fetch_idx],
            salt,
        );
    }
}

#[test]
fn resume_identity_visa_opt2_flush() {
    check_resume_identity(Scheme::VisaOpt2, FetchPolicyKind::Flush, 3);
}

#[test]
fn resume_identity_dvm_dynamic_icount() {
    check_resume_identity(
        Scheme::DvmDynamic { target: 0.2 },
        FetchPolicyKind::Icount,
        5,
    );
}
