//! Property tests for the cache substrate: fundamental cache invariants
//! over arbitrary access sequences and geometries.

use mem_hier::{Cache, CacheConfig, MemoryHierarchy, Tlb};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = CacheConfig> {
    // sets ∈ {1..=64} pow2, assoc ∈ 1..=8, line ∈ {16,32,64,128}
    (
        0u32..7,
        1usize..=8,
        prop::sample::select(vec![16u64, 32, 64, 128]),
    )
        .prop_map(|(set_pow, assoc, line)| {
            let sets = 1u64 << set_pow;
            CacheConfig {
                size_bytes: sets * assoc as u64 * line,
                assoc,
                line_bytes: line,
                hit_latency: 1,
            }
        })
}

proptest! {
    /// Immediately re-accessing any address always hits, for any
    /// geometry and any prior access sequence.
    #[test]
    fn reaccess_always_hits(
        config in arb_geometry(),
        addrs in prop::collection::vec(0u64..(1 << 24), 1..200),
    ) {
        let mut cache = Cache::new(config);
        for &a in &addrs {
            cache.access(a);
            prop_assert!(cache.probe(a), "just-accessed line missing: {a:#x}");
            prop_assert!(cache.access(a), "immediate re-access missed: {a:#x}");
        }
    }

    /// A working set no larger than one set's associativity never
    /// conflicts: after one warmup round, everything hits forever.
    #[test]
    fn within_associativity_never_evicts(
        config in arb_geometry(),
        rounds in 2usize..6,
    ) {
        let mut cache = Cache::new(config);
        // One address per way of set 0.
        let sets = config.num_sets() as u64;
        let addrs: Vec<u64> = (0..config.assoc as u64)
            .map(|w| w * sets * config.line_bytes)
            .collect();
        for &a in &addrs {
            cache.access(a);
        }
        for _ in 0..rounds {
            for &a in &addrs {
                prop_assert!(cache.access(a), "conflict within associativity");
            }
        }
    }

    /// Miss count never exceeds access count, and the counters add up.
    #[test]
    fn stats_are_consistent(
        addrs in prop::collection::vec(0u64..(1 << 20), 1..300),
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096,
            assoc: 2,
            line_bytes: 32,
            hit_latency: 1,
        });
        let mut hits = 0u64;
        for &a in &addrs {
            if cache.access(a) {
                hits += 1;
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert_eq!(s.accesses - s.misses, hits);
        prop_assert!(s.miss_rate() <= 1.0);
    }

    /// TLB translations are page-granular: all addresses within one page
    /// behave identically after first touch.
    #[test]
    fn tlb_is_page_granular(page in 0u64..4096, offsets in prop::collection::vec(0u64..8192, 1..32)) {
        let mut tlb = Tlb::new(64, 4, 200);
        let base = page * 8192;
        let first = tlb.translate(base + offsets[0] % 8192);
        prop_assert!(first == 0 || first == 200);
        for &o in &offsets {
            prop_assert_eq!(tlb.translate(base + (o % 8192)), 0, "same page must hit");
        }
    }

    /// The composed hierarchy never returns a latency below the L1 hit
    /// latency nor above the full miss chain, and flags are consistent.
    #[test]
    fn hierarchy_latency_bounds(
        tid in 0u8..4,
        addrs in prop::collection::vec(0u64..(1u64 << 26), 1..200),
    ) {
        let mut h = MemoryHierarchy::table2();
        let max = 200 + 1 + 12 + 200; // TLB walk + L1 + L2 + memory
        for &a in &addrs {
            let r = h.access_data(tid, a);
            prop_assert!(r.latency >= 1 && r.latency <= max, "latency {}", r.latency);
            if r.l2_miss {
                prop_assert!(r.l1_miss, "L2 miss implies L1 miss");
            }
            if !r.l1_miss {
                // Pure L1 hit may still pay a TLB walk.
                prop_assert!(r.latency == 1 || r.latency == 201);
            }
        }
    }
}
