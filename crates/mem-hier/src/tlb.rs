//! Translation lookaside buffers.
//!
//! A TLB is a set-associative cache over virtual page numbers; this module
//! wraps [`Cache`](crate::Cache) with page-granular indexing. Table 2:
//! ITLB 128 entries 4-way, DTLB 256 entries 4-way, 200-cycle miss penalty
//! (a page walk to memory).

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Default page size: 8 KB, the Alpha architectural page size.
pub const PAGE_BYTES: u64 = 8192;

/// A translation lookaside buffer.
pub struct Tlb {
    inner: Cache,
    miss_latency: u32,
}

impl Tlb {
    /// `entries`-entry, `assoc`-way TLB with the given miss penalty.
    pub fn new(entries: usize, assoc: usize, miss_latency: u32) -> Tlb {
        // Reuse the cache engine: one "line" per page entry. The inner
        // cache indexes by addr >> line_shift, so feeding it full
        // addresses with line_bytes = PAGE_BYTES indexes by page number.
        Tlb {
            inner: Cache::new(CacheConfig {
                size_bytes: entries as u64 * PAGE_BYTES,
                assoc,
                line_bytes: PAGE_BYTES,
                hit_latency: 0,
            }),
            miss_latency,
        }
    }

    /// Translate the page containing `addr`; returns the added latency
    /// (0 on hit, the page-walk penalty on miss).
    pub fn translate(&mut self, addr: u64) -> u32 {
        if self.inner.access(addr) {
            0
        } else {
            self.miss_latency
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    /// Serialize the underlying translation cache state.
    pub fn save_state(&self, w: &mut sim_snapshot::SnapWriter) {
        self.inner.save_state(w);
    }

    /// Restore state saved by [`Self::save_state`].
    pub fn restore_state(
        &mut self,
        r: &mut sim_snapshot::SnapReader<'_>,
    ) -> Result<(), sim_snapshot::SnapError> {
        self.inner.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits_after_first_touch() {
        let mut t = Tlb::new(16, 4, 200);
        assert_eq!(t.translate(0x0000), 200);
        assert_eq!(t.translate(0x1fff), 0, "same 8K page");
        assert_eq!(t.translate(0x2000), 200, "next page");
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(4, 4, 200);
        for p in 0..5u64 {
            t.translate(p * PAGE_BYTES);
        }
        // Page 0 was LRU and must have been evicted.
        assert_eq!(t.translate(0), 200);
    }

    #[test]
    fn stats_track_misses() {
        let mut t = Tlb::new(16, 4, 200);
        t.translate(0);
        t.translate(0);
        t.translate(PAGE_BYTES);
        let s = t.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 2);
    }
}
