//! Set-associative cache with true-LRU replacement.
//!
//! Tag-only (no data payload): the simulator needs hit/miss timing, not
//! values — the functional front end already resolves all values. Sets are
//! stored as a flat `Vec` of ways for locality; LRU is an 8-bit age per
//! way (saturating), which is exact for associativities ≤ 255.

use sim_snapshot::{Snap, SnapError, SnapReader, SnapWriter};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    pub size_bytes: u64,
    pub assoc: usize,
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize / self.assoc
    }

    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        if self.assoc == 0 || self.size_bytes == 0 {
            return Err("zero size or associativity".into());
        }
        let lines = self.size_bytes / self.line_bytes;
        if !lines.is_multiple_of(self.assoc as u64) {
            return Err("lines not divisible by associativity".into());
        }
        let sets = lines / self.assoc as u64;
        if !sets.is_power_of_two() {
            return Err(format!("set count {sets} not a power of two"));
        }
        Ok(())
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub misses: u64,
}

impl CacheStats {
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Counters accumulated since an `earlier` reading of the same
    /// cache — the windowed view per-interval metrics sample.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            accesses: self.accesses.saturating_sub(earlier.accesses),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    lru: u8,
}

/// One level of tag-only set-associative cache.
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    set_mask: u64,
    line_shift: u32,
    ways: Vec<Way>,
    stats: CacheStats,
}

impl Cache {
    pub fn new(config: CacheConfig) -> Cache {
        config.validate().expect("invalid cache config");
        let sets = config.num_sets();
        Cache {
            config,
            sets,
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    lru: 0,
                };
                sets * config.assoc
            ],
            stats: CacheStats::default(),
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn locate(&self, addr: u64) -> (std::ops::Range<usize>, u64) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.sets.trailing_zeros();
        let lo = set * self.config.assoc;
        (lo..lo + self.config.assoc, tag)
    }

    /// Access `addr`; allocate on miss (write-allocate for both reads and
    /// writes). Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let (range, tag) = self.locate(addr);
        if let Some(hit) = self.ways[range.clone()]
            .iter()
            .position(|w| w.valid && w.tag == tag)
        {
            self.touch(range, hit);
            return true;
        }
        self.stats.misses += 1;
        let victim = self.ways[range.clone()]
            .iter()
            .position(|w| !w.valid)
            .unwrap_or_else(|| {
                self.ways[range.clone()]
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .unwrap()
            });
        self.ways[range.start + victim] = Way {
            tag,
            valid: true,
            lru: 0,
        };
        self.touch(range, victim);
        false
    }

    /// Non-allocating probe (no stats, no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let (range, tag) = self.locate(addr);
        self.ways[range].iter().any(|w| w.valid && w.tag == tag)
    }

    fn touch(&mut self, range: std::ops::Range<usize>, way: usize) {
        for w in &mut self.ways[range.clone()] {
            w.lru = w.lru.saturating_add(1);
        }
        self.ways[range.start + way].lru = 0;
    }

    /// Serialize all ways plus hit/miss counters.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.ways.len() as u64);
        for way in &self.ways {
            w.put(&way.tag);
            w.put(&way.valid);
            w.put_u8(way.lru);
        }
        self.stats.save(w);
    }

    /// Restore state saved by [`Self::save_state`] onto a cache of the
    /// same geometry.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_u64()? as usize;
        if n != self.ways.len() {
            return Err(SnapError::Corrupt("cache geometry mismatch".into()));
        }
        for way in &mut self.ways {
            way.tag = r.get()?;
            way.valid = r.get()?;
            way.lru = r.get_u8()?;
        }
        self.stats = CacheStats::load(r)?;
        Ok(())
    }
}

impl Snap for CacheStats {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.accesses);
        w.put(&self.misses);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CacheStats {
            accesses: r.get()?,
            misses: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x4f), "same line");
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn distinct_lines_miss_independently() {
        let mut c = small();
        assert!(!c.access(0x00));
        assert!(!c.access(0x10));
        assert!(c.access(0x00));
        assert!(c.access(0x10));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Set 0 lines: addresses with line index ≡ 0 mod 4: 0x00, 0x40, 0x80.
        c.access(0x00);
        c.access(0x40);
        c.access(0x00); // 0x40 now LRU
        c.access(0x80); // evicts 0x40
        assert!(c.probe(0x00));
        assert!(!c.probe(0x40));
        assert!(c.probe(0x80));
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = small();
        c.access(0x00);
        let s = c.stats();
        assert!(c.probe(0x00));
        assert!(!c.probe(0x999));
        assert_eq!(c.stats(), s);
    }

    #[test]
    fn table2_geometries_valid() {
        for (size, assoc, line) in [
            (32 * 1024u64, 2usize, 32u64), // L1I
            (64 * 1024, 4, 64),            // L1D
            (2 * 1024 * 1024, 4, 128),     // L2
        ] {
            CacheConfig {
                size_bytes: size,
                assoc,
                line_bytes: line,
                hit_latency: 1,
            }
            .validate()
            .unwrap();
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = small(); // 128 B
        let mut misses = 0;
        // Stream 4 KB repeatedly: everything should miss after warmup.
        for round in 0..4 {
            for addr in (0..4096u64).step_by(16) {
                if !c.access(addr) && round > 0 {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 3 * 256, "LRU must thrash on a streaming loop");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CacheConfig {
            size_bytes: 100,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 128,
            assoc: 0,
            line_bytes: 16,
            hit_latency: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 96,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = small();
        c.access(0);
        c.access(0);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        let empty = CacheStats::default();
        assert_eq!(empty.miss_rate(), 0.0);
    }
}
