//! The composed memory hierarchy.
//!
//! One [`MemoryHierarchy`] per simulated SMT processor, shared by all
//! hardware contexts (the paper's machine shares all cache levels).
//! Thread data streams are kept from aliasing by giving each context its
//! own high address bits — see [`MemoryHierarchy::thread_addr`].

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::tlb::Tlb;
use micro_isa::ThreadId;

/// Configuration of the whole hierarchy (defaults = paper Table 2).
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    pub l1i: CacheConfig,
    pub l1d: CacheConfig,
    pub l2: CacheConfig,
    pub mem_latency: u32,
    pub itlb_entries: usize,
    pub dtlb_entries: usize,
    pub tlb_assoc: usize,
    pub tlb_miss_latency: u32,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 2,
                line_bytes: 32,
                hit_latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                assoc: 4,
                line_bytes: 128,
                hit_latency: 12,
            },
            mem_latency: 200,
            itlb_entries: 128,
            dtlb_entries: 256,
            tlb_assoc: 4,
            tlb_miss_latency: 200,
        }
    }
}

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total access latency in cycles (including TLB penalty).
    pub latency: u32,
    pub l1_miss: bool,
    /// The flag the paper's opt2 / STALL / FLUSH / DVM mechanisms key on.
    pub l2_miss: bool,
}

/// Aggregate statistics across the hierarchy.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    pub l1i: CacheStats,
    pub l1d: CacheStats,
    pub l2: CacheStats,
    pub itlb: CacheStats,
    pub dtlb: CacheStats,
}

impl HierarchyStats {
    /// Counters accumulated since an `earlier` reading — used by the
    /// pipeline to turn the monotonic hierarchy counters into
    /// per-sampling-interval miss-rate series.
    pub fn since(&self, earlier: &HierarchyStats) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.since(&earlier.l1i),
            l1d: self.l1d.since(&earlier.l1d),
            l2: self.l2.since(&earlier.l2),
            itlb: self.itlb.since(&earlier.itlb),
            dtlb: self.dtlb.since(&earlier.dtlb),
        }
    }
}

/// The shared cache hierarchy of one SMT processor.
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
}

impl MemoryHierarchy {
    pub fn new(config: HierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(
                config.itlb_entries,
                config.tlb_assoc,
                config.tlb_miss_latency,
            ),
            dtlb: Tlb::new(
                config.dtlb_entries,
                config.tlb_assoc,
                config.tlb_miss_latency,
            ),
            config,
        }
    }

    /// The paper's Table 2 hierarchy.
    pub fn table2() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Disambiguate per-thread address spaces: contexts run distinct
    /// programs with overlapping synthetic addresses, so the upper bits
    /// carry the context id (as distinct ASIDs/physical mappings would).
    #[inline]
    pub fn thread_addr(tid: ThreadId, addr: u64) -> u64 {
        ((tid as u64) << 44) | (addr & ((1u64 << 44) - 1))
    }

    /// A data access (load or store) from thread `tid` at synthetic
    /// address `addr`.
    ///
    /// Like instruction fetch, each thread's data segment is staggered by
    /// a non-power-of-two offset: distinct programs do not lay their
    /// heaps out at identical virtual addresses, and without the stagger
    /// four same-sized footprints would pile onto the same cache sets
    /// and conflict-miss far beyond what the combined working set
    /// justifies.
    pub fn access_data(&mut self, tid: ThreadId, addr: u64) -> AccessResult {
        let stagger = tid as u64 * 0x6_4d90;
        let a = Self::thread_addr(tid, addr.wrapping_add(stagger));
        let mut latency = self.dtlb.translate(a);
        let l1_hit = self.l1d.access(a);
        latency += self.config.l1d.hit_latency;
        if l1_hit {
            return AccessResult {
                latency,
                l1_miss: false,
                l2_miss: false,
            };
        }
        let l2_hit = self.l2.access(a);
        latency += self.config.l2.hit_latency;
        if l2_hit {
            return AccessResult {
                latency,
                l1_miss: true,
                l2_miss: false,
            };
        }
        latency += self.config.mem_latency;
        AccessResult {
            latency,
            l1_miss: true,
            l2_miss: true,
        }
    }

    /// An instruction fetch from thread `tid` at word PC `pc` (converted
    /// to a byte address internally).
    pub fn access_inst(&mut self, tid: ThreadId, pc: u64) -> AccessResult {
        // 4 bytes per instruction word; keep instruction and data spaces
        // disjoint with a dedicated high bit. Each thread's code segment
        // is staggered by a non-power-of-two offset so that the entry
        // points of concurrently running programs do not all collide in
        // the same I-cache set (real loaders place images at distinct
        // addresses).
        let stagger = tid as u64 * 0x2860;
        let a = Self::thread_addr(tid, pc * 4 + stagger) | (1u64 << 43);
        let mut latency = self.itlb.translate(a);
        let l1_hit = self.l1i.access(a);
        latency += self.config.l1i.hit_latency;
        if l1_hit {
            return AccessResult {
                latency,
                l1_miss: false,
                l2_miss: false,
            };
        }
        let l2_hit = self.l2.access(a);
        latency += self.config.l2.hit_latency;
        if l2_hit {
            return AccessResult {
                latency,
                l1_miss: true,
                l2_miss: false,
            };
        }
        latency += self.config.mem_latency;
        AccessResult {
            latency,
            l1_miss: true,
            l2_miss: true,
        }
    }

    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            itlb: self.itlb.stats(),
            dtlb: self.dtlb.stats(),
        }
    }

    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
    }

    /// Serialize every cache level and TLB (tags, LRU, counters) so a
    /// restored run sees the identical hit/miss sequence.
    pub fn save_state(&self, w: &mut sim_snapshot::SnapWriter) {
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l2.save_state(w);
        self.itlb.save_state(w);
        self.dtlb.save_state(w);
    }

    /// Restore state saved by [`Self::save_state`] onto a hierarchy of
    /// the same configuration.
    pub fn restore_state(
        &mut self,
        r: &mut sim_snapshot::SnapReader<'_>,
    ) -> Result<(), sim_snapshot::SnapError> {
        self.l1i.restore_state(r)?;
        self.l1d.restore_state(r)?;
        self.l2.restore_state(r)?;
        self.itlb.restore_state(r)?;
        self.dtlb.restore_state(r)
    }
}

impl sim_snapshot::Snap for HierarchyStats {
    fn save(&self, w: &mut sim_snapshot::SnapWriter) {
        self.l1i.save(w);
        self.l1d.save(w);
        self.l2.save(w);
        self.itlb.save(w);
        self.dtlb.save(w);
    }
    fn load(r: &mut sim_snapshot::SnapReader<'_>) -> Result<Self, sim_snapshot::SnapError> {
        Ok(HierarchyStats {
            l1i: r.get()?,
            l1d: r.get()?,
            l2: r.get()?,
            itlb: r.get()?,
            dtlb: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_data_costs_one_cycle() {
        let mut h = MemoryHierarchy::table2();
        h.access_data(0, 0x100); // warm everything
        let r = h.access_data(0, 0x100);
        assert_eq!(
            r,
            AccessResult {
                latency: 1,
                l1_miss: false,
                l2_miss: false
            }
        );
    }

    #[test]
    fn l2_hit_costs_l1_plus_l2() {
        let mut h = MemoryHierarchy::table2();
        // Touch a line, then evict it from L1D (4-way, 256 sets, 64B) by
        // touching 4 conflicting lines; L2 (4-way, 4096 sets, 128B) keeps it.
        h.access_data(0, 0);
        for i in 1..=4u64 {
            h.access_data(0, i * 64 * 256); // same L1 set, different tags
        }
        let r = h.access_data(0, 0);
        assert!(r.l1_miss && !r.l2_miss, "{r:?}");
        assert_eq!(r.latency, 1 + 12);
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut h = MemoryHierarchy::table2();
        let r = h.access_data(0, 0xabc0);
        assert!(r.l1_miss && r.l2_miss);
        // TLB miss (200) + L1 (1) + L2 (12) + memory (200).
        assert_eq!(r.latency, 200 + 1 + 12 + 200);
    }

    #[test]
    fn threads_do_not_alias() {
        let mut h = MemoryHierarchy::table2();
        h.access_data(0, 0x100);
        let r = h.access_data(1, 0x100);
        assert!(r.l1_miss, "thread 1 must not hit thread 0's line");
    }

    #[test]
    fn inst_and_data_spaces_disjoint() {
        let mut h = MemoryHierarchy::table2();
        h.access_data(0, 0x40);
        let r = h.access_inst(0, 0x10); // byte addr 0x40
        assert!(r.l1_miss, "ifetch must not hit the data line");
    }

    #[test]
    fn streaming_beyond_l2_misses_repeatedly() {
        let mut h = MemoryHierarchy::table2();
        // An 8 MB scatter working set cannot live in a 2 MB L2.
        let span = 8u64 << 20;
        let mut l2_misses = 0;
        for k in 0..4000u64 {
            // Pseudo-random walk.
            let mut z = k.wrapping_mul(0x9e3779b97f4a7c15);
            z ^= z >> 31;
            if h.access_data(0, z % span).l2_miss {
                l2_misses += 1;
            }
        }
        assert!(l2_misses > 1500, "only {l2_misses} L2 misses");
    }

    #[test]
    fn small_working_set_stays_l1_resident() {
        let mut h = MemoryHierarchy::table2();
        let mut misses_late = 0;
        for round in 0..4 {
            for addr in (0..32768u64).step_by(64) {
                // 32 KB stream fits the 64 KB L1D.
                if h.access_data(0, addr).l1_miss && round > 0 {
                    misses_late += 1;
                }
            }
        }
        assert_eq!(misses_late, 0);
    }

    #[test]
    fn stats_aggregate() {
        let mut h = MemoryHierarchy::table2();
        h.access_data(0, 0);
        h.access_inst(0, 0);
        let s = h.stats();
        assert_eq!(s.l1d.accesses, 1);
        assert_eq!(s.l1i.accesses, 1);
        assert_eq!(s.l2.accesses, 2);
        h.reset_stats();
        assert_eq!(h.stats().l1d.accesses, 0);
    }
}
