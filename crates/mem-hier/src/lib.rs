//! # `mem-hier` — cache and memory substrate
//!
//! The paper's mechanisms are driven by memory behaviour: L2 misses clog
//! the issue queue with waiting instructions (raising AVF), trigger the
//! FLUSH fetch policy inside opt2, and fire the DVM response mechanism.
//! This crate models the Table 2 hierarchy:
//!
//! | structure | geometry | latency |
//! |---|---|---|
//! | L1 I-cache | 32 KB, 2-way, 32 B lines, 2 ports | 1 cycle |
//! | L1 D-cache | 64 KB, 4-way, 64 B lines, 2 ports | 1 cycle |
//! | unified L2 | 2 MB, 4-way, 128 B lines | 12 cycles |
//! | memory | — | 200 cycles |
//! | ITLB | 128 entries, 4-way | 200-cycle miss |
//! | DTLB | 256 entries, 4-way | 200-cycle miss |
//!
//! Caches are set-associative with true LRU ([`Cache`]); TLBs reuse the
//! same engine over page numbers ([`Tlb`]). [`MemoryHierarchy`] composes
//! them and returns, per access, the end-to-end latency plus which levels
//! missed — the flags the pipeline's policies key on.

pub mod cache;
pub mod hierarchy;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{AccessResult, HierarchyConfig, HierarchyStats, MemoryHierarchy};
pub use tlb::Tlb;
