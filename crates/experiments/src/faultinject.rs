//! The `fault-inject` subcommand — statistical fault injection with
//! differential AVF validation.
//!
//! For each workload salt, two Monte-Carlo SEU campaigns run on the
//! CPU-A mix: the baseline machine and DVM pinned to a reliability
//! target of `0.5 × MaxIQ_AVF` (measured on that salt's baseline golden
//! run). Each campaign reports, per structure, the injection-derived
//! vulnerability estimate with its Wilson 95 % interval next to the ACE
//! analysis AVF of the very same golden run.
//!
//! `check()` is the `--check-avf` gate: the analytical IQ AVF must fall
//! inside the injection interval for *both* schemes on every salt (the
//! two methods must agree), and pooling across salts the DVM campaign
//! must measure strictly less IQ vulnerability than the baseline (the
//! paper's mechanism must be visible empirically, not just to the
//! model).

use crate::context::ExperimentContext;
use crate::manifest::slug;
use crate::report::Rendered;
use iq_reliability::Scheme;
use serde::{Deserialize, Serialize};
use sim_faultinject::{run_campaign, CampaignConfig, CampaignResult};
use sim_harness::{
    fnv1a, run_journaled, run_supervised, HarnessConfig, HarnessObservers, HarnessStats, JobError,
    JobKey, QuarantineEntry,
};
use sim_metrics::Metrics;
use sim_stats::Table;
use sim_trace::chrome::ChromeTraceSink;
use sim_trace::Tracer;
use smt_sim::FetchPolicyKind;
use std::io;
use std::path::Path;

/// Bump when the report layout changes incompatibly.
/// v2: added `quarantined` (supervised campaigns may complete partially).
pub const FAULT_SCHEMA_VERSION: u32 = 2;

/// One campaign of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeCampaign {
    pub salt: u64,
    pub scheme: String,
    /// DVM reliability target (absolute IQ AVF), if the scheme has one.
    pub target: Option<f64>,
    pub result: CampaignResult,
}

/// The subcommand's full output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultInjectReport {
    pub schema_version: u32,
    pub mix: String,
    pub seeds: u64,
    pub iq_trials: u64,
    pub rob_trials: u64,
    pub rf_trials: u64,
    pub campaigns: Vec<SchemeCampaign>,
    /// Salts whose injection pair kept failing and was sidelined by the
    /// supervisor; their campaigns are absent from `campaigns`.
    pub quarantined: Vec<QuarantineEntry>,
}

impl FaultInjectReport {
    pub fn write(&self, path: &Path) -> io::Result<()> {
        sim_harness::atomic_write(path, &serde::json::to_string_pretty(self))
    }

    pub fn load(path: &Path) -> io::Result<FaultInjectReport> {
        let text = std::fs::read_to_string(path)?;
        serde::json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
    }
}

/// Observability plumbing for one campaign: a metrics registry when the
/// context exports metrics, a Chrome tracer when it exports traces.
fn observers(ctx: &ExperimentContext, salt: u64, scheme: &str) -> (Metrics, Tracer) {
    let metrics = if ctx.metrics_dir().is_some() {
        Metrics::new()
    } else {
        Metrics::off()
    };
    let tracer = match ctx.trace_dir() {
        Some(dir) if std::fs::create_dir_all(dir).is_ok() => {
            let path = dir.join(format!("inject_s{salt}_{}.trace.json", slug(scheme)));
            Tracer::new(ChromeTraceSink::new(path))
        }
        _ => Tracer::off(),
    };
    (metrics, tracer)
}

fn export_observers(
    ctx: &ExperimentContext,
    salt: u64,
    scheme: &str,
    metrics: &Metrics,
    tracer: &Tracer,
) {
    tracer.flush();
    let Some(dir) = ctx.metrics_dir() else {
        return;
    };
    let snapshot = metrics.snapshot();
    let export = std::fs::create_dir_all(dir).and_then(|_| {
        std::fs::write(
            dir.join(format!("inject_s{salt}_{}.prom", slug(scheme))),
            sim_metrics::export::render_prometheus(&snapshot),
        )
    });
    if let Err(e) = export {
        eprintln!("experiments: fault-inject metrics export failed: {e}");
    }
}

/// What one supervised job produces: the {baseline, DVM} campaign pair
/// for a single salt. The pair is one job (not two) because the DVM
/// reliability target is derived from that salt's baseline golden run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaltPair {
    pub baseline: SchemeCampaign,
    pub dvm: SchemeCampaign,
}

/// A supervised fault-injection campaign: the report plus how the
/// harness got there.
#[derive(Debug, Clone)]
pub struct FaultInjectCampaign {
    pub report: FaultInjectReport,
    pub stats: HarnessStats,
    pub interrupted: bool,
}

/// Everything that determines a salt-pair's result, folded into the
/// journal key so a resumed campaign never replays records produced
/// under different simulation parameters.
fn fault_config_hash(ctx: &ExperimentContext, trials: u64, watchdog: u64) -> u64 {
    let p = &ctx.params;
    fnv1a(&format!(
        "fault-v{FAULT_SCHEMA_VERSION}|CPU-A|t{trials}|w{watchdog}|p{}w{}r{}a{}|iq{}",
        p.profile_insts, p.warmup_insts, p.run_cycles, p.ace_window, ctx.machine.iq_size
    ))
}

/// Simulate one salt's {baseline, DVM} pair. This is the unit of
/// supervision: it runs under `catch_unwind` on a worker thread.
///
/// `run_campaign` has no cancel-token plumbing, so a wall-clock
/// deadline *classifies* an overrunning pair (via the monitor's
/// deadline flag) but cannot interrupt it mid-simulation; the simulated
/// commit watchdog inside the campaign bounds genuine hangs.
fn run_salt_pair(
    ctx: &ExperimentContext,
    mix: &workload_gen::WorkloadMix,
    salt: u64,
    trials: u64,
    watchdog: u64,
) -> SaltPair {
    let programs = ctx.mix_programs_salted(mix, salt);
    let cfg = CampaignConfig {
        machine: ctx.machine.clone(),
        warmup_insts: ctx.params.warmup_insts,
        run_cycles: ctx.params.run_cycles,
        watchdog_cycles: watchdog,
        iq_trials: trials,
        rob_trials: trials / 2,
        rf_trials: trials / 2,
        ace_window: ctx.params.ace_window,
        seed: salt,
    };

    let scheme = Scheme::Baseline;
    let (metrics, tracer) = observers(ctx, salt, scheme.label());
    let baseline = run_campaign(
        &cfg,
        &programs,
        &|| {
            scheme
                .policies(FetchPolicyKind::Icount, ctx.machine.iq_size)
                .0
        },
        &metrics,
        &tracer,
    );
    export_observers(ctx, salt, scheme.label(), &metrics, &tracer);

    let target = 0.5 * baseline.ace_max_interval_iq_avf;
    let dvm = Scheme::DvmDynamic { target };
    let (metrics, tracer) = observers(ctx, salt, dvm.label());
    let dvm_result = run_campaign(
        &cfg,
        &programs,
        &|| dvm.policies(FetchPolicyKind::Icount, ctx.machine.iq_size).0,
        &metrics,
        &tracer,
    );
    export_observers(ctx, salt, dvm.label(), &metrics, &tracer);

    SaltPair {
        baseline: SchemeCampaign {
            salt,
            scheme: scheme.label().to_string(),
            target: None,
            result: baseline,
        },
        dvm: SchemeCampaign {
            salt,
            scheme: dvm.label().to_string(),
            target: Some(target),
            result: dvm_result,
        },
    }
}

/// Run the sweep under supervision: one job per salt, each producing a
/// [`SaltPair`]. With a journal directory, completed salts recorded by
/// an earlier (interrupted) run are replayed from disk instead of
/// re-simulated.
pub fn run_fault_inject_supervised(
    ctx: &ExperimentContext,
    seeds: u64,
    trials: u64,
    cfg: &HarnessConfig,
    obs: &HarnessObservers,
    journal_dir: Option<&Path>,
) -> Result<FaultInjectCampaign, JobError> {
    let mix = workload_gen::mix_by_name("CPU-A").expect("CPU-A mix exists");
    // Hang budget: a fraction of the measured window, bounded so tiny
    // smoke budgets still leave the watchdog room to fire.
    let watchdog = (ctx.params.run_cycles / 10).clamp(5_000, 20_000);
    let hash = fault_config_hash(ctx, trials, watchdog);
    let items: Vec<(JobKey, u64)> = (0..seeds)
        .map(|salt| (JobKey::new("fault-inject", "pair", salt, hash), salt))
        .collect();
    let job = |salt: &u64, _jctx: &sim_harness::JobCtx| -> Result<SaltPair, JobError> {
        Ok(run_salt_pair(ctx, &mix, *salt, trials, watchdog))
    };
    let outcome = match journal_dir {
        Some(dir) => run_journaled(dir, items, job, cfg, obs)?,
        None => run_supervised(items, job, cfg, obs, |_, _: &SaltPair| {}),
    };

    // Salt order is the input order, so campaigns stay sorted by salt
    // with baseline before DVM — identical to the sequential layout.
    let mut campaigns = Vec::new();
    for pair in outcome.values() {
        campaigns.push(pair.baseline.clone());
        campaigns.push(pair.dvm.clone());
    }
    let mut quarantined = outcome.quarantine.clone();
    quarantined.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(FaultInjectCampaign {
        report: FaultInjectReport {
            schema_version: FAULT_SCHEMA_VERSION,
            mix: mix.name.clone(),
            seeds,
            iq_trials: trials,
            rob_trials: trials / 2,
            rf_trials: trials / 2,
            campaigns,
            quarantined,
        },
        stats: outcome.stats,
        interrupted: outcome.interrupted,
    })
}

/// Run the full sweep: `seeds` salts × {baseline, DVM} campaigns with
/// `trials` IQ injections each (half that for ROB and RF).
pub fn run_fault_inject(ctx: &ExperimentContext, seeds: u64, trials: u64) -> FaultInjectReport {
    run_fault_inject_supervised(
        ctx,
        seeds,
        trials,
        &HarnessConfig::default(),
        &HarnessObservers::off(),
        None,
    )
    .expect("journal-less fault-inject campaign cannot fail on IO")
    .report
}

pub fn render(report: &FaultInjectReport) -> Rendered {
    let mut t = Table::new(vec![
        "salt",
        "scheme",
        "structure",
        "trials",
        "masked",
        "SDC",
        "detected",
        "hang",
        "inj. AVF [CI95]",
        "ACE AVF",
        "agree",
    ]);
    for c in &report.campaigns {
        for s in &c.result.structures {
            let ace = match s.structure.as_str() {
                "iq" => c.result.ace_iq_avf,
                "rob" => c.result.ace_rob_avf,
                _ => c.result.ace_rf_avf,
            };
            t.row(vec![
                c.salt.to_string(),
                c.scheme.clone(),
                s.structure.clone(),
                s.trials.to_string(),
                s.masked.to_string(),
                s.sdc.to_string(),
                s.detected.to_string(),
                s.hang.to_string(),
                format!("{:.3} [{:.3}, {:.3}]", s.avf_estimate, s.ci95.lo, s.ci95.hi),
                format!("{ace:.3}"),
                if s.ci95.contains(ace) { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    let mut r = Rendered::new(
        format!(
            "Fault injection vs ACE analysis ({}, {} salt(s), {} IQ trials/campaign)",
            report.mix, report.seeds, report.iq_trials
        ),
        t,
    )
    .note("inj. AVF = non-masked fraction of uniform (cycle, entry, bit) SEU trials; agreement means the analytical AVF lies inside the injection Wilson interval");
    if !report.quarantined.is_empty() {
        let keys: Vec<String> = report
            .quarantined
            .iter()
            .map(|q| format!("{} ({} failure(s): {})", q.key, q.failures, q.error))
            .collect();
        r = r.note(format!(
            "QUARANTINED {} salt(s) — campaigns missing above: {}",
            report.quarantined.len(),
            keys.join("; ")
        ));
    }
    r
}

/// The `--check-avf` gate. Returns human-readable failures (empty =
/// pass).
pub fn check(report: &FaultInjectReport) -> Vec<String> {
    let mut failures = Vec::new();
    for q in &report.quarantined {
        failures.push(format!(
            "quarantined: {} after {} failure(s): {}",
            q.key, q.failures, q.error
        ));
    }
    let mut pooled: std::collections::HashMap<&str, (u64, u64)> = Default::default();
    for c in &report.campaigns {
        let Some(iq) = c.result.structure("iq") else {
            failures.push(format!("salt {} {}: no IQ statistics", c.salt, c.scheme));
            continue;
        };
        if !iq.ci95.contains(c.result.ace_iq_avf) {
            failures.push(format!(
                "salt {} {}: ACE IQ AVF {:.4} outside injection CI95 [{:.4}, {:.4}] ({} trials)",
                c.salt, c.scheme, c.result.ace_iq_avf, iq.ci95.lo, iq.ci95.hi, iq.trials
            ));
        }
        let slot = pooled.entry(if c.target.is_some() {
            "dvm"
        } else {
            "baseline"
        });
        let (v, n) = slot.or_insert((0, 0));
        *v += iq.vulnerable();
        *n += iq.trials;
    }
    let rate = |key: &str| {
        pooled
            .get(key)
            .filter(|(_, n)| *n > 0)
            .map(|(v, n)| *v as f64 / *n as f64)
    };
    match (rate("baseline"), rate("dvm")) {
        (Some(base), Some(dvm)) => {
            if dvm >= base {
                failures.push(format!(
                    "pooled DVM IQ vulnerability {dvm:.4} is not below baseline {base:.4}"
                ));
            }
        }
        _ => failures.push("missing baseline or DVM campaigns for the pooled comparison".into()),
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentParams;

    fn tiny_ctx() -> ExperimentContext {
        let mut params = ExperimentParams::fast();
        params.warmup_insts = 20_000;
        params.run_cycles = 20_000;
        ExperimentContext::new(params)
    }

    #[test]
    fn sweep_produces_paired_campaigns() {
        let ctx = tiny_ctx();
        let report = run_fault_inject(&ctx, 1, 24);
        assert_eq!(report.campaigns.len(), 2);
        assert_eq!(report.campaigns[0].scheme, "baseline");
        assert!(report.campaigns[1].target.is_some());
        for c in &report.campaigns {
            assert_eq!(c.result.structure("iq").unwrap().trials, 24);
            assert_eq!(c.result.structure("rob").unwrap().trials, 12);
        }
        // Rendering covers every (campaign, structure) row.
        let text = render(&report).to_string();
        assert!(text.contains("baseline") && text.contains("DVM"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let ctx = tiny_ctx();
        let report = run_fault_inject(&ctx, 1, 8);
        let dir = std::env::temp_dir().join("smtsim_faultinject_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        report.write(&path).unwrap();
        let back = FaultInjectReport::load(&path).unwrap();
        assert_eq!(back.schema_version, FAULT_SCHEMA_VERSION);
        assert_eq!(back.campaigns.len(), report.campaigns.len());
        assert_eq!(
            back.campaigns[0].result.golden.chains,
            report.campaigns[0].result.golden.chains
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_flags_missing_schemes() {
        let report = FaultInjectReport {
            schema_version: FAULT_SCHEMA_VERSION,
            mix: "CPU-A".into(),
            seeds: 0,
            iq_trials: 0,
            rob_trials: 0,
            rf_trials: 0,
            campaigns: Vec::new(),
            quarantined: Vec::new(),
        };
        let failures = check(&report);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing baseline or DVM"));
    }

    #[test]
    fn check_flags_quarantined_salts() {
        let report = FaultInjectReport {
            schema_version: FAULT_SCHEMA_VERSION,
            mix: "CPU-A".into(),
            seeds: 1,
            iq_trials: 0,
            rob_trials: 0,
            rf_trials: 0,
            campaigns: Vec::new(),
            quarantined: vec![sim_harness::QuarantineEntry {
                key: sim_harness::JobKey::new("fault-inject", "pair", 0, 1),
                failures: 3,
                error: sim_harness::JobError::Watchdog {
                    detail: "no commits".into(),
                },
            }],
        };
        let failures = check(&report);
        assert!(
            failures.iter().any(|f| f.contains("quarantined")),
            "{failures:?}"
        );
        let text = render(&report).to_string();
        assert!(text.contains("QUARANTINED 1 salt(s)"), "{text}");
    }

    #[test]
    fn journaled_sweep_resumes_without_resimulating() {
        let dir = std::env::temp_dir().join("smtsim_faultinject_resume_test");
        std::fs::remove_dir_all(&dir).ok();
        let cfg = HarnessConfig {
            jobs: Some(1),
            ..HarnessConfig::default()
        };
        let ctx = tiny_ctx();
        let first =
            run_fault_inject_supervised(&ctx, 1, 8, &cfg, &HarnessObservers::off(), Some(&dir))
                .unwrap();
        assert!(!first.interrupted);
        assert_eq!(first.stats.completed, 1);
        assert_eq!(first.stats.resumed, 0);

        // Second run over the same journal: the salt replays from disk.
        let ctx2 = tiny_ctx();
        let second =
            run_fault_inject_supervised(&ctx2, 1, 8, &cfg, &HarnessObservers::off(), Some(&dir))
                .unwrap();
        assert_eq!(second.stats.resumed, 1, "{:?}", second.stats);
        assert_eq!(second.stats.completed, 0, "nothing re-simulated");
        assert_eq!(
            serde::json::to_string(&second.report),
            serde::json::to_string(&first.report),
            "replayed report must match the simulated one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
