//! Figure 10 — DVM versus the open-loop reliability optimizations.
//!
//! PVE of VISA, VISA+opt1, VISA+opt2, DVM (static ratio) and DVM
//! (dynamic ratio) at every reliability threshold. The open-loop schemes
//! reduce *average* vulnerability but cannot hold a runtime threshold
//! (high PVE); the static DVM manages it partially; the dynamic DVM
//! dominates — "the dynamic approach always outperforms the static".
//!
//! The static variant's pinned ratio is derived per mix from the dynamic
//! run's average adaptive ratio, exactly as the paper does.

use crate::context::ExperimentContext;
use crate::fig8::unique_fracs;
use crate::parallel::parallel_map;
use crate::report::Rendered;
use crate::runner::{run_scheme, RunOutcome};
use iq_reliability::Scheme;
use sim_stats::{mean, Table};
use smt_sim::FetchPolicyKind;
use workload_gen::{standard_mixes, MixGroup};

pub const SCHEME_LABELS: [&str; 5] = [
    "VISA",
    "VISA+opt1",
    "VISA+opt2",
    "DVM (static ratio)",
    "DVM (dynamic ratio)",
];

pub struct Fig10Result {
    /// (group, threshold fraction, scheme label, PVE).
    pub cells: Vec<(MixGroup, f64, &'static str, f64)>,
}

pub fn run(ctx: &ExperimentContext) -> Fig10Result {
    let fetch = FetchPolicyKind::Icount;
    let mixes = standard_mixes();

    // Baselines anchor MaxIQ_AVF; open-loop schemes run once per mix
    // (their PVE is then evaluated at every threshold).
    let baselines = parallel_map(mixes.clone(), |mix| {
        run_scheme(ctx, mix, Scheme::Baseline, fetch)
    });
    let open_loop: Vec<(Scheme, Vec<RunOutcome>)> =
        [Scheme::Visa, Scheme::VisaOpt1, Scheme::VisaOpt2]
            .into_iter()
            .map(|s| {
                let runs = parallel_map(mixes.clone(), |mix| run_scheme(ctx, mix, s, fetch));
                (s, runs)
            })
            .collect();

    // DVM dynamic per (mix, threshold); static re-runs with the dynamic
    // run's average ratio.
    // Duplicate thresholds are deduplicated (micro-budget benches pass a
    // repeated single value).
    let fracs = unique_fracs(&ctx.params.threshold_fracs);
    let jobs: Vec<(usize, f64)> = (0..mixes.len())
        .flat_map(|i| fracs.iter().map(move |&f| (i, f)))
        .collect();
    let dvm_pairs = parallel_map(jobs.clone(), |&(i, frac)| {
        let target = frac * baselines[i].avf.max_interval_iq_avf();
        let dynamic = run_scheme(ctx, &mixes[i], Scheme::DvmDynamic { target }, fetch);
        let ratio = dynamic.dvm_avg_ratio.unwrap_or(1.0).max(0.25);
        let stat = run_scheme(ctx, &mixes[i], Scheme::DvmStatic { target, ratio }, fetch);
        (dynamic, stat)
    });

    let mut cells = Vec::new();
    for group in MixGroup::ALL {
        for &frac in &fracs {
            // Open-loop schemes: PVE of their own interval series against
            // the baseline-anchored target.
            for (scheme, runs) in &open_loop {
                let mut pves = Vec::new();
                for (i, mix) in mixes.iter().enumerate() {
                    if mix.group != group {
                        continue;
                    }
                    let target = frac * baselines[i].avf.max_interval_iq_avf();
                    pves.push(runs[i].avf.iq_interval_avf.pve(target));
                }
                cells.push((group, frac, scheme.label(), mean(&pves)));
            }
            let mut stat_pves = Vec::new();
            let mut dyn_pves = Vec::new();
            for (k, &(i, f)) in jobs.iter().enumerate() {
                if f != frac || mixes[i].group != group {
                    continue;
                }
                let target = frac * baselines[i].avf.max_interval_iq_avf();
                dyn_pves.push(dvm_pairs[k].0.avf.iq_interval_avf.pve(target));
                stat_pves.push(dvm_pairs[k].1.avf.iq_interval_avf.pve(target));
            }
            cells.push((group, frac, "DVM (static ratio)", mean(&stat_pves)));
            cells.push((group, frac, "DVM (dynamic ratio)", mean(&dyn_pves)));
        }
    }
    Fig10Result { cells }
}

pub fn render(result: &Fig10Result) -> Rendered {
    let mut t = Table::new(vec!["workload", "target", "scheme", "PVE"]);
    for (group, frac, scheme, pve) in &result.cells {
        t.row(vec![
            group.label().to_string(),
            format!("{frac:.1}*MaxAVF"),
            scheme.to_string(),
            format!("{:.0}%", pve * 100.0),
        ]);
    }
    Rendered::new(
        "Figure 10: PVE comparison — DVM vs open-loop reliability optimizations (ICOUNT)",
        t,
    )
    .note("expected ordering per cell: DVM(dynamic) <= DVM(static) << VISA-family")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentParams;

    #[test]
    fn dvm_beats_open_loop_schemes() {
        let mut params = ExperimentParams::fast();
        params.threshold_fracs = [0.5; 5];
        let ctx = ExperimentContext::new(params);
        let result = run(&ctx);
        for group in MixGroup::ALL {
            let pve_of = |label: &str| {
                result
                    .cells
                    .iter()
                    .find(|(g, f, s, _)| *g == group && *f == 0.5 && *s == label)
                    .map(|(_, _, _, p)| *p)
                    .unwrap()
            };
            let dynamic = pve_of("DVM (dynamic ratio)");
            let visa = pve_of("VISA");
            assert!(
                dynamic <= visa + 1e-9,
                "{}: dynamic {:.2} vs VISA {:.2}",
                group.label(),
                dynamic,
                visa
            );
            assert!(
                dynamic < 0.35,
                "{}: dynamic PVE {:.2}",
                group.label(),
                dynamic
            );
        }
    }
}
