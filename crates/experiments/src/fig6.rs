//! Figure 6 — VISA-based optimizations under advanced fetch policies.
//!
//! The Figure 5 matrix repeated with STALL, FLUSH, DG and PDG as the
//! default fetch policy, everything normalized to the *same-policy*
//! baseline. Expected shape: the reductions persist under every policy,
//! and are smallest under FLUSH on MIX/MEM because the FLUSH baseline
//! already de-clogs the IQ ("its IQ AVF is already much lower than the
//! baseline cases of the other fetch policies").

use crate::context::ExperimentContext;
use crate::fig5::{self, Fig5Result};
use crate::report::Rendered;
use smt_sim::FetchPolicyKind;

pub const POLICIES: [FetchPolicyKind; 4] = [
    FetchPolicyKind::Stall,
    FetchPolicyKind::Flush,
    FetchPolicyKind::Dg,
    FetchPolicyKind::Pdg,
];

pub struct Fig6Result {
    pub per_policy: Vec<(FetchPolicyKind, Fig5Result)>,
}

pub fn run(ctx: &ExperimentContext) -> Fig6Result {
    let per_policy = POLICIES
        .iter()
        .map(|&p| (p, fig5::run_with_fetch(ctx, p)))
        .collect();
    Fig6Result { per_policy }
}

pub fn render(result: &Fig6Result) -> Vec<Rendered> {
    result
        .per_policy
        .iter()
        .map(|(policy, res)| {
            fig5::render_titled(
                res,
                &format!(
                    "Figure 6: normalized IQ AVF and IPC (fetch policy: {})",
                    policy.label()
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentParams;
    use iq_reliability::Scheme;
    use sim_stats::mean;

    #[test]
    fn reductions_persist_under_advanced_policies() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        // Keep the test affordable: STALL and FLUSH only.
        for policy in [FetchPolicyKind::Stall, FetchPolicyKind::Flush] {
            let res = fig5::run_with_fetch(&ctx, policy);
            assert!(res.runs.iter().all(|r| !r.deadlocked), "{policy:?}");
            let opt2: Vec<f64> = res
                .rows
                .iter()
                .filter(|(_, s, _, _)| *s == Scheme::VisaOpt2.label())
                .map(|(_, _, a, _)| *a)
                .collect();
            assert!(
                mean(&opt2) < 0.95,
                "{policy:?}: VISA+opt2 must still cut AVF, got {:.2}",
                mean(&opt2)
            );
        }
    }
}
