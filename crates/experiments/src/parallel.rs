//! Embarrassingly parallel fan-out of independent simulations.
//!
//! Simulations share nothing mutable (each owns its pipeline, caches and
//! collector; the context's program cache is behind a lock and read-heavy),
//! so experiments fan out with scoped threads: a shared atomic work index
//! hands out jobs, results land in their input slots, and data-race
//! freedom follows from `std::thread::scope`'s borrow rules — the idiom
//! the Rust concurrency guides recommend for fixed work lists. Thread
//! count adapts to the host (`std::thread::available_parallelism`), so on
//! a single-core host this degrades gracefully to sequential execution.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Apply `f` to every item, in parallel, preserving input order in the
/// output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // Hand each worker a disjoint view of the output slots via raw
    // chunking: each index is written exactly once by the worker that
    // claimed it from the atomic counter. A Mutex<Vec<Option<R>>> would
    // also work; per-slot handoff through a channel keeps it lock-free.
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let items = &items;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // The receiver outlives all senders within the scope.
                let _ = tx.send((i, r));
            });
        }
        drop(tx);
        while let Ok((i, r)) = rx.recv() {
            slots[i] = Some(r);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker completed every claimed job"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100u64).collect(), |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_state_is_shared_immutably() {
        let table: Vec<u64> = (0..1000).collect();
        let out = parallel_map((0..50usize).collect(), |&i| table[i * 2]);
        assert_eq!(out[10], 20);
    }
}
