//! Embarrassingly parallel fan-out of independent simulations.
//!
//! Simulations share nothing mutable (each owns its pipeline, caches and
//! collector; the context's program cache is behind a lock and read-heavy),
//! so experiments fan out over the supervised worker pool in
//! [`sim_harness`]: a shared atomic work index hands out jobs, every job
//! runs under `catch_unwind`, and results land back in their input slots.
//! Worker count defaults to `--jobs` / `available_parallelism` (see
//! [`sim_harness::default_jobs`]), so on a single-core host this degrades
//! gracefully to sequential execution.
//!
//! Two entry points:
//!
//! * [`try_parallel_map`] — per-slot `Result`: a job that panics (or is
//!   skipped because shutdown was requested) yields `Err` for *its slot*
//!   while every other job still completes.
//! * [`parallel_map`] — the historical infallible signature. A panicking
//!   job no longer poisons the scope mid-campaign; the remaining jobs
//!   finish first and the panic is re-raised afterwards with the slot
//!   index attached.

use sim_harness::{
    run_supervised, Backoff, HarnessConfig, HarnessObservers, JobError, JobKey, JobOutcome,
};

/// Supervision policy for in-process exhibit fan-out: no retries (the
/// simulations are deterministic, so a failure is not transient), no
/// deadline, worker count from the process default (`--jobs`).
fn exhibit_cfg() -> HarnessConfig {
    HarnessConfig {
        max_attempts: 1,
        backoff: Backoff::none(),
        quarantine_threshold: 1,
        deadline: None,
        ..HarnessConfig::default()
    }
}

/// Apply `f` to every item in parallel, preserving input order, with
/// per-slot failure isolation: slot `i` is `Err` if job `i` panicked or
/// was skipped by a shutdown request, independent of every other slot.
pub fn try_parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, JobError>>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let keyed: Vec<(JobKey, T)> = items
        .into_iter()
        .enumerate()
        .map(|(i, item)| (JobKey::new("exhibit", "map", i as u64, 0), item))
        .collect();
    let outcome = run_supervised(
        keyed,
        |item, _ctx| Ok(f(item)),
        &exhibit_cfg(),
        &HarnessObservers::off(),
        |_, _: &R| {},
    );
    outcome
        .jobs
        .into_iter()
        .map(|(_, o)| match o {
            JobOutcome::Completed { value, .. } => Ok(value),
            JobOutcome::Quarantined { error, .. } => Err(error),
            JobOutcome::Skipped => Err(JobError::Io {
                detail: "skipped: shutdown requested before the job started".to_string(),
            }),
        })
        .collect()
}

/// Apply `f` to every item, in parallel, preserving input order in the
/// output. If any job panics, every other job still runs to completion
/// and the panic is then re-raised on the calling thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map(items, f)
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            Ok(v) => v,
            Err(e) => panic!("parallel job {i} failed: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100u64).collect(), |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn heavy_closure_state_is_shared_immutably() {
        let table: Vec<u64> = (0..1000).collect();
        let out = parallel_map((0..50usize).collect(), |&i| table[i * 2]);
        assert_eq!(out[10], 20);
    }

    #[test]
    fn panicking_job_fails_only_its_slot() {
        let out = try_parallel_map((0..8u64).collect(), |&x| {
            if x == 3 {
                panic!("job three detonated");
            }
            x * 10
        });
        assert_eq!(out.len(), 8);
        for (i, slot) in out.iter().enumerate() {
            if i == 3 {
                assert!(
                    matches!(slot, Err(JobError::Panic { message }) if message.contains("detonated")),
                    "slot 3 should carry the panic: {slot:?}"
                );
            } else {
                assert_eq!(*slot.as_ref().unwrap(), (i as u64) * 10);
            }
        }
    }

    #[test]
    fn parallel_map_finishes_other_jobs_before_repanicking() {
        let ran = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map((0..6u64).collect(), |&x| {
                ran.fetch_add(1, Ordering::SeqCst);
                if x == 0 {
                    panic!("first job dies");
                }
                x
            })
        }));
        assert!(caught.is_err(), "panic must propagate to the caller");
        // Every job ran despite job 0 panicking immediately — the old
        // fan-out poisoned the whole scope instead.
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }
}
