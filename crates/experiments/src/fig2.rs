//! Figure 2 — ready-queue-length histogram and ACE-instruction share.
//!
//! For the 4-context CPU workload (bzip2, eon, gcc, perlbmk) on the
//! 96-entry IQ, 8-wide machine: the probability distribution of the
//! ready-queue length per cycle, annotated with the mean ACE share of
//! the ready instructions at each length. The paper's observations:
//! a hill-shaped distribution, abundant (> issue width) ready
//! instructions in ~90 % of cycles, and a ~60 % ACE share — the
//! headroom VISA issue exploits.

use crate::context::ExperimentContext;
use crate::report::Rendered;
use crate::runner::run_stats_only;
use iq_reliability::Scheme;
use sim_stats::Table;
use smt_sim::{FetchPolicyKind, SimStats};

pub struct Fig2Result {
    pub stats: SimStats,
}

pub fn run(ctx: &ExperimentContext) -> Fig2Result {
    let mix = workload_gen::mix_by_name("CPU-A").expect("CPU-A mix");
    let result = run_stats_only(ctx, &mix, Scheme::Baseline, FetchPolicyKind::Icount);
    Fig2Result {
        stats: result.stats,
    }
}

pub fn render(result: &Fig2Result) -> Rendered {
    let hist = &result.stats.ready_queue_hist;
    let mut t = Table::new(vec![
        "ready-queue length",
        "% of cycles",
        "ACE share of ready insts",
    ]);
    let max = hist.histogram().max_value().unwrap_or(0);
    // The paper plots every length; bucket in fours to keep the text
    // table readable without losing the hill shape.
    let mut b = 0usize;
    while b <= max {
        let hi = (b + 3).min(max);
        let mut frac = 0.0;
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for v in b..=hi {
            frac += hist.histogram().fraction(v);
            if let Some(c) = hist.companion(v) {
                // Weight by bucket mass.
                let w = hist.histogram().count(v) as f64;
                num += c * w;
                den += w;
            }
        }
        let ace = if den > 0.0 {
            format!("{:.0}%", 100.0 * num / den)
        } else {
            "-".to_string()
        };
        t.row(vec![
            format!("{b}..={hi}"),
            format!("{:.1}%", frac * 100.0),
            ace,
        ]);
        b = hi + 1;
    }
    let below9 = hist.histogram().fraction_below(9);
    let overall = hist.companion_overall().unwrap_or(0.0);
    Rendered::new(
        "Figure 2: ready-queue length histogram + ACE share (CPU-A, 96-entry IQ, width 8)",
        t,
    )
    .note(format!(
        "mean RQL = {:.1}, mode = {:?}, max = {:?}",
        hist.histogram().mean(),
        hist.histogram().mode(),
        hist.histogram().max_value()
    ))
    .note(format!(
        "cycles with RQL < 9 (issue width + 1): {:.0}% — paper reports 10%",
        below9 * 100.0
    ))
    .note(format!(
        "overall ACE share among ready instructions: {:.0}% — paper reports ~60%",
        overall * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ExperimentContext, ExperimentParams};

    #[test]
    fn hill_shape_and_abundant_ready_instructions() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let result = run(&ctx);
        let hist = &result.stats.ready_queue_hist;
        // Abundance: most cycles have more ready instructions than the
        // 8-wide issue stage can drain.
        assert!(
            hist.histogram().fraction_below(9) < 0.5,
            "ready queue too short: {:.2} below 9",
            hist.histogram().fraction_below(9)
        );
        // ACE share is substantial once hints are installed. (Measured
        // ~25-40% here vs the paper's ~60% — our synthetic ready queue
        // skews toward un-ACE entries because dead-code instructions are
        // ready immediately while ACE chains wait; see EXPERIMENTS.md.)
        let ace = hist.companion_overall().unwrap_or(0.0);
        assert!(ace > 0.15, "ACE share {ace}");
        let text = render(&result).to_text();
        assert!(text.contains("Figure 2"));
    }
}
