//! Mid-run checkpointing of a measured simulation: the combined
//! (pipeline + AVF collector) snapshot codec and the checkpointed
//! measured-run driver.
//!
//! A resumable measured run has two pieces of live state: the
//! [`Pipeline`] itself and the [`AvfCollector`] observing it (whose ACE
//! window and interval accumulators are as much "simulation state" as
//! the issue queue is — drop them and the resumed AVF series diverges).
//! Both are serialized into one file wrapped in the `sim-snapshot`
//! container, so a single CRC covers machine and collector bytes alike
//! and any flipped bit anywhere in the file is rejected on load. The
//! container's config-hash binding uses [`Pipeline::config_hash`],
//! which means a snapshot can only be restored onto a pipeline built
//! from the same machine table, policies, interval and programs.
//!
//! Checkpoints are taken cooperatively from [`Pipeline::run_hooked`] on
//! the sampling-interval grid — the same boundary the cancel token is
//! polled on — so the snapshot always captures a quiescent
//! between-intervals state, never a mid-cycle one.

use std::cell::RefCell;

use avf::AvfCollector;
use sim_harness::{JobError, SnapshotStore};
use sim_metrics::Metrics;
use sim_snapshot::{read_container, write_container, SnapReader, SnapWriter};
use smt_sim::{HookAction, Pipeline, SimLimits, SimObserver, SimResult};

/// Default simulated-cycle spacing between snapshots: one per sampling
/// interval. `--snapshot-every` overrides it; values that are not a
/// multiple of the interval take effect at the first boundary at or
/// after the requested spacing.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = smt_sim::DEFAULT_INTERVAL_CYCLES;

/// Snapshots durably written to disk.
pub const C_SNAPSHOTS_WRITTEN: &str = "harness.snapshots.written";
/// Runs that restored mid-measurement state from a snapshot.
pub const C_SNAPSHOTS_RESTORED: &str = "harness.snapshots.restored";
/// Corrupt/torn snapshot files skipped while restoring.
pub const C_SNAPSHOTS_SKIPPED_CORRUPT: &str = "harness.snapshots.skipped_corrupt";
/// `--selfcheck` invariant sweeps that failed at a snapshot boundary.
pub const C_SELFCHECK_FAILED: &str = "harness.snapshots.selfcheck_failures";

/// Serialize the full resumable state of a measured run. The result is
/// a `sim-snapshot` container whose payload holds the pipeline's own
/// (nested, independently checksummed) snapshot followed by the raw
/// collector state, each length-prefixed.
pub fn encode_checkpoint(pipeline: &Pipeline, collector: &AvfCollector) -> Vec<u8> {
    let machine = pipeline.save_snapshot();
    let mut cw = SnapWriter::new();
    collector.save_state(&mut cw);
    let cbytes = cw.into_bytes();
    let mut w = SnapWriter::new();
    w.put_u64(machine.len() as u64);
    w.put_bytes(&machine);
    w.put_u64(cbytes.len() as u64);
    w.put_bytes(&cbytes);
    write_container(pipeline.config_hash(), pipeline.cycle(), &w.into_bytes())
}

/// Restore a combined checkpoint onto a freshly constructed pipeline
/// and collector. Returns the absolute cycle the snapshot was taken at.
/// Structural invariants are always checked after a restore — a
/// snapshot that decodes but describes an impossible machine must not
/// resume. On error the pipeline/collector may be partially written;
/// decode into fresh objects and discard them on failure.
pub fn decode_checkpoint(
    bytes: &[u8],
    pipeline: &mut Pipeline,
    collector: &mut AvfCollector,
) -> Result<u64, String> {
    let bail = |stage: &str, e: sim_snapshot::SnapError| format!("{stage}: {e:?}");
    let (header, payload) =
        read_container(bytes, pipeline.config_hash()).map_err(|e| bail("container", e))?;
    let mut r = SnapReader::new(payload);
    let mlen = r.get_len().map_err(|e| bail("machine length", e))?;
    let machine = r.take_bytes(mlen).map_err(|e| bail("machine bytes", e))?;
    let clen = r.get_len().map_err(|e| bail("collector length", e))?;
    let cbytes = r.take_bytes(clen).map_err(|e| bail("collector bytes", e))?;
    if r.remaining() != 0 {
        return Err(format!("{} trailing payload bytes", r.remaining()));
    }
    pipeline
        .restore_snapshot(machine)
        .map_err(|e| bail("pipeline restore", e))?;
    let mut cr = SnapReader::new(cbytes);
    collector
        .restore_state(&mut cr)
        .map_err(|e| bail("collector restore", e))?;
    if cr.remaining() != 0 {
        return Err(format!("{} trailing collector bytes", cr.remaining()));
    }
    pipeline
        .check_invariants()
        .map_err(|e| format!("restored state fails invariants: {e}"))?;
    Ok(header.cycle)
}

/// Checkpointing policy for one measured run.
pub struct CheckpointPolicy<'a> {
    /// Where snapshots for this job rotate.
    pub store: &'a SnapshotStore,
    /// Minimum simulated cycles between snapshots (snapshots land on
    /// the sampling-interval grid, so the effective spacing is this
    /// rounded up to the next boundary).
    pub every: u64,
    /// Run [`Pipeline::check_invariants`] at every snapshot boundary
    /// and fail fast instead of persisting a poisoned checkpoint.
    pub selfcheck: bool,
    /// Harness-level metrics registry for the `harness.snapshots.*`
    /// counters (written / restored / skipped-corrupt / selfcheck
    /// failures). Pass [`Metrics::off`] when not collecting.
    pub metrics: &'a Metrics,
}

/// A finished (or stopped) checkpointed measured run.
pub struct MeasuredRun {
    pub result: SimResult,
    pub collector: AvfCollector,
    /// Snapshots written during this run.
    pub snapshots: u64,
}

/// The observer seat shared with the checkpoint hook: the collector
/// must be visible both as the pipeline's `SimObserver` (mutably, per
/// retirement event) and to the hook (immutably, to serialize it at a
/// boundary), so it lives in a `RefCell` for the duration of the run.
struct SharedObserver<'a>(&'a RefCell<AvfCollector>);

impl SimObserver for SharedObserver<'_> {
    fn on_commit(&mut self, ev: &smt_sim::RetireEvent) {
        self.0.borrow_mut().on_commit(ev);
    }
    fn on_squash(&mut self, ev: &smt_sim::RetireEvent) {
        self.0.borrow_mut().on_squash(ev);
    }
    fn on_finish(&mut self, final_cycle: u64) {
        self.0.borrow_mut().on_finish(final_cycle);
    }
}

/// Drive the measured phase with periodic checkpoints. `on_checkpoint`
/// fires after each snapshot is durably on disk (journal `checkpointed`
/// marker hook). Fails with [`JobError::Diverged`] when `selfcheck`
/// catches an invariant violation — carrying the pipeline's diagnostic
/// — and with [`JobError::Io`] when a snapshot cannot be written.
pub fn run_measured_checkpointed(
    pipeline: &mut Pipeline,
    collector: AvfCollector,
    limits: SimLimits,
    policy: &CheckpointPolicy<'_>,
    mut on_checkpoint: impl FnMut(u64),
) -> Result<MeasuredRun, JobError> {
    let shared = RefCell::new(collector);
    let every = policy.every.max(1);
    // The hook also fires at the run's very first boundary (cycle zero
    // of the measured window, or the restore point); that state is
    // already on disk or trivially reconstructable, so the first call
    // only anchors the cadence.
    let mut last_ckpt: Option<u64> = None;
    let mut snapshots = 0u64;
    let mut failure: Option<JobError> = None;
    let mut obs = SharedObserver(&shared);
    let result = pipeline.run_hooked(limits, &mut obs, &mut |p| {
        let now = p.cycle();
        let due = match last_ckpt {
            None => {
                last_ckpt = Some(now);
                false
            }
            Some(prev) => now >= prev + every,
        };
        if !due {
            return HookAction::Continue;
        }
        if policy.selfcheck {
            if let Err(why) = p.check_invariants() {
                policy.metrics.counter_add(C_SELFCHECK_FAILED, 1);
                failure = Some(JobError::Diverged {
                    detail: format!("selfcheck: invariant violation at cycle {now}: {why}"),
                });
                return HookAction::Stop;
            }
        }
        let _write = p.profiler().span("snapshot.write");
        let bytes = encode_checkpoint(p, &shared.borrow());
        match policy.store.save(now, &bytes) {
            Ok(_) => {
                last_ckpt = Some(now);
                snapshots += 1;
                policy.metrics.counter_add(C_SNAPSHOTS_WRITTEN, 1);
                on_checkpoint(now);
                HookAction::Continue
            }
            Err(e) => {
                failure = Some(e);
                HookAction::Stop
            }
        }
    });
    let collector = shared.into_inner();
    if let Some(err) = failure {
        return Err(err);
    }
    Ok(MeasuredRun {
        result,
        collector,
        snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::pipeline::PipelinePolicies;
    use smt_sim::{FetchPolicyKind, MachineConfig};
    use std::path::PathBuf;
    use std::sync::Arc;

    const INTERVAL: u64 = smt_sim::DEFAULT_INTERVAL_CYCLES;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("experiments-checkpoint")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fresh() -> (Pipeline, AvfCollector) {
        let cfg = MachineConfig::table2();
        let programs = ["gcc", "mcf", "swim", "bzip2"]
            .iter()
            .map(|n| {
                Arc::new(workload_gen::generate_program_salted(
                    &workload_gen::model_by_name(n).unwrap(),
                    7,
                ))
            })
            .collect();
        let policies = PipelinePolicies {
            fetch: FetchPolicyKind::Icount.build(),
            ..Default::default()
        };
        let collector = AvfCollector::new(&cfg, 2_000, INTERVAL);
        (Pipeline::new(cfg, programs, policies), collector)
    }

    #[test]
    fn checkpointed_run_matches_plain_run_bit_for_bit() {
        let limits = SimLimits::cycles(4 * INTERVAL);

        let (mut p_ref, mut c_ref) = fresh();
        let r_ref = p_ref.run(limits, &mut c_ref);
        assert!(!r_ref.deadlocked && !r_ref.cancelled);

        let dir = scratch("matches_plain");
        let store = SnapshotStore::new(&dir, "job");
        let (mut p, c) = fresh();
        let mut seen = Vec::new();
        let run = run_measured_checkpointed(
            &mut p,
            c,
            limits,
            &CheckpointPolicy {
                store: &store,
                every: INTERVAL,
                selfcheck: true,
                metrics: &Metrics::off(),
            },
            |cy| seen.push(cy),
        )
        .unwrap();
        assert!(!run.result.deadlocked && !run.result.cancelled);
        assert_eq!(run.snapshots, 3, "boundaries 1..=3 of the 4 intervals");
        assert_eq!(seen.len(), 3);
        assert_eq!(p.save_snapshot(), p_ref.save_snapshot());
        assert_eq!(
            run.collector.report().iq_avf.to_bits(),
            c_ref.report().iq_avf.to_bits()
        );

        // Resume from the newest on-disk snapshot and finish a longer
        // budget: identical to running that budget straight through.
        let long = SimLimits::cycles(6 * INTERVAL);
        let (mut p_long, mut c_long) = fresh();
        p_long.run(long, &mut c_long);
        let loaded = store
            .load_latest_valid(|bytes| {
                let (mut p2, mut c2) = fresh();
                let cycle = decode_checkpoint(bytes, &mut p2, &mut c2)?;
                Ok((p2, c2, cycle))
            })
            .unwrap()
            .unwrap();
        assert_eq!(loaded.skipped_corrupt, 0);
        let (mut p3, mut c3, _) = loaded.value;
        let r3 = p3.run(long, &mut c3);
        assert!(!r3.deadlocked && !r3.cancelled);
        assert_eq!(p3.save_snapshot(), p_long.save_snapshot());
        assert_eq!(
            c3.report().iq_avf.to_bits(),
            c_long.report().iq_avf.to_bits()
        );
    }

    #[test]
    fn selfcheck_catches_corrupted_live_ace_counter() {
        let dir = scratch("selfcheck_catches");
        let store = SnapshotStore::new(&dir, "job");
        let (mut p, c) = fresh();
        // Deliberately corrupt the live IQ ACE counter before the run;
        // the first selfcheck boundary must catch it and refuse to
        // write a poisoned checkpoint.
        p.corrupt_iq_ace_counter(1);
        let err = run_measured_checkpointed(
            &mut p,
            c,
            SimLimits::cycles(2 * INTERVAL),
            &CheckpointPolicy {
                store: &store,
                every: INTERVAL,
                selfcheck: true,
                metrics: &Metrics::off(),
            },
            |_| {},
        )
        .map(|run| run.snapshots)
        .unwrap_err();
        assert!(
            matches!(err, JobError::Diverged { ref detail }
                if detail.contains("selfcheck") && detail.contains("cycle")),
            "diagnostic names the check and the cycle: {err:?}"
        );
        assert!(
            store.list().is_empty(),
            "no checkpoint written after the violation"
        );

        // Without --selfcheck the same corruption sails through to a
        // (poisoned) checkpoint — which the *restore* path then rejects,
        // because invariants are always checked after a restore.
        let dir2 = scratch("selfcheck_off");
        let store2 = SnapshotStore::new(&dir2, "job");
        let (mut p2, c2) = fresh();
        p2.corrupt_iq_ace_counter(1);
        let run = run_measured_checkpointed(
            &mut p2,
            c2,
            SimLimits::cycles(2 * INTERVAL),
            &CheckpointPolicy {
                store: &store2,
                every: INTERVAL,
                selfcheck: false,
                metrics: &Metrics::off(),
            },
            |_| {},
        )
        .unwrap();
        assert!(run.snapshots >= 1);
        let err = store2
            .load_latest_valid(|bytes| {
                let (mut p3, mut c3) = fresh();
                decode_checkpoint(bytes, &mut p3, &mut c3)
            })
            .unwrap_err();
        assert!(matches!(err, JobError::Corrupt { ref detail } if detail.contains("invariant")));
    }

    #[test]
    fn flipped_bit_anywhere_rejects_and_falls_back() {
        let dir = scratch("flip_falls_back");
        let store = SnapshotStore::new(&dir, "job");
        let (mut p, c) = fresh();
        let run = run_measured_checkpointed(
            &mut p,
            c,
            SimLimits::cycles(3 * INTERVAL),
            &CheckpointPolicy {
                store: &store,
                every: INTERVAL,
                selfcheck: false,
                metrics: &Metrics::off(),
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(run.snapshots, 2);
        let files = store.list();
        assert_eq!(files.len(), 2);

        // Flip one bit deep in the newest file's *collector* region —
        // past the nested machine container — to prove the outer CRC
        // covers the whole combined payload.
        let (newest_cycle, newest) = &files[0];
        let mut bytes = std::fs::read(newest).unwrap();
        let idx = bytes.len() - 16;
        bytes[idx] ^= 0x40;
        std::fs::write(newest, &bytes).unwrap();

        let loaded = store
            .load_latest_valid(|b| {
                let (mut p2, mut c2) = fresh();
                decode_checkpoint(b, &mut p2, &mut c2).map(|cy| (p2, c2, cy))
            })
            .unwrap()
            .unwrap();
        assert_eq!(loaded.skipped_corrupt, 1, "fell back past the bad file");
        assert!(loaded.cycle < *newest_cycle);
    }
}
