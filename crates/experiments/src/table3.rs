//! Table 3 — the studied SMT workloads.

use crate::report::Rendered;
use sim_stats::Table;
use workload_gen::standard_mixes;

pub fn render() -> Rendered {
    let mut t = Table::new(vec!["thread type", "group", "benchmarks"]);
    for mix in standard_mixes() {
        let (ty, grp) = mix.name.split_once('-').unwrap_or((&mix.name, "?"));
        t.row(vec![
            ty.to_string(),
            format!("Group {grp}"),
            mix.benchmarks.join(", "),
        ]);
    }
    Rendered::new("Table 3: the studied SMT workloads", t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_rows_matching_paper() {
        let r = render();
        assert_eq!(r.table.num_rows(), 9);
        let text = r.to_text();
        assert!(text.contains("bzip2, eon, gcc, perlbmk"));
        assert!(text.contains("mcf, equake, vpr, swim"));
        assert!(text.contains("equake, swim, twolf, galgel"));
    }
}
