//! `bench-baseline` — the perf/AVF regression harness.
//!
//! Runs a fixed, scheme-diverse exhibit set (baseline, opt1, opt2 and
//! DVM, over CPU- and MEM-bound mixes) across N workload salts and
//! records, per exhibit, the cross-seed [`SeedSummary`] of host
//! wall-time, throughput IPC, harmonic IPC and ground-truth IQ AVF into
//! a schema-versioned `BENCH_<tag>.json`. A later run compares itself
//! against that file with [`compare`]: wall-time regressions are gated
//! one-sided at +15 %, simulation metrics two-sided at 2 % *and* beyond
//! the combined 95 % confidence intervals — a drift smaller than the
//! seed noise is not a regression, it is weather.

use crate::checkpoint::{CheckpointPolicy, DEFAULT_SNAPSHOT_EVERY};
use crate::context::ExperimentContext;
use crate::manifest::BudgetSummary;
use crate::report::Rendered;
use crate::runner::{run_scheme_cancellable, run_scheme_checkpointed};
use iq_reliability::Scheme;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim_harness::{
    fnv1a, run_journaled_in, run_supervised, HarnessConfig, HarnessObservers, HarnessStats,
    JobError, JobKey, Journal, QuarantineEntry, SnapshotStore,
};
use sim_stats::{SeedSummary, Table};
use smt_sim::FetchPolicyKind;
use std::io;
use std::path::Path;

/// Bump when the JSON layout changes; [`compare`] refuses mismatches —
/// except v2, which v3 reads compatibly (its host-throughput fields
/// load as `None` and the throughput gates are skipped with a warning).
/// v2: campaigns run under the `sim-harness` supervisor and the file
/// gained an explicit `quarantined` section.
/// v3: exhibits gained cross-seed host-throughput summaries
/// (`host_cycles_per_sec`, `host_instrs_per_sec`) and samples the
/// per-seed rates, enabling the one-sided throughput gate.
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Oldest schema [`compare`] still accepts as a baseline.
pub const BENCH_SCHEMA_COMPAT: u32 = 2;

/// One-sided wall-time gate: current mean may exceed baseline by 15 %.
pub const WALL_TIME_TOLERANCE: f64 = 0.15;

/// One-sided host-throughput gate: current mean cycles/s (or instrs/s)
/// may fall below baseline by at most 15 %.
pub const THROUGHPUT_TOLERANCE: f64 = 0.15;

/// Two-sided simulation-metric gate: 2 % relative drift.
pub const METRIC_TOLERANCE: f64 = 0.02;

/// One fixed benchmark case.
pub struct BenchCase {
    pub name: &'static str,
    pub mix: &'static str,
    pub scheme: Scheme,
    pub fetch: FetchPolicyKind,
}

/// The fixed exhibit set: one representative per governor family, over
/// both CPU- and MEM-bound mixes.
pub fn bench_cases() -> Vec<BenchCase> {
    vec![
        BenchCase {
            name: "fig2-cpu-baseline",
            mix: "CPU-A",
            scheme: Scheme::Baseline,
            fetch: FetchPolicyKind::Icount,
        },
        BenchCase {
            name: "opt1-mix",
            mix: "MIX-A",
            scheme: Scheme::VisaOpt1,
            fetch: FetchPolicyKind::Icount,
        },
        BenchCase {
            name: "opt2-flush-mem",
            mix: "MEM-B",
            scheme: Scheme::VisaOpt2,
            fetch: FetchPolicyKind::Flush,
        },
        BenchCase {
            name: "dvm-mem",
            mix: "MEM-A",
            scheme: Scheme::DvmDynamic { target: 0.15 },
            fetch: FetchPolicyKind::Icount,
        },
    ]
}

/// Cross-seed digest of one bench case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchExhibit {
    pub name: String,
    pub mix: String,
    pub scheme: String,
    pub fetch: String,
    pub wall_time_s: SeedSummary,
    pub throughput_ipc: SeedSummary,
    pub harmonic_ipc: SeedSummary,
    pub iq_avf: SeedSummary,
    /// Host simulation rate (simulated cycles per host second) over the
    /// measured window. `None` when loaded from a v2 baseline or when
    /// any contributing sample lacked a measured-phase timing.
    pub host_cycles_per_sec: Option<SeedSummary>,
    /// Host retire rate (committed instructions per host second).
    pub host_instrs_per_sec: Option<SeedSummary>,
}

/// A whole baseline file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBaseline {
    pub schema_version: u32,
    /// Seeded runs aggregated per exhibit.
    pub seeds: u64,
    /// Measurement budget every run used (compared on `--check-baseline`:
    /// numbers from different budgets are not comparable).
    pub budget: BudgetSummary,
    pub exhibits: Vec<BenchExhibit>,
    /// Jobs the supervisor gave up on (exhausted retries); their samples
    /// are missing from the exhibit summaries above. Empty on a healthy
    /// campaign.
    pub quarantined: Vec<QuarantineEntry>,
}

impl BenchBaseline {
    /// Atomic write (`.tmp` + rename): readers and resumed campaigns
    /// never observe a torn baseline file.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        sim_harness::atomic_write(path, &serde::json::to_string_pretty(self))
    }

    pub fn load(path: &Path) -> io::Result<BenchBaseline> {
        let text = std::fs::read_to_string(path)?;
        serde::json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
    }

    pub fn exhibit(&self, name: &str) -> Option<&BenchExhibit> {
        self.exhibits.iter().find(|e| e.name == name)
    }
}

/// The per-job journal payload: the scalar samples one `(case, salt)`
/// simulation contributes to its exhibit's cross-seed summary. This is
/// what checkpoint–resume replays, so it must stay serializable and
/// stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSample {
    /// Index into [`bench_cases`].
    pub case: u64,
    pub salt: u64,
    pub wall_time_s: f64,
    pub throughput_ipc: f64,
    pub harmonic_ipc: f64,
    pub iq_avf: f64,
    /// Simulated cycles per host second over the measured window; `None`
    /// in records replayed from a pre-v3 journal.
    pub host_cycles_per_sec: Option<f64>,
    pub host_instrs_per_sec: Option<f64>,
}

/// A supervised bench campaign: the (possibly partial) baseline plus
/// the harness's account of what it took to produce it.
#[derive(Debug)]
pub struct BenchCampaign {
    pub baseline: BenchBaseline,
    pub stats: HarnessStats,
    /// True when SIGINT (or an injected shutdown flag) stopped the
    /// campaign early; the journal holds the completed jobs and a
    /// re-run with the same journal directory finishes the rest.
    pub interrupted: bool,
}

/// Config-hash input for bench job keys: anything that changes the
/// meaning of a `(case, salt)` result must appear here so stale journal
/// records are invalidated rather than replayed.
fn bench_config_hash(ctx: &ExperimentContext, case: &BenchCase) -> u64 {
    fnv1a(&format!(
        "bench-v{}|{}|{}|{:?}|{:?}|p{}w{}r{}a{}",
        BENCH_SCHEMA_VERSION,
        case.name,
        case.mix,
        case.scheme.label(),
        case.fetch,
        ctx.params.profile_insts,
        ctx.params.warmup_insts,
        ctx.params.run_cycles,
        ctx.params.ace_window,
    ))
}

/// Run the fixed exhibit set across `seeds` workload salts under the
/// campaign supervisor and digest the results. Runs fan out across the
/// worker pool; per-exhibit sample order is restored afterwards so the
/// output is deterministic per (budget, seeds) regardless of
/// scheduling. With `journal_dir` set, completed jobs are checkpointed
/// to (and replayed from) `journal_dir/journal.jsonl`.
pub fn run_bench_supervised(
    ctx: &ExperimentContext,
    seeds: u64,
    cfg: &HarnessConfig,
    obs: &HarnessObservers,
    journal_dir: Option<&Path>,
) -> Result<BenchCampaign, JobError> {
    let seeds = seeds.max(1);
    let cases = bench_cases();
    let jobs: Vec<(JobKey, (usize, u64))> = (0..cases.len())
        .flat_map(|c| (0..seeds).map(move |s| (c, s)))
        .map(|(c, salt)| {
            (
                JobKey::new(
                    "bench-baseline",
                    cases[c].name,
                    salt,
                    bench_config_hash(ctx, &cases[c]),
                ),
                (c, salt),
            )
        })
        .collect();

    // With a journal directory, jobs run checkpointed: the journal is
    // opened here (not inside `run_journaled`) so the job closures can
    // append `checkpointed` markers to the same serialized stream the
    // supervisor appends `done` records to.
    let journal: Option<Mutex<Journal>> = match journal_dir {
        Some(dir) => Some(Mutex::new(Journal::open(dir)?)),
        None => None,
    };

    let job = |&(c, salt): &(usize, u64), jctx: &sim_harness::JobCtx| {
        // Declare this job's measured-cycle budget up front so the
        // heartbeat's ETA denominator grows as jobs are claimed.
        jctx.progress.add_cycles_total(ctx.params.run_cycles);
        let case = &cases[c];
        let mix = workload_gen::mix_by_name(case.mix)
            .unwrap_or_else(|| panic!("unknown bench mix {}", case.mix));
        let out = match (journal_dir, &journal) {
            (Some(dir), Some(journal)) => {
                let key = JobKey::new(
                    "bench-baseline",
                    case.name,
                    salt,
                    bench_config_hash(ctx, case),
                );
                let store = SnapshotStore::new(dir, &key.slug());
                let policy = CheckpointPolicy {
                    store: &store,
                    every: jctx.snapshot_every.unwrap_or(DEFAULT_SNAPSHOT_EVERY),
                    selfcheck: jctx.selfcheck,
                    metrics: &obs.metrics,
                };
                let out = run_scheme_checkpointed(
                    ctx,
                    &mix,
                    case.scheme,
                    case.fetch,
                    salt,
                    Some(jctx.cancel.clone()),
                    &policy,
                    |cycle| {
                        if journal.lock().record_checkpoint(&key, &cycle).is_err() {
                            obs.metrics.counter_add("harness.journal.write_errors", 1);
                        }
                    },
                )?;
                if !out.cancelled && !out.deadlocked {
                    // The final sample supersedes the snapshots; drop
                    // them so a finished campaign leaves no dead weight.
                    let _ = store.clear();
                }
                out
            }
            _ => run_scheme_cancellable(
                ctx,
                &mix,
                case.scheme,
                case.fetch,
                salt,
                Some(jctx.cancel.clone()),
            ),
        };
        if out.cancelled {
            // Only the deadline monitor cancels; the supervisor
            // re-classifies this with the configured limit.
            return Err(JobError::Deadline { limit_ms: 0 });
        }
        if out.deadlocked {
            return Err(JobError::Watchdog {
                detail: format!(
                    "{} salt {salt}: commit watchdog tripped during measurement",
                    case.name
                ),
            });
        }
        Ok(BenchSample {
            case: c as u64,
            salt,
            wall_time_s: out.timings.total_s(),
            throughput_ipc: out.throughput_ipc,
            harmonic_ipc: out.harmonic_ipc,
            iq_avf: out.avf.iq_avf,
            host_cycles_per_sec: out.host_cycles_per_sec(),
            host_instrs_per_sec: out.host_instrs_per_sec(),
        })
    };

    let outcome = match &journal {
        Some(j) => run_journaled_in(j, jobs, job, cfg, obs)?,
        None => run_supervised(jobs, job, cfg, obs, |_, _: &BenchSample| {}),
    };

    // Slot order is case-major, salt-minor, so filtering by case keeps
    // samples in ascending-salt order — the float summation order the
    // summaries depend on for cross-run determinism.
    let samples: Vec<&BenchSample> = outcome.values();
    let exhibits = cases
        .iter()
        .enumerate()
        .map(|(c, case)| {
            let runs: Vec<&&BenchSample> = samples.iter().filter(|s| s.case == c as u64).collect();
            let col = |f: &dyn Fn(&BenchSample) -> f64| {
                SeedSummary::from_samples(&runs.iter().map(|s| f(s)).collect::<Vec<_>>())
            };
            // Host rates summarize only when every contributing sample
            // carries one — a mixed-journal resume (pre-v3 records)
            // must not fabricate a partial cross-seed summary.
            let host_col = |f: &dyn Fn(&BenchSample) -> Option<f64>| {
                let vals: Option<Vec<f64>> = runs.iter().map(|s| f(s)).collect();
                vals.filter(|v| !v.is_empty())
                    .map(|v| SeedSummary::from_samples(&v))
            };
            BenchExhibit {
                name: case.name.to_string(),
                mix: case.mix.to_string(),
                scheme: case.scheme.label().to_string(),
                fetch: format!("{:?}", case.fetch),
                wall_time_s: col(&|s| s.wall_time_s),
                throughput_ipc: col(&|s| s.throughput_ipc),
                harmonic_ipc: col(&|s| s.harmonic_ipc),
                iq_avf: col(&|s| s.iq_avf),
                host_cycles_per_sec: host_col(&|s| s.host_cycles_per_sec),
                host_instrs_per_sec: host_col(&|s| s.host_instrs_per_sec),
            }
        })
        .collect();

    Ok(BenchCampaign {
        baseline: BenchBaseline {
            schema_version: BENCH_SCHEMA_VERSION,
            seeds,
            budget: BudgetSummary {
                profile_insts: ctx.params.profile_insts,
                warmup_insts: ctx.params.warmup_insts,
                run_cycles: ctx.params.run_cycles,
                ace_window: ctx.params.ace_window as u64,
            },
            exhibits,
            quarantined: outcome.quarantine.clone(),
        },
        stats: outcome.stats,
        interrupted: outcome.interrupted,
    })
}

/// [`run_bench_supervised`] with default supervision, no journal, and
/// no observers — the historical entry point.
pub fn run_bench(ctx: &ExperimentContext, seeds: u64) -> BenchBaseline {
    run_bench_supervised(
        ctx,
        seeds,
        &HarnessConfig::default(),
        &HarnessObservers::off(),
        None,
    )
    .expect("journal-less bench campaign cannot fail on IO")
    .baseline
}

/// The campaign-report table: one row per exhibit, `mean ± ci95` cells.
pub fn render(b: &BenchBaseline) -> Rendered {
    let mut t = Table::new(vec![
        "exhibit",
        "mix",
        "scheme",
        "fetch",
        "wall s",
        "IPC",
        "harmonic IPC",
        "IQ AVF",
        "host kcyc/s",
    ]);
    for e in &b.exhibits {
        t.row(vec![
            e.name.clone(),
            e.mix.clone(),
            e.scheme.clone(),
            e.fetch.clone(),
            e.wall_time_s.display(2),
            e.throughput_ipc.display(3),
            e.harmonic_ipc.display(3),
            e.iq_avf.display(4),
            e.host_cycles_per_sec
                .as_ref()
                .map(|s| {
                    SeedSummary {
                        n: s.n,
                        mean: s.mean / 1e3,
                        stddev: s.stddev / 1e3,
                        ci95: s.ci95 / 1e3,
                    }
                    .display(0)
                })
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    let mut rendered = Rendered::new(
        format!(
            "Bench baseline (schema v{}, {} seed(s)/exhibit)",
            b.schema_version, b.seeds
        ),
        t,
    )
    .note(
        "cells are cross-seed mean ±CI95 (Student-t) over independently salted workloads"
            .to_string(),
    );
    if !b.quarantined.is_empty() {
        let mut lines: Vec<String> = b
            .quarantined
            .iter()
            .map(|q| format!("{} ({} failure(s): {})", q.key, q.failures, q.error))
            .collect();
        lines.sort();
        rendered = rendered.note(format!(
            "QUARANTINED {} job(s), samples missing from the summaries: {}",
            b.quarantined.len(),
            lines.join("; ")
        ));
    }
    rendered
}

/// Compare `current` against a recorded `baseline`. Returns one line
/// per regression; empty means the check passed. Warnings from
/// [`compare_with_warnings`] are dropped here.
pub fn compare(baseline: &BenchBaseline, current: &BenchBaseline) -> Vec<String> {
    compare_with_warnings(baseline, current).0
}

/// Compare `current` against a recorded `baseline`, separating hard
/// regressions from advisory warnings. A schema-v2 baseline (the
/// pre-throughput layout) is accepted: its host-throughput summaries
/// load as `None`, so the throughput gates are skipped and a warning
/// says so — everything else is still gated.
pub fn compare_with_warnings(
    baseline: &BenchBaseline,
    current: &BenchBaseline,
) -> (Vec<String>, Vec<String>) {
    let mut out = Vec::new();
    let mut warnings = Vec::new();
    if baseline.schema_version != current.schema_version {
        if baseline.schema_version == BENCH_SCHEMA_COMPAT
            && current.schema_version == BENCH_SCHEMA_VERSION
        {
            warnings.push(format!(
                "baseline is schema v{} (no host-throughput summaries); throughput gates \
                 skipped — re-record the baseline to enable them",
                baseline.schema_version
            ));
        } else {
            out.push(format!(
                "schema version mismatch: baseline v{}, current v{} — re-record the baseline",
                baseline.schema_version, current.schema_version
            ));
            return (out, warnings);
        }
    }
    if baseline.budget != current.budget {
        out.push(format!(
            "budget mismatch: baseline {:?}, current {:?} — re-record the baseline",
            baseline.budget, current.budget
        ));
        return (out, warnings);
    }
    if !current.quarantined.is_empty() {
        out.push(format!(
            "current run quarantined {} job(s); its summaries are missing samples and cannot be compared",
            current.quarantined.len()
        ));
    }
    for base in &baseline.exhibits {
        let Some(cur) = current.exhibit(&base.name) else {
            out.push(format!("exhibit {} missing from current run", base.name));
            continue;
        };
        // Wall time: one-sided, means only (getting faster is fine).
        let wall_limit = base.wall_time_s.mean * (1.0 + WALL_TIME_TOLERANCE);
        if cur.wall_time_s.mean > wall_limit {
            out.push(format!(
                "{}: wall time {:.2}s exceeds baseline {:.2}s by more than {:.0}%",
                base.name,
                cur.wall_time_s.mean,
                base.wall_time_s.mean,
                WALL_TIME_TOLERANCE * 100.0
            ));
        }
        // Host throughput: one-sided, means only (getting faster is
        // fine); gated only when both sides recorded a summary.
        for (metric, b, c) in [
            (
                "host cycles/s",
                &base.host_cycles_per_sec,
                &cur.host_cycles_per_sec,
            ),
            (
                "host instrs/s",
                &base.host_instrs_per_sec,
                &cur.host_instrs_per_sec,
            ),
        ] {
            match (b, c) {
                (Some(b), Some(c)) => {
                    let floor = b.mean * (1.0 - THROUGHPUT_TOLERANCE);
                    if c.mean < floor {
                        out.push(format!(
                            "{}: {metric} {:.0} fell below baseline {:.0} by more than {:.0}%",
                            base.name,
                            c.mean,
                            b.mean,
                            THROUGHPUT_TOLERANCE * 100.0
                        ));
                    }
                }
                (Some(_), None) => warnings.push(format!(
                    "{}: {metric} missing from current run; throughput gate skipped",
                    base.name
                )),
                (None, _) => {}
            }
        }
        for (metric, b, c) in [
            ("throughput IPC", &base.throughput_ipc, &cur.throughput_ipc),
            ("harmonic IPC", &base.harmonic_ipc, &cur.harmonic_ipc),
            ("IQ AVF", &base.iq_avf, &cur.iq_avf),
        ] {
            if let Some(line) = metric_drift(&base.name, metric, b, c) {
                out.push(line);
            }
        }
    }
    for cur in &current.exhibits {
        if baseline.exhibit(&cur.name).is_none() {
            out.push(format!("exhibit {} absent from baseline", cur.name));
        }
    }
    (out, warnings)
}

/// Two-sided metric gate: relative drift beyond [`METRIC_TOLERANCE`]
/// *and* beyond the combined CI95 half-widths (so seed noise recorded
/// in the baseline widens the gate instead of tripping it).
fn metric_drift(
    exhibit: &str,
    metric: &str,
    base: &SeedSummary,
    cur: &SeedSummary,
) -> Option<String> {
    let delta = (cur.mean - base.mean).abs();
    let scale = base.mean.abs().max(1e-9);
    let rel = delta / scale;
    if rel > METRIC_TOLERANCE && delta > base.ci95 + cur.ci95 {
        Some(format!(
            "{exhibit}: {metric} drifted {:.2}% ({} -> {}; combined CI95 {:.4})",
            rel * 100.0,
            base.display(4),
            cur.display(4),
            base.ci95 + cur.ci95
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64, ci95: f64) -> SeedSummary {
        SeedSummary {
            n: 3,
            mean,
            stddev: ci95 / 2.0,
            ci95,
        }
    }

    fn exhibit(name: &str) -> BenchExhibit {
        BenchExhibit {
            name: name.to_string(),
            mix: "CPU-A".to_string(),
            scheme: "baseline".to_string(),
            fetch: "Icount".to_string(),
            wall_time_s: summary(10.0, 0.5),
            throughput_ipc: summary(3.0, 0.01),
            harmonic_ipc: summary(0.7, 0.005),
            iq_avf: summary(0.30, 0.002),
            host_cycles_per_sec: Some(summary(2.0e6, 5.0e4)),
            host_instrs_per_sec: Some(summary(4.0e6, 1.0e5)),
        }
    }

    fn baseline() -> BenchBaseline {
        BenchBaseline {
            schema_version: BENCH_SCHEMA_VERSION,
            seeds: 3,
            budget: BudgetSummary {
                profile_insts: 60_000,
                warmup_insts: 150_000,
                run_cycles: 120_000,
                ace_window: 40_000,
            },
            exhibits: vec![exhibit("fig2-cpu-baseline"), exhibit("dvm-mem")],
            quarantined: Vec::new(),
        }
    }

    #[test]
    fn identical_runs_pass() {
        let b = baseline();
        assert!(compare(&b, &b.clone()).is_empty());
    }

    #[test]
    fn wall_time_gate_is_one_sided() {
        let b = baseline();
        let mut fast = b.clone();
        fast.exhibits[0].wall_time_s = summary(2.0, 0.1);
        assert!(compare(&b, &fast).is_empty(), "speedups never regress");
        let mut slow = b.clone();
        slow.exhibits[0].wall_time_s = summary(12.0, 0.1);
        let regressions = compare(&b, &slow);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("wall time"));
    }

    #[test]
    fn metric_gate_needs_both_tolerance_and_ci_excess() {
        let b = baseline();
        // 1% IPC drift: inside tolerance, passes.
        let mut small = b.clone();
        small.exhibits[0].throughput_ipc = summary(3.03, 0.01);
        assert!(compare(&b, &small).is_empty());
        // 10% drift but huge CIs: noise, passes.
        let mut noisy = b.clone();
        noisy.exhibits[0].throughput_ipc = summary(3.3, 0.4);
        noisy.exhibits[0].wall_time_s = b.exhibits[0].wall_time_s;
        let mut wide_base = b.clone();
        wide_base.exhibits[0].throughput_ipc = summary(3.0, 0.4);
        assert!(compare(&wide_base, &noisy).is_empty());
        // 10% drift with tight CIs: regression, both directions.
        let mut real = b.clone();
        real.exhibits[0].throughput_ipc = summary(2.7, 0.01);
        let regressions = compare(&b, &real);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("throughput IPC"));
    }

    #[test]
    fn schema_and_budget_mismatches_fail_fast() {
        let b = baseline();
        let mut other = b.clone();
        other.schema_version += 1;
        let r = compare(&b, &other);
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("schema version"));
        let mut rebudgeted = b.clone();
        rebudgeted.budget.run_cycles *= 2;
        let r = compare(&b, &rebudgeted);
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("budget mismatch"));
    }

    #[test]
    fn throughput_gate_is_one_sided_and_names_the_metric() {
        let b = baseline();
        let mut faster = b.clone();
        faster.exhibits[0].host_cycles_per_sec = Some(summary(3.0e6, 5.0e4));
        assert!(compare(&b, &faster).is_empty(), "speedups never regress");
        // A 20 % simulation-rate drop trips the one-sided 15 % gate.
        let mut slow = b.clone();
        slow.exhibits[0].host_cycles_per_sec = Some(summary(1.6e6, 5.0e4));
        let regressions = compare(&b, &slow);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("host cycles/s"), "{regressions:?}");
        assert!(regressions[0].contains("fig2-cpu-baseline"));
        // Same for the retire rate.
        let mut slow_i = b.clone();
        slow_i.exhibits[1].host_instrs_per_sec = Some(summary(3.0e6, 1.0e5));
        let regressions = compare(&b, &slow_i);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("host instrs/s"), "{regressions:?}");
    }

    #[test]
    fn missing_current_host_summary_warns_instead_of_regressing() {
        let b = baseline();
        let mut cur = b.clone();
        cur.exhibits[0].host_cycles_per_sec = None;
        let (regressions, warnings) = compare_with_warnings(&b, &cur);
        assert!(regressions.is_empty(), "{regressions:?}");
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("host cycles/s") && w.contains("gate skipped")),
            "{warnings:?}"
        );
    }

    /// Schema-v2 BENCH files (recorded before host-throughput fields
    /// existed) stay usable as `--check-baseline` baselines: the host
    /// summaries load as `None`, the throughput gates are skipped with
    /// a warning, and every other gate still applies.
    #[test]
    fn v2_baseline_file_is_accepted_with_throughput_gates_skipped() {
        let text = include_str!("../testdata/bench_v2_fixture.json");
        let v2: BenchBaseline = serde::json::from_str(text).expect("v2 fixture parses");
        assert_eq!(v2.schema_version, 2);
        for e in &v2.exhibits {
            assert_eq!(e.host_cycles_per_sec, None, "v2 has no host summaries");
            assert_eq!(e.host_instrs_per_sec, None);
        }

        // A matching current v3 run passes, with the skip warning.
        let current = baseline();
        let (regressions, warnings) = compare_with_warnings(&v2, &current);
        assert!(regressions.is_empty(), "{regressions:?}");
        assert!(
            warnings.iter().any(|w| w.contains("schema v2")),
            "{warnings:?}"
        );

        // The remaining gates still bite: a wall-time blowup against
        // the v2 baseline is a regression, not a skip.
        let mut slow = baseline();
        slow.exhibits[0].wall_time_s = summary(20.0, 0.5);
        let (regressions, _) = compare_with_warnings(&v2, &slow);
        assert_eq!(regressions.len(), 1, "{regressions:?}");
        assert!(regressions[0].contains("wall time"));

        // And a v3 baseline against a v2 *current* is still a hard
        // mismatch — compatibility is one-directional.
        let (regressions, _) = compare_with_warnings(&current, &v2);
        assert!(
            regressions.iter().any(|l| l.contains("schema version")),
            "{regressions:?}"
        );
    }

    #[test]
    fn exhibit_set_differences_are_reported() {
        let b = baseline();
        let mut missing = b.clone();
        missing.exhibits.pop();
        let r = compare(&b, &missing);
        assert!(r.iter().any(|l| l.contains("missing from current")));
        let r = compare(&missing, &b);
        assert!(r.iter().any(|l| l.contains("absent from baseline")));
    }

    #[test]
    fn baseline_roundtrips_through_file() {
        let b = baseline();
        let path = std::env::temp_dir().join("smtsim_bench_roundtrip.json");
        b.write(&path).unwrap();
        let back = BenchBaseline::load(&path).unwrap();
        assert_eq!(back, b);
        std::fs::remove_file(&path).ok();
        assert!(BenchBaseline::load(&path).is_err(), "missing file errors");
    }

    #[test]
    fn bench_cases_cover_all_governor_families() {
        let cases = bench_cases();
        let mut names: Vec<_> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cases.len(), "duplicate case name");
        for mix in ["CPU-A", "MIX-A", "MEM-A", "MEM-B"] {
            assert!(cases.iter().any(|c| c.mix == mix), "{mix} missing");
            assert!(workload_gen::mix_by_name(mix).is_some());
        }
        assert!(cases
            .iter()
            .any(|c| matches!(c.scheme, Scheme::DvmDynamic { .. })));
    }

    #[test]
    fn report_shows_mean_and_ci() {
        let text = render(&baseline()).to_text();
        assert!(text.contains("fig2-cpu-baseline"));
        assert!(text.contains("±"), "CI95 rendered: {text}");
        assert!(text.contains("3 seed(s)"));
        assert!(!text.contains("QUARANTINED"));
    }

    #[test]
    fn quarantined_jobs_surface_in_report_and_comparison() {
        let b = baseline();
        let mut partial = b.clone();
        partial.quarantined.push(sim_harness::QuarantineEntry {
            key: sim_harness::JobKey::new("bench-baseline", "dvm-mem", 2, 7),
            failures: 3,
            error: JobError::Panic {
                message: "boom".into(),
            },
        });
        let text = render(&partial).to_text();
        assert!(text.contains("QUARANTINED 1 job(s)"), "{text}");
        assert!(text.contains("dvm-mem"), "{text}");
        let r = compare(&b, &partial);
        assert!(
            r.iter().any(|l| l.contains("quarantined 1 job(s)")),
            "{r:?}"
        );
        // Roundtrip: the quarantined section survives the file format.
        let path = std::env::temp_dir().join("smtsim_bench_quarantine_roundtrip.json");
        partial.write(&path).unwrap();
        let back = BenchBaseline::load(&path).unwrap();
        assert_eq!(back, partial);
        std::fs::remove_file(&path).ok();
    }

    /// End-to-end resilience acceptance: a campaign interrupted by a
    /// (simulated) SIGINT resumes from its journal and produces the
    /// same simulation results as an uninterrupted campaign — only the
    /// nondeterministic host wall-time may differ.
    #[test]
    fn interrupted_campaign_resumes_to_matching_baseline() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // Tiny budget: this test runs 4 cases × 1 salt, twice over.
        let mut params = crate::context::ExperimentParams::fast();
        params.warmup_insts = 20_000;
        params.run_cycles = 20_000;
        let cfg = HarnessConfig {
            jobs: Some(1),
            ..HarnessConfig::default()
        };

        let clean_ctx = ExperimentContext::new(params);
        let clean = run_bench_supervised(&clean_ctx, 1, &cfg, &HarnessObservers::off(), None)
            .unwrap()
            .baseline;

        let dir = std::env::temp_dir().join("smtsim_bench_resume_test");
        std::fs::remove_dir_all(&dir).ok();

        // "Ctrl-C" after the first job completes: a shutdown flag the
        // supervisor observes between jobs.
        let flag = Arc::new(AtomicBool::new(false));
        let obs = HarnessObservers {
            metrics: sim_metrics::Metrics::new(),
            tracer: sim_trace::Tracer::off(),
            shutdown: Some(Arc::clone(&flag)),
            ..HarnessObservers::off()
        };
        let int_ctx = ExperimentContext::new(params);
        let stop = Arc::clone(&flag);
        // Flip the flag from a watcher thread once the journal gains
        // its first record (i.e. one job finished).
        let journal = dir.join("journal.jsonl");
        let watcher = std::thread::spawn(move || {
            for _ in 0..2000 {
                if std::fs::metadata(&journal)
                    .map(|m| m.len() > 0)
                    .unwrap_or(false)
                {
                    stop.store(true, Ordering::SeqCst);
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        let first = run_bench_supervised(&int_ctx, 1, &cfg, &obs, Some(&dir)).unwrap();
        watcher.join().unwrap();
        assert!(first.interrupted, "campaign saw the shutdown request");
        assert!(first.stats.skipped > 0, "some jobs were never claimed");
        let resumed_metric = obs.metrics.snapshot();
        assert!(
            resumed_metric
                .counter("harness.jobs_completed")
                .unwrap_or(0)
                >= 1
        );

        // Resume: same journal directory, no interruption this time.
        let resume_ctx = ExperimentContext::new(params);
        let obs2 = HarnessObservers {
            metrics: sim_metrics::Metrics::new(),
            tracer: sim_trace::Tracer::off(),
            shutdown: Some(Arc::new(AtomicBool::new(false))),
            ..HarnessObservers::off()
        };
        let resumed = run_bench_supervised(&resume_ctx, 1, &cfg, &obs2, Some(&dir)).unwrap();
        assert!(!resumed.interrupted);
        assert!(
            resumed.stats.resumed >= 1,
            "journal replayed: {:?}",
            resumed.stats
        );
        let snap = obs2.metrics.snapshot();
        assert_eq!(
            snap.counter("harness.jobs_resumed"),
            Some(resumed.stats.resumed)
        );

        // Identical simulation results; wall time is host noise, so
        // blank it on both sides before comparing.
        let strip = |mut b: BenchBaseline| {
            for e in &mut b.exhibits {
                e.wall_time_s = SeedSummary::from_samples(&[]);
                e.host_cycles_per_sec = None;
                e.host_instrs_per_sec = None;
            }
            b
        };
        assert_eq!(strip(resumed.baseline), strip(clean));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Mid-*job* interrupt acceptance: the shutdown request lands while
    /// a simulation is in flight, the monitor cancels it at its next
    /// snapshot boundary (checkpoints already persisted), one snapshot
    /// is then deliberately bit-flipped, and the resumed campaign must
    /// restore from the surviving generation and still produce results
    /// identical to an uninterrupted campaign.
    #[test]
    fn mid_job_interrupt_resumes_from_snapshot_past_corruption() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // 10 snapshot boundaries per measured run: the watcher flips
        // the flag after the 2nd `checkpointed` marker, leaving ~80 %
        // of the first job's budget for the cancel to land in.
        let mut params = crate::context::ExperimentParams::fast();
        params.warmup_insts = 20_000;
        params.run_cycles = 100_000;
        let cfg = HarnessConfig {
            jobs: Some(1),
            selfcheck: true,
            ..HarnessConfig::default()
        };

        let clean_ctx = ExperimentContext::new(params);
        let clean = run_bench_supervised(&clean_ctx, 1, &cfg, &HarnessObservers::off(), None)
            .unwrap()
            .baseline;

        let dir = std::env::temp_dir().join("smtsim_bench_midrun_resume_test");
        std::fs::remove_dir_all(&dir).ok();

        let flag = Arc::new(AtomicBool::new(false));
        let obs = HarnessObservers {
            metrics: sim_metrics::Metrics::new(),
            tracer: sim_trace::Tracer::off(),
            shutdown: Some(Arc::clone(&flag)),
            ..HarnessObservers::off()
        };
        let stop = Arc::clone(&flag);
        let journal = dir.join("journal.jsonl");
        let watcher = std::thread::spawn(move || {
            for _ in 0..4000 {
                let markers = std::fs::read_to_string(&journal)
                    .map(|text| text.matches("\"checkpointed\"").count())
                    .unwrap_or(0);
                if markers >= 2 {
                    stop.store(true, Ordering::SeqCst);
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let int_ctx = ExperimentContext::new(params);
        let first = run_bench_supervised(&int_ctx, 1, &cfg, &obs, Some(&dir)).unwrap();
        watcher.join().unwrap();
        assert!(first.interrupted, "campaign saw the shutdown request");
        let written = obs
            .metrics
            .snapshot()
            .counter(crate::checkpoint::C_SNAPSHOTS_WRITTEN)
            .unwrap_or(0);
        assert!(written >= 2, "snapshot writes counted: {written}");

        // The interrupted job left its snapshot rotation behind.
        let snaps: Vec<std::path::PathBuf> = std::fs::read_dir(dir.join("snapshots"))
            .expect("in-flight job persisted snapshots before the interrupt")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        assert!(
            snaps.len() >= 2,
            "two checkpointed markers imply two retained generations: {snaps:?}"
        );

        // Bit-flip the newest snapshot; resume must fall back past it.
        let newest = snaps
            .iter()
            .max_by_key(|p| p.file_name().unwrap().to_os_string())
            .unwrap();
        let mut bytes = std::fs::read(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(newest, &bytes).unwrap();

        let resume_ctx = ExperimentContext::new(params);
        let obs2 = HarnessObservers {
            metrics: sim_metrics::Metrics::new(),
            tracer: sim_trace::Tracer::off(),
            shutdown: Some(Arc::new(AtomicBool::new(false))),
            ..HarnessObservers::off()
        };
        let resumed = run_bench_supervised(&resume_ctx, 1, &cfg, &obs2, Some(&dir)).unwrap();
        assert!(!resumed.interrupted);
        let m2 = obs2.metrics.snapshot();
        assert!(
            m2.counter(crate::checkpoint::C_SNAPSHOTS_RESTORED)
                .unwrap_or(0)
                >= 1,
            "resume restored from a snapshot"
        );
        assert!(
            m2.counter(crate::checkpoint::C_SNAPSHOTS_SKIPPED_CORRUPT)
                .unwrap_or(0)
                >= 1,
            "the bit-flipped newest generation was skipped, and counted"
        );
        assert!(
            resumed.baseline.quarantined.is_empty(),
            "every job finished: {:?}",
            resumed.baseline.quarantined
        );

        let strip = |mut b: BenchBaseline| {
            for e in &mut b.exhibits {
                e.wall_time_s = SeedSummary::from_samples(&[]);
                e.host_cycles_per_sec = None;
                e.host_instrs_per_sec = None;
            }
            b
        };
        assert_eq!(strip(resumed.baseline), strip(clean));
        std::fs::remove_dir_all(&dir).ok();
    }
}
