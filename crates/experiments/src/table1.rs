//! Table 1 — accuracy of PC-granularity ACE identification.
//!
//! For each of the eighteen benchmarks: the fraction of committed
//! dynamic instructions whose offline per-PC tag matches their
//! ground-truth ACE-ness. The models were calibrated against the paper's
//! numbers (see `workload_gen::spec::CALIBRATED_MIXED_FRAC`), so this
//! exhibit both regenerates the table and validates the calibration.

use crate::context::ExperimentContext;
use crate::parallel::parallel_map;
use crate::report::Rendered;
use sim_stats::{mean, Table};
use workload_gen::spec::{self, TABLE1_ACCURACY};

pub struct Table1Row {
    pub name: &'static str,
    pub paper: f64,
    pub measured: f64,
    pub dynamic_ace: f64,
}

pub struct Table1Result {
    pub rows: Vec<Table1Row>,
}

pub fn run(ctx: &ExperimentContext) -> Table1Result {
    let names: Vec<&'static str> = spec::all_models().iter().map(|m| m.name).collect();
    let rows = parallel_map(names, |&name| {
        let (_, profile) = ctx.tagged_program(name);
        let paper = TABLE1_ACCURACY
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, a)| *a)
            .unwrap_or(f64::NAN);
        Table1Row {
            name,
            paper,
            measured: profile.accuracy,
            dynamic_ace: profile.dynamic_ace_fraction(),
        }
    });
    Table1Result { rows }
}

pub fn render(result: &Table1Result) -> Rendered {
    let mut t = Table::new(vec![
        "benchmark",
        "paper",
        "measured",
        "|err|",
        "dyn ACE share",
    ]);
    for r in &result.rows {
        t.row(vec![
            r.name.to_string(),
            format!("{:.1}%", r.paper * 100.0),
            format!("{:.1}%", r.measured * 100.0),
            format!("{:.1}", (r.measured - r.paper).abs() * 100.0),
            format!("{:.0}%", r.dynamic_ace * 100.0),
        ]);
    }
    let avg_paper = mean(&result.rows.iter().map(|r| r.paper).collect::<Vec<_>>());
    let avg_meas = mean(&result.rows.iter().map(|r| r.measured).collect::<Vec<_>>());
    Rendered::new(
        "Table 1: accuracy of using PC to identify ACE instructions (committed only)",
        t,
    )
    .note(format!(
        "average: paper {:.1}% vs measured {:.1}%",
        avg_paper * 100.0,
        avg_meas * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ExperimentContext, ExperimentParams};

    #[test]
    fn accuracies_track_paper_within_tolerance() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 18);
        let mut err_sum = 0.0;
        for r in &result.rows {
            assert!((0.0..=1.0).contains(&r.measured), "{}", r.name);
            err_sum += (r.measured - r.paper).abs();
        }
        // Mean absolute error within 6 points (fast profiles are noisy).
        assert!(err_sum / 18.0 < 0.06, "MAE {:.3}", err_sum / 18.0);
        // The hardest benchmark in the paper stays the hardest here.
        let mesa = result.rows.iter().find(|r| r.name == "mesa").unwrap();
        let best = result
            .rows
            .iter()
            .map(|r| r.measured)
            .fold(f64::MIN, f64::max);
        assert!(mesa.measured < best - 0.1, "mesa must trail clearly");
    }
}
