//! Table 2 — simulated machine configuration.
//!
//! Prints the machine parameters, cross-checked against the constants
//! actually used by the simulator (this is executable documentation: if
//! a configuration drifted, the test below would fail).

use crate::report::Rendered;
use sim_stats::Table;
use smt_sim::MachineConfig;

pub fn render(machine: &MachineConfig) -> Rendered {
    let m = &machine.memory;
    let mut t = Table::new(vec!["parameter", "configuration"]);
    let kb = |b: u64| format!("{}KB", b / 1024);
    t.row(vec![
        "processor width".to_string(),
        format!("{}-wide fetch/issue/commit", machine.width),
    ]);
    t.row(vec!["baseline fetch".to_string(), "ICOUNT".to_string()]);
    t.row(vec![
        "issue queue".into(),
        format!("{} entries (shared)", machine.iq_size),
    ]);
    t.row(vec![
        "ROB size".into(),
        format!("{} entries per thread", machine.rob_size),
    ]);
    t.row(vec![
        "load/store queue".into(),
        format!("{} entries per thread", machine.lsq_size),
    ]);
    t.row(vec![
        "integer units".into(),
        format!(
            "{} I-ALU, {} I-MUL/DIV, {} load/store ports",
            machine.fu_pool_sizes[0], machine.fu_pool_sizes[1], machine.fu_pool_sizes[2]
        ),
    ]);
    t.row(vec![
        "FP units".into(),
        format!(
            "{} FP-ALU, {} FP-MUL/DIV/SQRT",
            machine.fu_pool_sizes[3], machine.fu_pool_sizes[4]
        ),
    ]);
    t.row(vec![
        "branch predictor".to_string(),
        "gshare, 10-bit global history per thread".to_string(),
    ]);
    t.row(vec!["BTB".to_string(), "2K entries, 4-way".to_string()]);
    t.row(vec![
        "return address stack".to_string(),
        "32 entries per thread".to_string(),
    ]);
    t.row(vec![
        "L1 I-cache".into(),
        format!(
            "{}, {}-way, {} B/line, {} cycle",
            kb(m.l1i.size_bytes),
            m.l1i.assoc,
            m.l1i.line_bytes,
            m.l1i.hit_latency
        ),
    ]);
    t.row(vec![
        "L1 D-cache".into(),
        format!(
            "{}, {}-way, {} B/line, {} cycle",
            kb(m.l1d.size_bytes),
            m.l1d.assoc,
            m.l1d.line_bytes,
            m.l1d.hit_latency
        ),
    ]);
    t.row(vec![
        "L2 cache".into(),
        format!(
            "unified {}MB, {}-way, {} B/line, {} cycle",
            m.l2.size_bytes >> 20,
            m.l2.assoc,
            m.l2.line_bytes,
            m.l2.hit_latency
        ),
    ]);
    t.row(vec![
        "ITLB / DTLB".into(),
        format!(
            "{} / {} entries, {}-way, {}-cycle miss",
            m.itlb_entries, m.dtlb_entries, m.tlb_assoc, m.tlb_miss_latency
        ),
    ]);
    t.row(vec![
        "memory".into(),
        format!("{} cycles access latency", m.mem_latency),
    ]);
    t.row(vec![
        "hardware contexts".into(),
        format!("{}", machine.num_threads),
    ]);
    Rendered::new("Table 2: simulated machine configuration", t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configuration_matches_paper_table2() {
        let text = render(&MachineConfig::table2()).to_text();
        for needle in [
            "8-wide",
            "96 entries (shared)",
            "96 entries per thread",
            "48 entries per thread",
            "8 I-ALU, 4 I-MUL/DIV, 4 load/store ports",
            "8 FP-ALU, 4 FP-MUL/DIV/SQRT",
            "10-bit global history",
            "2K entries, 4-way",
            "32KB, 2-way, 32 B/line, 1 cycle",
            "64KB, 4-way, 64 B/line, 1 cycle",
            "unified 2MB, 4-way, 128 B/line, 12 cycle",
            "128 / 256 entries, 4-way, 200-cycle miss",
            "200 cycles access latency",
        ] {
            assert!(text.contains(needle), "missing: {needle}\n{text}");
        }
    }
}
