//! Run manifests: one self-describing JSON document per simulation.
//!
//! A manifest pins down everything needed to reproduce (and audit) one
//! `run_scheme` invocation — machine configuration, per-benchmark
//! workload seeds, scheme and fetch policy, measurement budget — plus
//! what it cost (wall-clock phase timings) and what it produced (final
//! metrics). The experiments CLI writes one file per run under
//! `--manifest DIR`; the round-trip through `serde` is part of the test
//! surface, so downstream tooling can rely on the schema.

use crate::context::ExperimentContext;
use crate::runner::RunOutcome;
use iq_reliability::Scheme;
use serde::{Deserialize, Serialize};
use sim_metrics::summary::MetricsSummary;
use sim_profile::ProfileDigest;
use sim_trace::timing::{PhaseTimings, StageSeconds};
use smt_sim::{FetchPolicyKind, MachineConfig};
use std::io;
use std::path::{Path, PathBuf};
use workload_gen::WorkloadMix;

/// The machine-configuration fields a manifest records (the stable,
/// scalar subset of [`MachineConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSummary {
    pub width: usize,
    pub fetch_threads_per_cycle: usize,
    pub fetch_queue_size: usize,
    pub iq_size: usize,
    pub rob_size: usize,
    pub lsq_size: usize,
    pub num_threads: usize,
    pub mshr_per_thread: u32,
    pub lsq_disambiguation: bool,
}

impl MachineSummary {
    pub fn from_config(c: &MachineConfig) -> MachineSummary {
        MachineSummary {
            width: c.width,
            fetch_threads_per_cycle: c.fetch_threads_per_cycle,
            fetch_queue_size: c.fetch_queue_size,
            iq_size: c.iq_size,
            rob_size: c.rob_size,
            lsq_size: c.lsq_size,
            num_threads: c.num_threads,
            mshr_per_thread: c.mshr_per_thread,
            lsq_disambiguation: c.lsq_disambiguation,
        }
    }
}

/// Measurement budget the run was performed under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSummary {
    pub profile_insts: u64,
    pub warmup_insts: u64,
    pub run_cycles: u64,
    pub ace_window: u64,
}

/// Final metrics of one run (mirrors the interesting parts of
/// [`RunOutcome`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinalMetrics {
    pub iq_avf: f64,
    pub throughput_ipc: f64,
    pub harmonic_ipc: f64,
    pub l2_misses: u64,
    pub flushes: u64,
    pub mispredict_rate: f64,
    pub governor_stall_cycles: u64,
    pub dvm_avg_ratio: Option<f64>,
    pub deadlocked: bool,
}

/// One run, fully described.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Monotonic run id within one campaign (ties manifests to trace
    /// file names).
    pub run_id: u64,
    /// Exhibit that requested the run (filled in by the CLI when it
    /// drains the per-exhibit manifest log).
    pub exhibit: String,
    pub mix: String,
    /// Benchmarks of the mix, context order.
    pub benchmarks: Vec<String>,
    /// Per-benchmark workload-generation seeds (FNV-1a of the name,
    /// mixed with the run's salt), context order.
    pub seeds: Vec<u64>,
    /// Workload-generation salt (0 = the canonical seeded workload;
    /// nonzero for cross-seed replicas).
    pub salt: u64,
    pub scheme: String,
    pub fetch_policy: String,
    pub machine: MachineSummary,
    pub budget: BudgetSummary,
    /// Host wall-clock cost of each phase of the run.
    pub timings: PhaseTimings,
    /// Per-pipeline-stage wall-clock breakdown (traced runs only —
    /// stage profiling is opt-in because of its timer cost).
    pub stage_seconds: Option<StageSeconds>,
    pub metrics: FinalMetrics,
    /// Digest of the run's sim-metrics registry (runs with metrics
    /// recording enabled only).
    pub sim_metrics: Option<MetricsSummary>,
    /// Host-side self-profile digest: top spans by self-time, profiler
    /// overhead estimate and allocation phases (`--profile` runs only).
    pub profile: Option<ProfileDigest>,
}

impl RunManifest {
    /// Assemble a manifest from a finished run.
    pub fn new(
        run_id: u64,
        ctx: &ExperimentContext,
        mix: &WorkloadMix,
        scheme: Scheme,
        fetch: FetchPolicyKind,
        outcome: &RunOutcome,
    ) -> RunManifest {
        let seeds = mix
            .benchmarks
            .iter()
            .map(|&name| {
                workload_gen::model_by_name(name)
                    .map(|m| m.seed_with(outcome.salt))
                    .unwrap_or(0)
            })
            .collect();
        RunManifest {
            run_id,
            exhibit: String::new(),
            mix: mix.name.clone(),
            benchmarks: mix.benchmarks.iter().map(|&b| b.to_string()).collect(),
            seeds,
            salt: outcome.salt,
            scheme: scheme.label().to_string(),
            fetch_policy: format!("{fetch:?}"),
            machine: MachineSummary::from_config(&ctx.machine),
            budget: BudgetSummary {
                profile_insts: ctx.params.profile_insts,
                warmup_insts: ctx.params.warmup_insts,
                run_cycles: ctx.params.run_cycles,
                ace_window: ctx.params.ace_window as u64,
            },
            timings: outcome.timings.clone(),
            stage_seconds: outcome.stage_seconds.clone(),
            metrics: FinalMetrics {
                iq_avf: outcome.avf.iq_avf,
                throughput_ipc: outcome.throughput_ipc,
                harmonic_ipc: outcome.harmonic_ipc,
                l2_misses: outcome.l2_misses,
                flushes: outcome.flushes,
                mispredict_rate: outcome.mispredict_rate,
                governor_stall_cycles: outcome.governor_stall_cycles,
                dvm_avg_ratio: outcome.dvm_avg_ratio,
                deadlocked: outcome.deadlocked,
            },
            sim_metrics: outcome.sim_metrics.clone(),
            profile: outcome.profile.clone(),
        }
    }

    /// File name this manifest is written under:
    /// `run<id>_<exhibit>_<mix>_<scheme>.json` (slugged).
    pub fn file_name(&self) -> String {
        format!(
            "run{:04}_{}_{}_{}.json",
            self.run_id,
            slug(&self.exhibit),
            slug(&self.mix),
            slug(&self.scheme),
        )
    }

    /// Write pretty-printed JSON into `dir` (created if missing). The
    /// write is atomic (temp file + rename) so a crash or SIGINT never
    /// leaves a torn manifest behind.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        sim_harness::atomic_write(&path, &serde::json::to_string_pretty(self))?;
        Ok(path)
    }
}

/// Supervision summary of one campaign-shaped subcommand run
/// (`bench-baseline`, `fault-inject`): how the harness fared, written as
/// `campaign.json` into the `--resume` directory next to the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Subcommand that ran the campaign.
    pub campaign: String,
    /// True when a SIGINT stopped the campaign before every job ran;
    /// the journal holds the completed prefix and `--resume` picks the
    /// remainder up.
    pub interrupted: bool,
    /// Process exit code the campaign terminated with (see the exit
    /// code contract in DESIGN.md: 0 ok, 2 partial with quarantine,
    /// 3 fatal, 130 interrupted).
    pub exit_code: u32,
    pub stats: sim_harness::HarnessStats,
    pub quarantined: Vec<sim_harness::QuarantineEntry>,
}

impl CampaignManifest {
    pub const FILE_NAME: &'static str = "campaign.json";

    /// Atomically write `DIR/campaign.json`.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(Self::FILE_NAME);
        sim_harness::atomic_write(&path, &serde::json::to_string_pretty(self))?;
        Ok(path)
    }
}

/// Lowercase, filesystem-safe slug (non-alphanumerics collapse to `-`).
pub fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut dash = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    if out.is_empty() {
        out.push('x');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            run_id: 7,
            exhibit: "fig2".to_string(),
            mix: "CPU-A".to_string(),
            benchmarks: vec!["gcc".to_string(), "gzip".to_string()],
            seeds: vec![123, 456],
            salt: 0,
            scheme: "VISA+opt1".to_string(),
            fetch_policy: "Icount".to_string(),
            machine: MachineSummary {
                width: 8,
                fetch_threads_per_cycle: 2,
                fetch_queue_size: 32,
                iq_size: 96,
                rob_size: 96,
                lsq_size: 48,
                num_threads: 4,
                mshr_per_thread: 8,
                lsq_disambiguation: false,
            },
            budget: BudgetSummary {
                profile_insts: 60_000,
                warmup_insts: 250_000,
                run_cycles: 250_000,
                ace_window: 40_000,
            },
            timings: PhaseTimings {
                generate_s: 0.5,
                warmup_s: 1.0,
                measure_s: 2.0,
                collect_s: 0.25,
            },
            stage_seconds: Some(StageSeconds {
                commit_s: 0.2,
                writeback_s: 0.3,
                issue_s: 0.9,
                dispatch_s: 0.4,
                fetch_s: 0.2,
                profiled_cycles: 250_000,
            }),
            metrics: FinalMetrics {
                iq_avf: 0.31,
                throughput_ipc: 3.4,
                harmonic_ipc: 0.8,
                l2_misses: 1234,
                flushes: 5,
                mispredict_rate: 0.04,
                governor_stall_cycles: 99,
                dvm_avg_ratio: Some(1.5),
                deadlocked: false,
            },
            sim_metrics: None,
            profile: None,
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = sample();
        let text = serde::json::to_string_pretty(&m);
        let back: RunManifest = serde::json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_with_profile_digest_roundtrips() {
        let mut m = sample();
        m.profile = Some(ProfileDigest {
            sample_every: 64,
            spans_entered: 1234,
            span_cost_ns: 41.5,
            overhead_frac: Some(0.0003),
            top_spans: vec![sim_profile::SpanDigest {
                path: "measure;cycle;issue".to_string(),
                calls: 1000,
                total_ms: 12.5,
                self_ms: 9.25,
            }],
            alloc_warmup: Some(sim_profile::PhaseAlloc {
                allocs: 10,
                frees: 8,
                bytes: 4096,
                peak_bytes: 1 << 20,
            }),
            alloc_measure: None,
        });
        let text = serde::json::to_string_pretty(&m);
        let back: RunManifest = serde::json::from_str(&text).unwrap();
        assert_eq!(back, m);
        // A pre-profile manifest document (no `profile` key) still loads.
        let legacy = serde::json::to_string(&sample());
        let stripped = legacy
            .replace(",\"profile\":null", "")
            .replace("\"profile\":null,", "");
        let old: RunManifest = serde::json::from_str(&stripped).unwrap();
        assert_eq!(old.profile, None);
    }

    #[test]
    fn manifest_with_metrics_digest_roundtrips() {
        let mut m = sample();
        m.salt = 3;
        let reg = sim_metrics::Metrics::new();
        reg.counter_add("dvm.triggers", 2);
        reg.sample("iq.ready_len", 0, || 12.0);
        reg.interval_rollover(0, 0, 10_000);
        m.sim_metrics = Some(MetricsSummary::from_snapshot(&reg.snapshot()));
        let text = serde::json::to_string(&m);
        let back: RunManifest = serde::json::from_str(&text).unwrap();
        assert_eq!(back, m);
        let digest = back.sim_metrics.unwrap();
        assert_eq!(digest.counter("dvm.triggers"), Some(2));
        assert_eq!(digest.series("iq.ready_len").unwrap().points, 1);
    }

    #[test]
    fn file_names_are_slugged_and_unique_per_run() {
        let m = sample();
        assert_eq!(m.file_name(), "run0007_fig2_cpu-a_visa-opt1.json");
        let mut n = sample();
        n.run_id = 8;
        // A manifest without DVM telemetry or stage profiling must
        // still roundtrip.
        n.metrics.dvm_avg_ratio = None;
        n.stage_seconds = None;
        let text = serde::json::to_string(&n);
        let back: RunManifest = serde::json::from_str(&text).unwrap();
        assert_eq!(back, n);
        assert_ne!(m.file_name(), n.file_name());
    }

    #[test]
    fn slug_normalizes() {
        assert_eq!(slug("DVM (dynamic ratio)"), "dvm-dynamic-ratio");
        assert_eq!(slug("CPU-A"), "cpu-a");
        assert_eq!(slug(""), "x");
        assert_eq!(slug("***"), "x");
    }

    #[test]
    fn campaign_manifest_roundtrips() {
        let m = CampaignManifest {
            campaign: "bench-baseline".to_string(),
            interrupted: true,
            exit_code: 130,
            stats: sim_harness::HarnessStats {
                completed: 3,
                resumed: 1,
                retries: 2,
                panics: 1,
                deadlines: 0,
                watchdogs: 0,
                diverged: 0,
                io_errors: 0,
                corrupt: 0,
                quarantined: 1,
                skipped: 4,
            },
            quarantined: vec![sim_harness::QuarantineEntry {
                key: sim_harness::JobKey::new("bench-baseline", "smt-icount", 1, 42),
                failures: 3,
                error: sim_harness::JobError::Panic {
                    message: "index out of bounds".into(),
                },
            }],
        };
        let dir = std::env::temp_dir().join("smtsim_campaign_manifest_test");
        let path = m.write(&dir).unwrap();
        assert!(path.ends_with("campaign.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let back: CampaignManifest = serde::json::from_str(&text).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_creates_parseable_file() {
        let dir = std::env::temp_dir().join("smtsim_manifest_test");
        let m = sample();
        let path = m.write(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: RunManifest = serde::json::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert!(back.timings.total_s() > 0.0);
        std::fs::remove_file(&path).ok();
    }
}
