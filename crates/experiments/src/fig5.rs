//! Figure 5 — VISA-based optimizations under ICOUNT.
//!
//! Normalized IQ AVF (a) and throughput IPC (b) of VISA, VISA+opt1 and
//! VISA+opt2 against the unmodified baseline, per workload group
//! (normalized per mix, then averaged over the group's three mixes).
//! Expected shape: AVF reduction ordering VISA < VISA+opt1 ≤ VISA+opt2,
//! IPC ≈ baseline for VISA and VISA+opt2 (above baseline on MIX), and a
//! noticeable opt1-only IPC drop on MIX/MEM — the failure mode opt2
//! exists to fix.

use crate::context::ExperimentContext;
use crate::parallel::parallel_map;
use crate::report::Rendered;
use crate::runner::{run_scheme, RunOutcome};
use iq_reliability::Scheme;
use sim_stats::{mean, Table};
use smt_sim::FetchPolicyKind;
use workload_gen::{standard_mixes, MixGroup};

pub const SCHEMES: [Scheme; 4] = [
    Scheme::Baseline,
    Scheme::Visa,
    Scheme::VisaOpt1,
    Scheme::VisaOpt2,
];

pub struct Fig5Result {
    /// (group, scheme label, normalized AVF, normalized throughput IPC).
    pub rows: Vec<(MixGroup, &'static str, f64, f64)>,
    pub runs: Vec<RunOutcome>,
}

/// Run the scheme matrix under one fetch policy and fold to per-group
/// normalized numbers. (Figure 6 reuses this with other policies.)
pub fn run_with_fetch(ctx: &ExperimentContext, fetch: FetchPolicyKind) -> Fig5Result {
    let jobs: Vec<(workload_gen::WorkloadMix, Scheme)> = standard_mixes()
        .into_iter()
        .flat_map(|mix| SCHEMES.iter().map(move |s| (mix.clone(), *s)))
        .collect();
    let runs = parallel_map(jobs, |(mix, scheme)| run_scheme(ctx, mix, *scheme, fetch));

    let mut rows = Vec::new();
    for group in MixGroup::ALL {
        for scheme in SCHEMES.iter().skip(1) {
            let mut avf_norms = Vec::new();
            let mut ipc_norms = Vec::new();
            for mix in standard_mixes().iter().filter(|m| m.group == group) {
                let base = runs
                    .iter()
                    .find(|r| r.mix == mix.name && r.scheme == Scheme::Baseline.label())
                    .expect("baseline run");
                let run = runs
                    .iter()
                    .find(|r| r.mix == mix.name && r.scheme == scheme.label())
                    .expect("scheme run");
                if base.avf.iq_avf > 0.0 {
                    avf_norms.push(run.avf.iq_avf / base.avf.iq_avf);
                }
                if base.throughput_ipc > 0.0 {
                    ipc_norms.push(run.throughput_ipc / base.throughput_ipc);
                }
            }
            rows.push((group, scheme.label(), mean(&avf_norms), mean(&ipc_norms)));
        }
    }
    Fig5Result { rows, runs }
}

pub fn run(ctx: &ExperimentContext) -> Fig5Result {
    run_with_fetch(ctx, FetchPolicyKind::Icount)
}

pub fn render(result: &Fig5Result) -> Rendered {
    render_titled(
        result,
        "Figure 5: normalized IQ AVF and throughput IPC (fetch policy: ICOUNT)",
    )
}

pub fn render_titled(result: &Fig5Result, title: &str) -> Rendered {
    let mut t = Table::new(vec!["workload", "scheme", "norm. IQ AVF", "norm. IPC"]);
    for (group, scheme, avf, ipc) in &result.rows {
        t.row(vec![
            group.label().to_string(),
            scheme.to_string(),
            format!("{avf:.2}"),
            format!("{ipc:.2}"),
        ]);
    }
    let opt2_avf: Vec<f64> = result
        .rows
        .iter()
        .filter(|(_, s, _, _)| *s == Scheme::VisaOpt2.label())
        .map(|(_, _, a, _)| *a)
        .collect();
    let opt2_ipc: Vec<f64> = result
        .rows
        .iter()
        .filter(|(_, s, _, _)| *s == Scheme::VisaOpt2.label())
        .map(|(_, _, _, i)| *i)
        .collect();
    Rendered::new(title, t).note(format!(
        "VISA+opt2 average: {:.0}% IQ AVF reduction at {:.2}x IPC (paper: 48% at ~1.01x for ICOUNT)",
        (1.0 - mean(&opt2_avf)) * 100.0,
        mean(&opt2_ipc)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentParams;

    #[test]
    fn scheme_ordering_matches_paper() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let result = run(&ctx);
        assert!(result.runs.iter().all(|r| !r.deadlocked));
        // Per group: every scheme reduces AVF vs baseline (norm < 1).
        for (group, scheme, avf, _) in &result.rows {
            assert!(
                *avf < 1.02,
                "{} {} failed to reduce AVF: {:.2}",
                group.label(),
                scheme,
                avf
            );
        }
        // VISA alone keeps IPC ~ baseline everywhere.
        for (g, s, _, ipc) in &result.rows {
            if *s == Scheme::Visa.label() {
                assert!(
                    (*ipc - 1.0).abs() < 0.1,
                    "{}: VISA IPC {:.2} strays from baseline",
                    g.label(),
                    ipc
                );
            }
        }
        // opt1 hurts MEM throughput noticeably (the paper's motivation
        // for opt2)...
        let mem_opt1_ipc = result
            .rows
            .iter()
            .find(|(g, s, _, _)| *g == MixGroup::Mem && *s == Scheme::VisaOpt1.label())
            .unwrap()
            .3;
        let mem_opt2_ipc = result
            .rows
            .iter()
            .find(|(g, s, _, _)| *g == MixGroup::Mem && *s == Scheme::VisaOpt2.label())
            .unwrap()
            .3;
        assert!(
            mem_opt1_ipc < 0.8,
            "opt1 should hurt MEM: {mem_opt1_ipc:.2}"
        );
        assert!(
            mem_opt2_ipc > mem_opt1_ipc,
            "opt2 must recover IPC over opt1 on MEM"
        );
        // ... and opt2 delivers a solid AVF cut on MIX+MEM.
        for g in [MixGroup::Mix, MixGroup::Mem] {
            let avf = result
                .rows
                .iter()
                .find(|(gg, s, _, _)| *gg == g && *s == Scheme::VisaOpt2.label())
                .unwrap()
                .2;
            assert!(avf < 0.85, "{}: opt2 AVF {:.2}", g.label(), avf);
        }
    }
}
