//! # `experiments` — the paper's evaluation, one runner per exhibit
//!
//! Each module regenerates one table or figure of the ICPP 2008 paper:
//!
//! | module | exhibit | content |
//! |---|---|---|
//! | [`fig1`] | Figure 1 | per-structure AVF profile (IQ/ROB/RF/FU) by workload group |
//! | [`fig2`] | Figure 2 | ready-queue-length histogram + per-length ACE share (CPU-A) |
//! | [`table1`] | Table 1 | PC-based ACE identification accuracy per benchmark |
//! | [`table2`] | Table 2 | simulated machine configuration |
//! | [`table3`] | Table 3 | the nine SMT workload mixes |
//! | [`fig5`] | Figure 5 | normalized IQ AVF and throughput IPC of VISA / +opt1 / +opt2 (ICOUNT) |
//! | [`fig6`] | Figure 6 | the same under STALL / FLUSH / DG / PDG baselines |
//! | [`fig8`] | Figures 8 & 9 | DVM PVE and performance at 0.7–0.3 × MaxIQ_AVF (ICOUNT / FLUSH) |
//! | [`fig10`] | Figure 10 | PVE comparison of all schemes at every threshold |
//!
//! All runners share an [`ExperimentContext`]: per-benchmark profiled
//! (ACE-hint-tagged) programs, standard warmup, and the measurement
//! budget. Independent simulations fan out across a thread pool sized to
//! the host ([`parallel::parallel_map`]) — simulations share nothing
//! mutable, so the fan-out is embarrassingly parallel.

pub mod bench;
pub mod checkpoint;
pub mod context;
pub mod exhibits;
pub mod faultinject;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod manifest;
pub mod parallel;
pub mod quick;
pub mod report;
pub mod runner;
pub mod table1;
pub mod table2;
pub mod table3;

pub use bench::{BenchBaseline, BENCH_SCHEMA_VERSION};
pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, run_measured_checkpointed, CheckpointPolicy, MeasuredRun,
    C_SELFCHECK_FAILED, C_SNAPSHOTS_RESTORED, C_SNAPSHOTS_SKIPPED_CORRUPT, C_SNAPSHOTS_WRITTEN,
    DEFAULT_SNAPSHOT_EVERY,
};
pub use context::{ExperimentContext, ExperimentParams};
pub use exhibits::{Exhibit, EXHIBITS};
pub use faultinject::{FaultInjectReport, FAULT_SCHEMA_VERSION};
pub use manifest::RunManifest;
pub use report::Rendered;
pub use runner::{
    run_scheme, run_scheme_checkpointed, run_scheme_salted, run_stats_only, RunOutcome,
};
