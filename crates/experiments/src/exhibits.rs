//! Exhibit catalog: every table and figure the CLI can regenerate.
//!
//! One table is the single source of truth for three CLI concerns that
//! used to be able to drift apart: up-front name validation, the
//! `--list` output, and the dispatch into each exhibit's runner. A test
//! walks the catalog and checks it against [`DEFAULT_ORDER`], so adding
//! an exhibit in one place but not the other fails in CI rather than at
//! the end of a long campaign.

use crate::context::ExperimentContext;
use crate::report::Rendered;
use crate::{fig1, fig10, fig2, fig5, fig6, fig8, table1, table2, table3};
use smt_sim::FetchPolicyKind;

/// One runnable exhibit: CLI name, one-line description, runner.
pub struct Exhibit {
    pub name: &'static str,
    pub description: &'static str,
    run: fn(&ExperimentContext) -> Vec<Rendered>,
}

impl Exhibit {
    /// Regenerate this exhibit under the context's budget.
    pub fn run(&self, ctx: &ExperimentContext) -> Vec<Rendered> {
        (self.run)(ctx)
    }
}

/// Every exhibit, in paper order.
pub const EXHIBITS: [Exhibit; 10] = [
    Exhibit {
        name: "table1",
        description: "PC-based ACE identification accuracy per benchmark",
        run: |ctx| vec![table1::render(&table1::run(ctx))],
    },
    Exhibit {
        name: "table2",
        description: "simulated machine configuration",
        run: |ctx| vec![table2::render(&ctx.machine)],
    },
    Exhibit {
        name: "table3",
        description: "the nine SMT workload mixes",
        run: |_ctx| vec![table3::render()],
    },
    Exhibit {
        name: "fig1",
        description: "per-structure AVF profile (IQ/ROB/RF/FU) by workload group",
        run: |ctx| vec![fig1::render(&fig1::run(ctx))],
    },
    Exhibit {
        name: "fig2",
        description: "ready-queue-length histogram + per-length ACE share (CPU-A)",
        run: |ctx| vec![fig2::render(&fig2::run(ctx))],
    },
    Exhibit {
        name: "fig5",
        description: "normalized IQ AVF and throughput IPC of VISA/+opt1/+opt2 (ICOUNT)",
        run: |ctx| vec![fig5::render(&fig5::run(ctx))],
    },
    Exhibit {
        name: "fig6",
        description: "VISA/+opt1/+opt2 under STALL/FLUSH/DG/PDG baselines",
        run: |ctx| fig6::render(&fig6::run(ctx)),
    },
    Exhibit {
        name: "fig8",
        description: "DVM PVE and performance at 0.7-0.3 x MaxIQ_AVF (ICOUNT)",
        run: |ctx| vec![fig8::render(&fig8::run(ctx))],
    },
    Exhibit {
        name: "fig9",
        description: "DVM PVE and performance at 0.7-0.3 x MaxIQ_AVF (FLUSH)",
        run: |ctx| {
            vec![fig8::render(&fig8::run_with_fetch(
                ctx,
                FetchPolicyKind::Flush,
            ))]
        },
    },
    Exhibit {
        name: "fig10",
        description: "PVE comparison of all schemes at every threshold",
        run: |ctx| vec![fig10::render(&fig10::run(ctx))],
    },
];

/// The order `all` runs in: cheap static tables first (table2/table3
/// render without simulating), then the simulation campaign.
pub const DEFAULT_ORDER: [&str; 10] = [
    "table2", "table3", "table1", "fig1", "fig2", "fig5", "fig6", "fig8", "fig9", "fig10",
];

/// Look an exhibit up by CLI name.
pub fn find(name: &str) -> Option<&'static Exhibit> {
    EXHIBITS.iter().find(|e| e.name == name)
}

/// The `--list` text: one aligned `name  description` line per exhibit.
pub fn list_text() -> String {
    let width = EXHIBITS.iter().map(|e| e.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for e in &EXHIBITS {
        out.push_str(&format!("{:width$}  {}\n", e.name, e.description));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_dispatchable() {
        for e in &EXHIBITS {
            assert!(find(e.name).is_some(), "{} must dispatch", e.name);
            assert!(!e.description.is_empty(), "{} needs a description", e.name);
        }
        let mut names: Vec<_> = EXHIBITS.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EXHIBITS.len(), "duplicate exhibit name");
    }

    #[test]
    fn default_order_covers_the_catalog_exactly() {
        let mut order = DEFAULT_ORDER.to_vec();
        let mut names: Vec<_> = EXHIBITS.iter().map(|e| e.name).collect();
        order.sort_unstable();
        names.sort_unstable();
        assert_eq!(order, names);
    }

    #[test]
    fn unknown_names_do_not_dispatch() {
        assert!(find("fig3").is_none());
        assert!(find("all").is_none(), "'all' is CLI sugar, not an exhibit");
        assert!(find("").is_none());
    }

    #[test]
    fn list_text_mentions_every_exhibit_once() {
        let text = list_text();
        assert_eq!(text.lines().count(), EXHIBITS.len());
        for e in &EXHIBITS {
            let line = text
                .lines()
                .find(|l| l.split_whitespace().next() == Some(e.name))
                .unwrap_or_else(|| panic!("{} missing from --list", e.name));
            assert!(line.contains(e.description));
        }
    }

    #[test]
    fn static_exhibits_render_without_simulating() {
        use crate::context::ExperimentParams;
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        for name in ["table2", "table3"] {
            let rendered = find(name).unwrap().run(&ctx);
            assert_eq!(rendered.len(), 1);
            assert!(!rendered[0].to_text().is_empty());
        }
    }
}
