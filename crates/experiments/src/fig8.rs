//! Figures 8 and 9 — DVM efficiency and its performance impact.
//!
//! For reliability targets 0.7–0.3 × MaxIQ_AVF (MaxIQ_AVF measured per
//! mix on its own baseline run): the percentage of vulnerability
//! emergencies (PVE) without and with DVM, plus throughput and harmonic
//! IPC degradation. Figure 8 uses ICOUNT as the fetch policy, Figure 9
//! uses FLUSH; both come from [`run_with_fetch`].
//!
//! Expected shape: DVM eliminates the vast majority of emergencies at
//! every threshold; the performance cost grows as the target tightens;
//! MIX throughput can improve while its harmonic IPC degrades most
//! (fairness is traded for throughput).

use crate::context::ExperimentContext;
use crate::parallel::parallel_map;
use crate::report::Rendered;
use crate::runner::run_scheme;
use iq_reliability::Scheme;
use sim_stats::{mean, Table};
use smt_sim::FetchPolicyKind;
use workload_gen::{standard_mixes, MixGroup};

/// One (group, threshold-fraction) cell.
#[derive(Debug, Clone)]
pub struct DvmCell {
    pub group: MixGroup,
    pub frac: f64,
    pub baseline_pve: f64,
    pub dvm_pve: f64,
    /// Positive = slowdown, negative = speedup (the paper plots
    /// "% in performance degradation").
    pub throughput_degradation: f64,
    pub harmonic_degradation: f64,
}

pub struct Fig8Result {
    pub fetch: FetchPolicyKind,
    pub cells: Vec<DvmCell>,
}

/// Distinct threshold fractions, preserving order.
pub(crate) fn unique_fracs(fracs: &[f64; 5]) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::new();
    for &f in fracs {
        if !out.iter().any(|&g| (g - f).abs() < 1e-12) {
            out.push(f);
        }
    }
    out
}

pub fn run_with_fetch(ctx: &ExperimentContext, fetch: FetchPolicyKind) -> Fig8Result {
    // Baselines first (they anchor MaxIQ_AVF per mix).
    let mixes = standard_mixes();
    let baselines = parallel_map(mixes.clone(), |mix| {
        run_scheme(ctx, mix, Scheme::Baseline, fetch)
    });

    // DVM runs: every (mix, threshold) pair. Duplicate thresholds are
    // deduplicated (micro-budget benches pass a repeated single value).
    let fracs = unique_fracs(&ctx.params.threshold_fracs);
    let jobs: Vec<(usize, f64)> = (0..mixes.len())
        .flat_map(|i| fracs.iter().map(move |&f| (i, f)))
        .collect();
    let dvm_runs = parallel_map(jobs.clone(), |&(i, frac)| {
        let target = frac * baselines[i].avf.max_interval_iq_avf();
        run_scheme(ctx, &mixes[i], Scheme::DvmDynamic { target }, fetch)
    });

    // Fold to group × threshold cells.
    let mut cells = Vec::new();
    for group in MixGroup::ALL {
        for &frac in &fracs {
            let mut b_pve = Vec::new();
            let mut d_pve = Vec::new();
            let mut thr = Vec::new();
            let mut har = Vec::new();
            for (k, &(i, f)) in jobs.iter().enumerate() {
                if f != frac || mixes[i].group != group {
                    continue;
                }
                let base = &baselines[i];
                let dvm = &dvm_runs[k];
                let target = frac * base.avf.max_interval_iq_avf();
                b_pve.push(base.avf.iq_interval_avf.pve(target));
                d_pve.push(dvm.avf.iq_interval_avf.pve(target));
                if base.throughput_ipc > 0.0 {
                    thr.push(1.0 - dvm.throughput_ipc / base.throughput_ipc);
                }
                if base.harmonic_ipc > 0.0 {
                    har.push(1.0 - dvm.harmonic_ipc / base.harmonic_ipc);
                }
            }
            cells.push(DvmCell {
                group,
                frac,
                baseline_pve: mean(&b_pve),
                dvm_pve: mean(&d_pve),
                throughput_degradation: mean(&thr),
                harmonic_degradation: mean(&har),
            });
        }
    }
    Fig8Result { fetch, cells }
}

pub fn run(ctx: &ExperimentContext) -> Fig8Result {
    run_with_fetch(ctx, FetchPolicyKind::Icount)
}

pub fn render(result: &Fig8Result) -> Rendered {
    let mut t = Table::new(vec![
        "workload",
        "target",
        "PVE baseline",
        "PVE w/ DVM",
        "thru. degr.",
        "harm. degr.",
    ]);
    for c in &result.cells {
        t.row(vec![
            c.group.label().to_string(),
            format!("{:.1}*MaxAVF", c.frac),
            format!("{:.0}%", c.baseline_pve * 100.0),
            format!("{:.0}%", c.dvm_pve * 100.0),
            format!("{:+.1}%", c.throughput_degradation * 100.0),
            format!("{:+.1}%", c.harmonic_degradation * 100.0),
        ]);
    }
    let figure = if result.fetch == FetchPolicyKind::Flush {
        "Figure 9"
    } else {
        "Figure 8"
    };
    Rendered::new(
        format!(
            "{figure}: DVM efficiency and performance impact (fetch policy: {})",
            result.fetch.label()
        ),
        t,
    )
    .note("positive degradation = slowdown; the paper reports MIX/MEM throughput *gains* (negative) at mild targets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentParams;

    #[test]
    fn dvm_eliminates_most_emergencies() {
        let mut params = ExperimentParams::fast();
        params.threshold_fracs = [0.5; 5]; // single threshold, fast
        let ctx = ExperimentContext::new(params);
        let result = run(&ctx);
        for c in result.cells.iter().filter(|c| c.frac == 0.5) {
            // Only meaningful where the baseline actually has
            // emergencies.
            if c.baseline_pve > 0.2 {
                assert!(
                    c.dvm_pve < c.baseline_pve * 0.5,
                    "{}: PVE {:.2} -> {:.2}",
                    c.group.label(),
                    c.baseline_pve,
                    c.dvm_pve
                );
            }
        }
    }
}
