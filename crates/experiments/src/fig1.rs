//! Figure 1 — microarchitecture soft-error vulnerability profile.
//!
//! Per-structure AVF (IQ, ROB, register file, function units — the four
//! structures in the paper's bar chart, plus the LSQ as bonus data) on
//! the baseline ICOUNT machine, averaged over the three mixes of each
//! workload group. The paper's headline observation — **the IQ exhibits
//! the highest vulnerability** — is what this reproduces.

use crate::context::ExperimentContext;
use crate::parallel::parallel_map;
use crate::report::Rendered;
use crate::runner::{run_scheme, RunOutcome};
use iq_reliability::Scheme;
use sim_stats::{mean, Table};
use smt_sim::FetchPolicyKind;
use workload_gen::{standard_mixes, MixGroup};

/// Per-group structure AVFs.
pub struct Fig1Result {
    pub rows: Vec<(MixGroup, [f64; 5])>,
    pub runs: Vec<RunOutcome>,
}

pub fn run(ctx: &ExperimentContext) -> Fig1Result {
    let mixes = standard_mixes();
    let runs = parallel_map(mixes, |mix| {
        run_scheme(ctx, mix, Scheme::Baseline, FetchPolicyKind::Icount)
    });
    let mut rows = Vec::new();
    for group in MixGroup::ALL {
        let of_group: Vec<&RunOutcome> = runs
            .iter()
            .filter(|r| r.mix.starts_with(group.label()))
            .collect();
        let avg = |f: &dyn Fn(&RunOutcome) -> f64| {
            mean(&of_group.iter().map(|r| f(r)).collect::<Vec<_>>())
        };
        rows.push((
            group,
            [
                avg(&|r| r.avf.iq_avf),
                avg(&|r| r.avf.rob_avf),
                avg(&|r| r.avf.rf_avf),
                avg(&|r| r.avf.fu_avf),
                avg(&|r| r.avf.lsq_avf),
            ],
        ));
    }
    Fig1Result { rows, runs }
}

pub fn render(result: &Fig1Result) -> Rendered {
    let mut t = Table::new(vec!["workload", "IQ", "ROB", "RegFile", "FU", "LSQ*"]);
    for (group, avfs) in &result.rows {
        t.row(vec![
            group.label().to_string(),
            format!("{:.1}%", avfs[0] * 100.0),
            format!("{:.1}%", avfs[1] * 100.0),
            format!("{:.1}%", avfs[2] * 100.0),
            format!("{:.1}%", avfs[3] * 100.0),
            format!("{:.1}%", avfs[4] * 100.0),
        ]);
    }
    Rendered::new(
        "Figure 1: microarchitecture soft-error vulnerability profile (baseline, ICOUNT)",
        t,
    )
    .note("paper's claim to reproduce: the IQ is the most vulnerable structure in every group")
    .note("*the LSQ column is additional data (not in the paper's chart)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentParams;

    #[test]
    fn iq_is_the_hotspot_in_every_group() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 3);
        for (group, avfs) in &result.rows {
            let iq = avfs[0];
            for (i, name) in ["ROB", "RF", "FU"].iter().enumerate() {
                assert!(
                    iq > avfs[i + 1],
                    "{}: IQ {:.3} must exceed {} {:.3}",
                    group.label(),
                    iq,
                    name,
                    avfs[i + 1]
                );
            }
        }
        let text = render(&result).to_text();
        assert!(text.contains("Figure 1"));
    }
}
