//! Rendered experiment output: a titled table plus prose notes.

use sim_stats::Table;

/// One regenerated exhibit.
pub struct Rendered {
    /// e.g. "Figure 5(a): normalized IQ AVF (ICOUNT)".
    pub title: String,
    pub table: Table,
    /// Reading guidance / observed-vs-paper commentary.
    pub notes: Vec<String>,
}

impl Rendered {
    pub fn new(title: impl Into<String>, table: Table) -> Rendered {
        Rendered {
            title: title.into(),
            table,
            notes: Vec::new(),
        }
    }

    pub fn note(mut self, s: impl Into<String>) -> Rendered {
        self.notes.push(s.into());
        self
    }

    /// Human-readable block (title, table, notes).
    pub fn to_text(&self) -> String {
        let mut out = format!("=== {} ===\n{}", self.title, self.table.render());
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

impl Rendered {
    /// Write the table as CSV to `dir/slug.csv` (creating `dir`).
    pub fn write_csv(
        &self,
        dir: &std::path::Path,
        slug: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, self.table.to_csv())?;
        Ok(path)
    }
}

impl std::fmt::Display for Rendered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_export_writes_file() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        let r = Rendered::new("T", t);
        let dir = std::env::temp_dir().join("smtsim-csv-test");
        let path = r.write_csv(&dir, "t").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with(
            "x,y
"
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renders_title_table_notes() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        let r = Rendered::new("Figure X", t).note("shape matches");
        let s = r.to_text();
        assert!(s.contains("=== Figure X ==="));
        assert!(s.contains("note: shape matches"));
        assert_eq!(s, r.to_string());
    }
}
