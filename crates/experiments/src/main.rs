//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--fast] [--csv DIR] [--manifest DIR] [--trace DIR]
//!             [--metrics DIR] [EXHIBIT...]
//! experiments --list
//! experiments bench-baseline [--seeds N] [--out FILE]
//!             [--check-baseline FILE] [--metrics DIR]
//! experiments fault-inject [--fast] [--seeds N] [--trials N]
//!             [--out FILE] [--check-avf] [--trace DIR] [--metrics DIR]
//! ```
//!
//! With no exhibit arguments, everything runs (`all`). `--fast` uses the
//! reduced measurement budget (quick sanity pass); the default is the
//! full budget recorded in EXPERIMENTS.md. `--csv DIR` additionally
//! writes each exhibit's table as `DIR/<exhibit>.csv`. `--manifest DIR`
//! writes one JSON run manifest per simulation (machine config, seeds,
//! scheme, budget, phase timings, final metrics). `--trace DIR` exports
//! a Chrome trace-event file per simulation (open in Perfetto or
//! `chrome://tracing`). `--metrics DIR` records a sim-metrics registry
//! per simulation and exports its per-interval series as
//! `run*.series.jsonl` plus a Prometheus text file, and merges a digest
//! into the run's manifest.
//!
//! `--list` prints the exhibit catalog (name + description) and exits.
//!
//! `bench-baseline` runs the fixed regression exhibit set over `--seeds`
//! workload salts (default 3) and prints the cross-seed report;
//! `--out FILE` records the schema-versioned baseline JSON and
//! `--check-baseline FILE` compares against a recorded one, exiting 1 on
//! any wall-time (>15 %) or simulation-metric (>2 % beyond seed noise)
//! regression.
//!
//! `fault-inject` runs Monte-Carlo SEU campaigns (baseline and DVM) over
//! `--seeds` workload salts with `--trials` IQ injections each and
//! prints the per-structure outcome table; `--out FILE` records the
//! campaign JSON and `--check-avf` exits 1 unless the ACE-analysis IQ
//! AVF falls inside every campaign's injection Wilson interval *and*
//! DVM measures strictly less pooled IQ vulnerability than baseline.
//!
//! Unknown exhibit names are rejected up front (exit code 2) before any
//! simulation starts; repeated exhibit names run once.

use experiments::context::{ExperimentContext, ExperimentParams};
use experiments::{bench, exhibits, faultinject};
use std::path::PathBuf;
use std::time::Instant;

/// Flags that consume the following argument.
const VALUE_FLAGS: [&str; 8] = [
    "--csv",
    "--manifest",
    "--trace",
    "--metrics",
    "--out",
    "--check-baseline",
    "--seeds",
    "--trials",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        print!("{}", exhibits::list_text());
        return;
    }
    let fast = args.iter().any(|a| a == "--fast");
    let value_of = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let dir_flag = |flag: &str| -> Option<PathBuf> { value_of(flag).map(PathBuf::from) };
    let csv_dir = dir_flag("--csv");
    let manifest_dir = dir_flag("--manifest");
    let trace_dir = dir_flag("--trace");
    let metrics_dir = dir_flag("--metrics");

    let mut skip_next = false;
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if VALUE_FLAGS.contains(&a.as_str()) {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();

    if requested.first() == Some(&"bench-baseline") {
        let extra: Vec<&str> = requested[1..].to_vec();
        if !extra.is_empty() {
            eprintln!("bench-baseline takes no exhibit arguments: {extra:?}");
            std::process::exit(2);
        }
        let seeds = match value_of("--seeds").map(|s| s.parse::<u64>()) {
            Some(Ok(n)) if n >= 1 => n,
            None => 3,
            bad => {
                eprintln!("--seeds wants a positive integer, got {bad:?}");
                std::process::exit(2);
            }
        };
        run_bench_baseline(
            seeds,
            dir_flag("--out"),
            dir_flag("--check-baseline"),
            metrics_dir,
        );
        return;
    }

    if requested.first() == Some(&"fault-inject") {
        let extra: Vec<&str> = requested[1..].to_vec();
        if !extra.is_empty() {
            eprintln!("fault-inject takes no exhibit arguments: {extra:?}");
            std::process::exit(2);
        }
        let positive = |flag: &str, default: u64| -> u64 {
            match value_of(flag).map(|s| s.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => n,
                None => default,
                bad => {
                    eprintln!("{flag} wants a positive integer, got {bad:?}");
                    std::process::exit(2);
                }
            }
        };
        let seeds = positive("--seeds", 3);
        let trials = positive("--trials", 120);
        run_fault_inject(
            seeds,
            trials,
            fast,
            dir_flag("--out"),
            args.iter().any(|a| a == "--check-avf"),
            trace_dir,
            metrics_dir,
        );
        return;
    }

    // Validate every exhibit name before any simulation starts, so a
    // typo at the end of a long campaign list fails in milliseconds,
    // not hours.
    let unknown: Vec<&str> = requested
        .iter()
        .copied()
        .filter(|e| *e != "all" && exhibits::find(e).is_none())
        .collect();
    if !unknown.is_empty() {
        for e in &unknown {
            eprintln!("unknown exhibit: {e}");
        }
        let names: Vec<&str> = exhibits::EXHIBITS.iter().map(|e| e.name).collect();
        eprintln!("known exhibits: {} all", names.join(" "));
        std::process::exit(2);
    }

    let wanted: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        exhibits::DEFAULT_ORDER.to_vec()
    } else {
        // Dedupe repeated names, preserving first-occurrence order.
        let mut seen = Vec::new();
        for e in requested {
            if !seen.contains(&e) {
                seen.push(e);
            }
        }
        seen
    };

    let params = if fast {
        ExperimentParams::fast()
    } else {
        ExperimentParams::full()
    };
    let mut ctx = ExperimentContext::new(params);
    if let Some(dir) = &trace_dir {
        ctx = ctx.with_trace_dir(dir);
    }
    if let Some(dir) = &metrics_dir {
        ctx = ctx.with_metrics_dir(dir);
    }
    let ctx = ctx;
    println!(
        "# smtsim experiment campaign ({} budget: warmup {} insts, {} measured cycles/run)\n",
        if fast { "fast" } else { "full" },
        params.warmup_insts,
        params.run_cycles
    );

    let emit = |exhibit: &str, rendered: Vec<experiments::Rendered>| {
        for (i, r) in rendered.iter().enumerate() {
            println!("{r}");
            if let Some(dir) = &csv_dir {
                let slug = if rendered.len() > 1 {
                    format!("{exhibit}_{i}")
                } else {
                    exhibit.to_string()
                };
                match r.write_csv(dir, &slug) {
                    Ok(path) => println!("  [csv: {}]", path.display()),
                    Err(e) => eprintln!("  [csv export failed: {e}]"),
                }
            }
        }
    };

    for exhibit in wanted {
        let t0 = Instant::now();
        let entry = exhibits::find(exhibit).expect("exhibit validated above");
        emit(exhibit, entry.run(&ctx));
        // Drain per-run manifests accumulated by this exhibit; write
        // them out if requested, otherwise discard to bound memory.
        let manifests = ctx.drain_manifests();
        let mut stages = sim_trace::timing::StageSeconds::default();
        let mut profiled = 0usize;
        for m in &manifests {
            if let Some(s) = &m.stage_seconds {
                stages.add(s);
                profiled += 1;
            }
        }
        if let Some(dir) = &manifest_dir {
            let mut phases = sim_trace::timing::PhaseTimings::default();
            let mut written = 0usize;
            for mut m in manifests {
                m.exhibit = exhibit.to_string();
                phases.generate_s += m.timings.generate_s;
                phases.warmup_s += m.timings.warmup_s;
                phases.measure_s += m.timings.measure_s;
                phases.collect_s += m.timings.collect_s;
                match m.write(dir) {
                    Ok(_) => written += 1,
                    Err(e) => eprintln!("  [manifest export failed: {e}]"),
                }
            }
            if written > 0 {
                println!(
                    "  [{written} manifest(s) -> {}; phases: generate {:.2}s, warmup {:.2}s, measure {:.2}s, collect {:.2}s]",
                    dir.display(),
                    phases.generate_s,
                    phases.warmup_s,
                    phases.measure_s,
                    phases.collect_s
                );
            }
        }
        if profiled > 0 {
            println!(
                "  [stage profile over {profiled} traced run(s): commit {:.2}s, writeback {:.2}s, issue {:.2}s, dispatch {:.2}s, fetch {:.2}s ({} cycles)]",
                stages.commit_s,
                stages.writeback_s,
                stages.issue_s,
                stages.dispatch_s,
                stages.fetch_s,
                stages.profiled_cycles
            );
        }
        println!("  [{exhibit} took {:.1?}]\n", t0.elapsed());
    }
}

/// The `bench-baseline` subcommand: run, report, optionally record
/// and/or gate against a recorded baseline.
fn run_bench_baseline(
    seeds: u64,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    metrics_dir: Option<PathBuf>,
) {
    let mut ctx = ExperimentContext::new(ExperimentParams::bench());
    if let Some(dir) = &metrics_dir {
        ctx = ctx.with_metrics_dir(dir);
    }
    println!(
        "# smtsim bench-baseline (schema v{}, {} seed(s)/exhibit, warmup {} insts, {} measured cycles/run)\n",
        bench::BENCH_SCHEMA_VERSION,
        seeds,
        ctx.params.warmup_insts,
        ctx.params.run_cycles
    );
    let t0 = Instant::now();
    let current = bench::run_bench(&ctx, seeds);
    println!("{}", bench::render(&current));
    println!("  [bench ran in {:.1?}]", t0.elapsed());
    ctx.drain_manifests(); // bench digests outcomes itself

    if let Some(path) = &out {
        match current.write(path) {
            Ok(()) => println!("  [baseline -> {}]", path.display()),
            Err(e) => {
                eprintln!("cannot write baseline {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &check {
        let baseline = match bench::BenchBaseline::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot load baseline {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        let regressions = bench::compare(&baseline, &current);
        if regressions.is_empty() {
            println!(
                "  [baseline check passed against {} ({} exhibit(s))]",
                path.display(),
                baseline.exhibits.len()
            );
        } else {
            eprintln!("baseline check FAILED against {}:", path.display());
            for r in &regressions {
                eprintln!("  - {r}");
            }
            std::process::exit(1);
        }
    }
}

/// The `fault-inject` subcommand: run the campaigns, report, optionally
/// record JSON and/or gate on model agreement.
fn run_fault_inject(
    seeds: u64,
    trials: u64,
    fast: bool,
    out: Option<PathBuf>,
    check_avf: bool,
    trace_dir: Option<PathBuf>,
    metrics_dir: Option<PathBuf>,
) {
    let params = if fast {
        ExperimentParams::fast()
    } else {
        ExperimentParams::full()
    };
    let mut ctx = ExperimentContext::new(params);
    if let Some(dir) = &trace_dir {
        ctx = ctx.with_trace_dir(dir);
    }
    if let Some(dir) = &metrics_dir {
        ctx = ctx.with_metrics_dir(dir);
    }
    println!(
        "# smtsim fault-inject (schema v{}, {} salt(s), {} IQ trials/campaign, warmup {} insts, {} measured cycles/run)\n",
        faultinject::FAULT_SCHEMA_VERSION,
        seeds,
        trials,
        ctx.params.warmup_insts,
        ctx.params.run_cycles
    );
    let t0 = Instant::now();
    let report = faultinject::run_fault_inject(&ctx, seeds, trials);
    println!("{}", faultinject::render(&report));
    println!("  [fault-inject ran in {:.1?}]", t0.elapsed());

    if let Some(path) = &out {
        match report.write(path) {
            Ok(()) => println!("  [campaign report -> {}]", path.display()),
            Err(e) => {
                eprintln!("cannot write campaign report {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if check_avf {
        let failures = faultinject::check(&report);
        if failures.is_empty() {
            println!(
                "  [AVF check passed: ACE analysis agrees with injection on all {} campaign(s)]",
                report.campaigns.len()
            );
        } else {
            eprintln!("AVF check FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
    }
}
