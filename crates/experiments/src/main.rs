//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--fast] [EXHIBIT...]
//!   EXHIBIT: table1 table2 table3 fig1 fig2 fig5 fig6 fig8 fig9 fig10 all
//! ```
//!
//! With no exhibit arguments, everything runs (`all`). `--fast` uses the
//! reduced measurement budget (quick sanity pass); the default is the
//! full budget recorded in EXPERIMENTS.md. `--csv DIR` additionally
//! writes each exhibit's table as `DIR/<exhibit>.csv`.

use experiments::context::{ExperimentContext, ExperimentParams};
use experiments::{fig1, fig10, fig2, fig5, fig6, fig8, table1, table2, table3};
use smt_sim::FetchPolicyKind;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let mut skip_next = false;
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "table2", "table3", "table1", "fig1", "fig2", "fig5", "fig6", "fig8", "fig9",
            "fig10",
        ];
    }

    let params = if fast {
        ExperimentParams::fast()
    } else {
        ExperimentParams::full()
    };
    let ctx = ExperimentContext::new(params);
    println!(
        "# smtsim experiment campaign ({} budget: warmup {} insts, {} measured cycles/run)\n",
        if fast { "fast" } else { "full" },
        params.warmup_insts,
        params.run_cycles
    );

    let emit = |exhibit: &str, rendered: Vec<experiments::Rendered>| {
        for (i, r) in rendered.iter().enumerate() {
            println!("{r}");
            if let Some(dir) = &csv_dir {
                let slug = if rendered.len() > 1 {
                    format!("{exhibit}_{i}")
                } else {
                    exhibit.to_string()
                };
                match r.write_csv(dir, &slug) {
                    Ok(path) => println!("  [csv: {}]", path.display()),
                    Err(e) => eprintln!("  [csv export failed: {e}]"),
                }
            }
        }
    };

    for exhibit in wanted {
        let t0 = Instant::now();
        match exhibit {
            "table1" => emit("table1", vec![table1::render(&table1::run(&ctx))]),
            "table2" => emit("table2", vec![table2::render(&ctx.machine)]),
            "table3" => emit("table3", vec![table3::render()]),
            "fig1" => emit("fig1", vec![fig1::render(&fig1::run(&ctx))]),
            "fig2" => emit("fig2", vec![fig2::render(&fig2::run(&ctx))]),
            "fig5" => emit("fig5", vec![fig5::render(&fig5::run(&ctx))]),
            "fig6" => emit("fig6", fig6::render(&fig6::run(&ctx))),
            "fig8" => emit("fig8", vec![fig8::render(&fig8::run(&ctx))]),
            "fig9" => emit(
                "fig9",
                vec![fig8::render(&fig8::run_with_fetch(&ctx, FetchPolicyKind::Flush))],
            ),
            "fig10" => emit("fig10", vec![fig10::render(&fig10::run(&ctx))]),
            other => {
                eprintln!("unknown exhibit: {other}");
                std::process::exit(2);
            }
        }
        println!("  [{exhibit} took {:.1?}]\n", t0.elapsed());
    }
}
