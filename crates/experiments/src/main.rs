//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--fast] [--jobs N] [--csv DIR] [--manifest DIR]
//!             [--trace DIR] [--metrics DIR] [--profile DIR] [EXHIBIT...]
//! experiments --list
//! experiments bench-baseline [--seeds N] [--jobs N] [--out FILE]
//!             [--check-baseline FILE] [--resume DIR] [--deadline-s N]
//!             [--snapshot-every CYCLES] [--selfcheck]
//!             [--trace DIR] [--metrics DIR] [--profile DIR]
//! experiments fault-inject [--fast] [--seeds N] [--trials N] [--jobs N]
//!             [--out FILE] [--check-avf] [--resume DIR] [--deadline-s N]
//!             [--trace DIR] [--metrics DIR] [--profile DIR]
//! ```
//!
//! With no exhibit arguments, everything runs (`all`). `--fast` uses the
//! reduced measurement budget (quick sanity pass); the default is the
//! full budget recorded in EXPERIMENTS.md. `--csv DIR` additionally
//! writes each exhibit's table as `DIR/<exhibit>.csv`. `--manifest DIR`
//! writes one JSON run manifest per simulation (machine config, seeds,
//! scheme, budget, phase timings, final metrics). `--trace DIR` exports
//! a Chrome trace-event file per simulation (open in Perfetto or
//! `chrome://tracing`). `--metrics DIR` records a sim-metrics registry
//! per simulation and exports its per-interval series as
//! `run*.series.jsonl` plus a Prometheus text file, and merges a digest
//! into the run's manifest. `--profile DIR` turns on the host-side
//! self-profiler: each simulation writes flamegraph-ready folded stacks
//! (`run*.folded`) and a Chrome trace of host spans
//! (`run*.hostspans.trace.json`) to DIR, a profile digest (hottest
//! spans, per-phase allocation counts, profiler overhead) lands in the
//! run's manifest, and campaign subcommands additionally profile
//! journal/snapshot I/O; without the flag the profiler is compiled to a
//! single branch per cycle.
//!
//! `--list` prints the exhibit catalog (name + description) and exits.
//!
//! `--jobs N` sets the simulation worker-pool size for all parallel
//! fan-out (default: `available_parallelism`; use `--jobs 1` on
//! single-core hosts).
//!
//! `bench-baseline` runs the fixed regression exhibit set over `--seeds`
//! workload salts (default 3) and prints the cross-seed report;
//! `--out FILE` records the schema-versioned baseline JSON and
//! `--check-baseline FILE` compares against a recorded one, failing on
//! any wall-time (>15 %) or simulation-metric (>2 % beyond seed noise)
//! regression.
//!
//! `fault-inject` runs Monte-Carlo SEU campaigns (baseline and DVM) over
//! `--seeds` workload salts with `--trials` IQ injections each and
//! prints the per-structure outcome table; `--out FILE` records the
//! campaign JSON and `--check-avf` fails unless the ACE-analysis IQ
//! AVF falls inside every campaign's injection Wilson interval *and*
//! DVM measures strictly less pooled IQ vulnerability than baseline.
//!
//! Both campaign subcommands run under the `sim-harness` supervisor:
//! `--resume DIR` keeps a checkpoint journal in DIR and replays already
//! completed jobs on re-run; `--deadline-s N` cancels any single job
//! after N wall-clock seconds; a SIGINT or SIGTERM checkpoints or
//! drains in-flight jobs, flushes the journal and `DIR/campaign.json`,
//! then exits 130 (a second signal aborts immediately).
//!
//! With `--resume DIR`, `bench-baseline` additionally persists mid-run
//! pipeline snapshots under `DIR/snapshots/` so an interrupted *job*
//! resumes bit-identically from its latest valid checkpoint instead of
//! re-simulating from cycle zero; `--snapshot-every CYCLES` sets the
//! snapshot cadence (default: every 10 000-cycle sampling interval) and
//! `--selfcheck` validates structural pipeline invariants at every
//! snapshot boundary, failing the job fast instead of persisting a
//! poisoned checkpoint.
//!
//! Exit codes: `0` success, `1` usage error (bad flags or unknown
//! exhibits — rejected up front before any simulation starts), `2`
//! campaign completed but quarantined at least one job, `3` fatal
//! (I/O failure or a `--check-*` gate regression), `130` interrupted.

use experiments::context::{ExperimentContext, ExperimentParams};
use experiments::manifest::CampaignManifest;
use experiments::{bench, exhibits, faultinject};
use sim_harness::{HarnessConfig, HarnessObservers, HarnessStats, QuarantineEntry};
use sim_profile::Profiler;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Counting allocator: the per-phase allocation telemetry the
/// `--profile` digests report. Counts with relaxed atomics over the
/// system allocator — a few nanoseconds per allocation, unconditionally.
#[global_allocator]
static ALLOC: sim_profile::alloc::CountingAlloc = sim_profile::alloc::CountingAlloc;

/// Usage error: bad flags, unknown exhibits.
const EXIT_USAGE: i32 = 1;
/// The campaign finished but quarantined at least one job.
const EXIT_PARTIAL: i32 = 2;
/// I/O failure or a `--check-*` gate regression.
const EXIT_FATAL: i32 = 3;

/// Flags that consume the following argument.
const VALUE_FLAGS: [&str; 13] = [
    "--csv",
    "--manifest",
    "--trace",
    "--metrics",
    "--profile",
    "--out",
    "--check-baseline",
    "--seeds",
    "--trials",
    "--jobs",
    "--resume",
    "--deadline-s",
    "--snapshot-every",
];

/// One-line usage reminder printed alongside flag-validation errors.
const USAGE: &str = "usage: experiments [--fast] [--jobs N] [EXHIBIT...] | experiments --list \
     | experiments bench-baseline|fault-inject [--seeds N] [--deadline-s N] \
     [--resume DIR] [--snapshot-every CYCLES] [--selfcheck] (see crate docs)";

/// Parse one positive-integer flag value. `Ok(None)` when the flag was
/// not given; `Err` explains the rejection (zero, negative or garbage —
/// all refused up front, before any simulation starts).
fn parse_positive(flag: &str, raw: Option<&str>) -> Result<Option<u64>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        Ok(_) => Err(format!("{flag} wants a positive integer, got 0")),
        Err(_) => Err(format!("{flag} wants a positive integer, got {raw:?}")),
    }
}

/// [`parse_positive`] that exits with usage on a rejected value.
fn positive_flag(flag: &str, raw: Option<&String>) -> Option<u64> {
    match parse_positive(flag, raw.map(|s| s.as_str())) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            std::process::exit(EXIT_USAGE);
        }
    }
}

fn main() {
    sim_harness::signal::install_sigint_handler();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        print!("{}", exhibits::list_text());
        return;
    }
    let fast = args.iter().any(|a| a == "--fast");
    let value_of = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let dir_flag = |flag: &str| -> Option<PathBuf> { value_of(flag).map(PathBuf::from) };
    let csv_dir = dir_flag("--csv");
    let manifest_dir = dir_flag("--manifest");
    let trace_dir = dir_flag("--trace");
    let metrics_dir = dir_flag("--metrics");
    let profile_dir = dir_flag("--profile");
    if let Some(n) = positive_flag("--jobs", value_of("--jobs")) {
        sim_harness::set_default_jobs(n as usize);
    }
    let deadline = positive_flag("--deadline-s", value_of("--deadline-s")).map(Duration::from_secs);
    let snapshot_every = positive_flag("--snapshot-every", value_of("--snapshot-every"));
    let selfcheck = args.iter().any(|a| a == "--selfcheck");
    let resume_dir = dir_flag("--resume");
    let campaign_cfg = HarnessConfig {
        deadline,
        snapshot_every,
        selfcheck,
        ..HarnessConfig::default()
    };

    let mut skip_next = false;
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if VALUE_FLAGS.contains(&a.as_str()) {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();

    if requested.first() == Some(&"bench-baseline") {
        let extra: Vec<&str> = requested[1..].to_vec();
        if !extra.is_empty() {
            eprintln!("bench-baseline takes no exhibit arguments: {extra:?}");
            std::process::exit(EXIT_USAGE);
        }
        let seeds = positive_flag("--seeds", value_of("--seeds")).unwrap_or(3);
        run_bench_baseline(
            seeds,
            dir_flag("--out"),
            dir_flag("--check-baseline"),
            metrics_dir,
            trace_dir,
            profile_dir,
            resume_dir,
            campaign_cfg,
        );
        return;
    }

    if requested.first() == Some(&"fault-inject") {
        let extra: Vec<&str> = requested[1..].to_vec();
        if !extra.is_empty() {
            eprintln!("fault-inject takes no exhibit arguments: {extra:?}");
            std::process::exit(EXIT_USAGE);
        }
        let seeds = positive_flag("--seeds", value_of("--seeds")).unwrap_or(3);
        let trials = positive_flag("--trials", value_of("--trials")).unwrap_or(120);
        run_fault_inject(
            seeds,
            trials,
            fast,
            dir_flag("--out"),
            args.iter().any(|a| a == "--check-avf"),
            trace_dir,
            metrics_dir,
            profile_dir,
            resume_dir,
            campaign_cfg,
        );
        return;
    }

    // Validate every exhibit name before any simulation starts, so a
    // typo at the end of a long campaign list fails in milliseconds,
    // not hours.
    let unknown: Vec<&str> = requested
        .iter()
        .copied()
        .filter(|e| *e != "all" && exhibits::find(e).is_none())
        .collect();
    if !unknown.is_empty() {
        for e in &unknown {
            eprintln!("unknown exhibit: {e}");
        }
        let names: Vec<&str> = exhibits::EXHIBITS.iter().map(|e| e.name).collect();
        eprintln!("known exhibits: {} all", names.join(" "));
        std::process::exit(EXIT_USAGE);
    }

    let wanted: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        exhibits::DEFAULT_ORDER.to_vec()
    } else {
        // Dedupe repeated names, preserving first-occurrence order.
        let mut seen = Vec::new();
        for e in requested {
            if !seen.contains(&e) {
                seen.push(e);
            }
        }
        seen
    };

    let params = if fast {
        ExperimentParams::fast()
    } else {
        ExperimentParams::full()
    };
    let mut ctx = ExperimentContext::new(params);
    if let Some(dir) = &trace_dir {
        ctx = ctx.with_trace_dir(dir);
    }
    if let Some(dir) = &metrics_dir {
        ctx = ctx.with_metrics_dir(dir);
    }
    if let Some(dir) = &profile_dir {
        ctx = ctx.with_profile_dir(dir);
    }
    let ctx = ctx;
    println!(
        "# smtsim experiment campaign ({} budget: warmup {} insts, {} measured cycles/run)\n",
        if fast { "fast" } else { "full" },
        params.warmup_insts,
        params.run_cycles
    );

    let emit = |exhibit: &str, rendered: Vec<experiments::Rendered>| {
        for (i, r) in rendered.iter().enumerate() {
            println!("{r}");
            if let Some(dir) = &csv_dir {
                let slug = if rendered.len() > 1 {
                    format!("{exhibit}_{i}")
                } else {
                    exhibit.to_string()
                };
                match r.write_csv(dir, &slug) {
                    Ok(path) => println!("  [csv: {}]", path.display()),
                    Err(e) => eprintln!("  [csv export failed: {e}]"),
                }
            }
        }
    };

    for exhibit in wanted {
        let t0 = Instant::now();
        let entry = exhibits::find(exhibit).expect("exhibit validated above");
        emit(exhibit, entry.run(&ctx));
        // Drain per-run manifests accumulated by this exhibit; write
        // them out if requested, otherwise discard to bound memory.
        let manifests = ctx.drain_manifests();
        let mut stages = sim_trace::timing::StageSeconds::default();
        let mut profiled = 0usize;
        for m in &manifests {
            if let Some(s) = &m.stage_seconds {
                stages.add(s);
                profiled += 1;
            }
        }
        if let Some(dir) = &manifest_dir {
            let mut phases = sim_trace::timing::PhaseTimings::default();
            let mut written = 0usize;
            for mut m in manifests {
                m.exhibit = exhibit.to_string();
                phases.generate_s += m.timings.generate_s;
                phases.warmup_s += m.timings.warmup_s;
                phases.measure_s += m.timings.measure_s;
                phases.collect_s += m.timings.collect_s;
                match m.write(dir) {
                    Ok(_) => written += 1,
                    Err(e) => eprintln!("  [manifest export failed: {e}]"),
                }
            }
            if written > 0 {
                println!(
                    "  [{written} manifest(s) -> {}; phases: generate {:.2}s, warmup {:.2}s, measure {:.2}s, collect {:.2}s]",
                    dir.display(),
                    phases.generate_s,
                    phases.warmup_s,
                    phases.measure_s,
                    phases.collect_s
                );
            }
        }
        if profiled > 0 {
            println!(
                "  [stage profile over {profiled} traced run(s): commit {:.2}s, writeback {:.2}s, issue {:.2}s, dispatch {:.2}s, fetch {:.2}s ({} cycles)]",
                stages.commit_s,
                stages.writeback_s,
                stages.issue_s,
                stages.dispatch_s,
                stages.fetch_s,
                stages.profiled_cycles
            );
        }
        println!("  [{exhibit} took {:.1?}]\n", t0.elapsed());
    }
}

/// Harness observers for a campaign subcommand: a live metrics registry
/// (so `harness.*` counters are always collected), a Chrome tracer for
/// job lifecycle events when `--trace DIR` is given, and a live span
/// profiler for journal/snapshot I/O when `--profile DIR` is given (the
/// campaign progress feed for the heartbeat is always on).
fn campaign_observers(
    trace_dir: Option<&Path>,
    profile_dir: Option<&Path>,
    name: &str,
) -> HarnessObservers {
    let tracer = match trace_dir {
        Some(dir) if std::fs::create_dir_all(dir).is_ok() => {
            let path = dir.join(format!("harness_{name}.trace.json"));
            sim_trace::Tracer::new(sim_trace::chrome::ChromeTraceSink::new(path))
        }
        _ => sim_trace::Tracer::off(),
    };
    HarnessObservers {
        metrics: sim_metrics::Metrics::new(),
        tracer,
        shutdown: None, // None → the process SIGINT flag
        profiler: if profile_dir.is_some() {
            Profiler::new()
        } else {
            Profiler::off()
        },
        ..HarnessObservers::off()
    }
}

/// Post-campaign bookkeeping shared by `bench-baseline` and
/// `fault-inject`: print the supervision summary, export harness
/// metrics/traces/profiles, write `DIR/campaign.json`, and translate
/// the campaign state into the process exit code. Returns the code the
/// subcommand should exit with after its own reporting (0 or
/// EXIT_PARTIAL); exits directly when the campaign was interrupted.
#[allow(clippy::too_many_arguments)]
fn finish_campaign(
    name: &str,
    interrupted: bool,
    stats: &HarnessStats,
    quarantined: &[QuarantineEntry],
    resume_dir: Option<&Path>,
    metrics_dir: Option<&Path>,
    profile_dir: Option<&Path>,
    obs: &HarnessObservers,
) -> i32 {
    println!(
        "  [harness: {} completed ({} from journal), {} retries, {} quarantined, {} skipped]",
        stats.completed + stats.resumed,
        stats.resumed,
        stats.retries,
        stats.quarantined,
        stats.skipped
    );
    obs.tracer.flush();
    if let Some(dir) = metrics_dir {
        let snapshot = obs.metrics.snapshot();
        let export = std::fs::create_dir_all(dir).and_then(|_| {
            sim_harness::atomic_write(
                &dir.join(format!("harness_{name}.prom")),
                &sim_metrics::export::render_prometheus(&snapshot),
            )
        });
        if let Err(e) = export {
            eprintln!("experiments: harness metrics export failed: {e}");
        }
    }
    // Supervisor-side spans (journal replay/record, snapshot I/O) get
    // their own folded-stacks file next to the per-run profiles.
    if let (Some(dir), Some(snap)) = (profile_dir, obs.profiler.snapshot()) {
        let export = std::fs::create_dir_all(dir).and_then(|_| {
            sim_harness::atomic_write(&dir.join(format!("harness_{name}.folded")), &snap.folded())
        });
        match export {
            Ok(()) => println!(
                "  [harness profile -> {} ({} span(s))]",
                dir.join(format!("harness_{name}.folded")).display(),
                snap.rows.len()
            ),
            Err(e) => eprintln!("experiments: harness profile export failed: {e}"),
        }
    }
    let exit_code = if interrupted {
        sim_harness::signal::EXIT_INTERRUPTED
    } else if !quarantined.is_empty() {
        EXIT_PARTIAL
    } else {
        0
    };
    if let Some(dir) = resume_dir {
        let manifest = CampaignManifest {
            campaign: name.to_string(),
            interrupted,
            exit_code: exit_code as u32,
            stats: *stats,
            quarantined: quarantined.to_vec(),
        };
        match manifest.write(dir) {
            Ok(path) => println!("  [campaign manifest -> {}]", path.display()),
            Err(e) => eprintln!("experiments: cannot write campaign manifest: {e}"),
        }
    }
    if interrupted {
        match resume_dir {
            Some(dir) => eprintln!(
                "{name}: interrupted; progress journaled — re-run with --resume {} to continue",
                dir.display()
            ),
            None => eprintln!(
                "{name}: interrupted; re-run with --resume DIR to make campaigns resumable"
            ),
        }
        std::process::exit(exit_code);
    }
    exit_code
}

/// The `bench-baseline` subcommand: run under supervision, report,
/// optionally record and/or gate against a recorded baseline.
#[allow(clippy::too_many_arguments)]
fn run_bench_baseline(
    seeds: u64,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    metrics_dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    profile_dir: Option<PathBuf>,
    resume_dir: Option<PathBuf>,
    cfg: HarnessConfig,
) {
    let mut ctx = ExperimentContext::new(ExperimentParams::bench());
    if let Some(dir) = &metrics_dir {
        ctx = ctx.with_metrics_dir(dir);
    }
    if let Some(dir) = &profile_dir {
        ctx = ctx.with_profile_dir(dir);
    }
    println!(
        "# smtsim bench-baseline (schema v{}, {} seed(s)/exhibit, warmup {} insts, {} measured cycles/run)\n",
        bench::BENCH_SCHEMA_VERSION,
        seeds,
        ctx.params.warmup_insts,
        ctx.params.run_cycles
    );
    let obs = campaign_observers(trace_dir.as_deref(), profile_dir.as_deref(), "bench");
    // Measured pipeline cycles feed the supervisor's heartbeat line.
    ctx.set_progress_cycles(obs.progress.cycle_counter());
    let t0 = Instant::now();
    let campaign = match bench::run_bench_supervised(&ctx, seeds, &cfg, &obs, resume_dir.as_deref())
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench-baseline: campaign journal failure: {e}");
            std::process::exit(EXIT_FATAL);
        }
    };
    println!("  [bench ran in {:.1?}]", t0.elapsed());
    ctx.drain_manifests(); // bench digests outcomes itself
    let code = finish_campaign(
        "bench-baseline",
        campaign.interrupted,
        &campaign.stats,
        &campaign.baseline.quarantined,
        resume_dir.as_deref(),
        metrics_dir.as_deref(),
        profile_dir.as_deref(),
        &obs,
    );
    let current = campaign.baseline;
    println!("{}", bench::render(&current));

    if let Some(path) = &out {
        match current.write(path) {
            Ok(()) => println!("  [baseline -> {}]", path.display()),
            Err(e) => {
                eprintln!("cannot write baseline {}: {e}", path.display());
                std::process::exit(EXIT_FATAL);
            }
        }
    }
    if let Some(path) = &check {
        let baseline = match bench::BenchBaseline::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot load baseline {}: {e}", path.display());
                std::process::exit(EXIT_FATAL);
            }
        };
        let (regressions, warnings) = bench::compare_with_warnings(&baseline, &current);
        for w in &warnings {
            eprintln!("  [baseline check warning: {w}]");
        }
        if regressions.is_empty() {
            println!(
                "  [baseline check passed against {} ({} exhibit(s))]",
                path.display(),
                baseline.exhibits.len()
            );
        } else {
            eprintln!("baseline check FAILED against {}:", path.display());
            for r in &regressions {
                eprintln!("  - {r}");
            }
            std::process::exit(EXIT_FATAL);
        }
    }
    std::process::exit(code);
}

/// The `fault-inject` subcommand: run the campaigns under supervision,
/// report, optionally record JSON and/or gate on model agreement.
#[allow(clippy::too_many_arguments)]
fn run_fault_inject(
    seeds: u64,
    trials: u64,
    fast: bool,
    out: Option<PathBuf>,
    check_avf: bool,
    trace_dir: Option<PathBuf>,
    metrics_dir: Option<PathBuf>,
    profile_dir: Option<PathBuf>,
    resume_dir: Option<PathBuf>,
    cfg: HarnessConfig,
) {
    let params = if fast {
        ExperimentParams::fast()
    } else {
        ExperimentParams::full()
    };
    let mut ctx = ExperimentContext::new(params);
    if let Some(dir) = &trace_dir {
        ctx = ctx.with_trace_dir(dir);
    }
    if let Some(dir) = &metrics_dir {
        ctx = ctx.with_metrics_dir(dir);
    }
    if let Some(dir) = &profile_dir {
        ctx = ctx.with_profile_dir(dir);
    }
    println!(
        "# smtsim fault-inject (schema v{}, {} salt(s), {} IQ trials/campaign, warmup {} insts, {} measured cycles/run)\n",
        faultinject::FAULT_SCHEMA_VERSION,
        seeds,
        trials,
        ctx.params.warmup_insts,
        ctx.params.run_cycles
    );
    let obs = campaign_observers(trace_dir.as_deref(), profile_dir.as_deref(), "inject");
    let t0 = Instant::now();
    let campaign = match faultinject::run_fault_inject_supervised(
        &ctx,
        seeds,
        trials,
        &cfg,
        &obs,
        resume_dir.as_deref(),
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fault-inject: campaign journal failure: {e}");
            std::process::exit(EXIT_FATAL);
        }
    };
    println!("  [fault-inject ran in {:.1?}]", t0.elapsed());
    let code = finish_campaign(
        "fault-inject",
        campaign.interrupted,
        &campaign.stats,
        &campaign.report.quarantined,
        resume_dir.as_deref(),
        metrics_dir.as_deref(),
        profile_dir.as_deref(),
        &obs,
    );
    let report = campaign.report;
    println!("{}", faultinject::render(&report));

    if let Some(path) = &out {
        match report.write(path) {
            Ok(()) => println!("  [campaign report -> {}]", path.display()),
            Err(e) => {
                eprintln!("cannot write campaign report {}: {e}", path.display());
                std::process::exit(EXIT_FATAL);
            }
        }
    }
    if check_avf {
        let failures = faultinject::check(&report);
        if failures.is_empty() {
            println!(
                "  [AVF check passed: ACE analysis agrees with injection on all {} campaign(s)]",
                report.campaigns.len()
            );
        } else {
            eprintln!("AVF check FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(EXIT_FATAL);
        }
    }
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::parse_positive;

    #[test]
    fn positive_integers_parse() {
        assert_eq!(parse_positive("--jobs", Some("1")), Ok(Some(1)));
        assert_eq!(parse_positive("--seeds", Some("42")), Ok(Some(42)));
        assert_eq!(
            parse_positive("--snapshot-every", Some("10000")),
            Ok(Some(10_000))
        );
    }

    #[test]
    fn absent_flag_is_none_not_an_error() {
        assert_eq!(parse_positive("--jobs", None), Ok(None));
    }

    #[test]
    fn zero_is_rejected_with_the_flag_named() {
        let err = parse_positive("--deadline-s", Some("0")).unwrap_err();
        assert!(err.contains("--deadline-s"), "{err}");
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn negative_and_garbage_are_rejected() {
        for bad in ["-3", "abc", "1.5", "", " 7", "0x10", "18446744073709551616"] {
            let err = parse_positive("--jobs", Some(bad))
                .expect_err(&format!("{bad:?} must be rejected"));
            assert!(err.contains("--jobs"), "{err}");
            assert!(err.contains(&format!("{bad:?}")), "{err}");
        }
    }
}
