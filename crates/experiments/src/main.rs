//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--fast] [--csv DIR] [--manifest DIR] [--trace DIR] [EXHIBIT...]
//!   EXHIBIT: table1 table2 table3 fig1 fig2 fig5 fig6 fig8 fig9 fig10 all
//! ```
//!
//! With no exhibit arguments, everything runs (`all`). `--fast` uses the
//! reduced measurement budget (quick sanity pass); the default is the
//! full budget recorded in EXPERIMENTS.md. `--csv DIR` additionally
//! writes each exhibit's table as `DIR/<exhibit>.csv`. `--manifest DIR`
//! writes one JSON run manifest per simulation (machine config, seeds,
//! scheme, budget, phase timings, final metrics). `--trace DIR` exports
//! a Chrome trace-event file per simulation (open in Perfetto or
//! `chrome://tracing`).
//!
//! Unknown exhibit names are rejected up front (exit code 2) before any
//! simulation starts; repeated exhibit names run once.

use experiments::context::{ExperimentContext, ExperimentParams};
use experiments::{fig1, fig10, fig2, fig5, fig6, fig8, table1, table2, table3};
use smt_sim::FetchPolicyKind;
use std::path::PathBuf;
use std::time::Instant;

const KNOWN_EXHIBITS: [&str; 10] = [
    "table1", "table2", "table3", "fig1", "fig2", "fig5", "fig6", "fig8", "fig9", "fig10",
];

/// Flags that consume the following argument.
const VALUE_FLAGS: [&str; 3] = ["--csv", "--manifest", "--trace"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let dir_flag = |flag: &str| -> Option<PathBuf> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
    };
    let csv_dir = dir_flag("--csv");
    let manifest_dir = dir_flag("--manifest");
    let trace_dir = dir_flag("--trace");

    let mut skip_next = false;
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if VALUE_FLAGS.contains(&a.as_str()) {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();

    // Validate every exhibit name before any simulation starts, so a
    // typo at the end of a long campaign list fails in milliseconds,
    // not hours.
    let unknown: Vec<&str> = requested
        .iter()
        .copied()
        .filter(|e| *e != "all" && !KNOWN_EXHIBITS.contains(e))
        .collect();
    if !unknown.is_empty() {
        for e in &unknown {
            eprintln!("unknown exhibit: {e}");
        }
        eprintln!("known exhibits: {} all", KNOWN_EXHIBITS.join(" "));
        std::process::exit(2);
    }

    let wanted: Vec<&str> = if requested.is_empty() || requested.contains(&"all") {
        vec![
            "table2", "table3", "table1", "fig1", "fig2", "fig5", "fig6", "fig8", "fig9", "fig10",
        ]
    } else {
        // Dedupe repeated names, preserving first-occurrence order.
        let mut seen = Vec::new();
        for e in requested {
            if !seen.contains(&e) {
                seen.push(e);
            }
        }
        seen
    };

    let params = if fast {
        ExperimentParams::fast()
    } else {
        ExperimentParams::full()
    };
    let mut ctx = ExperimentContext::new(params);
    if let Some(dir) = &trace_dir {
        ctx = ctx.with_trace_dir(dir);
    }
    let ctx = ctx;
    println!(
        "# smtsim experiment campaign ({} budget: warmup {} insts, {} measured cycles/run)\n",
        if fast { "fast" } else { "full" },
        params.warmup_insts,
        params.run_cycles
    );

    let emit = |exhibit: &str, rendered: Vec<experiments::Rendered>| {
        for (i, r) in rendered.iter().enumerate() {
            println!("{r}");
            if let Some(dir) = &csv_dir {
                let slug = if rendered.len() > 1 {
                    format!("{exhibit}_{i}")
                } else {
                    exhibit.to_string()
                };
                match r.write_csv(dir, &slug) {
                    Ok(path) => println!("  [csv: {}]", path.display()),
                    Err(e) => eprintln!("  [csv export failed: {e}]"),
                }
            }
        }
    };

    for exhibit in wanted {
        let t0 = Instant::now();
        match exhibit {
            "table1" => emit("table1", vec![table1::render(&table1::run(&ctx))]),
            "table2" => emit("table2", vec![table2::render(&ctx.machine)]),
            "table3" => emit("table3", vec![table3::render()]),
            "fig1" => emit("fig1", vec![fig1::render(&fig1::run(&ctx))]),
            "fig2" => emit("fig2", vec![fig2::render(&fig2::run(&ctx))]),
            "fig5" => emit("fig5", vec![fig5::render(&fig5::run(&ctx))]),
            "fig6" => emit("fig6", fig6::render(&fig6::run(&ctx))),
            "fig8" => emit("fig8", vec![fig8::render(&fig8::run(&ctx))]),
            "fig9" => emit(
                "fig9",
                vec![fig8::render(&fig8::run_with_fetch(
                    &ctx,
                    FetchPolicyKind::Flush,
                ))],
            ),
            "fig10" => emit("fig10", vec![fig10::render(&fig10::run(&ctx))]),
            other => unreachable!("exhibit {other} validated above"),
        }
        // Drain per-run manifests accumulated by this exhibit; write
        // them out if requested, otherwise discard to bound memory.
        let manifests = ctx.drain_manifests();
        let mut stages = sim_trace::timing::StageSeconds::default();
        let mut profiled = 0usize;
        for m in &manifests {
            if let Some(s) = &m.stage_seconds {
                stages.add(s);
                profiled += 1;
            }
        }
        if let Some(dir) = &manifest_dir {
            let mut phases = sim_trace::timing::PhaseTimings::default();
            let mut written = 0usize;
            for mut m in manifests {
                m.exhibit = exhibit.to_string();
                phases.generate_s += m.timings.generate_s;
                phases.warmup_s += m.timings.warmup_s;
                phases.measure_s += m.timings.measure_s;
                phases.collect_s += m.timings.collect_s;
                match m.write(dir) {
                    Ok(_) => written += 1,
                    Err(e) => eprintln!("  [manifest export failed: {e}]"),
                }
            }
            if written > 0 {
                println!(
                    "  [{written} manifest(s) -> {}; phases: generate {:.2}s, warmup {:.2}s, measure {:.2}s, collect {:.2}s]",
                    dir.display(),
                    phases.generate_s,
                    phases.warmup_s,
                    phases.measure_s,
                    phases.collect_s
                );
            }
        }
        if profiled > 0 {
            println!(
                "  [stage profile over {profiled} traced run(s): commit {:.2}s, writeback {:.2}s, issue {:.2}s, dispatch {:.2}s, fetch {:.2}s ({} cycles)]",
                stages.commit_s,
                stages.writeback_s,
                stages.issue_s,
                stages.dispatch_s,
                stages.fetch_s,
                stages.profiled_cycles
            );
        }
        println!("  [{exhibit} took {:.1?}]\n", t0.elapsed());
    }
}
