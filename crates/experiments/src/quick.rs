//! Tiny smoke-run entry points used by doc examples and the umbrella
//! crate's quickstart.

use crate::context::{ExperimentContext, ExperimentParams};
use crate::runner::run_scheme;
use iq_reliability::Scheme;
use smt_sim::FetchPolicyKind;

/// A minimal demo configuration (tiny budgets; seconds, not minutes).
pub struct QuickConfig {
    ctx: ExperimentContext,
}

/// Summary of a smoke run.
pub struct QuickSummary {
    pub cycles: u64,
    pub ipc: f64,
    pub iq_avf: f64,
}

/// Build the demo configuration.
pub fn visa_demo_config() -> QuickConfig {
    let mut params = ExperimentParams::fast();
    params.profile_insts = 20_000;
    params.warmup_insts = 20_000;
    params.run_cycles = 30_000;
    QuickConfig {
        ctx: ExperimentContext::new(params),
    }
}

impl QuickConfig {
    /// Run VISA on the CPU-A mix for a handful of intervals.
    pub fn run_smoke(&self) -> QuickSummary {
        let mix = workload_gen::mix_by_name("CPU-A").expect("CPU-A");
        let out = run_scheme(&self.ctx, &mix, Scheme::Visa, FetchPolicyKind::Icount);
        QuickSummary {
            cycles: out.avf.cycles,
            ipc: out.throughput_ipc,
            iq_avf: out.avf.iq_avf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_in_bounds() {
        let s = visa_demo_config().run_smoke();
        assert!(s.cycles > 0);
        assert!(s.ipc > 0.0 && s.ipc <= 8.0);
        assert!((0.0..=1.0).contains(&s.iq_avf));
    }
}
