//! Low-level simulation driver shared by every experiment.

use crate::context::ExperimentContext;
use avf::{AvfCollector, AvfReport};
use iq_reliability::Scheme;
use smt_sim::{FetchPolicyKind, Pipeline, SimLimits};
use workload_gen::WorkloadMix;

/// Everything one simulation produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub mix: String,
    pub scheme: &'static str,
    pub fetch: FetchPolicyKind,
    pub avf: AvfReport,
    pub throughput_ipc: f64,
    pub harmonic_ipc: f64,
    pub l2_misses: u64,
    pub flushes: u64,
    pub mispredict_rate: f64,
    pub governor_stall_cycles: u64,
    /// Average adaptive wq_ratio (DVM runs only).
    pub dvm_avg_ratio: Option<f64>,
    pub deadlocked: bool,
}

/// Run one (mix, scheme, fetch policy) combination under the context's
/// budget: profile-tagged programs, warmup, then a fixed measured cycle
/// window with ground-truth AVF collection.
pub fn run_scheme(
    ctx: &ExperimentContext,
    mix: &WorkloadMix,
    scheme: Scheme,
    fetch: FetchPolicyKind,
) -> RunOutcome {
    let programs = ctx.mix_programs(mix);
    let (policies, dvm_handle) = scheme.policies(fetch, ctx.machine.iq_size);
    let mut pipeline = Pipeline::new(ctx.machine.clone(), programs, policies);
    let start = pipeline.warm_up(ctx.params.warmup_insts);
    let mut collector = AvfCollector::new(&ctx.machine, ctx.params.ace_window, 10_000)
        .with_start_cycle(start);
    let result = pipeline.run(SimLimits::cycles(ctx.params.run_cycles), &mut collector);
    RunOutcome {
        mix: mix.name.clone(),
        scheme: scheme.label(),
        fetch,
        avf: collector.report(),
        throughput_ipc: result.stats.throughput_ipc(),
        harmonic_ipc: result.stats.harmonic_ipc(),
        l2_misses: result.stats.l2_misses,
        flushes: result.stats.flushes,
        mispredict_rate: result.stats.mispredict_rate(),
        governor_stall_cycles: result.stats.governor_stall_cycles,
        dvm_avg_ratio: dvm_handle.map(|h| h.lock().average_ratio()),
        deadlocked: result.deadlocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentParams;

    #[test]
    fn baseline_run_completes_and_reports() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let mix = workload_gen::mix_by_name("CPU-A").unwrap();
        let out = run_scheme(&ctx, &mix, Scheme::Baseline, FetchPolicyKind::Icount);
        assert!(!out.deadlocked);
        assert!(out.throughput_ipc > 0.5);
        assert!(out.avf.iq_avf > 0.0 && out.avf.iq_avf < 1.0);
        assert!(out.dvm_avg_ratio.is_none());
        assert_eq!(out.mix, "CPU-A");
    }

    #[test]
    fn dvm_run_exposes_ratio_telemetry() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let mix = workload_gen::mix_by_name("MEM-A").unwrap();
        let out = run_scheme(
            &ctx,
            &mix,
            Scheme::DvmDynamic { target: 0.15 },
            FetchPolicyKind::Icount,
        );
        assert!(!out.deadlocked);
        assert!(out.dvm_avg_ratio.unwrap() > 0.0);
    }
}
