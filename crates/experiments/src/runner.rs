//! Low-level simulation driver shared by every experiment.

use crate::checkpoint::{
    decode_checkpoint, run_measured_checkpointed, CheckpointPolicy, C_SNAPSHOTS_RESTORED,
    C_SNAPSHOTS_SKIPPED_CORRUPT,
};
use crate::context::ExperimentContext;
use crate::manifest::{slug, RunManifest};
use avf::{AvfCollector, AvfReport};
use iq_reliability::Scheme;
use serde::Value;
use sim_harness::JobError;
use sim_metrics::summary::MetricsSummary;
use sim_metrics::Metrics;
use sim_profile::alloc::AllocStats;
use sim_profile::{PhaseAlloc, ProfileDigest, Profiler};
use sim_trace::chrome::ChromeTraceSink;
use sim_trace::timing::{PhaseTimings, StageSeconds};
use sim_trace::Tracer;
use smt_sim::{CancelToken, FetchPolicyKind, Pipeline, SimLimits};
use workload_gen::WorkloadMix;

/// Everything one simulation produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub mix: String,
    pub scheme: &'static str,
    pub fetch: FetchPolicyKind,
    pub avf: AvfReport,
    pub throughput_ipc: f64,
    pub harmonic_ipc: f64,
    pub l2_misses: u64,
    pub flushes: u64,
    pub mispredict_rate: f64,
    pub governor_stall_cycles: u64,
    /// Average adaptive wq_ratio (DVM runs only).
    pub dvm_avg_ratio: Option<f64>,
    pub deadlocked: bool,
    /// True when a cooperative cancel token stopped the measured run
    /// early (wall-clock deadline enforcement); the statistics cover
    /// only the cycles that ran and must not be aggregated.
    pub cancelled: bool,
    /// Workload-generation salt (0 = canonical workload).
    pub salt: u64,
    /// Host wall-clock cost of the run, by phase.
    pub timings: PhaseTimings,
    /// Per-pipeline-stage wall-clock breakdown (traced runs only).
    pub stage_seconds: Option<StageSeconds>,
    /// Digest of the run's sim-metrics registry (metrics-enabled
    /// contexts only).
    pub sim_metrics: Option<MetricsSummary>,
    /// Simulated cycles of the measured window (host-throughput
    /// denominator: `measured_cycles / timings.measure_s`).
    pub measured_cycles: u64,
    /// Instructions committed during the measured window, all threads.
    pub committed_insts: u64,
    /// Host-side self-profile digest (profile-enabled contexts only).
    pub profile: Option<ProfileDigest>,
}

impl RunOutcome {
    /// Host simulation throughput over the measured window, cycles/s.
    pub fn host_cycles_per_sec(&self) -> Option<f64> {
        (self.timings.measure_s > 0.0).then(|| self.measured_cycles as f64 / self.timings.measure_s)
    }

    /// Host commit throughput over the measured window, instructions/s.
    pub fn host_instrs_per_sec(&self) -> Option<f64> {
        (self.timings.measure_s > 0.0).then(|| self.committed_insts as f64 / self.timings.measure_s)
    }
}

/// Run one (mix, scheme, fetch policy) combination under the context's
/// budget: profile-tagged programs, warmup, then a fixed measured cycle
/// window with ground-truth AVF collection. Each run self-times its
/// phases, logs a [`RunManifest`] on the context, and — when the context
/// has a trace directory — exports a Chrome trace-event file.
pub fn run_scheme(
    ctx: &ExperimentContext,
    mix: &WorkloadMix,
    scheme: Scheme,
    fetch: FetchPolicyKind,
) -> RunOutcome {
    run_scheme_salted(ctx, mix, scheme, fetch, 0)
}

/// [`run_scheme`] with an explicit workload-generation salt: salt 0 is
/// the canonical workload; other salts draw independent programs from
/// the same benchmark models (cross-seed statistics, bench baselines).
pub fn run_scheme_salted(
    ctx: &ExperimentContext,
    mix: &WorkloadMix,
    scheme: Scheme,
    fetch: FetchPolicyKind,
    salt: u64,
) -> RunOutcome {
    run_scheme_cancellable(ctx, mix, scheme, fetch, salt, None)
}

/// [`run_scheme_salted`] with an optional cooperative cancel token: the
/// supervised campaign paths thread the harness's per-attempt token in
/// so a wall-clock deadline can stop the simulation at the next
/// interval-clock tick instead of waiting out the full cycle budget.
pub fn run_scheme_cancellable(
    ctx: &ExperimentContext,
    mix: &WorkloadMix,
    scheme: Scheme,
    fetch: FetchPolicyKind,
    salt: u64,
    cancel: Option<CancelToken>,
) -> RunOutcome {
    let mut timings = PhaseTimings::default();
    let run_id = ctx.next_run_id();
    let profiler = run_profiler(ctx);

    let programs = {
        let _gen = profiler.span("generate");
        PhaseTimings::time(&mut timings.generate_s, || {
            ctx.mix_programs_profiled(mix, salt, &profiler)
        })
    };
    let (policies, dvm_handle) = scheme.policies(fetch, ctx.machine.iq_size);
    let mut pipeline = Pipeline::new(ctx.machine.clone(), programs, policies);
    if let Some(token) = cancel {
        pipeline.set_cancel_token(token);
    }
    attach_tracing(ctx, &mut pipeline, run_id, mix, scheme);
    attach_profiler(&profiler, &mut pipeline);
    let metrics = attach_metrics(ctx, &mut pipeline);

    let alloc_pre_warm = alloc_mark(&profiler);
    let start = {
        let _warm = profiler.span("warmup");
        PhaseTimings::time(&mut timings.warmup_s, || {
            pipeline.warm_up(ctx.params.warmup_insts)
        })
    };
    let alloc_pre_measure = alloc_mark(&profiler);
    if let Some(counter) = ctx.progress_cycles() {
        pipeline.set_progress_counter(counter);
    }
    let mut collector =
        AvfCollector::new(&ctx.machine, ctx.params.ace_window, 10_000).with_start_cycle(start);
    collector.set_profiler(profiler.clone());
    let result = {
        let _meas = profiler.span("measure");
        PhaseTimings::time(&mut timings.measure_s, || {
            pipeline.run(SimLimits::cycles(ctx.params.run_cycles), &mut collector)
        })
    };
    let alloc_post_measure = alloc_mark(&profiler);
    let avf = {
        let _col = profiler.span("collect");
        PhaseTimings::time(&mut timings.collect_s, || collector.report())
    };
    pipeline.tracer().flush();
    let stage_seconds = stage_snapshot(&pipeline);
    let sim_metrics = export_metrics(ctx, metrics.as_ref(), run_id, mix, scheme);
    let profile = export_profile(
        ctx,
        &profiler,
        run_id,
        mix,
        scheme,
        pipeline.stage_profile().sample_every(),
        &timings,
        phase_alloc(&alloc_pre_warm, &alloc_pre_measure),
        phase_alloc(&alloc_pre_measure, &alloc_post_measure),
    );

    let outcome = RunOutcome {
        mix: mix.name.clone(),
        scheme: scheme.label(),
        fetch,
        avf,
        throughput_ipc: result.stats.throughput_ipc(),
        harmonic_ipc: result.stats.harmonic_ipc(),
        l2_misses: result.stats.l2_misses,
        flushes: result.stats.flushes,
        mispredict_rate: result.stats.mispredict_rate(),
        governor_stall_cycles: result.stats.governor_stall_cycles,
        dvm_avg_ratio: dvm_handle.map(|h| h.lock().average_ratio()),
        deadlocked: result.deadlocked,
        cancelled: result.cancelled,
        salt,
        timings,
        stage_seconds,
        sim_metrics,
        measured_cycles: result.stats.cycles,
        committed_insts: result.stats.committed_per_thread.iter().sum(),
        profile,
    };
    ctx.record_manifest(RunManifest::new(run_id, ctx, mix, scheme, fetch, &outcome));
    outcome
}

/// [`run_scheme_cancellable`] with mid-run checkpointing: before
/// simulating, the job's [`SnapshotStore`](sim_harness::SnapshotStore)
/// is consulted and the newest valid snapshot — if any — is restored
/// (skipping corrupt generations, with a typed
/// [`JobError::Corrupt`] when every generation is bad), so the run
/// continues bit-identically from the last checkpoint instead of
/// re-simulating from cycle zero. A restored run skips warmup — the
/// warmed-up, mid-measurement machine *is* the snapshot.
///
/// During the measured window a snapshot lands in the store every
/// `policy.every` simulated cycles (rounded to the sampling-interval
/// grid) and `on_checkpoint` fires once per durable snapshot — the hook
/// the campaign layer uses to mark the journal `checkpointed`. With
/// `policy.selfcheck`, structural invariants are validated at every
/// boundary and the run fails fast as [`JobError::Diverged`] instead of
/// persisting a poisoned checkpoint.
#[allow(clippy::too_many_arguments)]
pub fn run_scheme_checkpointed(
    ctx: &ExperimentContext,
    mix: &WorkloadMix,
    scheme: Scheme,
    fetch: FetchPolicyKind,
    salt: u64,
    cancel: Option<CancelToken>,
    policy: &CheckpointPolicy<'_>,
    mut on_checkpoint: impl FnMut(u64),
) -> Result<RunOutcome, JobError> {
    let mut timings = PhaseTimings::default();
    let run_id = ctx.next_run_id();
    let profiler = run_profiler(ctx);

    let programs = {
        let _gen = profiler.span("generate");
        PhaseTimings::time(&mut timings.generate_s, || {
            ctx.mix_programs_profiled(mix, salt, &profiler)
        })
    };
    // Fresh (pipeline, collector, dvm-handle) factory. The restore path
    // decodes each snapshot candidate into freshly built objects, so a
    // partial restore from a corrupt file can never contaminate the
    // state an older valid snapshot then restores into.
    let build = || {
        let (policies, dvm_handle) = scheme.policies(fetch, ctx.machine.iq_size);
        let pipeline = Pipeline::new(ctx.machine.clone(), programs.clone(), policies);
        let collector = AvfCollector::new(&ctx.machine, ctx.params.ace_window, 10_000);
        (pipeline, collector, dvm_handle)
    };

    let restored = {
        let _restore = profiler.span("snapshot.restore");
        policy.store.load_latest_valid(|bytes| {
            let (mut p, mut c, h) = build();
            let cycle = decode_checkpoint(bytes, &mut p, &mut c)?;
            Ok((p, c, h, cycle))
        })?
    };
    let (mut pipeline, collector, dvm_handle) = match restored {
        Some(loaded) => {
            if loaded.skipped_corrupt > 0 {
                policy
                    .metrics
                    .counter_add(C_SNAPSHOTS_SKIPPED_CORRUPT, loaded.skipped_corrupt as u64);
                eprintln!(
                    "experiments: skipped {} corrupt snapshot(s) for {} / {}; resuming from cycle {}",
                    loaded.skipped_corrupt,
                    mix.name,
                    scheme.label(),
                    loaded.cycle,
                );
            }
            policy.metrics.counter_add(C_SNAPSHOTS_RESTORED, 1);
            let (p, c, h, _) = loaded.value;
            (p, c, h)
        }
        None => {
            let (mut p, c, h) = build();
            let _warm = profiler.span("warmup");
            let start =
                PhaseTimings::time(&mut timings.warmup_s, || p.warm_up(ctx.params.warmup_insts));
            (p, c.with_start_cycle(start), h)
        }
    };
    if let Some(token) = cancel {
        pipeline.set_cancel_token(token);
    }
    attach_tracing(ctx, &mut pipeline, run_id, mix, scheme);
    attach_profiler(&profiler, &mut pipeline);
    let metrics = attach_metrics(ctx, &mut pipeline);
    if let Some(counter) = ctx.progress_cycles() {
        pipeline.set_progress_counter(counter);
    }
    let mut collector = collector;
    collector.set_profiler(profiler.clone());

    let alloc_pre_measure = alloc_mark(&profiler);
    // The cycle budget is measured relative to the snapshotted
    // measurement origin, so a restored run resumed with the same
    // limits stops at the same absolute cycle a straight-through run
    // would have.
    let run = {
        let _meas = profiler.span("measure");
        PhaseTimings::time(&mut timings.measure_s, || {
            run_measured_checkpointed(
                &mut pipeline,
                collector,
                SimLimits::cycles(ctx.params.run_cycles),
                policy,
                &mut on_checkpoint,
            )
        })?
    };
    let alloc_post_measure = alloc_mark(&profiler);
    let result = run.result;
    let collector = run.collector;
    let avf = {
        let _col = profiler.span("collect");
        PhaseTimings::time(&mut timings.collect_s, || collector.report())
    };
    pipeline.tracer().flush();
    let stage_seconds = stage_snapshot(&pipeline);
    let sim_metrics = export_metrics(ctx, metrics.as_ref(), run_id, mix, scheme);
    let profile = export_profile(
        ctx,
        &profiler,
        run_id,
        mix,
        scheme,
        pipeline.stage_profile().sample_every(),
        &timings,
        None, // warmup may be replaced by a restore here; phase not tracked
        phase_alloc(&alloc_pre_measure, &alloc_post_measure),
    );

    let outcome = RunOutcome {
        mix: mix.name.clone(),
        scheme: scheme.label(),
        fetch,
        avf,
        throughput_ipc: result.stats.throughput_ipc(),
        harmonic_ipc: result.stats.harmonic_ipc(),
        l2_misses: result.stats.l2_misses,
        flushes: result.stats.flushes,
        mispredict_rate: result.stats.mispredict_rate(),
        governor_stall_cycles: result.stats.governor_stall_cycles,
        dvm_avg_ratio: dvm_handle.map(|h| h.lock().average_ratio()),
        deadlocked: result.deadlocked,
        cancelled: result.cancelled,
        salt,
        timings,
        stage_seconds,
        sim_metrics,
        measured_cycles: result.stats.cycles,
        committed_insts: result.stats.committed_per_thread.iter().sum(),
        profile,
    };
    ctx.record_manifest(RunManifest::new(run_id, ctx, mix, scheme, fetch, &outcome));
    Ok(outcome)
}

/// Drive one combination for its raw pipeline statistics only, with no
/// ground-truth AVF collection (e.g. Figure 2's ready-queue census).
/// Phase timing, trace export, and manifest logging match
/// [`run_scheme`]; the manifest's AVF metrics read as zero.
pub fn run_stats_only(
    ctx: &ExperimentContext,
    mix: &WorkloadMix,
    scheme: Scheme,
    fetch: FetchPolicyKind,
) -> smt_sim::SimResult {
    let mut timings = PhaseTimings::default();
    let run_id = ctx.next_run_id();
    let profiler = run_profiler(ctx);

    let programs = PhaseTimings::time(&mut timings.generate_s, || {
        let _generate = profiler.span("generate");
        ctx.mix_programs_profiled(mix, 0, &profiler)
    });
    let (policies, dvm_handle) = scheme.policies(fetch, ctx.machine.iq_size);
    let mut pipeline = Pipeline::new(ctx.machine.clone(), programs, policies);
    attach_tracing(ctx, &mut pipeline, run_id, mix, scheme);
    let metrics = attach_metrics(ctx, &mut pipeline);
    attach_profiler(&profiler, &mut pipeline);

    let alloc_pre_warm = alloc_mark(&profiler);
    PhaseTimings::time(&mut timings.warmup_s, || {
        let _warmup = profiler.span("warmup");
        pipeline.warm_up(ctx.params.warmup_insts)
    });
    let alloc_pre_measure = alloc_mark(&profiler);
    let result = PhaseTimings::time(&mut timings.measure_s, || {
        let _measure = profiler.span("measure");
        pipeline.run(
            SimLimits::cycles(ctx.params.run_cycles),
            &mut smt_sim::NullObserver,
        )
    });
    let alloc_post_measure = alloc_mark(&profiler);
    pipeline.tracer().flush();
    let stage_seconds = stage_snapshot(&pipeline);
    let sim_metrics = export_metrics(ctx, metrics.as_ref(), run_id, mix, scheme);
    let profile = export_profile(
        ctx,
        &profiler,
        run_id,
        mix,
        scheme,
        pipeline.stage_profile().sample_every(),
        &timings,
        phase_alloc(&alloc_pre_warm, &alloc_pre_measure),
        phase_alloc(&alloc_pre_measure, &alloc_post_measure),
    );

    let outcome = RunOutcome {
        mix: mix.name.clone(),
        scheme: scheme.label(),
        fetch,
        avf: AvfReport::default(),
        throughput_ipc: result.stats.throughput_ipc(),
        harmonic_ipc: result.stats.harmonic_ipc(),
        l2_misses: result.stats.l2_misses,
        flushes: result.stats.flushes,
        mispredict_rate: result.stats.mispredict_rate(),
        governor_stall_cycles: result.stats.governor_stall_cycles,
        dvm_avg_ratio: dvm_handle.map(|h| h.lock().average_ratio()),
        deadlocked: result.deadlocked,
        cancelled: result.cancelled,
        salt: 0,
        timings,
        stage_seconds,
        sim_metrics,
        measured_cycles: result.stats.cycles,
        committed_insts: result.stats.committed_per_thread.iter().sum(),
        profile,
    };
    ctx.record_manifest(RunManifest::new(run_id, ctx, mix, scheme, fetch, &outcome));
    result
}

/// Stage-profile snapshot of a finished run, when profiling was on.
fn stage_snapshot(pipeline: &Pipeline) -> Option<StageSeconds> {
    pipeline
        .stage_profile()
        .is_enabled()
        .then(|| pipeline.stage_profile().snapshot())
}

/// A live span profiler when the context has a profile directory, a
/// one-branch no-op otherwise.
fn run_profiler(ctx: &ExperimentContext) -> Profiler {
    if ctx.profile_dir().is_some() {
        Profiler::new()
    } else {
        Profiler::off()
    }
}

/// Attach a live profiler to the pipeline (and enable the sampled
/// stage-timing path it populates).
fn attach_profiler(profiler: &Profiler, pipeline: &mut Pipeline) {
    if profiler.is_on() {
        pipeline.set_profiler(profiler.clone());
    }
}

/// Allocation-counter reading at a phase boundary; `None` unless
/// profiling is on and the binary installed [`CountingAlloc`]
/// (`sim_profile::alloc::CountingAlloc`) as its global allocator.
fn alloc_mark(profiler: &Profiler) -> Option<AllocStats> {
    (profiler.is_on() && sim_profile::alloc::active()).then(sim_profile::alloc::stats)
}

/// Windowed allocation telemetry between two phase marks.
fn phase_alloc(start: &Option<AllocStats>, end: &Option<AllocStats>) -> Option<PhaseAlloc> {
    match (start, end) {
        (Some(s), Some(e)) => Some(e.phase_since(s)),
        _ => None,
    }
}

/// Export a live profiler's snapshot: folded stacks + a Chrome
/// trace-event file of synthetic host spans into the context's profile
/// directory, and a digest (top spans, overhead estimate, allocation
/// phases) for the run's manifest. `None` when profiling was off.
#[allow(clippy::too_many_arguments)]
fn export_profile(
    ctx: &ExperimentContext,
    profiler: &Profiler,
    run_id: u64,
    mix: &WorkloadMix,
    scheme: Scheme,
    sample_every: u32,
    timings: &PhaseTimings,
    alloc_warmup: Option<PhaseAlloc>,
    alloc_measure: Option<PhaseAlloc>,
) -> Option<ProfileDigest> {
    let snap = profiler.snapshot()?;
    let mut digest = snap.digest(12, sample_every);
    digest.overhead_frac = snap.overhead_frac(timings.total_s());
    digest.alloc_warmup = alloc_warmup;
    digest.alloc_measure = alloc_measure;
    let Some(dir) = ctx.profile_dir() else {
        return Some(digest);
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!(
            "experiments: cannot create profile dir {}: {e}",
            dir.display()
        );
        return Some(digest);
    }
    let base = format!(
        "run{:04}_{}_{}",
        run_id,
        slug(&mix.name),
        slug(scheme.label()),
    );
    if let Err(e) = sim_harness::atomic_write(&dir.join(format!("{base}.folded")), &snap.folded()) {
        eprintln!("experiments: folded-stacks export failed for {base}: {e}");
    }
    // Chrome host spans: the aggregated tree rendered as a synthetic
    // timeline (children laid out sequentially inside their parent), so
    // the same viewer that opens `--trace` files shows where host time
    // went. Rows arrive depth-first with children name-sorted, so a
    // per-depth cursor reconstructs the nesting.
    let mut sink = ChromeTraceSink::new(dir.join(format!("{base}.hostspans.trace.json")));
    let mut cursors: Vec<u64> = vec![0];
    for row in &snap.rows {
        while cursors.len() <= row.depth {
            cursors.push(0);
        }
        let ts = cursors[row.depth];
        let dur = row.total_ns / 1_000;
        cursors.truncate(row.depth + 1);
        cursors.push(ts);
        cursors[row.depth] = ts + dur;
        sink.complete_span(
            ts,
            dur,
            row.name(),
            vec![
                ("path", Value::String(row.path.clone())),
                ("calls", Value::U64(row.calls)),
                ("self_us", Value::U64(row.self_ns / 1_000)),
            ],
        );
    }
    if let Err(e) = sink.write_file() {
        eprintln!("experiments: host-span export failed for {base}: {e}");
    }
    Some(digest)
}

/// When the context carries a trace directory, attach a per-run Chrome
/// trace exporter and coarse stage self-profiling to the pipeline.
fn attach_tracing(
    ctx: &ExperimentContext,
    pipeline: &mut Pipeline,
    run_id: u64,
    mix: &WorkloadMix,
    scheme: Scheme,
) {
    let Some(dir) = ctx.trace_dir() else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!(
            "experiments: cannot create trace dir {}: {e}",
            dir.display()
        );
        return;
    }
    let path = dir.join(format!(
        "run{:04}_{}_{}.trace.json",
        run_id,
        slug(&mix.name),
        slug(scheme.label()),
    ));
    pipeline.set_tracer(Tracer::new(ChromeTraceSink::new(path)));
    pipeline.set_stage_profiling(true);
}

/// When the context carries a metrics directory, attach a fresh
/// sim-metrics registry to the pipeline (and through it, the governor).
fn attach_metrics(ctx: &ExperimentContext, pipeline: &mut Pipeline) -> Option<Metrics> {
    ctx.metrics_dir()?;
    let metrics = Metrics::new();
    pipeline.set_metrics(metrics.clone());
    Some(metrics)
}

/// Export a finished run's registry (per-interval JSONL series +
/// Prometheus text) into the context's metrics directory and digest it
/// for the manifest.
fn export_metrics(
    ctx: &ExperimentContext,
    metrics: Option<&Metrics>,
    run_id: u64,
    mix: &WorkloadMix,
    scheme: Scheme,
) -> Option<MetricsSummary> {
    let metrics = metrics?;
    let snapshot = metrics.snapshot();
    if let Some(dir) = ctx.metrics_dir() {
        let base = format!(
            "run{:04}_{}_{}",
            run_id,
            slug(&mix.name),
            slug(scheme.label()),
        );
        // Atomic exports: stream to a buffer, then `.tmp` + rename, so
        // a crash (or SIGINT) mid-export never leaves a torn file for a
        // resumed campaign to trip over.
        let export = std::fs::create_dir_all(dir)
            .and_then(|_| {
                let mut buf = Vec::new();
                sim_metrics::export::write_series_jsonl(&snapshot, &mut buf)?;
                let text = String::from_utf8(buf)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                sim_harness::atomic_write(&dir.join(format!("{base}.series.jsonl")), &text)
            })
            .and_then(|_| {
                sim_harness::atomic_write(
                    &dir.join(format!("{base}.prom")),
                    &sim_metrics::export::render_prometheus(&snapshot),
                )
            });
        if let Err(e) = export {
            eprintln!("experiments: metrics export failed for {base}: {e}");
        }
    }
    Some(MetricsSummary::from_snapshot(&snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentParams;

    #[test]
    fn baseline_run_completes_and_reports() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let mix = workload_gen::mix_by_name("CPU-A").unwrap();
        let out = run_scheme(&ctx, &mix, Scheme::Baseline, FetchPolicyKind::Icount);
        assert!(!out.deadlocked);
        assert!(out.throughput_ipc > 0.5);
        assert!(out.avf.iq_avf > 0.0 && out.avf.iq_avf < 1.0);
        assert!(out.dvm_avg_ratio.is_none());
        assert!(out.stage_seconds.is_none(), "profiling is opt-in");
        assert_eq!(out.mix, "CPU-A");
        // Self-profiling: every phase saw wall-clock time.
        assert!(out.timings.warmup_s > 0.0);
        assert!(out.timings.measure_s > 0.0);
        assert!(out.timings.total_s() > 0.0);
        // The run logged a manifest mirroring the outcome.
        let manifests = ctx.drain_manifests();
        assert_eq!(manifests.len(), 1);
        assert_eq!(manifests[0].mix, "CPU-A");
        assert_eq!(manifests[0].metrics.l2_misses, out.l2_misses);
        assert_eq!(manifests[0].seeds.len(), manifests[0].benchmarks.len());
        assert!(ctx.drain_manifests().is_empty(), "drain empties the log");
    }

    #[test]
    fn checkpointed_rerun_restores_and_matches_bit_for_bit() {
        let dir = std::env::temp_dir().join("smtsim_runner_ckpt_test");
        std::fs::remove_dir_all(&dir).ok();
        let ctx = ExperimentContext::new(ExperimentParams::bench());
        let mix = workload_gen::mix_by_name("CPU-A").unwrap();
        let store = sim_harness::SnapshotStore::new(&dir, "cpu-a-baseline");
        let metrics = Metrics::off();
        let policy = CheckpointPolicy {
            store: &store,
            every: 10_000,
            selfcheck: true,
            metrics: &metrics,
        };

        let mut checkpoints = 0u64;
        let first = run_scheme_checkpointed(
            &ctx,
            &mix,
            Scheme::Baseline,
            FetchPolicyKind::Icount,
            0,
            None,
            &policy,
            |_| checkpoints += 1,
        )
        .unwrap();
        assert!(!first.deadlocked && !first.cancelled);
        assert!(checkpoints >= 2, "bench budget spans several boundaries");
        assert!(!store.list().is_empty(), "snapshots persisted on disk");

        // A second invocation restores the newest snapshot (taken at
        // the last mid-run boundary), simulates only the tail, and
        // must land on the exact same statistics — and skip warmup.
        let resumed = run_scheme_checkpointed(
            &ctx,
            &mix,
            Scheme::Baseline,
            FetchPolicyKind::Icount,
            0,
            None,
            &policy,
            |_| {},
        )
        .unwrap();
        assert_eq!(resumed.timings.warmup_s, 0.0, "restored runs skip warmup");
        assert_eq!(resumed.avf.iq_avf.to_bits(), first.avf.iq_avf.to_bits());
        assert_eq!(
            resumed.throughput_ipc.to_bits(),
            first.throughput_ipc.to_bits()
        );
        assert_eq!(resumed.l2_misses, first.l2_misses);
        assert_eq!(resumed.flushes, first.flushes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dvm_run_exposes_ratio_telemetry() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let mix = workload_gen::mix_by_name("MEM-A").unwrap();
        let out = run_scheme(
            &ctx,
            &mix,
            Scheme::DvmDynamic { target: 0.15 },
            FetchPolicyKind::Icount,
        );
        assert!(!out.deadlocked);
        assert!(out.dvm_avg_ratio.unwrap() > 0.0);
    }

    #[test]
    fn metricized_run_exports_series_and_digest() {
        let dir = std::env::temp_dir().join("smtsim_runner_metrics_test");
        std::fs::remove_dir_all(&dir).ok();
        let ctx = ExperimentContext::new(ExperimentParams::fast()).with_metrics_dir(&dir);
        let mix = workload_gen::mix_by_name("MEM-A").unwrap();
        let out = run_scheme_salted(
            &ctx,
            &mix,
            Scheme::DvmDynamic { target: 0.15 },
            FetchPolicyKind::Icount,
            1,
        );
        assert_eq!(out.salt, 1);
        // The outcome and manifest both carry the registry digest, with
        // one point per closed interval in each pipeline series.
        let digest = out.sim_metrics.as_ref().expect("metrics recorded");
        let intervals = digest.series("ipc").unwrap().points;
        assert!(intervals >= 20, "fast budget closes ~25 intervals");
        for series in ["iq.ready_len", "iq.ace_fraction", "iq.interval_avf"] {
            assert_eq!(digest.series(series).unwrap().points, intervals);
        }
        assert!(digest.series("dvm.wq_ratio").is_some(), "governor gauge");
        let manifests = ctx.drain_manifests();
        assert_eq!(manifests[0].salt, 1);
        assert_eq!(manifests[0].sim_metrics.as_ref(), Some(digest));
        // Both export files landed next to each other.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names.len(), 2, "{names:?}");
        assert!(names[0].ends_with(".prom"));
        assert!(names[1].ends_with(".series.jsonl"));
        let jsonl = std::fs::read_to_string(dir.join(&names[1])).unwrap();
        assert_eq!(jsonl.lines().count() as u64, intervals);
        let prom = std::fs::read_to_string(dir.join(&names[0])).unwrap();
        assert!(prom.contains("smtsim_dvm_wq_ratio"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_run_writes_chrome_export() {
        let dir = std::env::temp_dir().join("smtsim_runner_trace_test");
        std::fs::remove_dir_all(&dir).ok();
        let ctx = ExperimentContext::new(ExperimentParams::fast()).with_trace_dir(&dir);
        let mix = workload_gen::mix_by_name("MIX-A").unwrap();
        let out = run_scheme(&ctx, &mix, Scheme::VisaOpt2, FetchPolicyKind::Icount);
        let stages = out.stage_seconds.expect("traced runs profile stages");
        assert!(stages.total_s() > 0.0);
        assert!(stages.profiled_cycles > 0);
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        assert_eq!(files.len(), 1, "one trace file per run: {files:?}");
        let doc = serde::json::parse(&std::fs::read_to_string(&files[0]).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
