//! Shared experiment state: profiled programs and measurement budgets.

use crate::manifest::RunManifest;
use avf::profiler::{profile_and_tag, ProfileResult};
use parking_lot::Mutex;
use sim_profile::Profiler;
use smt_sim::MachineConfig;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use workload_gen::{Program, WorkloadMix};

/// Measurement budget of one experiment campaign.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Instructions per benchmark for the offline vulnerability profile.
    pub profile_insts: u64,
    /// Warmup instructions before measurement (plays the SimPoint
    /// fast-forward role; CPU-class mixes need ~1M to reach cache steady
    /// state).
    pub warmup_insts: u64,
    /// Measured cycles per run (100 sampling intervals by default).
    pub run_cycles: u64,
    /// ACE-analysis window (instructions; the paper uses 40 000).
    pub ace_window: usize,
    /// DVM reliability thresholds as fractions of MaxIQ_AVF (Figures
    /// 8–10 use 0.7 … 0.3).
    pub threshold_fracs: [f64; 5],
}

impl ExperimentParams {
    /// Full campaign (the numbers in EXPERIMENTS.md).
    pub fn full() -> ExperimentParams {
        ExperimentParams {
            profile_insts: 300_000,
            warmup_insts: 1_000_000,
            run_cycles: 1_000_000,
            ace_window: 40_000,
            threshold_fracs: [0.7, 0.6, 0.5, 0.4, 0.3],
        }
    }

    /// Reduced budget for integration tests and smoke runs.
    pub fn fast() -> ExperimentParams {
        ExperimentParams {
            profile_insts: 60_000,
            warmup_insts: 250_000,
            run_cycles: 250_000,
            ace_window: 40_000,
            threshold_fracs: [0.7, 0.6, 0.5, 0.4, 0.3],
        }
    }

    /// Bench-baseline budget: small enough that a multi-seed sweep
    /// finishes as a debug-build CI smoke job, large enough to close
    /// 12 sampling intervals per run. Baselines recorded under one
    /// budget are only comparable to runs under the same budget (the
    /// comparator enforces this).
    pub fn bench() -> ExperimentParams {
        ExperimentParams {
            profile_insts: 60_000,
            warmup_insts: 150_000,
            run_cycles: 120_000,
            ace_window: 40_000,
            threshold_fracs: [0.7, 0.6, 0.5, 0.4, 0.3],
        }
    }
}

/// Shared context: machine configuration plus a lazily filled cache of
/// profiled (hint-tagged) program texts, one per benchmark.
pub struct ExperimentContext {
    pub params: ExperimentParams,
    pub machine: MachineConfig,
    #[allow(clippy::type_complexity)]
    tagged: Mutex<HashMap<(&'static str, u64), (Arc<Program>, ProfileResult)>>,
    /// When set, each run exports a Chrome trace-event file here.
    trace_dir: Option<PathBuf>,
    /// When set, each run records a sim-metrics registry and exports
    /// its per-interval JSONL series and Prometheus text here.
    metrics_dir: Option<PathBuf>,
    /// When set, each run self-profiles its host-side time (hierarchical
    /// span tree, allocation phases) and exports folded stacks plus
    /// Chrome host spans here.
    profile_dir: Option<PathBuf>,
    /// Live cycle counter of the campaign heartbeat; simulations feed it
    /// on their interval clock when a supervised subcommand installs it.
    progress_cycles: Mutex<Option<Arc<AtomicU64>>>,
    /// Monotonic run ids tying manifests to trace file names.
    run_counter: AtomicU64,
    /// Manifests of completed runs; the CLI drains this after each
    /// exhibit (and discards if `--manifest` was not given).
    manifests: Mutex<Vec<RunManifest>>,
}

impl ExperimentContext {
    pub fn new(params: ExperimentParams) -> ExperimentContext {
        ExperimentContext {
            params,
            machine: MachineConfig::table2(),
            tagged: Mutex::new(HashMap::new()),
            trace_dir: None,
            metrics_dir: None,
            profile_dir: None,
            progress_cycles: Mutex::new(None),
            run_counter: AtomicU64::new(0),
            manifests: Mutex::new(Vec::new()),
        }
    }

    /// Enable per-run Chrome trace export into `dir`.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> ExperimentContext {
        self.trace_dir = Some(dir.into());
        self
    }

    pub fn trace_dir(&self) -> Option<&Path> {
        self.trace_dir.as_deref()
    }

    /// Enable per-run sim-metrics recording and export into `dir`.
    pub fn with_metrics_dir(mut self, dir: impl Into<PathBuf>) -> ExperimentContext {
        self.metrics_dir = Some(dir.into());
        self
    }

    pub fn metrics_dir(&self) -> Option<&Path> {
        self.metrics_dir.as_deref()
    }

    /// Enable per-run host-side self-profiling and export into `dir`.
    pub fn with_profile_dir(mut self, dir: impl Into<PathBuf>) -> ExperimentContext {
        self.profile_dir = Some(dir.into());
        self
    }

    pub fn profile_dir(&self) -> Option<&Path> {
        self.profile_dir.as_deref()
    }

    /// Install the campaign heartbeat's shared cycle counter; subsequent
    /// runs bump it with their interval-clock progress.
    pub fn set_progress_cycles(&self, counter: Arc<AtomicU64>) {
        *self.progress_cycles.lock() = Some(counter);
    }

    pub fn progress_cycles(&self) -> Option<Arc<AtomicU64>> {
        self.progress_cycles.lock().clone()
    }

    /// Next campaign-unique run id.
    pub fn next_run_id(&self) -> u64 {
        self.run_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Log a completed run's manifest.
    pub fn record_manifest(&self, manifest: RunManifest) {
        self.manifests.lock().push(manifest);
    }

    /// Take every manifest logged since the last drain.
    pub fn drain_manifests(&self) -> Vec<RunManifest> {
        std::mem::take(&mut *self.manifests.lock())
    }

    /// The profiled, hint-tagged program for one benchmark (cached).
    pub fn tagged_program(&self, name: &'static str) -> (Arc<Program>, ProfileResult) {
        self.tagged_program_salted(name, 0)
    }

    /// Salted variant: salt 0 is the canonical seeded workload; other
    /// salts draw independent programs from the same benchmark model
    /// (cross-seed aggregation, bench baselines).
    pub fn tagged_program_salted(
        &self,
        name: &'static str,
        salt: u64,
    ) -> (Arc<Program>, ProfileResult) {
        self.tagged_program_profiled(name, salt, &Profiler::off())
    }

    /// [`tagged_program_salted`](Self::tagged_program_salted) with a
    /// host-side span profiler: a cache miss attributes its offline ACE
    /// sweep (the expensive part of workload preparation) to an
    /// `ace.profile_sweep` span.
    pub fn tagged_program_profiled(
        &self,
        name: &'static str,
        salt: u64,
        profiler: &Profiler,
    ) -> (Arc<Program>, ProfileResult) {
        if let Some(hit) = self.tagged.lock().get(&(name, salt)) {
            return hit.clone();
        }
        // Profile outside the lock: profiling is the expensive part and
        // distinct benchmarks may be profiled concurrently.
        let model =
            workload_gen::model_by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let raw = Arc::new(workload_gen::generate_program_salted(&model, salt));
        let entry = {
            let _sweep = profiler.span("ace.profile_sweep");
            profile_and_tag(&raw, self.params.profile_insts, self.params.ace_window)
        };
        let mut cache = self.tagged.lock();
        cache.entry((name, salt)).or_insert(entry).clone()
    }

    /// The four tagged programs of a mix, in context order.
    pub fn mix_programs(&self, mix: &WorkloadMix) -> Vec<Arc<Program>> {
        self.mix_programs_salted(mix, 0)
    }

    /// Salted variant of [`mix_programs`](Self::mix_programs).
    pub fn mix_programs_salted(&self, mix: &WorkloadMix, salt: u64) -> Vec<Arc<Program>> {
        self.mix_programs_profiled(mix, salt, &Profiler::off())
    }

    /// Span-profiled variant of [`mix_programs_salted`](Self::mix_programs_salted).
    pub fn mix_programs_profiled(
        &self,
        mix: &WorkloadMix,
        salt: u64,
        profiler: &Profiler,
    ) -> Vec<Arc<Program>> {
        mix.benchmarks
            .iter()
            .map(|&n| self.tagged_program_profiled(n, salt, profiler).0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_programs_are_cached() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let (a, ra) = ctx.tagged_program("gcc");
        let (b, rb) = ctx.tagged_program("gcc");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ra.accuracy, rb.accuracy);
        assert!(a.insts.iter().any(|i| i.ace_hint), "hints installed");
    }

    #[test]
    fn salted_programs_cache_independently() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let (canonical, _) = ctx.tagged_program("gcc");
        let (salt0, _) = ctx.tagged_program_salted("gcc", 0);
        let (salt1, _) = ctx.tagged_program_salted("gcc", 1);
        assert!(Arc::ptr_eq(&canonical, &salt0), "salt 0 is canonical");
        assert!(!Arc::ptr_eq(&canonical, &salt1));
        let (salt1b, _) = ctx.tagged_program_salted("gcc", 1);
        assert!(Arc::ptr_eq(&salt1, &salt1b), "salted entries cached too");
    }

    #[test]
    fn mix_programs_resolve_all_contexts() {
        let ctx = ExperimentContext::new(ExperimentParams::fast());
        let mix = workload_gen::mix_by_name("CPU-A").unwrap();
        assert_eq!(ctx.mix_programs(&mix).len(), 4);
    }

    #[test]
    fn param_tiers_are_ordered() {
        let full = ExperimentParams::full();
        let fast = ExperimentParams::fast();
        assert!(full.warmup_insts > fast.warmup_insts);
        assert!(full.run_cycles > fast.run_cycles);
        assert_eq!(full.threshold_fracs, fast.threshold_fracs);
    }
}
