//! Monte-Carlo fault-injection campaigns.
//!
//! One campaign = one golden run + `N` single-bit-upset trials against
//! it. Each trial samples a uniform `(cycle, entry, bit)` site in one
//! structure and classifies the flip:
//!
//! * **Masked** — architecturally invisible: empty slot, dead bit,
//!   squashed victim, or a corrupted value that never reaches a sink.
//! * **SDC** — silent data corruption: the retired sink stream (stores,
//!   control decisions, outputs) diverges from the golden run.
//! * **Detected** — a retirement-critical bit of an instruction that
//!   still commits: a real machine's retirement checks would
//!   machine-check rather than retire the malformed entry.
//! * **Hang** — the flip starves forward progress and the per-thread
//!   commit watchdog fires within the trial's cycle budget.
//!
//! The non-masked fraction over uniformly sampled bits is an unbiased
//! estimator of the structure's AVF, reported with a Wilson 95 %
//! interval — the campaign's cross-check against the ACE-analysis
//! model.
//!
//! ## Execution strategy
//!
//! Classifying a payload or register fault does not require re-running
//! the timing simulator: those faults corrupt a *value*, not pipeline
//! control state, so the faulty run's commit stream is cycle-identical
//! to the golden run and the outcome is decided by replaying the
//! recorded stream through the architectural emulator with a
//! [`FaultDirective`]. Only select/retirement-critical flips on
//! not-yet-issued victims mutate real pipeline state
//! (`inhibit_issue`), and only those trials re-simulate. On top of the
//! empty/dead fast paths this turns an `N`-trial campaign from `N`
//! full simulations into one golden run plus a handful of re-runs.

use std::collections::HashSet;
use std::sync::Arc;

use avf::layout::{rob_bit_class, RobBitClass, RF_REG_BITS, ROB_ENTRY_BITS};
use avf::AvfCollector;
use serde::{Deserialize, Serialize};
use sim_metrics::Metrics;
use sim_stats::{wilson_ci95, WilsonCi};
use sim_trace::{TraceEvent, Tracer};
use smt_sim::layout::IQ_ENTRY_BITS;
use smt_sim::pipeline::PipelinePolicies;
use smt_sim::{
    iq_bit_class, InjectableState, IqBitClass, MachineConfig, NullObserver, Pipeline, RobBitKind,
    SimLimits, SimObserver, Structure, REGS_PER_THREAD,
};
use workload_gen::Program;

use crate::digest::{
    golden_digest, replay, FateObserver, FaultDirective, GoldenRecorder, SinkDigest, Tandem,
};

/// Deterministic SplitMix64 stream for site sampling.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` (modulo bias is negligible for the
    /// structure geometries involved, all ≪ 2^32).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Trial outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Masked,
    Sdc,
    Detected,
    Hang,
}

impl Outcome {
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Detected => "detected",
            Outcome::Hang => "hang",
        }
    }
}

/// Per-structure campaign tallies and the derived vulnerability
/// estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StructureStats {
    /// Structure label ("iq", "rob", "rf").
    pub structure: String,
    pub trials: u64,
    pub masked: u64,
    pub sdc: u64,
    pub detected: u64,
    pub hang: u64,
    /// Masked trials whose corruption is still latent in a register the
    /// sink stream never observed (a strict subset of `masked`).
    pub latent: u64,
    /// Non-masked fraction: the injection-derived AVF estimate.
    pub avf_estimate: f64,
    /// Wilson 95 % interval on the non-masked proportion.
    pub ci95: WilsonCi,
}

impl StructureStats {
    fn new(structure: Structure) -> StructureStats {
        StructureStats {
            structure: structure.as_str().to_string(),
            trials: 0,
            masked: 0,
            sdc: 0,
            detected: 0,
            hang: 0,
            latent: 0,
            avf_estimate: 0.0,
            ci95: WilsonCi::default(),
        }
    }

    fn record(&mut self, outcome: Outcome, latent: bool) {
        self.trials += 1;
        match outcome {
            Outcome::Masked => self.masked += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Detected => self.detected += 1,
            Outcome::Hang => self.hang += 1,
        }
        if latent {
            self.latent += 1;
        }
    }

    /// Trials whose flip was architecturally consequential.
    pub fn vulnerable(&self) -> u64 {
        self.sdc + self.detected + self.hang
    }

    fn finalize(&mut self) {
        self.ci95 = wilson_ci95(self.vulnerable(), self.trials);
        self.avf_estimate = self.ci95.estimate;
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub machine: MachineConfig,
    /// Instructions to warm up before measurement starts.
    pub warmup_insts: u64,
    /// Measured window length; injection cycles are uniform within it.
    pub run_cycles: u64,
    /// Per-thread commit-starvation watchdog for trials (hang budget).
    pub watchdog_cycles: u64,
    /// Injection counts per structure.
    pub iq_trials: u64,
    pub rob_trials: u64,
    pub rf_trials: u64,
    /// ACE-analysis window for the golden AVF collector.
    pub ace_window: usize,
    /// Campaign RNG seed.
    pub seed: u64,
}

/// The campaign's full result: golden-run summary plus per-structure
/// injection statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    pub seed: u64,
    /// Measured cycles of the golden run.
    pub cycles: u64,
    /// Committed instructions in the golden window.
    pub committed: u64,
    /// ACE-analysis AVFs of the same golden run (the model under test).
    pub ace_iq_avf: f64,
    pub ace_rob_avf: f64,
    pub ace_rf_avf: f64,
    /// Worst sampling-interval IQ AVF of the golden run (the paper's
    /// MaxIQ_AVF; DVM reliability targets are anchored to it).
    pub ace_max_interval_iq_avf: f64,
    /// Architectural digest of the golden run.
    pub golden: SinkDigest,
    pub structures: Vec<StructureStats>,
}

impl CampaignResult {
    pub fn structure(&self, name: &str) -> Option<&StructureStats> {
        self.structures.iter().find(|s| s.structure == name)
    }
}

/// Deterministic nonzero perturbation for a payload flip at `bit`.
fn perturbation(bit: u32) -> u64 {
    0x8000_0000_0000_0001u64.rotate_left(bit)
}

#[derive(Debug, Clone, Copy)]
struct Planned {
    structure: Structure,
    /// Injection cycle, as an offset from measurement start.
    off: u64,
    entry: usize,
    bit: u32,
}

/// What the sweep saw at a planned site (classification happens after
/// the golden run completes).
#[derive(Debug, Clone, Copy)]
enum SiteObs {
    /// Empty slot or dead bit: masked with no further work.
    MaskedFast,
    /// Payload bit of a live occupant: classify by perturbed replay.
    Payload { victim_seq: u64 },
    /// Select/retirement-critical bit. `waiting` victims need a
    /// re-simulated trial; issued/completed ones are judged by the
    /// victim's golden fate (machine-check-at-retire model).
    Critical { victim_seq: u64, waiting: bool },
    /// Register-file flip: classify by replay with a register directive.
    RegFlip { tid: u8, reg_index: usize },
}

fn observe(pipeline: &Pipeline, site: &Planned) -> SiteObs {
    match site.structure {
        Structure::IssueQueue => match pipeline.iq_state().occupant(site.entry) {
            None => SiteObs::MaskedFast,
            Some(o) => match iq_bit_class(site.bit) {
                IqBitClass::Dead => SiteObs::MaskedFast,
                IqBitClass::Payload => SiteObs::Payload { victim_seq: o.seq },
                IqBitClass::SelectCritical => SiteObs::Critical {
                    victim_seq: o.seq,
                    waiting: !o.issued,
                },
            },
        },
        Structure::Rob => match pipeline.rob_state(ROB_ENTRY_BITS).occupant(site.entry) {
            None => SiteObs::MaskedFast,
            Some(o) => match rob_bit_class(site.bit) {
                RobBitClass::Dead => SiteObs::MaskedFast,
                // The buffered result is dead once writeback published it.
                RobBitClass::Payload if o.completed => SiteObs::MaskedFast,
                RobBitClass::Payload => SiteObs::Payload { victim_seq: o.seq },
                RobBitClass::Control => SiteObs::Critical {
                    victim_seq: o.seq,
                    waiting: !o.issued && !o.completed,
                },
            },
        },
        Structure::RegFile => SiteObs::RegFlip {
            tid: (site.entry / REGS_PER_THREAD) as u8,
            reg_index: site.entry % REGS_PER_THREAD,
        },
    }
}

/// Re-simulate a trial whose fault mutates pipeline state (an
/// inhibited, not-yet-issued victim): fresh machine, same seed, flip at
/// the sampled cycle, then let the hang/squash race play out under a
/// tight watchdog.
fn resimulate(
    cfg: &CampaignConfig,
    programs: &[Arc<Program>],
    make_policies: &dyn Fn() -> PipelinePolicies,
    site: &Planned,
    expect_seq: u64,
) -> Outcome {
    let mut pipeline = Pipeline::new(cfg.machine.clone(), programs.to_vec(), make_policies());
    pipeline.warm_up(cfg.warmup_insts);
    let mut sink = NullObserver;
    for _ in 0..site.off {
        pipeline.step(&mut sink);
    }
    let fault = match site.structure {
        Structure::IssueQueue => pipeline.inject_iq_bit(site.entry, site.bit),
        Structure::Rob => pipeline.inject_rob_bit(site.entry, site.bit, RobBitKind::Control),
        Structure::RegFile => unreachable!("register faults never re-simulate"),
    };
    // Replay determinism guarantees the same occupant as the sweep saw;
    // watch whoever is actually there to stay honest if it ever drifts.
    let watch = fault.victim_seq().unwrap_or(expect_seq);
    let mut fate = FateObserver::new(watch);
    // Budget: past the injection point, leave room for the victim
    // thread to drain its older work and then trip the watchdog.
    let budget = site.off + 2 * cfg.watchdog_cycles + 1_000;
    let result = pipeline.run(
        SimLimits::cycles(budget).with_watchdog(cfg.watchdog_cycles),
        &mut fate,
    );
    if fate.squashed {
        // The corrupted entry was rolled back and re-fetched clean:
        // genuine microarchitectural recovery.
        Outcome::Masked
    } else if result.deadlocked {
        Outcome::Hang
    } else if fate.committed {
        // An inhibited instruction cannot normally complete; if it
        // somehow retires, the critical corruption reached retirement.
        Outcome::Detected
    } else {
        // Budget exhausted with the victim still wedged in place —
        // forward progress is lost even if the watchdog race was close.
        Outcome::Hang
    }
}

/// Run a fault-injection campaign. `make_policies` builds one fresh
/// policy set per simulation (the golden run and each re-simulated
/// trial); campaign counters go to `metrics` and per-trial events to
/// `tracer`.
pub fn run_campaign(
    cfg: &CampaignConfig,
    programs: &[Arc<Program>],
    make_policies: &dyn Fn() -> PipelinePolicies,
    metrics: &Metrics,
    tracer: &Tracer,
) -> CampaignResult {
    assert!(cfg.run_cycles > 0, "empty measurement window");
    assert_eq!(programs.len(), cfg.machine.num_threads);
    let n = cfg.machine.num_threads;

    // ---- Plan every trial site up front (pure RNG, reproducible). ----
    let mut rng = SplitMix64::new(cfg.seed ^ 0xfa57_1213);
    let mut plan: Vec<Planned> = Vec::new();
    let mut sample = |plan: &mut Vec<Planned>, structure, trials, entries: u64, bits: u32| {
        for _ in 0..trials {
            plan.push(Planned {
                structure,
                off: rng.below(cfg.run_cycles),
                entry: rng.below(entries) as usize,
                bit: rng.below(bits as u64) as u32,
            });
        }
    };
    sample(
        &mut plan,
        Structure::IssueQueue,
        cfg.iq_trials,
        cfg.machine.iq_size as u64,
        IQ_ENTRY_BITS,
    );
    sample(
        &mut plan,
        Structure::Rob,
        cfg.rob_trials,
        (n * cfg.machine.rob_size) as u64,
        ROB_ENTRY_BITS,
    );
    sample(
        &mut plan,
        Structure::RegFile,
        cfg.rf_trials,
        (n * REGS_PER_THREAD) as u64,
        RF_REG_BITS,
    );
    plan.sort_by_key(|p| p.off);

    // ---- Golden run with interleaved site sampling. ----
    let mut pipeline = Pipeline::new(cfg.machine.clone(), programs.to_vec(), make_policies());
    let start = pipeline.warm_up(cfg.warmup_insts);
    let mut collector =
        AvfCollector::new(&cfg.machine, cfg.ace_window, 10_000).with_start_cycle(start);
    let mut recorder = GoldenRecorder::default();
    let mut observations: Vec<SiteObs> = Vec::with_capacity(plan.len());
    {
        let mut obs = Tandem(&mut collector, &mut recorder);
        let mut next = 0usize;
        while pipeline.cycle() - start < cfg.run_cycles {
            let off = pipeline.cycle() - start;
            while next < plan.len() && plan[next].off == off {
                observations.push(observe(&pipeline, &plan[next]));
                next += 1;
            }
            pipeline.step(&mut obs);
        }
        debug_assert_eq!(next, plan.len());
        let end = pipeline.cycle();
        obs.on_finish(end);
    }
    let report = collector.report();
    let commits = recorder.commits;
    let committed_seqs: HashSet<u64> = commits.iter().map(|r| r.seq).collect();
    let golden = golden_digest(n, &commits);

    // ---- Classify every trial. ----
    let mut iq = StructureStats::new(Structure::IssueQueue);
    let mut rob = StructureStats::new(Structure::Rob);
    let mut rf = StructureStats::new(Structure::RegFile);
    for (site, seen) in plan.iter().zip(observations) {
        let victim_seq = match seen {
            SiteObs::Payload { victim_seq } | SiteObs::Critical { victim_seq, .. } => {
                Some(victim_seq)
            }
            _ => None,
        };
        let mut latent = false;
        let judge = |faulty: &SinkDigest, latent: &mut bool| {
            if !faulty.chains_match(&golden) {
                Outcome::Sdc
            } else {
                *latent = faulty.rf_hash != golden.rf_hash;
                Outcome::Masked
            }
        };
        let outcome = match seen {
            SiteObs::MaskedFast => Outcome::Masked,
            SiteObs::Payload { victim_seq } => {
                if !committed_seqs.contains(&victim_seq) {
                    // Squashed (or never retired): corruption discarded.
                    Outcome::Masked
                } else {
                    let faulty = replay(
                        n,
                        &commits,
                        FaultDirective::PerturbResult {
                            victim_seq,
                            perturbation: perturbation(site.bit),
                        },
                    );
                    judge(&faulty, &mut latent)
                }
            }
            SiteObs::Critical {
                victim_seq,
                waiting: false,
            } => {
                if committed_seqs.contains(&victim_seq) {
                    Outcome::Detected
                } else {
                    Outcome::Masked
                }
            }
            SiteObs::Critical {
                victim_seq,
                waiting: true,
            } => resimulate(cfg, programs, make_policies, site, victim_seq),
            SiteObs::RegFlip { tid, reg_index } => {
                let faulty = replay(
                    n,
                    &commits,
                    FaultDirective::FlipRegister {
                        tid,
                        reg_index,
                        bit: site.bit,
                        at_cycle: start + site.off,
                    },
                );
                judge(&faulty, &mut latent)
            }
        };
        let stats = match site.structure {
            Structure::IssueQueue => &mut iq,
            Structure::Rob => &mut rob,
            Structure::RegFile => &mut rf,
        };
        stats.record(outcome, latent);
        metrics.counter_add("faultinject.trials", 1);
        match outcome {
            Outcome::Masked => metrics.counter_add("faultinject.masked", 1),
            Outcome::Sdc => metrics.counter_add("faultinject.sdc", 1),
            Outcome::Detected => metrics.counter_add("faultinject.detected", 1),
            Outcome::Hang => metrics.counter_add("faultinject.hang", 1),
        }
        if latent {
            metrics.counter_add("faultinject.latent", 1);
        }
        tracer.emit(|| TraceEvent::FaultInject {
            cycle: start + site.off,
            structure: site.structure.as_str().to_string(),
            entry: site.entry,
            bit: site.bit,
            victim_seq,
            outcome: outcome.label().to_string(),
        });
    }
    for s in [&mut iq, &mut rob, &mut rf] {
        s.finalize();
    }

    CampaignResult {
        seed: cfg.seed,
        cycles: cfg.run_cycles,
        committed: commits.len() as u64,
        ace_iq_avf: report.iq_avf,
        ace_rob_avf: report.rob_avf,
        ace_rf_avf: report.rf_avf,
        ace_max_interval_iq_avf: report.max_interval_iq_avf(),
        golden,
        structures: vec![iq, rob, rf],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::AppliedFault;
    use workload_gen::{generate_program_salted, model_by_name};

    fn cpu_programs(salt: u64) -> Vec<Arc<Program>> {
        ["bzip2", "gcc", "eon", "perlbmk"]
            .iter()
            .map(|m| Arc::new(generate_program_salted(&model_by_name(m).unwrap(), salt)))
            .collect()
    }

    fn small_cfg(seed: u64) -> CampaignConfig {
        CampaignConfig {
            machine: MachineConfig::table2(),
            warmup_insts: 2_000,
            run_cycles: 4_000,
            watchdog_cycles: 2_000,
            iq_trials: 30,
            rob_trials: 15,
            rf_trials: 15,
            ace_window: 1 << 16,
            seed,
        }
    }

    #[test]
    fn campaign_tallies_are_consistent() {
        let cfg = small_cfg(11);
        let result = run_campaign(
            &cfg,
            &cpu_programs(11),
            &PipelinePolicies::default,
            &Metrics::off(),
            &Tracer::off(),
        );
        assert_eq!(result.structures.len(), 3);
        let iq = result.structure("iq").unwrap();
        assert_eq!(iq.trials, 30);
        assert_eq!(iq.masked + iq.vulnerable(), iq.trials);
        assert!(iq.latent <= iq.masked);
        assert!((0.0..=1.0).contains(&iq.avf_estimate));
        assert!(iq.ci95.lo <= iq.avf_estimate && iq.avf_estimate <= iq.ci95.hi);
        assert_eq!(result.structure("rob").unwrap().trials, 15);
        assert_eq!(result.structure("rf").unwrap().trials, 15);
        assert!(result.committed > 0);
        assert!(result.ace_iq_avf > 0.0);
    }

    #[test]
    fn campaign_is_reproducible_per_seed() {
        let cfg = small_cfg(5);
        let run = || {
            run_campaign(
                &cfg,
                &cpu_programs(5),
                &PipelinePolicies::default,
                &Metrics::off(),
                &Tracer::off(),
            )
        };
        let a = run();
        let b = run();
        // Bit-for-bit: same golden digest, same per-trial outcomes.
        assert_eq!(a.golden, b.golden);
        for (sa, sb) in a.structures.iter().zip(&b.structures) {
            assert_eq!(
                (sa.masked, sa.sdc, sa.detected, sa.hang),
                (sb.masked, sb.sdc, sb.detected, sb.hang)
            );
        }
        // And a different workload salt produces a different digest.
        let c = run_campaign(
            &cfg,
            &cpu_programs(6),
            &PipelinePolicies::default,
            &Metrics::off(),
            &Tracer::off(),
        );
        assert_ne!(a.golden.chains, c.golden.chains);
    }

    #[test]
    fn metrics_counters_track_trials() {
        let cfg = small_cfg(3);
        let metrics = Metrics::new();
        let result = run_campaign(
            &cfg,
            &cpu_programs(3),
            &PipelinePolicies::default,
            &metrics,
            &Tracer::off(),
        );
        let total: u64 = result.structures.iter().map(|s| s.trials).sum();
        let snap = metrics.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("faultinject.trials"), total);
        let masked: u64 = result.structures.iter().map(|s| s.masked).sum();
        assert_eq!(counter("faultinject.masked"), masked);
    }

    // ------------------------------------------------------------------
    // Classification edge cases mandated by the test plan.
    // ------------------------------------------------------------------

    fn stepped_pipeline(salt: u64, cycles: u64) -> Pipeline {
        let mut p = Pipeline::new(
            MachineConfig::table2(),
            cpu_programs(salt),
            PipelinePolicies::default(),
        );
        let mut sink = NullObserver;
        for _ in 0..cycles {
            p.step(&mut sink);
        }
        p
    }

    #[test]
    fn wrong_path_victim_is_masked() {
        // Scan for a wrong-path IQ occupant; a payload flip on it can
        // never surface (its seq never enters the committed stream),
        // and the campaign's fast path classifies it masked.
        let mut p = Pipeline::new(
            MachineConfig::table2(),
            cpu_programs(2),
            PipelinePolicies::default(),
        );
        let mut recorder = GoldenRecorder::default();
        let mut found = None;
        for _ in 0..6_000 {
            if found.is_none() {
                let iq = p.iq_state();
                for e in 0..iq.entries() {
                    if let Some(o) = iq.occupant(e) {
                        if o.wrong_path {
                            found = Some(o.seq);
                            break;
                        }
                    }
                }
            }
            p.step(&mut recorder);
        }
        let victim = found.expect("no wrong-path IQ occupant seen in 6k cycles");
        let committed: HashSet<u64> = recorder.commits.iter().map(|r| r.seq).collect();
        assert!(
            !committed.contains(&victim),
            "wrong-path instruction must never commit"
        );
        // The replay is therefore untouched by the perturbation.
        let golden = golden_digest(4, &recorder.commits);
        let faulty = replay(
            4,
            &recorder.commits,
            FaultDirective::PerturbResult {
                victim_seq: victim,
                perturbation: perturbation(33),
            },
        );
        assert_eq!(golden, faulty);
    }

    #[test]
    fn age_field_flip_hangs_like_opcode_flip() {
        // Both select-critical families — the opcode field (bit 0) and
        // the live status/age bits (64..68) — blind issue select to the
        // entry; a correct-path waiting victim then wedges its thread
        // and the watchdog must fire within the trial budget.
        for bit in [0u32, 66] {
            let mut p = stepped_pipeline(9, 700);
            let entry = (0..p.iq_state().entries()).find(
                |&e| matches!(p.iq_state().occupant(e), Some(o) if !o.issued && !o.wrong_path),
            );
            let Some(entry) = entry else {
                panic!("no waiting correct-path IQ occupant at cycle 700");
            };
            match p.inject_iq_bit(entry, bit) {
                AppliedFault::RetireCritical { inhibited, .. } => assert!(inhibited),
                other => panic!("bit {bit}: expected RetireCritical, got {other:?}"),
            }
            let r = p.run(
                SimLimits::cycles(40_000).with_watchdog(3_000),
                &mut NullObserver,
            );
            assert!(r.deadlocked, "bit {bit}: watchdog did not fire");
        }
    }

    #[test]
    fn issued_critical_victim_follows_golden_fate() {
        // A flip on an already-issued instruction's select-critical
        // state cannot stall select (the entry only awaits writeback),
        // so the machine-check-at-retire model judges it by the
        // victim's golden fate: detected when it commits, masked when
        // it is squashed — and only wrong-path victims get squashed.
        let mut p = stepped_pipeline(4, 900);
        let mut issued = Vec::new();
        {
            let iq = p.iq_state();
            for e in 0..iq.entries() {
                if let Some(o) = iq.occupant(e) {
                    if o.issued {
                        issued.push((o.seq, o.wrong_path));
                    }
                }
            }
        }
        assert!(!issued.is_empty(), "no issued IQ occupant at cycle 900");
        let mut recorder = GoldenRecorder::default();
        for _ in 0..30_000 {
            p.step(&mut recorder);
        }
        let committed: HashSet<u64> = recorder.commits.iter().map(|r| r.seq).collect();
        for (seq, wrong_path) in issued {
            let outcome = if committed.contains(&seq) {
                Outcome::Detected
            } else {
                Outcome::Masked
            };
            let expect = if wrong_path {
                Outcome::Masked
            } else {
                Outcome::Detected
            };
            assert_eq!(
                outcome, expect,
                "victim seq {seq} (wrong_path={wrong_path})"
            );
        }
    }
}
