//! Golden-run capture and commit-order architectural emulation.
//!
//! A fault trial is judged by *architectural* state, not
//! microarchitectural state: a flipped bit matters exactly when it
//! changes something the program externalises — the retired-store
//! stream, control decisions, program output. The emulator here gives
//! every committed instruction a synthetic 64-bit result (a hash of its
//! opcode, PC and source values, so corruption propagates through the
//! dataflow exactly along the dependence edges the ACE analyzer walks)
//! and folds the results reaching *sinks* (stores, control,
//! [`micro_isa::OpClass::Output`]) into per-thread rolling chain
//! hashes. Two runs whose [`SinkDigest`]s match are architecturally
//! indistinguishable.
//!
//! Because payload and register faults are injected as *directives*
//! over the recorded golden commit stream rather than as mutations of
//! timing-simulator state, the perturbed replay is cycle-for-cycle
//! aligned with the golden run by construction — the differential
//! comparison isolates the fault's dataflow effect with no timing
//! noise.

use std::collections::HashMap;

use micro_isa::{OpClass, Reg, ThreadId};
use serde::{Deserialize, Serialize};
use smt_sim::{RetireEvent, SimObserver, REGS_PER_THREAD};

/// SplitMix64-style finalizer: the avalanche mixing all synthetic
/// values flow through.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One committed instruction, as recorded from the golden run — the
/// minimum the emulator needs to re-derive architectural dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRec {
    pub seq: u64,
    pub tid: ThreadId,
    pub pc: u64,
    pub op: OpClass,
    pub dest: Option<Reg>,
    pub srcs: [Option<Reg>; 2],
    pub mem_addr: Option<u64>,
    /// Resolved control outcome `(taken, next_pc)` for control ops.
    pub ctrl: Option<(bool, u64)>,
    pub retire_cycle: u64,
}

impl CommitRec {
    pub fn of(ev: &RetireEvent) -> CommitRec {
        CommitRec {
            seq: ev.inst.seq,
            tid: ev.inst.tid,
            pc: ev.inst.pc,
            op: ev.inst.op,
            dest: ev.inst.dest,
            srcs: ev.inst.srcs,
            mem_addr: ev.inst.mem_addr,
            ctrl: ev.inst.ctrl.map(|c| (c.taken, c.next_pc)),
            retire_cycle: ev.retire_cycle,
        }
    }
}

/// [`SimObserver`] that records the committed-instruction stream of a
/// golden run (squashes are architecturally invisible and skipped).
#[derive(Debug, Default)]
pub struct GoldenRecorder {
    pub commits: Vec<CommitRec>,
    pub final_cycle: u64,
}

impl SimObserver for GoldenRecorder {
    fn on_commit(&mut self, ev: &RetireEvent) {
        self.commits.push(CommitRec::of(ev));
    }

    fn on_finish(&mut self, final_cycle: u64) {
        self.final_cycle = final_cycle;
    }
}

/// Fault applied during an emulator replay of the commit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultDirective {
    /// Fault-free replay (produces the golden digest).
    #[default]
    None,
    /// A payload bit of the victim's IQ/ROB entry flipped: XOR the
    /// victim's result as it commits, along its original wiring.
    PerturbResult { victim_seq: u64, perturbation: u64 },
    /// An architectural register bit flipped at `at_cycle`: XOR the
    /// register at the thread's first commit at or after that cycle.
    FlipRegister {
        tid: ThreadId,
        reg_index: usize,
        bit: u32,
        at_cycle: u64,
    },
}

/// Architectural summary of one (real or replayed) run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinkDigest {
    /// Per-thread rolling hash over everything that reached a sink.
    pub chains: Vec<u64>,
    /// Per-thread sink count.
    pub sinks: Vec<u64>,
    /// Per-thread committed-instruction count.
    pub committed: Vec<u64>,
    /// Hash of the final architectural register values of all threads.
    /// Divergence here *without* chain divergence means the corruption
    /// is still latent in a register no sink has read — not (yet) SDC.
    pub rf_hash: u64,
}

impl SinkDigest {
    /// Architecturally indistinguishable observable behaviour?
    pub fn chains_match(&self, other: &SinkDigest) -> bool {
        self.chains == other.chains && self.sinks == other.sinks
    }
}

/// Commit-order architectural emulator.
///
/// Memory is modelled per-thread (the synthetic workloads share no
/// data; a shared map would couple thread digests through commit
/// *interleaving*, turning timing jitter into false SDC). Loads from
/// never-written addresses return a deterministic hash of the address,
/// so golden and replayed runs agree on cold memory.
pub struct ArchEmulator {
    rf: Vec<[u64; REGS_PER_THREAD]>,
    mem: Vec<HashMap<u64, u64>>,
    chains: Vec<u64>,
    sinks: Vec<u64>,
    committed: Vec<u64>,
    directive: FaultDirective,
    flip_applied: bool,
}

impl ArchEmulator {
    pub fn new(num_threads: usize, directive: FaultDirective) -> ArchEmulator {
        let mut rf = Vec::with_capacity(num_threads);
        for t in 0..num_threads {
            let mut regs = [0u64; REGS_PER_THREAD];
            for (r, slot) in regs.iter_mut().enumerate() {
                *slot = mix((t * REGS_PER_THREAD + r) as u64 + 1);
            }
            rf.push(regs);
        }
        ArchEmulator {
            rf,
            mem: vec![HashMap::new(); num_threads],
            chains: vec![0; num_threads],
            sinks: vec![0; num_threads],
            committed: vec![0; num_threads],
            directive,
            flip_applied: false,
        }
    }

    /// Execute one committed instruction.
    pub fn commit(&mut self, rec: &CommitRec) {
        let t = rec.tid as usize;
        if let FaultDirective::FlipRegister {
            tid,
            reg_index,
            bit,
            at_cycle,
        } = self.directive
        {
            if !self.flip_applied && tid as usize == t && rec.retire_cycle >= at_cycle {
                self.rf[t][reg_index] ^= 1u64 << (bit % 64);
                self.flip_applied = true;
            }
        }
        let mut h = mix(rec.op.opcode() as u64 ^ rec.pc.rotate_left(17));
        for src in rec.srcs.iter().flatten() {
            h = mix(h ^ self.rf[t][src.flat_index()]);
        }
        if rec.op == OpClass::Load {
            let addr = rec.mem_addr.unwrap_or(0) >> 3;
            let v = *self.mem[t].entry(addr).or_insert_with(|| mix(!addr));
            h = mix(h ^ v);
        }
        if let FaultDirective::PerturbResult {
            victim_seq,
            perturbation,
        } = self.directive
        {
            if rec.seq == victim_seq {
                h ^= perturbation;
            }
        }
        if rec.op == OpClass::Store {
            self.mem[t].insert(rec.mem_addr.unwrap_or(0) >> 3, h);
        }
        if let Some(d) = rec.dest {
            self.rf[t][d.flat_index()] = h;
        }
        if avf::ace::is_sink(rec.op) {
            let mut s = mix(h ^ rec.pc);
            if let Some((taken, next)) = rec.ctrl {
                s = mix(s ^ ((taken as u64) << 1) ^ next);
            }
            self.chains[t] = mix(self.chains[t] ^ s);
            self.sinks[t] += 1;
        }
        self.committed[t] += 1;
    }

    /// Finish the replay and summarise.
    pub fn finish(self) -> SinkDigest {
        let mut rf_hash = 0u64;
        for regs in &self.rf {
            for &v in regs.iter() {
                rf_hash = mix(rf_hash ^ v);
            }
        }
        SinkDigest {
            chains: self.chains,
            sinks: self.sinks,
            committed: self.committed,
            rf_hash,
        }
    }
}

/// Replay a recorded commit stream under `directive`.
pub fn replay(num_threads: usize, commits: &[CommitRec], directive: FaultDirective) -> SinkDigest {
    let mut emu = ArchEmulator::new(num_threads, directive);
    for rec in commits {
        emu.commit(rec);
    }
    emu.finish()
}

/// The fault-free digest of a recorded commit stream.
pub fn golden_digest(num_threads: usize, commits: &[CommitRec]) -> SinkDigest {
    replay(num_threads, commits, FaultDirective::None)
}

/// [`SimObserver`] that watches one sequence number's fate during a
/// re-simulated (pipeline-mutating) trial.
#[derive(Debug, Default)]
pub struct FateObserver {
    pub watch_seq: u64,
    pub committed: bool,
    pub squashed: bool,
}

impl FateObserver {
    pub fn new(watch_seq: u64) -> FateObserver {
        FateObserver {
            watch_seq,
            committed: false,
            squashed: false,
        }
    }
}

impl SimObserver for FateObserver {
    fn on_commit(&mut self, ev: &RetireEvent) {
        if ev.inst.seq == self.watch_seq {
            self.committed = true;
        }
    }

    fn on_squash(&mut self, ev: &RetireEvent) {
        if ev.inst.seq == self.watch_seq {
            self.squashed = true;
        }
    }
}

/// Fan-out observer: drives two observers from one simulation (the
/// golden run feeds the AVF collector and the commit recorder at once).
pub struct Tandem<'a, A: SimObserver, B: SimObserver>(pub &'a mut A, pub &'a mut B);

impl<A: SimObserver, B: SimObserver> SimObserver for Tandem<'_, A, B> {
    fn on_commit(&mut self, ev: &RetireEvent) {
        self.0.on_commit(ev);
        self.1.on_commit(ev);
    }

    fn on_squash(&mut self, ev: &RetireEvent) {
        self.0.on_squash(ev);
        self.1.on_squash(ev);
    }

    fn on_finish(&mut self, final_cycle: u64) {
        self.0.on_finish(final_cycle);
        self.1.on_finish(final_cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micro_isa::Reg;

    fn rec(seq: u64, op: OpClass, dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> CommitRec {
        CommitRec {
            seq,
            tid: 0,
            pc: 0x400 + seq * 4,
            op,
            dest,
            srcs,
            mem_addr: if op.is_mem() { Some(seq * 8) } else { None },
            ctrl: None,
            retire_cycle: seq,
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let stream = vec![
            rec(1, OpClass::IAlu, Some(Reg::int(1)), [None, None]),
            rec(
                2,
                OpClass::IAlu,
                Some(Reg::int(2)),
                [Some(Reg::int(1)), None],
            ),
            rec(3, OpClass::Store, None, [Some(Reg::int(2)), None]),
        ];
        let a = golden_digest(1, &stream);
        let b = golden_digest(1, &stream);
        assert_eq!(a, b);
        assert_eq!(a.sinks, vec![1]);
        assert_eq!(a.committed, vec![3]);
    }

    #[test]
    fn perturbing_a_sink_reaching_value_changes_the_chain() {
        let stream = vec![
            rec(1, OpClass::IAlu, Some(Reg::int(1)), [None, None]),
            rec(
                2,
                OpClass::IAlu,
                Some(Reg::int(2)),
                [Some(Reg::int(1)), None],
            ),
            rec(3, OpClass::Store, None, [Some(Reg::int(2)), None]),
        ];
        let golden = golden_digest(1, &stream);
        let faulty = replay(
            1,
            &stream,
            FaultDirective::PerturbResult {
                victim_seq: 1,
                perturbation: 1 << 5,
            },
        );
        assert!(!faulty.chains_match(&golden), "corruption reached a store");
    }

    #[test]
    fn perturbing_a_dead_value_is_masked() {
        // seq 1's result is overwritten by seq 2 before anything reads
        // it; the store consumes only seq 2's value.
        let stream = vec![
            rec(1, OpClass::IAlu, Some(Reg::int(1)), [None, None]),
            rec(2, OpClass::IAlu, Some(Reg::int(1)), [None, None]),
            rec(3, OpClass::Store, None, [Some(Reg::int(1)), None]),
        ];
        let golden = golden_digest(1, &stream);
        let faulty = replay(
            1,
            &stream,
            FaultDirective::PerturbResult {
                victim_seq: 1,
                perturbation: 0xdead_beef,
            },
        );
        assert!(faulty.chains_match(&golden));
        assert_eq!(faulty.rf_hash, golden.rf_hash, "value was overwritten");
    }

    #[test]
    fn register_flip_after_last_use_is_latent_not_sdc() {
        // The store reads r1 at seq 2; the flip lands afterwards
        // (cycle 3), so no sink ever observes it — but the final
        // register file differs: latent corruption, not SDC.
        let stream = vec![
            rec(1, OpClass::IAlu, Some(Reg::int(1)), [None, None]),
            rec(2, OpClass::Store, None, [Some(Reg::int(1)), None]),
            rec(3, OpClass::IAlu, Some(Reg::int(2)), [None, None]),
        ];
        let golden = golden_digest(1, &stream);
        let faulty = replay(
            1,
            &stream,
            FaultDirective::FlipRegister {
                tid: 0,
                reg_index: Reg::int(1).flat_index(),
                bit: 7,
                at_cycle: 3,
            },
        );
        assert!(faulty.chains_match(&golden), "flip after last use");
        assert_ne!(faulty.rf_hash, golden.rf_hash, "corruption is latent");
    }

    #[test]
    fn register_flip_before_read_is_sdc() {
        let stream = vec![
            rec(1, OpClass::IAlu, Some(Reg::int(1)), [None, None]),
            rec(2, OpClass::Store, None, [Some(Reg::int(1)), None]),
        ];
        let golden = golden_digest(1, &stream);
        let faulty = replay(
            1,
            &stream,
            FaultDirective::FlipRegister {
                tid: 0,
                reg_index: Reg::int(1).flat_index(),
                bit: 0,
                at_cycle: 2,
            },
        );
        assert!(!faulty.chains_match(&golden));
    }

    #[test]
    fn register_overwritten_before_read_is_fully_masked() {
        let stream = vec![
            rec(1, OpClass::IAlu, Some(Reg::int(1)), [None, None]),
            rec(2, OpClass::IAlu, Some(Reg::int(1)), [None, None]),
            rec(3, OpClass::Store, None, [Some(Reg::int(1)), None]),
        ];
        let golden = golden_digest(1, &stream);
        // Flip lands at cycle 1 (before the overwrite at cycle 2).
        let faulty = replay(
            1,
            &stream,
            FaultDirective::FlipRegister {
                tid: 0,
                reg_index: Reg::int(1).flat_index(),
                bit: 63,
                at_cycle: 1,
            },
        );
        // Note: the flip applies before seq 1 executes (same commit),
        // but seq 1 overwrites r1 unconditionally, so nothing survives.
        assert!(faulty.chains_match(&golden));
        assert_eq!(faulty.rf_hash, golden.rf_hash);
    }
}
