//! Statistical soft-error fault injection for the SMT simulator.
//!
//! This crate is the *empirical* side of the reliability story: where
//! the `avf` crate computes vulnerability analytically (ACE analysis
//! over a fault-free run), this crate measures it by experiment —
//! Monte-Carlo single-event upsets in live issue-queue, reorder-buffer
//! and register-file state, each classified differentially against a
//! golden run of the same seed:
//!
//! | Outcome    | Meaning                                                 |
//! |------------|---------------------------------------------------------|
//! | `Masked`   | architecturally invisible (dead bit, squashed victim, …) |
//! | `Sdc`      | retired sink stream diverges silently                   |
//! | `Detected` | malformed critical state reaches retirement checks      |
//! | `Hang`     | forward progress lost; commit watchdog fires            |
//!
//! The non-masked fraction over uniformly sampled `(cycle, entry, bit)`
//! sites estimates the structure's AVF; [`run_campaign`] reports it
//! with a Wilson 95 % interval so the ACE-analysis model can be
//! validated (or falsified) seed by seed.
//!
//! [`digest`] holds the golden-run machinery: commit-stream capture,
//! the commit-order architectural emulator, and the sink-stream digest
//! that defines "architecturally identical". [`campaign`] holds the
//! sampler, the replay/re-simulate classification split, and the
//! statistics.

pub mod campaign;
pub mod digest;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignResult, Outcome, SplitMix64, StructureStats,
};
pub use digest::{
    golden_digest, mix, replay, ArchEmulator, CommitRec, FateObserver, FaultDirective,
    GoldenRecorder, SinkDigest, Tandem,
};
