//! Property tests tying fault injection to the ACE-analysis model.
//!
//! The central contract: a bit the ACE analyzer calls un-ACE must be
//! masked under injection — otherwise the analytical AVF model is
//! missing real vulnerability. The inverse is deliberately not asserted
//! (ACE analysis is conservative; an ACE-classified value can still be
//! masked by logic downstream of the model's visibility).

use std::sync::{Arc, OnceLock};

use avf::{AceAnalyzer, AceInstRecord, Finalized};
use proptest::prelude::*;
use sim_faultinject::{
    golden_digest, replay, CampaignConfig, CommitRec, FaultDirective, GoldenRecorder, SinkDigest,
};
use sim_metrics::Metrics;
use sim_trace::Tracer;
use smt_sim::pipeline::PipelinePolicies;
use smt_sim::{MachineConfig, Pipeline, SimObserver};
use workload_gen::{generate_program_salted, model_by_name, Program};

const NUM_THREADS: usize = 4;

fn cpu_programs(salt: u64) -> Vec<Arc<Program>> {
    ["bzip2", "gcc", "eon", "perlbmk"]
        .iter()
        .map(|m| Arc::new(generate_program_salted(&model_by_name(m).unwrap(), salt)))
        .collect()
}

/// Capture a golden commit stream from a warmed table-2 machine.
fn capture(salt: u64, warmup_insts: u64, run_cycles: u64) -> Vec<CommitRec> {
    let mut pipeline = Pipeline::new(
        MachineConfig::table2(),
        cpu_programs(salt),
        PipelinePolicies::default(),
    );
    let start = pipeline.warm_up(warmup_insts);
    let mut recorder = GoldenRecorder::default();
    while pipeline.cycle() - start < run_cycles {
        pipeline.step(&mut recorder);
    }
    let end = pipeline.cycle();
    recorder.on_finish(end);
    recorder.commits
}

struct Fixture {
    commits: Vec<CommitRec>,
    golden: SinkDigest,
    /// Committed seqs the ACE analyzer finalizes as un-ACE, using a
    /// window wider than the whole run (so the classification is exact,
    /// not truncation-limited).
    unace: Vec<u64>,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let commits = capture(42, 2_000, 6_000);
        let golden = golden_digest(NUM_THREADS, &commits);
        let mut unace = Vec::new();
        {
            let mut analyzer: AceAnalyzer<u64> = AceAnalyzer::new(NUM_THREADS, 1 << 20);
            let mut finalize = |f: Finalized<u64>| {
                if !f.ace {
                    unace.push(f.payload);
                }
            };
            for rec in &commits {
                analyzer.push(
                    AceInstRecord {
                        tid: rec.tid,
                        pc: rec.pc,
                        op: rec.op,
                        dest: rec.dest,
                        srcs: rec.srcs,
                        commit_cycle: rec.retire_cycle,
                    },
                    rec.seq,
                    &mut finalize,
                );
            }
            analyzer.drain(&mut finalize);
        }
        assert!(
            !unace.is_empty(),
            "fixture run produced no un-ACE instructions"
        );
        Fixture {
            commits,
            golden,
            unace,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A payload flip on an instruction the exact (full-window) ACE
    /// analysis classifies un-ACE never reaches the architectural sink
    /// stream: the injection subsystem and the analytical model agree
    /// on what "dead" means.
    #[test]
    fn unace_committed_victim_payload_flip_is_masked(pick in 0usize..4096, bit in 0u32..64) {
        let fx = fixture();
        let victim_seq = fx.unace[pick % fx.unace.len()];
        let faulty = replay(
            NUM_THREADS,
            &fx.commits,
            FaultDirective::PerturbResult {
                victim_seq,
                perturbation: 0x8000_0000_0000_0001u64.rotate_left(bit),
            },
        );
        prop_assert!(
            faulty.chains_match(&fx.golden),
            "un-ACE victim seq {victim_seq} (bit {bit}) corrupted the sink stream"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A campaign with zero trials is a pure observer: its golden
    /// digest reproduces an independent instrumented run of the same
    /// seed bit-for-bit, across workload salts.
    #[test]
    fn zero_injection_campaign_reproduces_golden_digest(salt in 0u64..32) {
        let cfg = CampaignConfig {
            machine: MachineConfig::table2(),
            warmup_insts: 2_000,
            run_cycles: 4_000,
            watchdog_cycles: 2_000,
            iq_trials: 0,
            rob_trials: 0,
            rf_trials: 0,
            ace_window: 1 << 16,
            seed: salt,
        };
        let programs = cpu_programs(salt);
        let result = sim_faultinject::run_campaign(
            &cfg,
            &programs,
            &PipelinePolicies::default,
            &Metrics::off(),
            &Tracer::off(),
        );
        let commits = capture(salt, cfg.warmup_insts, cfg.run_cycles);
        prop_assert_eq!(result.committed, commits.len() as u64);
        prop_assert_eq!(&result.golden, &golden_digest(NUM_THREADS, &commits));
    }
}
