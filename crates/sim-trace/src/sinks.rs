//! In-memory and line-oriented trace sinks.

use crate::{TraceEvent, TraceSink};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Bounded in-memory ring buffer: keeps the most recent `capacity`
/// events. Inspection goes through a cloneable [`RingHandle`] obtained
/// *before* the sink is handed to a `Tracer` (the same pattern the
/// simulator uses for DVM telemetry handles).
pub struct RingSink {
    buf: Arc<Mutex<RingState>>,
}

struct RingState {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    /// Total events ever recorded (including those evicted).
    recorded: u64,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring capacity must be nonzero");
        RingSink {
            buf: Arc::new(Mutex::new(RingState {
                events: VecDeque::with_capacity(capacity),
                capacity,
                recorded: 0,
            })),
        }
    }

    pub fn handle(&self) -> RingHandle {
        RingHandle {
            buf: Arc::clone(&self.buf),
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        let mut state = self.buf.lock();
        if state.events.len() == state.capacity {
            state.events.pop_front();
        }
        state.events.push_back(event.clone());
        state.recorded += 1;
    }
}

/// Shared view into a [`RingSink`]'s buffer.
#[derive(Clone)]
pub struct RingHandle {
    buf: Arc<Mutex<RingState>>,
}

impl RingHandle {
    /// Events currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.lock().events.iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events recorded over the sink's lifetime, counting those
    /// already evicted from the ring.
    pub fn total_recorded(&self) -> u64 {
        self.buf.lock().recorded
    }

    /// Retained events matching an event-kind label (`"dvm_trigger"`,
    /// `"interval"`, ...).
    pub fn of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .events
            .iter()
            .filter(|e| e.kind() == kind)
            .cloned()
            .collect()
    }

    pub fn clear(&self) {
        let mut state = self.buf.lock();
        state.events.clear();
    }
}

/// Streams each event as one JSON object per line (JSON Lines).
pub struct JsonlSink<W: Write> {
    out: W,
    errored: bool,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) a `.jsonl` file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink {
            out,
            errored: false,
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn enabled(&self) -> bool {
        // After an I/O error, stop paying serialization cost.
        !self.errored
    }

    fn record(&mut self, event: &TraceEvent) {
        let line = serde::json::to_string(event);
        if writeln!(self.out, "{line}").is_err() {
            self.errored = true;
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.errored = true;
        }
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(cycle: u64) -> TraceEvent {
        TraceEvent::L2Miss {
            cycle,
            tid: 0,
            addr: cycle * 64,
        }
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let mut sink = RingSink::new(3);
        let handle = sink.handle();
        for c in 0..5 {
            sink.record(&miss(c));
        }
        let kept: Vec<u64> = handle.snapshot().iter().map(|e| e.cycle()).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(handle.total_recorded(), 5);
    }

    #[test]
    fn ring_kind_filter() {
        let mut sink = RingSink::new(8);
        let handle = sink.handle();
        sink.record(&miss(1));
        sink.record(&TraceEvent::Writeback { cycle: 2, count: 3 });
        assert_eq!(handle.of_kind("l2_miss").len(), 1);
        assert_eq!(handle.of_kind("writeback").len(), 1);
        assert!(handle.of_kind("flush").is_empty());
    }

    #[test]
    fn jsonl_writes_one_parseable_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&miss(7));
        sink.record(&TraceEvent::Issue {
            cycle: 8,
            count: 6,
            ready_len: 14,
        });
        sink.flush();
        let text = String::from_utf8(sink.out.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: TraceEvent = serde::json::from_str(line).unwrap();
            assert!(matches!(
                back,
                TraceEvent::L2Miss { .. } | TraceEvent::Issue { .. }
            ));
        }
    }
}
