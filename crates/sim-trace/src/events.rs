//! The typed event taxonomy emitted by the simulator and the
//! reliability governors.
//!
//! Pipeline events are per-cycle aggregates (counts per stage), not
//! per-instruction records: they keep trace volume proportional to
//! simulated cycles while still reconstructing stage activity.
//! IQ allocate/free and L2-miss events are per-occurrence since they
//! are the quantities the reliability analysis reasons about.
//! [`GovernorEvent`] is the audit log: every capacity, mode, throttle
//! or trigger decision a governor takes, with the inputs it saw.

use serde::{Deserialize, Serialize};

/// Why the pipeline squashed in-flight work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlushReason {
    /// Opt2/DVM FLUSH response to a long-latency L2 miss.
    L2Miss,
    /// Branch misprediction recovery.
    Misprediction,
    /// Fetch-policy FLUSH (clogged-thread eviction).
    FetchPolicy,
}

/// One audited governor decision (Opt1 / Opt2 / DVM).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GovernorEvent {
    /// Opt1 adjusted the per-interval IQ allocation cap.
    Opt1CapChange {
        cycle: u64,
        old_cap: usize,
        new_cap: usize,
        /// Mean ready-queue length of the closing interval.
        avg_ready_len: f64,
        /// IPC-region index the new cap was read from.
        region: usize,
    },
    /// Opt2 toggled its L2-miss-sensitive FLUSH fallback.
    Opt2FlushMode {
        cycle: u64,
        enabled: bool,
        interval_l2_misses: u64,
        threshold: u64,
    },
    /// DVM engaged its response (vulnerability emergency detected).
    DvmTrigger {
        cycle: u64,
        /// Online hint-bit AVF estimate that crossed the target.
        hint_avf: f64,
        target: f64,
        /// Offending thread chosen for throttling, if one stood out.
        offender: Option<usize>,
        /// Per-thread ACE-bit counts in the IQ at trigger time.
        thread_ace: Vec<u64>,
    },
    /// DVM restored normal operation.
    DvmRestore {
        cycle: u64,
        hint_avf: f64,
        target: f64,
        /// Thread whose fetch queue carried the fewest ACE bits and is
        /// resumed first (paper's restore rule).
        restored_tid: Option<usize>,
    },
    /// DVM adapted its waiting-queue ratio (slow increase / rapid
    /// decrease controller).
    WqRatioAdjust {
        cycle: u64,
        old_ratio: f64,
        new_ratio: f64,
        hint_avf: f64,
        ready_len: usize,
    },
}

/// A structured trace record. Cycle numbers are simulator cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Instructions fetched for one thread this cycle.
    Fetch {
        cycle: u64,
        tid: usize,
        count: usize,
    },
    /// Instructions dispatched (renamed into IQ/ROB) for one thread.
    Dispatch {
        cycle: u64,
        tid: usize,
        count: usize,
    },
    /// Instructions selected for execution this cycle.
    Issue {
        cycle: u64,
        count: usize,
        ready_len: usize,
    },
    /// Instructions completing execution this cycle.
    Writeback { cycle: u64, count: usize },
    /// Instructions retired for one thread this cycle.
    Commit {
        cycle: u64,
        tid: usize,
        count: usize,
    },
    /// An IQ entry was allocated.
    IqAllocate {
        cycle: u64,
        tid: usize,
        seq: u64,
        occupancy: usize,
    },
    /// An IQ entry was released.
    IqFree {
        cycle: u64,
        tid: usize,
        seq: u64,
        occupancy: usize,
    },
    /// A load missed in the L2 (long-latency miss).
    L2Miss { cycle: u64, tid: usize, addr: u64 },
    /// In-flight instructions squashed for one thread.
    Flush {
        cycle: u64,
        tid: usize,
        squashed: usize,
        reason: FlushReason,
    },
    /// A sampling interval closed.
    IntervalRollover {
        cycle: u64,
        /// Zero-based interval index since measurement start.
        index: u64,
        ipc: f64,
        hint_avf: f64,
        avg_ready_len: f64,
        avg_iq_len: f64,
        l2_misses: u64,
    },
    /// Governor/DVM audit record.
    Governor(GovernorEvent),
    /// A fault-injection campaign flipped one stored bit.
    FaultInject {
        cycle: u64,
        /// Target structure ("iq", "rob", "rf").
        structure: String,
        /// Flattened slot index within the structure.
        entry: usize,
        /// Bit index within the entry.
        bit: u32,
        /// Sequence number of the instruction occupying the slot, if any.
        victim_seq: Option<u64>,
        /// Trial outcome label ("masked", "sdc", "detected", "hang", …).
        outcome: String,
    },
    /// Campaign-harness job lifecycle record. Unlike the simulator
    /// events above, these are stamped with host wall-clock
    /// milliseconds since campaign start (`at_ms`), not simulated
    /// cycles — the harness supervises whole simulations.
    Harness {
        /// Milliseconds since the supervising campaign started.
        at_ms: u64,
        /// Slugged job key (`exhibit_scheme_seed`).
        job: String,
        /// 1-based attempt number this record refers to.
        attempt: u32,
        /// Lifecycle phase: "started", "completed", "failed",
        /// "retried", "quarantined", "resumed".
        phase: String,
        /// Failure kind or free-form detail ("" when not applicable).
        detail: String,
    },
}

impl TraceEvent {
    /// Stable, short event-kind label (used for filtering and as the
    /// Chrome trace-event name).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Fetch { .. } => "fetch",
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::Writeback { .. } => "writeback",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::IqAllocate { .. } => "iq_alloc",
            TraceEvent::IqFree { .. } => "iq_free",
            TraceEvent::L2Miss { .. } => "l2_miss",
            TraceEvent::Flush { .. } => "flush",
            TraceEvent::IntervalRollover { .. } => "interval",
            TraceEvent::Governor(g) => g.kind(),
            TraceEvent::FaultInject { .. } => "fault_inject",
            TraceEvent::Harness { .. } => "harness",
        }
    }

    /// Cycle the event was recorded at.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Fetch { cycle, .. }
            | TraceEvent::Dispatch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Writeback { cycle, .. }
            | TraceEvent::Commit { cycle, .. }
            | TraceEvent::IqAllocate { cycle, .. }
            | TraceEvent::IqFree { cycle, .. }
            | TraceEvent::L2Miss { cycle, .. }
            | TraceEvent::Flush { cycle, .. }
            | TraceEvent::IntervalRollover { cycle, .. }
            | TraceEvent::FaultInject { cycle, .. } => *cycle,
            TraceEvent::Governor(g) => g.cycle(),
            // Harness events live on the host clock; report it so the
            // Chrome exporter still gets monotonic timestamps.
            TraceEvent::Harness { at_ms, .. } => *at_ms,
        }
    }

    pub fn is_governor(&self) -> bool {
        matches!(self, TraceEvent::Governor(_))
    }
}

impl GovernorEvent {
    pub fn kind(&self) -> &'static str {
        match self {
            GovernorEvent::Opt1CapChange { .. } => "opt1_cap",
            GovernorEvent::Opt2FlushMode { .. } => "opt2_flush_mode",
            GovernorEvent::DvmTrigger { .. } => "dvm_trigger",
            GovernorEvent::DvmRestore { .. } => "dvm_restore",
            GovernorEvent::WqRatioAdjust { .. } => "wq_ratio",
        }
    }

    pub fn cycle(&self) -> u64 {
        match self {
            GovernorEvent::Opt1CapChange { cycle, .. }
            | GovernorEvent::Opt2FlushMode { cycle, .. }
            | GovernorEvent::DvmTrigger { cycle, .. }
            | GovernorEvent::DvmRestore { cycle, .. }
            | GovernorEvent::WqRatioAdjust { cycle, .. } => *cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let events = vec![
            TraceEvent::Fetch {
                cycle: 10,
                tid: 2,
                count: 4,
            },
            TraceEvent::Flush {
                cycle: 11,
                tid: 0,
                squashed: 17,
                reason: FlushReason::L2Miss,
            },
            TraceEvent::IntervalRollover {
                cycle: 10_000,
                index: 0,
                ipc: 3.5,
                hint_avf: 0.22,
                avg_ready_len: 11.2,
                avg_iq_len: 60.0,
                l2_misses: 7,
            },
            TraceEvent::Governor(GovernorEvent::DvmTrigger {
                cycle: 12_345,
                hint_avf: 0.4,
                target: 0.3,
                offender: Some(1),
                thread_ace: vec![10, 44, 3, 9],
            }),
            TraceEvent::FaultInject {
                cycle: 77_000,
                structure: "iq".into(),
                entry: 42,
                bit: 65,
                victim_seq: Some(1_234_567),
                outcome: "sdc".into(),
            },
            TraceEvent::Harness {
                at_ms: 1_500,
                job: "opt1-mix_s2".into(),
                attempt: 2,
                phase: "retried".into(),
                detail: "panic".into(),
            },
        ];
        for event in &events {
            let text = serde::json::to_string(event);
            let back: TraceEvent = serde::json::from_str(&text).unwrap();
            assert_eq!(&back, event, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn kind_and_cycle_accessors() {
        let ev = TraceEvent::Governor(GovernorEvent::WqRatioAdjust {
            cycle: 99,
            old_ratio: 1.0,
            new_ratio: 0.5,
            hint_avf: 0.31,
            ready_len: 12,
        });
        assert_eq!(ev.kind(), "wq_ratio");
        assert_eq!(ev.cycle(), 99);
        assert!(ev.is_governor());
    }
}
