//! Coarse wall-clock self-profiling: named phase timers for run
//! manifests and per-stage accumulators for the pipeline.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Wall-clock durations of the coarse phases of one experiment run.
/// All values are host seconds (not simulated time).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Workload generation / program tagging.
    pub generate_s: f64,
    /// Cache/predictor warm-up simulation.
    pub warmup_s: f64,
    /// Measured simulation window.
    pub measure_s: f64,
    /// AVF post-processing and report collection.
    pub collect_s: f64,
}

impl PhaseTimings {
    pub fn total_s(&self) -> f64 {
        self.generate_s + self.warmup_s + self.measure_s + self.collect_s
    }

    /// Run `f`, adding its wall-clock time to the named accumulator.
    pub fn time<R>(slot: &mut f64, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        *slot += start.elapsed().as_secs_f64();
        result
    }
}

/// Identifier for one pipeline stage in stage-level self-profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Commit,
    Writeback,
    Issue,
    Dispatch,
    Fetch,
}

impl Stage {
    pub const ALL: [Stage; 5] = [
        Stage::Commit,
        Stage::Writeback,
        Stage::Issue,
        Stage::Dispatch,
        Stage::Fetch,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Commit => "commit",
            Stage::Writeback => "writeback",
            Stage::Issue => "issue",
            Stage::Dispatch => "dispatch",
            Stage::Fetch => "fetch",
        }
    }
}

/// Default stage-timing sampling period: measure 1 cycle in 64. Stage
/// cost is stationary over thousands of cycles, so sparse sampling
/// preserves the per-cycle averages while cutting the `Instant::now()`
/// load (six reads per measured cycle) by the same factor.
pub const DEFAULT_SAMPLE_EVERY: u32 = 64;

/// Accumulated wall-clock time per pipeline stage. Disabled by default:
/// when off, `should_sample` is one branch per cycle. When enabled,
/// timing is *sampled*: only 1-in-`sample_every` cycles pay the six
/// `Instant::now()` reads, and `profiled_cycles` counts just those
/// measured cycles so per-cycle averages remain unbiased.
#[derive(Debug, Clone)]
pub struct StageProfile {
    enabled: bool,
    sample_every: u32,
    /// Cycles offered while enabled (measured or not).
    seen_cycles: u64,
    totals: [Duration; 5],
    /// Cycles actually measured (denominator for per-cycle averages).
    cycles: u64,
}

impl Default for StageProfile {
    fn default() -> StageProfile {
        StageProfile {
            enabled: false,
            sample_every: DEFAULT_SAMPLE_EVERY,
            seen_cycles: 0,
            totals: [Duration::ZERO; 5],
            cycles: 0,
        }
    }
}

/// RAII guard: charges elapsed time to its stage on drop.
pub struct StageSpan<'p> {
    profile: &'p mut StageProfile,
    stage: Stage,
    start: Instant,
}

impl StageProfile {
    pub fn new(enabled: bool) -> StageProfile {
        StageProfile {
            enabled,
            ..StageProfile::default()
        }
    }

    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Set the sampling period: measure 1 cycle in `n` (clamped to ≥1).
    pub fn set_sample_every(&mut self, n: u32) {
        self.sample_every = n.max(1);
    }

    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// Cycles offered to the profile while enabled, measured or not.
    pub fn seen_cycles(&self) -> u64 {
        self.seen_cycles
    }

    /// Advance the per-cycle sampling clock; `true` when this cycle
    /// should be measured. Always `false` while disabled (one branch).
    #[inline]
    pub fn should_sample(&mut self) -> bool {
        if !self.enabled {
            return false;
        }
        let sampled = self.seen_cycles.is_multiple_of(self.sample_every as u64);
        self.seen_cycles += 1;
        sampled
    }

    #[inline]
    pub fn enter(&mut self, stage: Stage) -> Option<StageSpan<'_>> {
        if !self.enabled {
            return None;
        }
        Some(StageSpan {
            stage,
            start: Instant::now(),
            profile: self,
        })
    }

    /// Charge an externally-measured duration to a stage (for callers
    /// whose borrow structure cannot hold a [`StageSpan`] across the
    /// stage call).
    #[inline]
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        if self.enabled {
            self.totals[stage as usize] += elapsed;
        }
    }

    /// Count one simulated cycle (for per-cycle averages).
    #[inline]
    pub fn tick_cycle(&mut self) {
        if self.enabled {
            self.cycles += 1;
        }
    }

    pub fn total(&self, stage: Stage) -> Duration {
        self.totals[stage as usize]
    }

    pub fn profiled_cycles(&self) -> u64 {
        self.cycles
    }

    /// `(stage name, accumulated seconds)` rows, pipeline order.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        Stage::ALL
            .iter()
            .map(|&s| (s.name(), self.totals[s as usize].as_secs_f64()))
            .collect()
    }

    /// Serializable snapshot for run manifests and reports.
    pub fn snapshot(&self) -> StageSeconds {
        StageSeconds {
            commit_s: self.total(Stage::Commit).as_secs_f64(),
            writeback_s: self.total(Stage::Writeback).as_secs_f64(),
            issue_s: self.total(Stage::Issue).as_secs_f64(),
            dispatch_s: self.total(Stage::Dispatch).as_secs_f64(),
            fetch_s: self.total(Stage::Fetch).as_secs_f64(),
            profiled_cycles: self.cycles,
        }
    }
}

/// Wall-clock seconds spent in each pipeline stage over a profiled run
/// — the flattened, serializable form of a [`StageProfile`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSeconds {
    pub commit_s: f64,
    pub writeback_s: f64,
    pub issue_s: f64,
    pub dispatch_s: f64,
    pub fetch_s: f64,
    /// Simulated cycles the profile covers.
    pub profiled_cycles: u64,
}

impl StageSeconds {
    pub fn total_s(&self) -> f64 {
        self.commit_s + self.writeback_s + self.issue_s + self.dispatch_s + self.fetch_s
    }

    /// Accumulate another run's stage totals into this one.
    pub fn add(&mut self, other: &StageSeconds) {
        self.commit_s += other.commit_s;
        self.writeback_s += other.writeback_s;
        self.issue_s += other.issue_s;
        self.dispatch_s += other.dispatch_s;
        self.fetch_s += other.fetch_s;
        self.profiled_cycles += other.profiled_cycles;
    }
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        self.profile.totals[self.stage as usize] += self.start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timer_accumulates() {
        let mut timings = PhaseTimings::default();
        let out = PhaseTimings::time(&mut timings.warmup_s, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(timings.warmup_s > 0.0);
        assert!(timings.total_s() >= timings.warmup_s);
    }

    #[test]
    fn phase_timings_roundtrip_json() {
        let timings = PhaseTimings {
            generate_s: 0.5,
            warmup_s: 1.25,
            measure_s: 3.0,
            collect_s: 0.125,
        };
        let back: PhaseTimings = serde::json::from_str(&serde::json::to_string(&timings)).unwrap();
        assert_eq!(back, timings);
    }

    #[test]
    fn disabled_profile_records_nothing() {
        let mut profile = StageProfile::new(false);
        assert!(profile.enter(Stage::Issue).is_none());
        profile.tick_cycle();
        assert_eq!(profile.profiled_cycles(), 0);
        assert_eq!(profile.total(Stage::Issue), Duration::ZERO);
    }

    #[test]
    fn enabled_profile_charges_stages() {
        let mut profile = StageProfile::new(true);
        {
            let span = profile.enter(Stage::Fetch);
            std::thread::sleep(Duration::from_millis(1));
            drop(span);
        }
        profile.tick_cycle();
        assert!(profile.total(Stage::Fetch) > Duration::ZERO);
        assert_eq!(profile.total(Stage::Commit), Duration::ZERO);
        assert_eq!(profile.profiled_cycles(), 1);
        let rows = profile.rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4].0, "fetch");
        let snap = profile.snapshot();
        assert!(snap.fetch_s > 0.0);
        assert_eq!(snap.profiled_cycles, 1);
        assert!((snap.total_s() - snap.fetch_s).abs() < 1e-12);
    }

    #[test]
    fn sampling_measures_one_in_n_cycles() {
        let mut profile = StageProfile::new(true);
        profile.set_sample_every(4);
        let mut measured = 0;
        for _ in 0..16 {
            if profile.should_sample() {
                measured += 1;
                profile.tick_cycle();
            }
        }
        assert_eq!(measured, 4, "1-in-4 sampling over 16 cycles");
        assert_eq!(profile.profiled_cycles(), 4);
        assert_eq!(profile.seen_cycles(), 16);

        let mut off = StageProfile::new(false);
        assert!(!off.should_sample());
        assert_eq!(off.seen_cycles(), 0, "disabled profile never advances");

        let mut every = StageProfile::new(true);
        every.set_sample_every(0); // clamps to 1: measure every cycle
        assert_eq!(every.sample_every(), 1);
        assert!(every.should_sample() && every.should_sample());
    }

    #[test]
    fn stage_seconds_accumulate_and_roundtrip() {
        let mut sum = StageSeconds::default();
        let one = StageSeconds {
            commit_s: 0.25,
            issue_s: 1.0,
            profiled_cycles: 10,
            ..StageSeconds::default()
        };
        sum.add(&one);
        sum.add(&one);
        assert!((sum.total_s() - 2.5).abs() < 1e-12);
        assert_eq!(sum.profiled_cycles, 20);
        let back: StageSeconds = serde::json::from_str(&serde::json::to_string(&sum)).unwrap();
        assert_eq!(back, sum);
    }
}
