//! Structured tracing for the SMT simulator.
//!
//! The simulator core stays observability-agnostic: it holds a
//! [`Tracer`] handle and emits typed [`TraceEvent`]s through it. When no
//! sink is attached (the default), `emit` is a branch on a `None` and
//! the event-construction closure is never evaluated — tracing costs
//! nothing unless switched on. Sinks are pluggable:
//!
//! * [`sinks::RingSink`] — bounded in-memory ring buffer with a
//!   cloneable inspection handle, for tests and programmatic analysis;
//! * [`sinks::JsonlSink`] — one JSON object per event, streamed to any
//!   writer (typically a file), for offline processing;
//! * [`chrome::ChromeTraceSink`] — Chrome trace-event JSON loadable in
//!   Perfetto / `chrome://tracing`, mapping interval metrics to counter
//!   tracks and governor/DVM decisions to instant events.
//!
//! The [`timing`] module provides the coarse wall-clock phase timers
//! used by run manifests and stage self-profiling.

pub mod chrome;
pub mod events;
pub mod sinks;
pub mod timing;

pub use events::{FlushReason, GovernorEvent, TraceEvent};

use parking_lot::Mutex;
use std::sync::Arc;

/// Receives trace events. Implementations decide retention and format.
pub trait TraceSink {
    /// Cheap pre-check; `emit` skips event construction when false.
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &TraceEvent);

    /// Push buffered output to its destination (file sinks).
    fn flush(&mut self) {}
}

/// Discards everything. Useful to measure tracing plumbing overhead
/// separately from sink cost; `Tracer::off()` is cheaper still.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

/// Cloneable handle the instrumented code emits through. The default
/// (`Tracer::off()`) carries no sink: `emit` reduces to one `Option`
/// test and never builds the event.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Mutex<dyn TraceSink + Send>>>);

impl Tracer {
    /// A tracer with no sink; every `emit` is a no-op.
    pub fn off() -> Tracer {
        Tracer(None)
    }

    pub fn new<S: TraceSink + Send + 'static>(sink: S) -> Tracer {
        Tracer(Some(Arc::new(Mutex::new(sink))))
    }

    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Record one event. The closure runs only when a sink is attached
    /// and enabled, so call sites may capture and format freely.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            let mut sink = sink.lock();
            if sink.enabled() {
                let event = build();
                sink.record(&event);
            }
        }
    }

    pub fn flush(&self) {
        if let Some(sink) = &self.0 {
            sink.lock().flush();
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_on() {
            "Tracer(on)"
        } else {
            "Tracer(off)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_never_builds_events() {
        let tracer = Tracer::off();
        let mut built = false;
        tracer.emit(|| {
            built = true;
            TraceEvent::L2Miss {
                cycle: 0,
                tid: 0,
                addr: 0,
            }
        });
        assert!(!built);
        assert!(!tracer.is_on());
    }

    #[test]
    fn disabled_sink_skips_event_construction() {
        let tracer = Tracer::new(NullSink);
        let mut built = false;
        tracer.emit(|| {
            built = true;
            TraceEvent::L2Miss {
                cycle: 0,
                tid: 0,
                addr: 0,
            }
        });
        assert!(!built);
        assert!(tracer.is_on());
    }

    #[test]
    fn clones_share_one_sink() {
        let sink = sinks::RingSink::new(16);
        let handle = sink.handle();
        let a = Tracer::new(sink);
        let b = a.clone();
        a.emit(|| TraceEvent::L2Miss {
            cycle: 1,
            tid: 0,
            addr: 64,
        });
        b.emit(|| TraceEvent::L2Miss {
            cycle: 2,
            tid: 1,
            addr: 128,
        });
        assert_eq!(handle.len(), 2);
    }
}
