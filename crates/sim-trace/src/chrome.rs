//! Chrome trace-event export (Perfetto / `chrome://tracing`).
//!
//! Simulated cycles map 1:1 to trace microseconds, so the timeline
//! reads directly in cycles. Interval rollovers become counter tracks
//! (`ph: "C"`) — hint-AVF, IPC, mean ready/IQ length — and discrete
//! decisions (governor audit records, flushes, L2 misses) become
//! instant events (`ph: "i"`) on per-category tracks.

use crate::{GovernorEvent, TraceEvent, TraceSink};
use serde::Value;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;

/// Synthetic process/thread ids used to group tracks in the viewer.
const PID: u64 = 1;
const TID_PIPELINE: u64 = 1;
const TID_GOVERNOR: u64 = 2;
const TID_MEMORY: u64 = 3;
const TID_HARNESS: u64 = 4;
/// Host-time track: self-profiler spans in real microseconds, unlike
/// the simulated-cycle timestamps of the event-driven tracks.
const TID_HOST: u64 = 5;

/// Accumulates Chrome trace events and writes a complete JSON document
/// on `flush` (and on drop).
pub struct ChromeTraceSink {
    path: PathBuf,
    events: Vec<Value>,
    written: bool,
    /// Cap on retained events so an unexpectedly long traced run cannot
    /// exhaust memory; drops are counted and reported in metadata.
    capacity: usize,
    dropped: u64,
}

impl ChromeTraceSink {
    pub fn new(path: impl Into<PathBuf>) -> ChromeTraceSink {
        ChromeTraceSink {
            path: path.into(),
            events: Vec::new(),
            written: false,
            capacity: 1_000_000,
            dropped: 0,
        }
    }

    pub fn with_capacity(mut self, capacity: usize) -> ChromeTraceSink {
        self.capacity = capacity.max(1);
        self
    }

    fn push(&mut self, event: Value) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    fn counter(&mut self, ts: u64, name: &str, value: f64) {
        self.push(obj(vec![
            ("name", Value::String(name.to_string())),
            ("ph", Value::String("C".to_string())),
            ("ts", Value::U64(ts)),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(TID_PIPELINE)),
            ("args", obj(vec![("value", Value::F64(value))])),
        ]));
    }

    fn instant(&mut self, ts: u64, tid: u64, name: &str, args: Vec<(&str, Value)>) {
        self.push(obj(vec![
            ("name", Value::String(name.to_string())),
            ("ph", Value::String("i".to_string())),
            ("s", Value::String("t".to_string())),
            ("ts", Value::U64(ts)),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(tid)),
            ("args", obj(args)),
        ]));
    }

    /// Append a Chrome "complete" span (`ph: "X"`) on the host-time
    /// track. `ts_us`/`dur_us` are host microseconds; nested spans are
    /// expressed by containment, as Perfetto stacks overlapping spans
    /// on one track.
    pub fn complete_span(&mut self, ts_us: u64, dur_us: u64, name: &str, args: Vec<(&str, Value)>) {
        self.push(obj(vec![
            ("name", Value::String(name.to_string())),
            ("ph", Value::String("X".to_string())),
            ("ts", Value::U64(ts_us)),
            ("dur", Value::U64(dur_us)),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(TID_HOST)),
            ("args", obj(args)),
        ]));
    }

    /// Serialize the accumulated document to `self.path`.
    pub fn write_file(&mut self) -> io::Result<()> {
        let mut track_meta = Vec::new();
        for (tid, label) in [
            (TID_PIPELINE, "pipeline"),
            (TID_GOVERNOR, "governor"),
            (TID_MEMORY, "memory"),
            (TID_HARNESS, "harness"),
            (TID_HOST, "host (self-profile)"),
        ] {
            track_meta.push(obj(vec![
                ("name", Value::String("thread_name".to_string())),
                ("ph", Value::String("M".to_string())),
                ("pid", Value::U64(PID)),
                ("tid", Value::U64(tid)),
                (
                    "args",
                    obj(vec![("name", Value::String(label.to_string()))]),
                ),
            ]));
        }
        track_meta.extend(self.events.iter().cloned());
        let doc = obj(vec![
            ("traceEvents", Value::Array(track_meta)),
            ("displayTimeUnit", Value::String("ms".to_string())),
            (
                "otherData",
                obj(vec![
                    ("generator", Value::String("sim-trace".to_string())),
                    (
                        "time_unit",
                        Value::String("1us = 1 simulated cycle".to_string()),
                    ),
                    ("dropped_events", Value::U64(self.dropped)),
                ]),
            ),
        ]);
        let mut out = BufWriter::new(File::create(&self.path)?);
        out.write_all(serde::json::to_string(&doc).as_bytes())?;
        out.flush()?;
        self.written = true;
        Ok(())
    }

    /// Number of trace events accumulated so far (excluding metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, event: &TraceEvent) {
        let ts = event.cycle();
        match event {
            TraceEvent::IntervalRollover {
                ipc,
                hint_avf,
                avg_ready_len,
                avg_iq_len,
                l2_misses,
                ..
            } => {
                self.counter(ts, "hint_avf", *hint_avf);
                self.counter(ts, "ipc", *ipc);
                self.counter(ts, "ready_len", *avg_ready_len);
                self.counter(ts, "iq_len", *avg_iq_len);
                self.counter(ts, "interval_l2_misses", *l2_misses as f64);
            }
            TraceEvent::L2Miss { tid, addr, .. } => {
                self.instant(
                    ts,
                    TID_MEMORY,
                    "l2_miss",
                    vec![
                        ("tid", Value::U64(*tid as u64)),
                        ("addr", Value::U64(*addr)),
                    ],
                );
            }
            TraceEvent::Flush {
                tid,
                squashed,
                reason,
                ..
            } => {
                self.instant(
                    ts,
                    TID_PIPELINE,
                    "flush",
                    vec![
                        ("tid", Value::U64(*tid as u64)),
                        ("squashed", Value::U64(*squashed as u64)),
                        ("reason", Value::String(format!("{reason:?}"))),
                    ],
                );
            }
            TraceEvent::FaultInject {
                structure,
                entry,
                bit,
                victim_seq,
                outcome,
                ..
            } => {
                self.instant(
                    ts,
                    TID_PIPELINE,
                    "fault_inject",
                    vec![
                        ("structure", Value::String(structure.clone())),
                        ("entry", Value::U64(*entry as u64)),
                        ("bit", Value::U64(*bit as u64)),
                        ("victim_seq", Value::U64(victim_seq.unwrap_or(0))),
                        ("outcome", Value::String(outcome.clone())),
                    ],
                );
            }
            TraceEvent::Harness {
                job,
                attempt,
                phase,
                detail,
                ..
            } => {
                // Harness timestamps are wall-clock ms since campaign
                // start (event.cycle() reports at_ms); they share the
                // microsecond timeline with simulator events but live
                // on their own track.
                self.instant(
                    ts,
                    TID_HARNESS,
                    &format!("harness_{phase}"),
                    vec![
                        ("job", Value::String(job.clone())),
                        ("attempt", Value::U64(*attempt as u64)),
                        ("detail", Value::String(detail.clone())),
                    ],
                );
            }
            TraceEvent::Governor(gov) => {
                let args = match gov {
                    GovernorEvent::Opt1CapChange {
                        old_cap,
                        new_cap,
                        avg_ready_len,
                        region,
                        ..
                    } => vec![
                        ("old_cap", Value::U64(*old_cap as u64)),
                        ("new_cap", Value::U64(*new_cap as u64)),
                        ("avg_ready_len", Value::F64(*avg_ready_len)),
                        ("region", Value::U64(*region as u64)),
                    ],
                    GovernorEvent::Opt2FlushMode {
                        enabled,
                        interval_l2_misses,
                        threshold,
                        ..
                    } => vec![
                        ("enabled", Value::Bool(*enabled)),
                        ("interval_l2_misses", Value::U64(*interval_l2_misses)),
                        ("threshold", Value::U64(*threshold)),
                    ],
                    GovernorEvent::DvmTrigger {
                        hint_avf,
                        target,
                        offender,
                        thread_ace,
                        ..
                    } => vec![
                        ("hint_avf", Value::F64(*hint_avf)),
                        ("target", Value::F64(*target)),
                        (
                            "offender",
                            match offender {
                                Some(t) => Value::U64(*t as u64),
                                None => Value::Null,
                            },
                        ),
                        (
                            "thread_ace",
                            Value::Array(thread_ace.iter().map(|&a| Value::U64(a)).collect()),
                        ),
                    ],
                    GovernorEvent::DvmRestore {
                        hint_avf,
                        target,
                        restored_tid,
                        ..
                    } => vec![
                        ("hint_avf", Value::F64(*hint_avf)),
                        ("target", Value::F64(*target)),
                        (
                            "restored_tid",
                            match restored_tid {
                                Some(t) => Value::U64(*t as u64),
                                None => Value::Null,
                            },
                        ),
                    ],
                    GovernorEvent::WqRatioAdjust {
                        old_ratio,
                        new_ratio,
                        hint_avf,
                        ready_len,
                        ..
                    } => vec![
                        ("old_ratio", Value::F64(*old_ratio)),
                        ("new_ratio", Value::F64(*new_ratio)),
                        ("hint_avf", Value::F64(*hint_avf)),
                        ("ready_len", Value::U64(*ready_len as u64)),
                    ],
                };
                self.instant(ts, TID_GOVERNOR, gov.kind(), args);
            }
            // Per-cycle stage aggregates are high-volume and carry
            // little timeline value at viewer zoom levels; the counter
            // tracks above cover throughput trends.
            TraceEvent::Fetch { .. }
            | TraceEvent::Dispatch { .. }
            | TraceEvent::Issue { .. }
            | TraceEvent::Writeback { .. }
            | TraceEvent::Commit { .. }
            | TraceEvent::IqAllocate { .. }
            | TraceEvent::IqFree { .. } => {}
        }
    }

    fn flush(&mut self) {
        if let Err(err) = self.write_file() {
            eprintln!(
                "sim-trace: failed to write chrome trace {}: {err}",
                self.path.display()
            );
        }
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        if !self.written && !self.events.is_empty() {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlushReason;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::IntervalRollover {
                cycle: 10_000,
                index: 0,
                ipc: 2.4,
                hint_avf: 0.31,
                avg_ready_len: 9.5,
                avg_iq_len: 55.0,
                l2_misses: 12,
            },
            TraceEvent::Governor(GovernorEvent::DvmTrigger {
                cycle: 10_050,
                hint_avf: 0.31,
                target: 0.25,
                offender: Some(2),
                thread_ace: vec![4, 9, 40, 2],
            }),
            TraceEvent::Flush {
                cycle: 10_060,
                tid: 2,
                squashed: 23,
                reason: FlushReason::L2Miss,
            },
            TraceEvent::Harness {
                at_ms: 12,
                job: "dvm-mem_s1".into(),
                attempt: 1,
                phase: "completed".into(),
                detail: String::new(),
            },
        ]
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let dir = std::env::temp_dir().join("sim_trace_chrome_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let mut sink = ChromeTraceSink::new(&path);
        for ev in sample_events() {
            sink.record(&ev);
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = serde::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"C"), "counter events missing: {phases:?}");
        assert!(phases.contains(&"i"), "instant events missing: {phases:?}");
        assert!(phases.contains(&"M"), "track metadata missing");
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"dvm_trigger"));
        assert!(names.contains(&"hint_avf"));
        assert!(names.contains(&"harness_completed"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let dir = std::env::temp_dir().join("sim_trace_chrome_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("capped.json");
        let mut sink = ChromeTraceSink::new(&path).with_capacity(2);
        for ev in sample_events() {
            sink.record(&ev);
        }
        // 5 counters + 3 instants attempted, 2 kept.
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped, 6);
        sink.written = true; // suppress drop-time file write
    }
}
