//! Allocation-counter accuracy under a known allocation pattern.
//!
//! Integration tests are their own binaries, so installing the
//! counting allocator here affects only this test process — exactly
//! the opt-in model the experiments binary uses.

use sim_profile::alloc::{self, CountingAlloc};
use std::sync::Mutex;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counters are process-global, so tests reading exact deltas must
/// not run concurrently with each other's allocations.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn counts_a_known_allocation_pattern() {
    let _serial = SERIAL.lock().unwrap();
    assert!(alloc::active(), "test harness startup must have allocated");

    let before = alloc::stats();
    const N: usize = 100;
    const SIZE: usize = 4096;
    let mut held: Vec<Vec<u8>> = Vec::with_capacity(N);
    for _ in 0..N {
        held.push(vec![0u8; SIZE]);
    }
    let during = alloc::stats();
    drop(held);
    let after = alloc::stats();

    let phase = during.phase_since(&before);
    assert_eq!(phase.allocs, N as u64 + 1, "N buffers + the outer Vec");
    assert!(
        phase.bytes >= (N * SIZE) as u64,
        "at least N×{SIZE} bytes requested, got {}",
        phase.bytes
    );
    assert!(
        during.current_bytes >= before.current_bytes + (N * SIZE) as u64,
        "live bytes must include the held buffers"
    );
    assert!(during.peak_bytes >= during.current_bytes);

    let full = after.phase_since(&before);
    assert_eq!(full.allocs, full.frees, "everything allocated was freed");
    assert_eq!(
        after.current_bytes, before.current_bytes,
        "live bytes return to the baseline once the pattern is dropped"
    );
    // Peak is monotone and captured the burst.
    assert!(after.peak_bytes >= before.current_bytes + (N * SIZE) as u64);
}

#[test]
fn realloc_stays_balanced() {
    let _serial = SERIAL.lock().unwrap();
    let before = alloc::stats();
    let mut v: Vec<u64> = Vec::new();
    for i in 0..10_000u64 {
        v.push(i); // repeated grow → realloc path
    }
    drop(v);
    let phase = alloc::stats().phase_since(&before);
    assert_eq!(
        phase.allocs, phase.frees,
        "realloc accounting must keep alloc/free counts balanced"
    );
}
