//! Host-side performance observability for the simulator itself.
//!
//! sim-trace and sim-metrics observe *simulated* behaviour; this crate
//! observes the cost of simulating it. It provides:
//!
//! - [`Profiler`] — a hierarchical scoped-span profiler. Spans nest via
//!   a thread-local stack, timestamps come from the monotonic clock,
//!   and the aggregate is a call tree with per-span call counts,
//!   total (inclusive) and self (exclusive) time. Like
//!   `sim_trace::Tracer` and `sim_metrics::Metrics`, the handle is an
//!   `Option<Arc<..>>`: when off, [`Profiler::span`] is a single branch
//!   and nothing else runs.
//! - [`alloc`] — a counting `GlobalAlloc` wrapper so "the measured
//!   window is allocation-free" becomes a testable claim.
//! - [`heartbeat`] — EMA throughput / ETA math and a TTY-aware
//!   single-line campaign progress renderer.
//!
//! Reports: [`ProfileSnapshot::folded`] emits `flamegraph.pl`-style
//! folded stacks with deterministic ordering; [`ProfileSnapshot::digest`]
//! condenses the tree into a manifest-friendly [`ProfileDigest`].

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

pub mod alloc;
pub mod heartbeat;

/// Synthetic root of the span tree; never reported directly.
const ROOT: usize = 0;

struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
}

struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new() -> Tree {
        Tree {
            nodes: vec![Node {
                name: "",
                children: Vec::new(),
                calls: 0,
                total_ns: 0,
            }],
        }
    }

    /// Resolve (creating on first use) the child of `parent` named `name`.
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        let found = self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        match found {
            Some(id) => id,
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    name,
                    children: Vec::new(),
                    calls: 0,
                    total_ns: 0,
                });
                self.nodes[parent].children.push(id);
                id
            }
        }
    }
}

struct Shared {
    tree: Mutex<Tree>,
    spans_entered: AtomicU64,
    /// Calibrated cost of one enter/exit pair, in nanoseconds.
    span_cost_ns: f64,
}

thread_local! {
    /// Per-thread span stack: (profiler identity token, node id). The
    /// token keeps concurrently live profilers on one thread from
    /// adopting each other's frames as parents.
    static STACK: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
}

/// Hierarchical scoped-span profiler handle. Cheap to clone; clones
/// share one span tree. `Profiler::off()` disables everything at the
/// cost of one branch per call site.
#[derive(Clone)]
pub struct Profiler(Option<Arc<Shared>>);

impl Profiler {
    /// A disabled profiler: every operation is a no-op after one branch.
    pub fn off() -> Profiler {
        Profiler(None)
    }

    /// An enabled profiler with an empty span tree. Calibrates its own
    /// per-span cost once (a few microseconds) so reports can state the
    /// profiler's measured overhead.
    pub fn new() -> Profiler {
        Profiler(Some(Arc::new(Shared {
            tree: Mutex::new(Tree::new()),
            spans_entered: AtomicU64::new(0),
            span_cost_ns: calibrate_span_cost(),
        })))
    }

    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Enter a span. Returns a guard that records elapsed time into the
    /// tree on drop; `None` when the profiler is off. Nesting follows
    /// guard scope: a span entered while another guard is live on this
    /// thread becomes its child.
    #[inline]
    pub fn span(&self, name: &'static str) -> Option<SpanGuard> {
        let shared = self.0.as_ref()?;
        let token = Arc::as_ptr(shared) as usize;
        let parent = STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(t, _)| *t == token)
                .map(|&(_, n)| n)
        });
        let node = {
            let mut tree = shared.tree.lock();
            let id = tree.child(parent.unwrap_or(ROOT), name);
            tree.nodes[id].calls += 1;
            id
        };
        STACK.with(|s| s.borrow_mut().push((token, node)));
        shared.spans_entered.fetch_add(1, Relaxed);
        Some(SpanGuard {
            shared: Arc::clone(shared),
            token,
            node,
            start: Instant::now(),
        })
    }

    /// Total spans entered so far (across all threads).
    pub fn spans_entered(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.spans_entered.load(Relaxed))
    }

    /// Calibrated cost of one enter/exit pair in nanoseconds (0 when off).
    pub fn span_cost_ns(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |s| s.span_cost_ns)
    }

    /// Snapshot the aggregated span tree. `None` when off.
    pub fn snapshot(&self) -> Option<ProfileSnapshot> {
        let shared = self.0.as_ref()?;
        let tree = shared.tree.lock();
        let mut rows = Vec::new();
        collect_rows(&tree, ROOT, &mut String::new(), 0, &mut rows);
        Some(ProfileSnapshot {
            rows,
            spans_entered: shared.spans_entered.load(Relaxed),
            span_cost_ns: shared.span_cost_ns,
        })
    }
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::off()
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Profiler({})", if self.is_on() { "on" } else { "off" })
    }
}

/// Depth-first walk with children sorted by name, so snapshots (and the
/// folded stacks derived from them) are deterministic across runs.
fn collect_rows(tree: &Tree, node: usize, path: &mut String, depth: usize, out: &mut Vec<SpanRow>) {
    let mut children = tree.nodes[node].children.clone();
    children.sort_by_key(|&c| tree.nodes[c].name);
    if node != ROOT {
        let child_total: u64 = children.iter().map(|&c| tree.nodes[c].total_ns).sum();
        let n = &tree.nodes[node];
        out.push(SpanRow {
            path: path.clone(),
            depth,
            calls: n.calls,
            total_ns: n.total_ns,
            self_ns: n.total_ns.saturating_sub(child_total),
        });
    }
    for c in children {
        let prev_len = path.len();
        if node != ROOT {
            path.push(';');
        }
        path.push_str(tree.nodes[c].name);
        collect_rows(tree, c, path, if node == ROOT { 0 } else { depth + 1 }, out);
        path.truncate(prev_len);
    }
}

/// Span guard: records elapsed wall-clock into the tree when dropped.
pub struct SpanGuard {
    shared: Arc<Shared>,
    token: usize,
    node: usize,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, n)| t == self.token && n == self.node)
            {
                stack.remove(pos);
            }
        });
        self.shared.tree.lock().nodes[self.node].total_ns += elapsed_ns;
    }
}

/// One aggregated span: `path` is the `;`-joined ancestry (folded-stack
/// convention), `self_ns` excludes time attributed to child spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    pub path: String,
    pub depth: usize,
    pub calls: u64,
    pub total_ns: u64,
    pub self_ns: u64,
}

impl SpanRow {
    /// Leaf frame name (last `;`-separated component of the path).
    pub fn name(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }
}

/// Point-in-time aggregate of a profiler's span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshot {
    /// Depth-first rows, children in name order: deterministic.
    pub rows: Vec<SpanRow>,
    pub spans_entered: u64,
    pub span_cost_ns: f64,
}

impl ProfileSnapshot {
    /// `flamegraph.pl` / inferno folded-stacks text: one
    /// `frame;frame;frame <self-µs>` line per span, sorted by path.
    /// Weights are self-time in microseconds.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("{} {}", r.path, r.self_ns / 1_000))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Condense into a manifest-friendly digest: the `top` spans by
    /// self-time (ties broken by path, so the cut is deterministic).
    pub fn digest(&self, top: usize, sample_every: u32) -> ProfileDigest {
        let mut ranked: Vec<&SpanRow> = self.rows.iter().collect();
        ranked.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        ProfileDigest {
            sample_every,
            spans_entered: self.spans_entered,
            span_cost_ns: self.span_cost_ns,
            overhead_frac: None,
            top_spans: ranked
                .into_iter()
                .take(top)
                .map(|r| SpanDigest {
                    path: r.path.clone(),
                    calls: r.calls,
                    total_ms: r.total_ns as f64 / 1e6,
                    self_ms: r.self_ns as f64 / 1e6,
                })
                .collect(),
            alloc_warmup: None,
            alloc_measure: None,
        }
    }

    /// Estimated profiler self-overhead as a fraction of `wall_s`:
    /// spans entered × calibrated per-span cost.
    pub fn overhead_frac(&self, wall_s: f64) -> Option<f64> {
        if wall_s <= 0.0 {
            return None;
        }
        Some((self.spans_entered as f64 * self.span_cost_ns) / (wall_s * 1e9))
    }
}

/// One ranked span in a [`ProfileDigest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanDigest {
    pub path: String,
    pub calls: u64,
    pub total_ms: f64,
    pub self_ms: f64,
}

/// Allocation telemetry for one run phase (warmup or measured window).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAlloc {
    pub allocs: u64,
    pub frees: u64,
    pub bytes: u64,
    /// Global high-water mark of live heap bytes at phase end (an RSS
    /// proxy; not windowed, so it is monotone across phases).
    pub peak_bytes: u64,
}

/// Manifest-friendly condensation of one run's host-side profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileDigest {
    /// Stage-timing sampling period (1-in-N cycles measured).
    pub sample_every: u32,
    pub spans_entered: u64,
    /// Calibrated enter/exit cost of one span, nanoseconds.
    pub span_cost_ns: f64,
    /// Measured profiler self-overhead as a fraction of run wall-time.
    pub overhead_frac: Option<f64>,
    pub top_spans: Vec<SpanDigest>,
    pub alloc_warmup: Option<PhaseAlloc>,
    pub alloc_measure: Option<PhaseAlloc>,
}

/// Measure the cost of one enter/exit pair on a throwaway tree.
fn calibrate_span_cost() -> f64 {
    let shared = Arc::new(Shared {
        tree: Mutex::new(Tree::new()),
        spans_entered: AtomicU64::new(0),
        span_cost_ns: 0.0,
    });
    let probe = Profiler(Some(shared));
    const ITERS: u32 = 512;
    let start = Instant::now();
    for _ in 0..ITERS {
        drop(probe.span("calibrate"));
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

/// Measured cost, in nanoseconds, of calling [`Profiler::span`] on a
/// *disabled* profiler — the price every instrumented call site pays
/// when profiling is off. Used to assert the <2% overhead budget.
pub fn disabled_span_cost_ns() -> f64 {
    let off = Profiler::off();
    const ITERS: u32 = 4096;
    let start = Instant::now();
    for _ in 0..ITERS {
        // `span` on an off profiler returns immediately; std::hint keeps
        // the loop from being optimised away entirely.
        std::hint::black_box(off.span(std::hint::black_box("off")));
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn off_profiler_yields_no_spans() {
        let p = Profiler::off();
        assert!(!p.is_on());
        assert!(p.span("x").is_none());
        assert!(p.snapshot().is_none());
        assert_eq!(p.spans_entered(), 0);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let p = Profiler::new();
        for _ in 0..3 {
            let _outer = p.span("cycle");
            {
                let _inner = p.span("issue");
                std::thread::sleep(Duration::from_millis(2));
            }
            let _inner2 = p.span("fetch");
        }
        let snap = p.snapshot().unwrap();
        let paths: Vec<&str> = snap.rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["cycle", "cycle;fetch", "cycle;issue"]);
        let cycle = &snap.rows[0];
        let issue = &snap.rows[2];
        assert_eq!(cycle.calls, 3);
        assert_eq!(issue.calls, 3);
        assert!(issue.total_ns >= 3 * 2_000_000, "slept 2ms × 3");
        assert!(cycle.total_ns >= issue.total_ns);
        // Self-time excludes children.
        assert!(cycle.self_ns <= cycle.total_ns - issue.total_ns);
        assert_eq!(snap.spans_entered, 9);
    }

    #[test]
    fn sibling_trees_do_not_cross() {
        let a = Profiler::new();
        let b = Profiler::new();
        let _ga = a.span("alpha");
        {
            // b's span must not become a child of a's live frame.
            let _gb = b.span("beta");
        }
        drop(_ga);
        let sa = a.snapshot().unwrap();
        let sb = b.snapshot().unwrap();
        assert_eq!(sa.rows.len(), 1);
        assert_eq!(sa.rows[0].path, "alpha");
        assert_eq!(sb.rows.len(), 1);
        assert_eq!(sb.rows[0].path, "beta");
    }

    #[test]
    fn folded_stacks_are_deterministic_and_sorted() {
        // Enter spans in a deliberately scrambled order twice; the
        // folded output must be identical and path-sorted.
        let render = || {
            let p = Profiler::new();
            {
                let _c = p.span("commit");
            }
            {
                let _g = p.span("cycle");
                let _z = p.span("writeback");
                drop(_z);
                let _a = p.span("dispatch");
            }
            {
                let _g = p.span("cycle");
                let _f = p.span("fetch");
            }
            p.snapshot().unwrap().folded()
        };
        let one = render();
        let two = render();
        let strip_weights = |s: &str| {
            s.lines()
                .map(|l| l.rsplit_once(' ').unwrap().0.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(strip_weights(&one), strip_weights(&two));
        let paths = strip_weights(&one);
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted, "folded lines must be path-sorted");
        assert_eq!(
            paths,
            vec![
                "commit",
                "cycle",
                "cycle;dispatch",
                "cycle;fetch",
                "cycle;writeback"
            ]
        );
        assert!(one.ends_with('\n'));
    }

    #[test]
    fn digest_ranks_by_self_time_with_stable_ties() {
        let snap = ProfileSnapshot {
            rows: vec![
                SpanRow {
                    path: "b".into(),
                    depth: 0,
                    calls: 1,
                    total_ns: 5_000_000,
                    self_ns: 5_000_000,
                },
                SpanRow {
                    path: "a".into(),
                    depth: 0,
                    calls: 1,
                    total_ns: 5_000_000,
                    self_ns: 5_000_000,
                },
                SpanRow {
                    path: "c".into(),
                    depth: 0,
                    calls: 9,
                    total_ns: 9_000_000,
                    self_ns: 9_000_000,
                },
            ],
            spans_entered: 11,
            span_cost_ns: 50.0,
        };
        let d = snap.digest(2, 64);
        assert_eq!(d.top_spans.len(), 2);
        assert_eq!(d.top_spans[0].path, "c");
        assert_eq!(d.top_spans[1].path, "a", "tie broken by path");
        assert_eq!(d.sample_every, 64);
        assert_eq!(d.spans_entered, 11);
    }

    #[test]
    fn digest_roundtrips_through_json() {
        let mut d = ProfileSnapshot {
            rows: vec![],
            spans_entered: 7,
            span_cost_ns: 42.0,
        }
        .digest(4, 32);
        d.overhead_frac = Some(0.001);
        d.alloc_measure = Some(PhaseAlloc {
            allocs: 0,
            frees: 0,
            bytes: 0,
            peak_bytes: 1024,
        });
        let text = serde::json::to_string_pretty(&d);
        let back: ProfileDigest = serde::json::from_str(&text).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn overhead_estimate_scales_with_span_count() {
        let snap = ProfileSnapshot {
            rows: vec![],
            spans_entered: 1_000_000,
            span_cost_ns: 100.0,
        };
        // 1e6 spans × 100ns = 0.1s of overhead; over a 10s run → 1%.
        let frac = snap.overhead_frac(10.0).unwrap();
        assert!((frac - 0.01).abs() < 1e-12);
        assert_eq!(snap.overhead_frac(0.0), None);
    }

    #[test]
    fn disabled_span_cost_is_nanoscale() {
        // Sanity bound, generous enough for CI noise: an off-profiler
        // call site must cost well under a tenth of a microsecond.
        assert!(disabled_span_cost_ns() < 100.0);
    }
}
