//! Counting global allocator: a transparent wrapper over the system
//! allocator that tracks allocation count, cumulative bytes, live bytes
//! and the live-bytes high-water mark (a peak-RSS proxy).
//!
//! Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: sim_profile::alloc::CountingAlloc = sim_profile::alloc::CountingAlloc;
//! ```
//!
//! Counters are process-global relaxed atomics — a few nanoseconds per
//! allocation, no locks, safe from any thread. When the wrapper is not
//! installed every counter stays zero and [`active`] reports `false`,
//! so readers can distinguish "no allocations" from "not measuring".

use crate::PhaseAlloc;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Allocator wrapper; see module docs for installation.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Relaxed);
    BYTES.fetch_add(size as u64, Relaxed);
    let live = CURRENT.fetch_add(size as u64, Relaxed) + size as u64;
    PEAK.fetch_max(live, Relaxed);
}

fn on_free(size: usize) {
    FREES.fetch_add(1, Relaxed);
    CURRENT.fetch_sub(size as u64, Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_free(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Accounted as free(old) + alloc(new) so `allocs`/`frees`
            // stay balanced and live bytes track the true delta.
            on_free(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// Point-in-time reading of the global allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Allocations (including the alloc half of each realloc).
    pub allocs: u64,
    /// Deallocations (including the free half of each realloc).
    pub frees: u64,
    /// Cumulative bytes requested by allocations.
    pub bytes: u64,
    /// Live heap bytes right now.
    pub current_bytes: u64,
    /// High-water mark of live heap bytes since process start.
    pub peak_bytes: u64,
}

/// Read the counters. Ordering is relaxed: values are exact only while
/// no other thread is allocating, which is how the phase snapshots in
/// the runner use them (single-threaded simulation loop).
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Relaxed),
        frees: FREES.load(Relaxed),
        bytes: BYTES.load(Relaxed),
        current_bytes: CURRENT.load(Relaxed),
        peak_bytes: PEAK.load(Relaxed),
    }
}

/// Whether the counting allocator is actually installed in this
/// process (heuristic: any allocation has been observed — by the time
/// any caller can ask, program startup has long since allocated).
pub fn active() -> bool {
    ALLOCS.load(Relaxed) > 0
}

impl AllocStats {
    /// Telemetry for the window since `start`: allocation/free counts
    /// and bytes are windowed deltas; `peak_bytes` is the global
    /// high-water mark as of `self` (peaks cannot be windowed).
    pub fn phase_since(&self, start: &AllocStats) -> PhaseAlloc {
        PhaseAlloc {
            allocs: self.allocs.saturating_sub(start.allocs),
            frees: self.frees.saturating_sub(start.frees),
            bytes: self.bytes.saturating_sub(start.bytes),
            peak_bytes: self.peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_since_windows_counts_but_not_peak() {
        let start = AllocStats {
            allocs: 100,
            frees: 90,
            bytes: 10_000,
            current_bytes: 1_000,
            peak_bytes: 5_000,
        };
        let end = AllocStats {
            allocs: 142,
            frees: 130,
            bytes: 18_192,
            current_bytes: 1_200,
            peak_bytes: 6_000,
        };
        let phase = end.phase_since(&start);
        assert_eq!(phase.allocs, 42);
        assert_eq!(phase.frees, 40);
        assert_eq!(phase.bytes, 8_192);
        assert_eq!(phase.peak_bytes, 6_000);
    }

    // Accuracy under a known allocation pattern is exercised in
    // `tests/alloc_counter.rs`, a separate test binary that actually
    // installs the wrapper via `#[global_allocator]`.
}
