//! Campaign progress math and rendering: exponentially-weighted
//! throughput, ETA, and a single-line TTY heartbeat.
//!
//! The math (EMA, rate tracking, ETA) is pure and unit-tested; the
//! renderer returns strings so callers decide where (and whether) to
//! print them. [`Heartbeat`] combines both with wall-clock throttling
//! and TTY detection for the supervisor's live status line.

use std::io::IsTerminal;

/// Exponential moving average. `alpha` is the weight of each new
/// sample; the first sample seeds the average directly.
#[derive(Debug, Clone)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    pub fn new(alpha: f64) -> Ema {
        Ema {
            alpha: alpha.clamp(0.0, 1.0),
            value: None,
        }
    }

    /// Fold in a sample; returns the updated average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        };
        self.value = Some(next);
        next
    }

    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Smoothed rate of a monotone counter observed at wall-clock times.
#[derive(Debug, Clone)]
pub struct RateTracker {
    ema: Ema,
    last: Option<(f64, u64)>,
}

impl RateTracker {
    pub fn new(alpha: f64) -> RateTracker {
        RateTracker {
            ema: Ema::new(alpha),
            last: None,
        }
    }

    /// Observe the counter at `done` units at time `t_s` (seconds on
    /// any monotone clock). Returns the smoothed units/second, `None`
    /// until two observations with advancing time exist. Time standing
    /// still or the counter regressing (a job restart) never divides by
    /// zero — the observation just re-anchors.
    pub fn observe(&mut self, t_s: f64, done: u64) -> Option<f64> {
        if let Some((t0, d0)) = self.last {
            let dt = t_s - t0;
            if dt <= 0.0 {
                return self.ema.value();
            }
            if done >= d0 {
                self.ema.update((done - d0) as f64 / dt);
            }
        }
        self.last = Some((t_s, done));
        self.ema.value()
    }

    pub fn rate(&self) -> Option<f64> {
        self.ema.value()
    }
}

/// Seconds until `done` reaches `total` at `rate` units/second.
/// `Some(0.0)` once complete; `None` when the rate is unusable.
pub fn eta_seconds(done: u64, total: u64, rate: f64) -> Option<f64> {
    if done >= total {
        return Some(0.0);
    }
    if !rate.is_finite() || rate <= 0.0 {
        return None;
    }
    Some((total - done) as f64 / rate)
}

/// Completion percentage in [0, 100]; an unknown (zero) total is 0%.
pub fn percent(done: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        (done.min(total) as f64 / total as f64) * 100.0
    }
}

/// `1234567.0` → `"1.2M"`; keeps the heartbeat line short.
pub fn human_count(x: f64) -> String {
    let ax = x.abs();
    if ax >= 1e9 {
        format!("{:.1}G", x / 1e9)
    } else if ax >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if ax >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// `3723.0` → `"1h02m"`, `75.0` → `"1m15s"`, `8.2` → `"8s"`.
pub fn human_duration(seconds: f64) -> String {
    let s = seconds.max(0.0).round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// Compose the heartbeat status line (without cursor control).
pub fn render_line(
    jobs_done: usize,
    jobs_total: usize,
    cycles: u64,
    cycles_total: u64,
    rate: Option<f64>,
    eta: Option<f64>,
) -> String {
    let mut line = format!("jobs {jobs_done}/{jobs_total}");
    if cycles_total > 0 {
        line.push_str(&format!(
            " · cycle {}/{} ({:.0}%)",
            human_count(cycles as f64),
            human_count(cycles_total as f64),
            percent(cycles, cycles_total)
        ));
    } else if cycles > 0 {
        line.push_str(&format!(" · cycle {}", human_count(cycles as f64)));
    }
    match rate {
        Some(r) if r.is_finite() && r > 0.0 => {
            line.push_str(&format!(" · {} cyc/s", human_count(r)))
        }
        _ => line.push_str(" · -- cyc/s"),
    }
    match eta {
        Some(e) => line.push_str(&format!(" · ETA {}", human_duration(e))),
        None => line.push_str(" · ETA --"),
    }
    line
}

/// Throttled, TTY-aware heartbeat for the campaign supervisor. `tick`
/// returns the line to draw when one is due; callers print it with a
/// carriage return so it overwrites in place, and call [`Heartbeat::clear`]
/// before any real output (or on SIGINT drain) to erase it.
#[derive(Debug)]
pub struct Heartbeat {
    enabled: bool,
    min_interval_s: f64,
    rate: RateTracker,
    last_emit_s: Option<f64>,
    /// Whether a heartbeat line is currently on screen.
    dirty: bool,
}

impl Heartbeat {
    /// Heartbeat targeting stderr: enabled only when stderr is a TTY.
    pub fn stderr() -> Heartbeat {
        Heartbeat::with_enabled(std::io::stderr().is_terminal())
    }

    pub fn with_enabled(enabled: bool) -> Heartbeat {
        Heartbeat {
            enabled,
            min_interval_s: 0.2,
            rate: RateTracker::new(0.3),
            last_emit_s: None,
            dirty: false,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Observe progress at time `t_s`; returns a fresh status line when
    /// the heartbeat is enabled and the throttle interval has elapsed.
    pub fn tick(
        &mut self,
        t_s: f64,
        jobs_done: usize,
        jobs_total: usize,
        cycles: u64,
        cycles_total: u64,
    ) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let rate = self.rate.observe(t_s, cycles);
        if let Some(last) = self.last_emit_s {
            if t_s - last < self.min_interval_s {
                return None;
            }
        }
        self.last_emit_s = Some(t_s);
        self.dirty = true;
        let eta = rate.and_then(|r| eta_seconds(cycles, cycles_total, r));
        Some(render_line(
            jobs_done,
            jobs_total,
            cycles,
            cycles_total,
            rate,
            eta,
        ))
    }

    /// The ANSI sequence that erases a previously drawn heartbeat line,
    /// if one is on screen. Returns `None` when there is nothing to do.
    pub fn clear(&mut self) -> Option<&'static str> {
        if self.dirty {
            self.dirty = false;
            Some("\r\x1b[K")
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_seeds_then_smooths() {
        let mut ema = Ema::new(0.5);
        assert_eq!(ema.value(), None);
        assert_eq!(ema.update(10.0), 10.0);
        assert_eq!(ema.update(20.0), 15.0);
        assert_eq!(ema.update(20.0), 17.5);
    }

    #[test]
    fn eta_is_monotone_under_steady_rate() {
        let mut tracker = RateTracker::new(0.3);
        let total = 1_000_000u64;
        let mut last_eta = f64::INFINITY;
        for step in 0..20u64 {
            let t = step as f64; // 1s per step
            let done = step * 50_000; // steady 50k/s
            if let Some(rate) = tracker.observe(t, done) {
                let eta = eta_seconds(done, total, rate).unwrap();
                assert!(
                    eta <= last_eta + 1e-9,
                    "ETA must not grow under a steady rate: {eta} after {last_eta}"
                );
                last_eta = eta;
            }
        }
        assert!(last_eta < 20.0, "should be nearly done: {last_eta}");
    }

    #[test]
    fn no_division_by_zero_at_cycle_zero() {
        let mut tracker = RateTracker::new(0.3);
        // First observation at t=0, cycle 0: no rate yet, no panic.
        assert_eq!(tracker.observe(0.0, 0), None);
        // Repeated observation at the same instant: still no panic.
        assert_eq!(tracker.observe(0.0, 0), None);
        assert_eq!(eta_seconds(0, 0, 0.0), Some(0.0));
        assert_eq!(eta_seconds(0, 100, 0.0), None);
        assert_eq!(eta_seconds(0, 100, f64::NAN), None);
        assert_eq!(percent(0, 0), 0.0);
    }

    #[test]
    fn counter_regression_reanchors_without_negative_rate() {
        let mut tracker = RateTracker::new(0.5);
        tracker.observe(0.0, 1000);
        tracker.observe(1.0, 2000);
        let before = tracker.rate().unwrap();
        assert!(before > 0.0);
        // A retried job resets its cycle counter: rate must not go
        // negative, the tracker just re-anchors.
        tracker.observe(2.0, 0);
        assert!(tracker.rate().unwrap() > 0.0);
    }

    #[test]
    fn human_formats() {
        assert_eq!(human_count(950.0), "950");
        assert_eq!(human_count(1_200.0), "1.2k");
        assert_eq!(human_count(3_400_000.0), "3.4M");
        assert_eq!(human_count(2_500_000_000.0), "2.5G");
        assert_eq!(human_duration(8.2), "8s");
        assert_eq!(human_duration(75.0), "1m15s");
        assert_eq!(human_duration(3723.0), "1h02m");
    }

    #[test]
    fn render_line_covers_unknown_totals_and_rates() {
        let line = render_line(2, 8, 0, 0, None, None);
        assert_eq!(line, "jobs 2/8 · -- cyc/s · ETA --");
        let line = render_line(2, 8, 500_000, 2_000_000, Some(1_250_000.0), Some(1.2));
        assert!(line.contains("jobs 2/8"), "{line}");
        assert!(line.contains("cycle 500.0k/2.0M (25%)"), "{line}");
        assert!(line.contains("1.2M cyc/s"), "{line}");
        assert!(line.contains("ETA 1s"), "{line}");
    }

    #[test]
    fn heartbeat_throttles_and_clears() {
        let mut hb = Heartbeat::with_enabled(true);
        assert!(hb.tick(0.0, 0, 4, 0, 100).is_some());
        assert!(hb.tick(0.05, 0, 4, 10, 100).is_none(), "throttled");
        assert!(hb.tick(0.5, 1, 4, 50, 100).is_some());
        assert_eq!(hb.clear(), Some("\r\x1b[K"));
        assert_eq!(hb.clear(), None, "second clear is a no-op");

        let mut off = Heartbeat::with_enabled(false);
        assert!(off.tick(0.0, 0, 4, 0, 100).is_none());
        assert_eq!(off.clear(), None);
    }
}
