//! Return-address stack: a bounded per-thread stack of predicted return
//! PCs (Table 2: 32 entries per thread). Overflow wraps (oldest entry is
//! overwritten), underflow predicts nothing — both behaviours match real
//! hardware and both cause recoverable mispredictions.

use micro_isa::Pc;
use sim_snapshot::{SnapError, SnapReader, SnapWriter};

/// A bounded return-address stack.
pub struct Ras {
    capacity: usize,
    stack: Vec<Pc>,
}

impl Ras {
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity >= 1);
        Ras {
            capacity,
            stack: Vec::with_capacity(capacity),
        }
    }

    /// Push a return address at a call. On overflow the *oldest* entry is
    /// dropped (circular behaviour).
    pub fn push(&mut self, ret_pc: Pc) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(ret_pc);
    }

    /// Pop the predicted return address at a return.
    pub fn pop(&mut self) -> Option<Pc> {
        self.stack.pop()
    }

    /// Depth currently occupied.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Copy of the live contents, bottom first (checkpoint token).
    pub fn snapshot(&self) -> Vec<Pc> {
        self.stack.clone()
    }

    /// Restore from a checkpoint after a squash.
    pub fn restore(&mut self, snapshot: &[Pc]) {
        self.stack.clear();
        let keep = snapshot.len().min(self.capacity);
        self.stack
            .extend_from_slice(&snapshot[snapshot.len() - keep..]);
    }

    /// Serialize the live stack contents.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put(&self.stack);
    }

    /// Restore state saved by [`Self::save_state`].
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let stack: Vec<Pc> = r.get()?;
        if stack.len() > self.capacity {
            return Err(SnapError::Corrupt("RAS depth above capacity".into()));
        }
        self.stack = stack;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new(8);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut r = Ras::new(4);
        r.push(10);
        r.push(20);
        let s = r.snapshot();
        r.pop();
        r.push(99);
        r.restore(&s);
        assert_eq!(r.snapshot(), vec![10, 20]);
    }

    #[test]
    fn restore_clamps_to_capacity() {
        let mut r = Ras::new(2);
        r.restore(&[1, 2, 3, 4]);
        assert_eq!(r.snapshot(), vec![3, 4]);
    }
}
