//! Branch target buffer: set-associative tag/target store with true-LRU
//! replacement. Shared by all contexts (Table 2: "2K entries, 4-way").

use micro_isa::Pc;
use sim_snapshot::{SnapError, SnapReader, SnapWriter};

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: Pc,
    target: Pc,
    valid: bool,
    /// Smaller = more recently used.
    lru: u8,
}

/// A set-associative branch target buffer.
pub struct Btb {
    sets: usize,
    assoc: usize,
    ways: Vec<Way>,
}

impl Btb {
    /// `entries` total entries, `assoc`-way set associative. `entries`
    /// must be a multiple of `assoc` with a power-of-two set count.
    pub fn new(entries: usize, assoc: usize) -> Btb {
        assert!(assoc >= 1 && entries >= assoc && entries.is_multiple_of(assoc));
        let sets = entries / assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Btb {
            sets,
            assoc,
            ways: vec![
                Way {
                    tag: 0,
                    target: 0,
                    valid: false,
                    lru: 0,
                };
                entries
            ],
        }
    }

    #[inline]
    fn set_range(&self, pc: Pc) -> std::ops::Range<usize> {
        let set = (pc as usize) & (self.sets - 1);
        let lo = set * self.assoc;
        lo..lo + self.assoc
    }

    /// Look up the predicted target for the control instruction at `pc`.
    /// Hitting refreshes LRU state.
    pub fn lookup(&mut self, pc: Pc) -> Option<Pc> {
        let range = self.set_range(pc);
        let hit = self.ways[range.clone()]
            .iter()
            .position(|w| w.valid && w.tag == pc)?;
        let target = self.ways[range.start + hit].target;
        self.touch(range, hit);
        Some(target)
    }

    /// Install (or refresh) a pc→target mapping, evicting true-LRU.
    pub fn install(&mut self, pc: Pc, target: Pc) {
        let range = self.set_range(pc);
        // Hit: update in place.
        if let Some(hit) = self.ways[range.clone()]
            .iter()
            .position(|w| w.valid && w.tag == pc)
        {
            self.ways[range.start + hit].target = target;
            self.touch(range, hit);
            return;
        }
        // Miss: pick an invalid way, else the LRU way.
        let victim = self.ways[range.clone()]
            .iter()
            .position(|w| !w.valid)
            .unwrap_or_else(|| {
                self.ways[range.clone()]
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .unwrap()
            });
        self.ways[range.start + victim] = Way {
            tag: pc,
            target,
            valid: true,
            lru: 0,
        };
        self.touch(range, victim);
    }

    /// Serialize all ways (tags, targets, valid bits, LRU ages).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.ways.len() as u64);
        for way in &self.ways {
            w.put(&way.tag);
            w.put(&way.target);
            w.put(&way.valid);
            w.put_u8(way.lru);
        }
    }

    /// Restore state saved by [`Self::save_state`] onto a BTB of the
    /// same geometry.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_u64()? as usize;
        if n != self.ways.len() {
            return Err(SnapError::Corrupt("BTB size mismatch".into()));
        }
        for way in &mut self.ways {
            way.tag = r.get()?;
            way.target = r.get()?;
            way.valid = r.get()?;
            way.lru = r.get_u8()?;
        }
        Ok(())
    }

    /// Age every way in the set and zero the touched way's age.
    fn touch(&mut self, range: std::ops::Range<usize>, way: usize) {
        for w in &mut self.ways[range.clone()] {
            w.lru = w.lru.saturating_add(1);
        }
        self.ways[range.start + way].lru = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(64, 4);
        assert_eq!(btb.lookup(100), None);
        btb.install(100, 555);
        assert_eq!(btb.lookup(100), Some(555));
    }

    #[test]
    fn update_in_place() {
        let mut btb = Btb::new(64, 4);
        btb.install(100, 555);
        btb.install(100, 777);
        assert_eq!(btb.lookup(100), Some(777));
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        // 4 sets x 2 ways; PCs 0,4,8,12 all map to set 0.
        let mut btb = Btb::new(8, 2);
        btb.install(0, 10);
        btb.install(4, 14);
        // Touch pc 0 so pc 4 becomes LRU.
        assert_eq!(btb.lookup(0), Some(10));
        btb.install(8, 18); // evicts pc 4
        assert_eq!(btb.lookup(4), None);
        assert_eq!(btb.lookup(0), Some(10));
        assert_eq!(btb.lookup(8), Some(18));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut btb = Btb::new(8, 2);
        btb.install(0, 10);
        btb.install(1, 11);
        btb.install(2, 12);
        btb.install(3, 13);
        for pc in 0..4u64 {
            assert_eq!(btb.lookup(pc), Some(10 + pc));
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_sets_rejected() {
        let _ = Btb::new(12, 4); // 3 sets
    }
}
