//! # `branch-pred` — branch prediction substrate
//!
//! The paper's Table 2 machine predicts with a **gshare** predictor using a
//! 10-bit global history *per thread*, a 2K-entry 4-way **BTB**, and a
//! 32-entry **return-address stack** (RAS) per thread. Mispredictions
//! matter to the reproduction because wrong-path instructions occupy the
//! issue queue as un-ACE state and their squash/refetch dynamics shape
//! ready-queue length — one of the two levers the paper's mechanisms pull.
//!
//! The top-level [`BranchPredictor`] owns one [`Gshare`] + [`Ras`] per
//! context and one shared [`Btb`], mirroring the paper's sharing choices.

pub mod btb;
pub mod gshare;
pub mod ras;

pub use btb::Btb;
pub use gshare::Gshare;
pub use ras::Ras;

use micro_isa::{BranchKind, Pc, ThreadId};

/// A complete front-end prediction for one control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers).
    pub taken: bool,
    /// Predicted next fetch PC.
    pub next_pc: Pc,
}

/// Per-SMT-processor branch prediction state.
pub struct BranchPredictor {
    gshare: Vec<Gshare>,
    ras: Vec<Ras>,
    btb: Btb,
}

impl BranchPredictor {
    /// Build the Table 2 configuration for `num_threads` contexts:
    /// 10-bit gshare history per thread, shared 2K-entry 4-way BTB,
    /// 32-entry RAS per thread.
    pub fn table2(num_threads: usize) -> BranchPredictor {
        BranchPredictor {
            gshare: (0..num_threads).map(|_| Gshare::new(10)).collect(),
            ras: (0..num_threads).map(|_| Ras::new(32)).collect(),
            btb: Btb::new(2048, 4),
        }
    }

    pub fn num_threads(&self) -> usize {
        self.gshare.len()
    }

    /// Predict a control instruction at fetch. `fallthrough` is `pc + 1`.
    ///
    /// * Conditional branches consult gshare for direction and the BTB for
    ///   the target.
    /// * Jumps/calls are always taken; the target still comes from the BTB
    ///   (a cold BTB mispredicts the target and sends fetch down a wrong
    ///   path, as real hardware does).
    /// * Returns pop the RAS.
    ///
    /// Speculative state (history, RAS) is updated immediately, as a real
    /// front end must; recovery APIs restore it on squash.
    pub fn predict(
        &mut self,
        tid: ThreadId,
        pc: Pc,
        kind: BranchKind,
        fallthrough: Pc,
    ) -> Prediction {
        let t = tid as usize;
        match kind {
            BranchKind::Cond => {
                let taken = self.gshare[t].predict(pc);
                self.gshare[t].push_speculative(taken);
                let target = self.btb.lookup(pc).unwrap_or(fallthrough);
                Prediction {
                    taken,
                    next_pc: if taken { target } else { fallthrough },
                }
            }
            BranchKind::Jump => Prediction {
                taken: true,
                next_pc: self.btb.lookup(pc).unwrap_or(fallthrough),
            },
            BranchKind::Call => {
                self.ras[t].push(fallthrough);
                Prediction {
                    taken: true,
                    next_pc: self.btb.lookup(pc).unwrap_or(fallthrough),
                }
            }
            BranchKind::Ret => Prediction {
                taken: true,
                next_pc: self.ras[t].pop().unwrap_or(fallthrough),
            },
        }
    }

    /// Resolve a control instruction at execute: train the tables with the
    /// actual outcome. `fetch_history` is the gshare history checkpoint
    /// taken when the branch was predicted (see
    /// [`Self::history_checkpoint`]); pass `None` to train against the
    /// current speculative history.
    pub fn resolve(
        &mut self,
        tid: ThreadId,
        pc: Pc,
        kind: BranchKind,
        taken: bool,
        target: Pc,
        fetch_history: Option<u32>,
    ) {
        let t = tid as usize;
        if kind == BranchKind::Cond {
            match fetch_history {
                Some(h) => self.gshare[t].train_with_history(pc, h, taken),
                None => self.gshare[t].train(pc, taken),
            }
        }
        if taken && kind != BranchKind::Ret {
            self.btb.install(pc, target);
        }
    }

    /// Squash recovery for one thread: restore the gshare history to the
    /// checkpoint taken at the mispredicted branch and clear RAS damage by
    /// re-seeding it from the checkpoint.
    pub fn recover(&mut self, tid: ThreadId, history_ckpt: u32, ras_ckpt: &[Pc]) {
        let t = tid as usize;
        self.gshare[t].restore_history(history_ckpt);
        self.ras[t].restore(ras_ckpt);
    }

    /// After a recovery, re-apply the *resolved* effect of the branch that
    /// caused it (its speculative effect was rolled back with the
    /// checkpoint): shift the actual direction into the history and redo
    /// the RAS push/pop.
    pub fn apply_resolved(
        &mut self,
        tid: ThreadId,
        kind: BranchKind,
        taken: bool,
        fallthrough: Pc,
    ) {
        let t = tid as usize;
        match kind {
            BranchKind::Cond => self.gshare[t].push_speculative(taken),
            BranchKind::Call => self.ras[t].push(fallthrough),
            BranchKind::Ret => {
                let _ = self.ras[t].pop();
            }
            BranchKind::Jump => {}
        }
    }

    /// Current speculative gshare history of a thread (for checkpoints).
    pub fn history_checkpoint(&self, tid: ThreadId) -> u32 {
        self.gshare[tid as usize].history()
    }

    /// Snapshot of a thread's RAS contents (for checkpoints).
    pub fn ras_checkpoint(&self, tid: ThreadId) -> Vec<Pc> {
        self.ras[tid as usize].snapshot()
    }

    /// Serialize the complete predictor state (all per-thread gshare
    /// histories/tables, all RAS contents, the shared BTB).
    pub fn save_state(&self, w: &mut sim_snapshot::SnapWriter) {
        w.put_u64(self.gshare.len() as u64);
        for g in &self.gshare {
            g.save_state(w);
        }
        for r in &self.ras {
            r.save_state(w);
        }
        self.btb.save_state(w);
    }

    /// Restore state saved by [`Self::save_state`] onto a predictor of
    /// the same configuration.
    pub fn restore_state(
        &mut self,
        r: &mut sim_snapshot::SnapReader<'_>,
    ) -> Result<(), sim_snapshot::SnapError> {
        let n = r.get_u64()? as usize;
        if n != self.gshare.len() {
            return Err(sim_snapshot::SnapError::Corrupt(
                "predictor thread-count mismatch".into(),
            ));
        }
        for g in &mut self.gshare {
            g.restore_state(r)?;
        }
        for ras in &mut self.ras {
            ras.restore_state(r)?;
        }
        self.btb.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branch_becomes_predictable() {
        let mut bp = BranchPredictor::table2(1);
        let pc = 100;
        let target = 50;
        // Train: taken 15 times, not-taken once, repeatedly (trip = 16).
        let mut correct = 0;
        let total = 320;
        for k in 0..total {
            let actual = k % 16 != 15;
            let fetch_history = bp.history_checkpoint(0);
            let p = bp.predict(0, pc, BranchKind::Cond, pc + 1);
            let predicted_right = p.taken == actual && (!actual || p.next_pc == target);
            if k >= 64 && predicted_right {
                correct += 1;
            }
            bp.resolve(0, pc, BranchKind::Cond, actual, target, Some(fetch_history));
        }
        // After warmup, gshare + BTB should nail the all-but-last pattern.
        assert!(correct > 200, "only {correct} correct");
    }

    #[test]
    fn btb_provides_targets_after_training() {
        let mut bp = BranchPredictor::table2(1);
        bp.resolve(0, 7, BranchKind::Jump, true, 1234, None);
        let p = bp.predict(0, 7, BranchKind::Jump, 8);
        assert_eq!(p.next_pc, 1234);
        assert!(p.taken);
    }

    #[test]
    fn cold_btb_falls_through() {
        let mut bp = BranchPredictor::table2(1);
        let p = bp.predict(0, 9, BranchKind::Jump, 10);
        assert_eq!(p.next_pc, 10, "cold BTB must fall through (wrong path)");
    }

    #[test]
    fn ras_pairs_calls_with_returns() {
        let mut bp = BranchPredictor::table2(1);
        bp.predict(0, 10, BranchKind::Call, 11);
        bp.predict(0, 20, BranchKind::Call, 21);
        assert_eq!(bp.predict(0, 30, BranchKind::Ret, 31).next_pc, 21);
        assert_eq!(bp.predict(0, 40, BranchKind::Ret, 41).next_pc, 11);
    }

    #[test]
    fn threads_have_independent_history() {
        let mut bp = BranchPredictor::table2(2);
        // Saturate thread 0 toward taken at pc 5.
        for _ in 0..32 {
            bp.resolve(0, 5, BranchKind::Cond, true, 99, None);
            bp.resolve(1, 5, BranchKind::Cond, false, 99, None);
        }
        // Histories diverge: push different speculative bits.
        let h0 = bp.history_checkpoint(0);
        bp.predict(0, 5, BranchKind::Cond, 6);
        assert_ne!(bp.history_checkpoint(0), h0);
        // Thread 1 history untouched by thread 0 prediction.
        let h1 = bp.history_checkpoint(1);
        bp.predict(0, 5, BranchKind::Cond, 6);
        assert_eq!(bp.history_checkpoint(1), h1);
    }

    #[test]
    fn recovery_restores_history_and_ras() {
        let mut bp = BranchPredictor::table2(1);
        bp.predict(0, 10, BranchKind::Call, 11);
        let h = bp.history_checkpoint(0);
        let r = bp.ras_checkpoint(0);
        // Wrong-path damage.
        bp.predict(0, 12, BranchKind::Cond, 13);
        bp.predict(0, 14, BranchKind::Ret, 15);
        bp.predict(0, 16, BranchKind::Call, 17);
        bp.recover(0, h, &r);
        assert_eq!(bp.history_checkpoint(0), h);
        assert_eq!(bp.ras_checkpoint(0), r);
        assert_eq!(bp.predict(0, 30, BranchKind::Ret, 31).next_pc, 11);
    }
}
