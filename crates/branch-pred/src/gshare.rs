//! Gshare direction predictor (McFarling): a table of 2-bit saturating
//! counters indexed by `PC xor global-history`. Each hardware context has
//! its own history register and counter table, matching the paper's
//! "10-bit global history per thread".

use micro_isa::Pc;
use sim_snapshot::{SnapError, SnapReader, SnapWriter};

/// Two-bit saturating counter states. Strong-not-taken is 0, which is
/// why the decrement below can rely on `saturating_sub` alone.
#[allow(dead_code)]
const STRONG_NT: u8 = 0;
#[allow(dead_code)]
const WEAK_NT: u8 = 1;
const WEAK_T: u8 = 2;
const STRONG_T: u8 = 3;

/// One per-thread gshare predictor.
pub struct Gshare {
    history_bits: u32,
    /// Speculative global history (youngest outcome in bit 0).
    history: u32,
    /// 2-bit counters, `2^history_bits` of them.
    table: Vec<u8>,
}

impl Gshare {
    /// `history_bits`-bit global history and a `2^history_bits`-entry
    /// counter table (the paper uses 10 bits → 1K counters per thread).
    pub fn new(history_bits: u32) -> Gshare {
        assert!((1..=20).contains(&history_bits));
        Gshare {
            history_bits,
            history: 0,
            table: vec![WEAK_T; 1 << history_bits],
        }
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        let mask = (1u32 << self.history_bits) - 1;
        ((pc as u32 ^ self.history) & mask) as usize
    }

    /// Predicted direction for the branch at `pc` under the current
    /// speculative history.
    #[inline]
    pub fn predict(&self, pc: Pc) -> bool {
        self.table[self.index(pc)] >= WEAK_T
    }

    /// Shift a *predicted* outcome into the speculative history. Called at
    /// fetch; undone via [`Self::restore_history`] on squash.
    #[inline]
    pub fn push_speculative(&mut self, taken: bool) {
        let mask = (1u32 << self.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u32) & mask;
    }

    /// Train the counter with the actual outcome (at resolve/commit),
    /// indexing with the *current* speculative history. Prefer
    /// [`Self::train_with_history`] with the fetch-time history checkpoint;
    /// this variant exists for callers without one.
    pub fn train(&mut self, pc: Pc, taken: bool) {
        self.train_with_history(pc, self.history, taken);
    }

    /// Train the counter that was consulted at fetch: `fetch_history` is
    /// the history register value when this branch was predicted. Using
    /// the fetch-time index is what lets gshare learn history-correlated
    /// patterns (e.g. alternating or loop-exit branches).
    pub fn train_with_history(&mut self, pc: Pc, fetch_history: u32, taken: bool) {
        let mask = (1u32 << self.history_bits) - 1;
        let idx = ((pc as u32 ^ fetch_history) & mask) as usize;
        let c = &mut self.table[idx];
        *c = if taken {
            (*c + 1).min(STRONG_T)
        } else {
            c.saturating_sub(1)
        };
    }

    /// Current speculative history (checkpoint token).
    #[inline]
    pub fn history(&self) -> u32 {
        self.history
    }

    /// Restore the speculative history after a squash.
    #[inline]
    pub fn restore_history(&mut self, ckpt: u32) {
        self.history = ckpt & ((1u32 << self.history_bits) - 1);
    }

    /// Serialize mutable predictor state (history register + counters).
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put(&self.history);
        w.put(&self.table);
    }

    /// Restore state saved by [`Self::save_state`] onto a predictor of
    /// the same geometry.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let history: u32 = r.get()?;
        let table: Vec<u8> = r.get()?;
        if table.len() != self.table.len() {
            return Err(SnapError::Corrupt("gshare table size mismatch".into()));
        }
        if table.iter().any(|&c| c > STRONG_T) {
            return Err(SnapError::Corrupt("gshare counter out of range".into()));
        }
        self.history = history & ((1u32 << self.history_bits) - 1);
        self.table = table;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_both_directions() {
        let mut g = Gshare::new(4);
        for _ in 0..10 {
            g.train(3, true);
        }
        assert!(g.predict(3));
        for _ in 0..10 {
            g.train(3, false);
        }
        assert!(!g.predict(3));
    }

    #[test]
    fn always_taken_branch_predicted_after_warmup() {
        let mut g = Gshare::new(10);
        let mut hits = 0;
        for k in 0..200 {
            let p = g.predict(77);
            if k > 20 && p {
                hits += 1;
            }
            g.push_speculative(p);
            g.train(77, true);
        }
        assert!(hits > 170);
    }

    #[test]
    fn history_wraps_to_width() {
        let mut g = Gshare::new(3);
        for _ in 0..100 {
            g.push_speculative(true);
        }
        assert_eq!(g.history(), 0b111);
    }

    #[test]
    fn restore_masks_to_width() {
        let mut g = Gshare::new(3);
        g.restore_history(0xffff_ffff);
        assert_eq!(g.history(), 0b111);
    }

    #[test]
    fn alternating_pattern_learned_via_history() {
        // Period-2 pattern: with history in the index, gshare learns it.
        let mut g = Gshare::new(10);
        let mut hits = 0usize;
        for k in 0..400usize {
            let actual = k % 2 == 0;
            let fetch_history = g.history();
            let p = g.predict(5);
            if k > 50 && p == actual {
                hits += 1;
            }
            g.push_speculative(actual); // perfect history update
            g.train_with_history(5, fetch_history, actual);
        }
        assert!(hits > 300, "only {hits} hits");
    }
}
