//! Property tests for the prediction substrate: checkpoint/restore is an
//! exact inverse, and structures tolerate arbitrary traffic.

use branch_pred::{BranchPredictor, Btb, Ras};
use micro_isa::BranchKind;
use proptest::prelude::*;

proptest! {
    /// RAS snapshot/restore is an exact inverse of any wrong-path damage.
    #[test]
    fn ras_restore_inverts_damage(
        setup in prop::collection::vec(0u64..10_000, 0..16),
        damage in prop::collection::vec(prop::option::of(0u64..10_000), 0..32),
    ) {
        let mut ras = Ras::new(32);
        for &pc in &setup {
            ras.push(pc);
        }
        let snapshot = ras.snapshot();
        for d in &damage {
            match d {
                Some(pc) => ras.push(*pc),
                None => {
                    let _ = ras.pop();
                }
            }
        }
        ras.restore(&snapshot);
        prop_assert_eq!(ras.snapshot(), snapshot);
    }

    /// The BTB always returns the most recently installed target for a
    /// still-resident PC, and lookups never fabricate targets.
    #[test]
    fn btb_returns_latest_install(installs in prop::collection::vec((0u64..64, 0u64..100_000), 1..100)) {
        let mut btb = Btb::new(256, 4);
        let mut last: std::collections::HashMap<u64, u64> = Default::default();
        for &(pc, target) in &installs {
            btb.install(pc, target);
            last.insert(pc, target);
        }
        // 256 entries, ≤64 distinct PCs: nothing can have been evicted.
        for (&pc, &target) in &last {
            prop_assert_eq!(btb.lookup(pc), Some(target));
        }
        prop_assert_eq!(btb.lookup(9_999_999), None);
    }

    /// Predictor state survives arbitrary predict/resolve/recover
    /// interleavings without panicking, and history checkpoints restore
    /// exactly.
    #[test]
    fn predictor_checkpoint_round_trip(
        events in prop::collection::vec((0u64..512, prop::bool::ANY, 0u8..4), 1..200),
    ) {
        let mut bp = BranchPredictor::table2(4);
        for &(pc, taken, tid) in &events {
            let h = bp.history_checkpoint(tid);
            let r = bp.ras_checkpoint(tid);
            let _ = bp.predict(tid, pc, BranchKind::Cond, pc + 1);
            bp.resolve(tid, pc, BranchKind::Cond, taken, pc + 7, Some(h));
            // Recovery must restore the exact pre-prediction state.
            bp.recover(tid, h, &r);
            prop_assert_eq!(bp.history_checkpoint(tid), h);
            prop_assert_eq!(bp.ras_checkpoint(tid), r);
            // Re-apply the resolved outcome (as the pipeline does).
            bp.apply_resolved(tid, BranchKind::Cond, taken, pc + 1);
        }
    }
}
