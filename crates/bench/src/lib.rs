//! Shared helpers for the Criterion benchmark targets (see `benches/`).
//!
//! Three bench families:
//! * `hot_loops` — the simulator's inner loops in isolation (pipeline
//!   stepping, ACE analysis, offline profiling, cache and predictor
//!   microbenches) — the numbers that matter when scaling runs up.
//! * `exhibits` — one regeneration harness per paper table/figure at a
//!   micro measurement budget, so `cargo bench` exercises every
//!   experiment path end to end.
//! * `ablations` — the design-parameter sweeps the paper reports doing
//!   (opt1 region count, Tcache_miss, interval size, DVM trigger
//!   fraction, wq_ratio adaptation), printing the metric outcomes
//!   alongside the timing.

use avf::{profiler, AvfCollector};
use iq_reliability::Scheme;
use smt_sim::pipeline::PipelinePolicies;
use smt_sim::{FetchPolicyKind, MachineConfig, Pipeline, SimLimits};
use std::sync::Arc;
use workload_gen::{mix_by_name, Program};

/// Profiled programs for a standard mix (tiny profile budget).
pub fn tagged_mix(name: &str) -> Vec<Arc<Program>> {
    let mix = mix_by_name(name).expect("standard mix");
    mix.programs()
        .iter()
        .map(|p| profiler::profile_and_tag(p, 30_000, 40_000).0)
        .collect()
}

/// Build a warmed pipeline for a mix under a scheme.
pub fn warmed_pipeline(
    programs: &[Arc<Program>],
    scheme: Scheme,
    fetch: FetchPolicyKind,
) -> Pipeline {
    let machine = MachineConfig::table2();
    let (policies, _) = scheme.policies(fetch, machine.iq_size);
    let mut p = Pipeline::new(machine, programs.to_vec(), policies);
    p.warm_up(80_000);
    p
}

/// Run a scheme for a micro cycle budget; returns (iq_avf, ipc).
pub fn micro_run(
    programs: &[Arc<Program>],
    scheme: Scheme,
    fetch: FetchPolicyKind,
    cycles: u64,
) -> (f64, f64) {
    let machine = MachineConfig::table2();
    let (policies, _) = scheme.policies(fetch, machine.iq_size);
    let mut p = Pipeline::new(machine.clone(), programs.to_vec(), policies);
    let start = p.warm_up(80_000);
    let mut col = AvfCollector::standard(&machine).with_start_cycle(start);
    let r = p.run(SimLimits::cycles(cycles), &mut col);
    (col.report().iq_avf, r.stats.throughput_ipc())
}

/// A bare pipeline with default policies (no warmup).
pub fn cold_pipeline(programs: &[Arc<Program>]) -> Pipeline {
    Pipeline::new(
        MachineConfig::table2(),
        programs.to_vec(),
        PipelinePolicies::default(),
    )
}
