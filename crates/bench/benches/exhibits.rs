//! Per-exhibit regeneration harnesses.
//!
//! One Criterion benchmark per paper table/figure, each running the real
//! experiment code path at a micro measurement budget. `cargo bench
//! exhibits` therefore exercises every exhibit end to end and reports how
//! long each costs per unit of measurement — the scaling knowledge needed
//! to size a full campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::context::{ExperimentContext, ExperimentParams};
use experiments::{fig1, fig10, fig2, fig5, fig8, table1, table2, table3};
use smt_sim::FetchPolicyKind;
use std::hint::black_box;

fn micro_params() -> ExperimentParams {
    let mut p = ExperimentParams::fast();
    p.profile_insts = 20_000;
    p.warmup_insts = 30_000;
    p.run_cycles = 15_000;
    p
}

/// A context with every benchmark pre-profiled, shared across iterations
/// so each bench measures the experiment body, not the profile warmup.
fn prepared_context() -> ExperimentContext {
    let ctx = ExperimentContext::new(micro_params());
    for m in workload_gen::spec::all_models() {
        let _ = ctx.tagged_program(m.name);
    }
    ctx
}

fn bench_tables(c: &mut Criterion) {
    let ctx = prepared_context();
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_pc_accuracy", |b| {
        b.iter(|| black_box(table1::run(&ctx).rows.len()))
    });
    g.bench_function("table2_machine_config", |b| {
        b.iter(|| black_box(table2::render(&ctx.machine).to_text().len()))
    });
    g.bench_function("table3_workload_mixes", |b| {
        b.iter(|| black_box(table3::render().to_text().len()))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let ctx = prepared_context();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_structure_avf", |b| {
        b.iter(|| black_box(fig1::run(&ctx).rows.len()))
    });
    g.bench_function("fig2_ready_queue", |b| {
        b.iter(|| black_box(fig2::run(&ctx).stats.ready_queue_hist.histogram().total()))
    });
    g.bench_function("fig5_visa_icount", |b| {
        b.iter(|| black_box(fig5::run(&ctx).rows.len()))
    });
    g.bench_function("fig6_fetch_policies_one", |b| {
        // One advanced policy (STALL); the full figure is 4x this.
        b.iter(|| {
            black_box(
                fig5::run_with_fetch(&ctx, FetchPolicyKind::Stall)
                    .rows
                    .len(),
            )
        })
    });
    g.finish();
}

fn bench_dvm_figures(c: &mut Criterion) {
    // DVM sweeps are the most expensive exhibits; bench a single
    // threshold so the harness stays affordable.
    let mut params = micro_params();
    params.threshold_fracs = [0.5; 5];
    let ctx = ExperimentContext::new(params);
    for m in workload_gen::spec::all_models() {
        let _ = ctx.tagged_program(m.name);
    }
    let mut g = c.benchmark_group("dvm_figures");
    g.sample_size(10);
    g.bench_function("fig8_dvm_icount", |b| {
        b.iter(|| black_box(fig8::run(&ctx).cells.len()))
    });
    g.bench_function("fig9_dvm_flush", |b| {
        b.iter(|| {
            black_box(
                fig8::run_with_fetch(&ctx, FetchPolicyKind::Flush)
                    .cells
                    .len(),
            )
        })
    });
    g.bench_function("fig10_scheme_compare", |b| {
        b.iter(|| black_box(fig10::run(&ctx).cells.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_dvm_figures);
criterion_main!(benches);
