//! Microbenchmarks of the simulator's hot loops.
//!
//! These are the costs that dominate experiment campaigns: pipeline
//! stepping on CPU- vs MEM-bound mixes, the windowed ACE analysis, the
//! offline profiler, and the cache/predictor substrates.

use bench::{cold_pipeline, tagged_mix};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn pipeline_stepping(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_step");
    g.sample_size(10);
    for mix in ["CPU-A", "MEM-A"] {
        let programs = tagged_mix(mix);
        g.throughput(Throughput::Elements(5_000));
        g.bench_function(format!("{mix}/5k_cycles"), |b| {
            b.iter_batched(
                || {
                    let mut p = cold_pipeline(&programs);
                    p.warm_up(50_000);
                    p
                },
                |mut p| {
                    let mut sink = smt_sim::NullObserver;
                    for _ in 0..5_000 {
                        p.step(&mut sink);
                    }
                    black_box(p.stats().total_committed())
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn ace_analysis(c: &mut Criterion) {
    use avf::{AceAnalyzer, AceInstRecord};
    use workload_gen::{generate_program, model_by_name, ThreadEngine};

    let program = std::sync::Arc::new(generate_program(&model_by_name("gcc").unwrap()));
    // Pre-capture a committed stream to isolate the analyzer cost.
    let mut engine = ThreadEngine::new(program, 0);
    let stream: Vec<AceInstRecord> = (0..100_000u64)
        .map(|k| {
            let i = engine.next_correct();
            AceInstRecord {
                tid: 0,
                pc: i.pc,
                op: i.op,
                dest: i.dest,
                srcs: i.srcs,
                commit_cycle: k,
            }
        })
        .collect();

    let mut g = c.benchmark_group("ace_analysis");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("100k_commits_40k_window", |b| {
        b.iter(|| {
            let mut az: AceAnalyzer<()> = AceAnalyzer::new(1, 40_000);
            let mut ace = 0u64;
            let mut count = |f: avf::Finalized<()>| {
                if f.ace {
                    ace += 1;
                }
            };
            for rec in &stream {
                az.push(rec.clone(), (), &mut count);
            }
            az.drain(&mut count);
            black_box(ace)
        })
    });
    g.finish();
}

fn offline_profiler(c: &mut Criterion) {
    use workload_gen::{generate_program, model_by_name};
    let program = std::sync::Arc::new(generate_program(&model_by_name("mcf").unwrap()));
    let mut g = c.benchmark_group("profiler");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("mcf_100k", |b| {
        b.iter(|| black_box(avf::profile_program(&program, 100_000, 40_000).accuracy))
    });
    g.finish();
}

fn substrates(c: &mut Criterion) {
    use branch_pred::BranchPredictor;
    use mem_hier::MemoryHierarchy;
    use micro_isa::BranchKind;

    let mut g = c.benchmark_group("substrates");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("dcache_stream_100k", |b| {
        b.iter_batched(
            MemoryHierarchy::table2,
            |mut h| {
                let mut sum = 0u64;
                for k in 0..100_000u64 {
                    sum += h.access_data(0, (k * 64) % (1 << 20)).latency as u64;
                }
                black_box(sum)
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("gshare_predict_train_100k", |b| {
        b.iter_batched(
            || BranchPredictor::table2(4),
            |mut bp| {
                let mut taken_count = 0u64;
                for k in 0..100_000u64 {
                    let pc = k % 512;
                    let h = bp.history_checkpoint(0);
                    let p = bp.predict(0, pc, BranchKind::Cond, pc + 1);
                    if p.taken {
                        taken_count += 1;
                    }
                    bp.resolve(0, pc, BranchKind::Cond, k % 7 != 0, pc + 9, Some(h));
                }
                black_box(taken_count)
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

fn program_generation(c: &mut Criterion) {
    use workload_gen::{generate_program, model_by_name};
    let model = model_by_name("gcc").unwrap();
    c.bench_function("generate_program_gcc", |b| {
        b.iter(|| black_box(generate_program(&model).len()))
    });
}

criterion_group!(
    benches,
    pipeline_stepping,
    ace_analysis,
    offline_profiler,
    substrates,
    program_generation
);
criterion_main!(benches);
