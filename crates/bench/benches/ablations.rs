//! Ablation benches for the design choices the paper reports sweeping.
//!
//! Each group runs one configuration variant per benchmark id and prints
//! the *metric* outcome (IQ AVF, IPC) to stderr alongside Criterion's
//! timing, so `cargo bench ablations` reproduces the paper's sensitivity
//! arguments:
//!
//! * opt1 IPC-region count — "4 regions outperform other number of
//!   regions";
//! * `Tcache_miss` — "we performed a sensitivity analysis and choose 16";
//! * sampling-interval size — "we choose an interval size of 10K cycles";
//! * DVM trigger fraction — "we set the trigger threshold to 90% of the
//!   reliability threshold";
//! * wq_ratio adaptation — slow-increase/rapid-decrease vs static.

use bench::tagged_mix;
use criterion::{criterion_group, criterion_main, Criterion};
use iq_reliability::opt1::IplRegionTable;
use iq_reliability::{
    DvmController, DvmMode, DynamicIqAllocator, L2MissSensitiveAllocator, VisaIssue,
};
use smt_sim::pipeline::PipelinePolicies;
use smt_sim::{FetchPolicyKind, MachineConfig, Pipeline, SimLimits};
use std::hint::black_box;
use std::sync::Arc;
use workload_gen::Program;

const MEASURE_CYCLES: u64 = 20_000;

fn run_with(
    programs: &[Arc<Program>],
    policies: PipelinePolicies,
    interval: Option<u64>,
) -> (f64, f64) {
    let machine = MachineConfig::table2();
    let mut p = Pipeline::new(machine.clone(), programs.to_vec(), policies);
    if let Some(iv) = interval {
        p.set_interval_cycles(iv);
    }
    let start = p.warm_up(60_000);
    let mut col = avf::AvfCollector::standard(&machine).with_start_cycle(start);
    let r = p.run(SimLimits::cycles(MEASURE_CYCLES), &mut col);
    (col.report().iq_avf, r.stats.throughput_ipc())
}

fn ablate_ipc_regions(c: &mut Criterion) {
    let programs = tagged_mix("MIX-A");
    let mut g = c.benchmark_group("ablate_opt1_regions");
    g.sample_size(10);
    for n in [2usize, 4, 8] {
        g.bench_function(format!("{n}_regions"), |b| {
            b.iter(|| {
                let table = if n == 4 {
                    IplRegionTable::figure3()
                } else {
                    IplRegionTable::even_regions(n, 8.0)
                };
                let policies = PipelinePolicies {
                    fetch: FetchPolicyKind::Icount.build(),
                    issue: Box::new(VisaIssue),
                    governor: Box::new(DynamicIqAllocator::new(table, 96)),
                };
                let (avf, ipc) = run_with(&programs, policies, None);
                eprintln!("[ablate_opt1_regions/{n}] IQ_AVF={avf:.3} IPC={ipc:.2}");
                black_box((avf, ipc))
            })
        });
    }
    g.finish();
}

fn ablate_tcache_miss(c: &mut Criterion) {
    let programs = tagged_mix("MEM-A");
    let mut g = c.benchmark_group("ablate_tcache_miss");
    g.sample_size(10);
    for t in [4u64, 16, 64] {
        g.bench_function(format!("T_{t}"), |b| {
            b.iter(|| {
                let policies = PipelinePolicies {
                    fetch: FetchPolicyKind::Icount.build(),
                    issue: Box::new(VisaIssue),
                    governor: Box::new(L2MissSensitiveAllocator::new(
                        IplRegionTable::figure3(),
                        96,
                        t,
                    )),
                };
                let (avf, ipc) = run_with(&programs, policies, None);
                eprintln!("[ablate_tcache_miss/{t}] IQ_AVF={avf:.3} IPC={ipc:.2}");
                black_box((avf, ipc))
            })
        });
    }
    g.finish();
}

fn ablate_interval_size(c: &mut Criterion) {
    let programs = tagged_mix("MIX-B");
    let mut g = c.benchmark_group("ablate_interval");
    g.sample_size(10);
    for iv in [1_000u64, 10_000, 100_000] {
        g.bench_function(format!("{iv}_cycles"), |b| {
            b.iter(|| {
                let policies = PipelinePolicies {
                    fetch: FetchPolicyKind::Icount.build(),
                    issue: Box::new(VisaIssue),
                    governor: Box::new(L2MissSensitiveAllocator::figure4(96)),
                };
                let (avf, ipc) = run_with(&programs, policies, Some(iv));
                eprintln!("[ablate_interval/{iv}] IQ_AVF={avf:.3} IPC={ipc:.2}");
                black_box((avf, ipc))
            })
        });
    }
    g.finish();
}

fn ablate_dvm_trigger(c: &mut Criterion) {
    let programs = tagged_mix("MEM-B");
    let mut g = c.benchmark_group("ablate_dvm_trigger");
    g.sample_size(10);
    for frac in [0.8f64, 0.9, 0.95] {
        g.bench_function(format!("trigger_{frac}"), |b| {
            b.iter(|| {
                let dvm =
                    DvmController::with_params(0.15, DvmMode::DynamicRatio, frac, 5, 10_000, 50);
                let policies = PipelinePolicies {
                    fetch: FetchPolicyKind::Icount.build(),
                    issue: Box::new(smt_sim::OldestFirst),
                    governor: Box::new(dvm),
                };
                let (avf, ipc) = run_with(&programs, policies, None);
                eprintln!("[ablate_dvm_trigger/{frac}] IQ_AVF={avf:.3} IPC={ipc:.2}");
                black_box((avf, ipc))
            })
        });
    }
    g.finish();
}

fn ablate_wq_adaptation(c: &mut Criterion) {
    let programs = tagged_mix("MIX-C");
    let mut g = c.benchmark_group("ablate_wq_ratio");
    g.sample_size(10);
    let modes: [(&str, DvmMode); 3] = [
        ("dynamic", DvmMode::DynamicRatio),
        ("static_1", DvmMode::StaticRatio(1.0)),
        ("static_4", DvmMode::StaticRatio(4.0)),
    ];
    for (name, mode) in modes {
        g.bench_function(name, |b| {
            b.iter(|| {
                let dvm = DvmController::new(0.15, mode);
                let policies = PipelinePolicies {
                    fetch: FetchPolicyKind::Icount.build(),
                    issue: Box::new(smt_sim::OldestFirst),
                    governor: Box::new(dvm),
                };
                let (avf, ipc) = run_with(&programs, policies, None);
                eprintln!("[ablate_wq_ratio/{name}] IQ_AVF={avf:.3} IPC={ipc:.2}");
                black_box((avf, ipc))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_ipc_regions,
    ablate_tcache_miss,
    ablate_interval_size,
    ablate_dvm_trigger,
    ablate_wq_adaptation
);
criterion_main!(benches);
