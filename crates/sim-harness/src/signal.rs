//! Graceful-interrupt support without a libc dependency.
//!
//! The first SIGINT or SIGTERM flips a process-global atomic flag that
//! the supervisor polls between jobs: workers stop claiming new work,
//! drain (or checkpoint) what is in flight, and the journal/manifest
//! are flushed so the campaign can resume. A second signal bypasses the
//! drain and exits immediately with status 130 (the conventional
//! 128+SIGINT). SIGTERM gets the identical treatment because batch
//! schedulers and container runtimes deliver it, not SIGINT, ahead of a
//! hard kill — a campaign must checkpoint on either.
//!
//! The build environment has no `libc` crate, so the handler is wired
//! through raw `extern "C"` declarations of the POSIX functions we
//! need. Only `signal(2)` with a flag-setting handler is used, which is
//! async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

/// POSIX signal number for SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;

/// POSIX signal number for SIGTERM (polite kill; what `kill`, cgroup
/// teardown and job schedulers send first).
pub const SIGTERM: i32 = 15;

/// Exit status conventionally reported for death-by-interrupt.
pub const EXIT_INTERRUPTED: i32 = 130;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    fn _exit(code: i32) -> !;
}

#[cfg(unix)]
extern "C" fn on_interrupt(_signum: i32) {
    // Async-signal-safe: one atomic swap, and _exit on the second hit
    // (from either signal — a SIGINT after a SIGTERM also force-exits).
    if INTERRUPTED.swap(true, Ordering::SeqCst) {
        unsafe { _exit(EXIT_INTERRUPTED) }
    }
}

/// Install the SIGINT + SIGTERM handlers. Idempotent; later calls are
/// no-ops. On non-Unix targets this does nothing and [`interrupted`]
/// only reflects flags set programmatically.
pub fn install_sigint_handler() {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    #[cfg(unix)]
    unsafe {
        signal(SIGINT, on_interrupt);
        signal(SIGTERM, on_interrupt);
    }
}

/// Has a SIGINT been received since the last [`reset_interrupted`]?
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Clear the interrupt flag (tests, or a REPL-style driver that wants
/// to survive an interrupt and start a fresh campaign).
pub fn reset_interrupted() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// Set the flag as if a SIGINT had arrived (used by tests and by
/// drivers that want to trigger the same graceful-drain path).
pub fn request_interrupt() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(unix)]
    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn programmatic_interrupt_roundtrip() {
        reset_interrupted();
        assert!(!interrupted());
        request_interrupt();
        assert!(interrupted());
        reset_interrupted();
        assert!(!interrupted());
    }

    // Real-signal tests. They must not run concurrently with other
    // interrupt-sensitive tests; these are the only tests in this crate
    // that raise signals, and the handler is installed first so the
    // process does not die. Rust runs tests in one process, so both
    // raises share one handler installation — serialize via a lock.
    #[cfg(unix)]
    static RAISE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(unix)]
    #[test]
    fn real_sigint_sets_flag_once_handler_installed() {
        let _g = RAISE_LOCK.lock().unwrap();
        install_sigint_handler();
        reset_interrupted();
        unsafe {
            raise(SIGINT);
        }
        assert!(interrupted());
        reset_interrupted();
    }

    #[cfg(unix)]
    #[test]
    fn real_sigterm_drains_like_sigint() {
        let _g = RAISE_LOCK.lock().unwrap();
        install_sigint_handler();
        reset_interrupted();
        unsafe {
            raise(SIGTERM);
        }
        assert!(interrupted(), "SIGTERM must set the same drain flag");
        reset_interrupted();
    }
}
