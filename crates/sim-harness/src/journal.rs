//! Append-only JSONL checkpoint journal for resumable campaigns.
//!
//! One line per completed job. A crash while appending can tear at most
//! the final line; [`Journal::open`] tolerates that by discarding any
//! unparseable tail and counting it, so `--resume` loses at most the
//! one job that was mid-write.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::JobError;

/// Version stamped into every record; records with a different version
/// are skipped (and counted) on load so old journals never corrupt a
/// resumed campaign silently.
///
/// History: v1 had no `state` field (every record was a completion);
/// v2 added `state` so mid-run checkpoints can live in the same journal
/// as final results. v1 journals replay as empty (all records counted
/// `wrong_version`), which merely re-runs their jobs.
pub const JOURNAL_SCHEMA_VERSION: u32 = 2;

/// `state` value for a finished job whose payload is the final result.
pub const STATE_DONE: &str = "done";

/// `state` value for a job interrupted mid-run; the payload points at
/// its latest snapshot (campaign-defined, typically a cycle count and
/// snapshot directory) rather than a result.
pub const STATE_CHECKPOINTED: &str = "checkpointed";

/// Identity of one unit of campaign work. Two runs of the same binary
/// with the same key must produce the same result (simulations are
/// deterministic given their seed), which is what makes journal replay
/// sound; `config_hash` exists to invalidate records when the campaign
/// configuration changes between runs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobKey {
    /// Campaign family, e.g. `"bench-baseline"` or `"fault-inject"`.
    pub exhibit: String,
    /// Scheme / configuration label within the campaign.
    pub scheme: String,
    /// Seed (or salt) distinguishing statistical repetitions.
    pub seed: u64,
    /// FNV-1a hash of the campaign configuration (see [`fnv1a`]).
    pub config_hash: u64,
}

impl JobKey {
    pub fn new(exhibit: &str, scheme: &str, seed: u64, config_hash: u64) -> JobKey {
        JobKey {
            exhibit: exhibit.to_string(),
            scheme: scheme.to_string(),
            seed,
            config_hash,
        }
    }

    /// Filesystem/trace-safe label: non-alphanumeric runs collapse to
    /// a single `-`.
    pub fn slug(&self) -> String {
        let raw = format!(
            "{}-{}-s{}-c{:08x}",
            self.exhibit, self.scheme, self.seed, self.config_hash
        );
        let mut out = String::with_capacity(raw.len());
        let mut last_dash = false;
        for ch in raw.chars() {
            if ch.is_ascii_alphanumeric() {
                out.push(ch.to_ascii_lowercase());
                last_dash = false;
            } else if !last_dash {
                out.push('-');
                last_dash = true;
            }
        }
        out.trim_matches('-').to_string()
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} seed={} cfg={:08x}",
            self.exhibit, self.scheme, self.seed, self.config_hash
        )
    }
}

/// One journal line: schema version, key, and the job's result as an
/// embedded JSON string (kept opaque so the journal layer does not need
/// to know campaign result types).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    pub v: u32,
    pub key: JobKey,
    /// [`STATE_DONE`] or [`STATE_CHECKPOINTED`].
    pub state: String,
    pub payload: String,
}

/// Minimal probe used to classify unparseable lines: if the line at
/// least carries a `v` field with the wrong version it is an old-schema
/// record, not a torn write. Extra fields are ignored on decode, so
/// this parses any record shape that has ever stamped a version.
#[derive(Deserialize)]
struct VersionProbe {
    v: u32,
}

/// Statistics from loading an existing journal file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalLoadStats {
    /// Records accepted into the replay map.
    pub loaded: usize,
    /// Lines that failed to parse (torn tail, corruption).
    pub torn: usize,
    /// Parsed records whose schema version did not match.
    pub wrong_version: usize,
}

/// Append-only JSONL journal living at `<dir>/journal.jsonl`.
pub struct Journal {
    path: PathBuf,
    file: File,
    records: BTreeMap<JobKey, String>,
    /// Latest checkpoint payload per key. A key leaves this map the
    /// moment a `done` record lands — a completion supersedes any
    /// checkpoint taken on the way there.
    checkpoints: BTreeMap<JobKey, String>,
    load_stats: JournalLoadStats,
}

impl Journal {
    /// File name used inside the campaign directory.
    pub const FILE_NAME: &'static str = "journal.jsonl";

    /// Open (creating if absent) the journal in `dir`, replaying any
    /// existing records. Unparseable lines are discarded and counted
    /// as `torn`; parseable records with a different schema version are
    /// counted as `wrong_version`. When the same key appears more than
    /// once, the later record wins.
    pub fn open(dir: &Path) -> Result<Journal, JobError> {
        fs::create_dir_all(dir).map_err(io_err)?;
        let path = dir.join(Self::FILE_NAME);
        let mut records = BTreeMap::new();
        let mut checkpoints = BTreeMap::new();
        let mut load_stats = JournalLoadStats::default();
        if path.exists() {
            let reader = BufReader::new(File::open(&path).map_err(io_err)?);
            for line in reader.lines() {
                let line = line.map_err(io_err)?;
                if line.trim().is_empty() {
                    continue;
                }
                match serde::json::from_str::<JournalRecord>(&line) {
                    Ok(rec) if rec.v == JOURNAL_SCHEMA_VERSION => {
                        match rec.state.as_str() {
                            STATE_DONE => {
                                checkpoints.remove(&rec.key);
                                records.insert(rec.key, rec.payload);
                                load_stats.loaded += 1;
                            }
                            STATE_CHECKPOINTED => {
                                if !records.contains_key(&rec.key) {
                                    checkpoints.insert(rec.key, rec.payload);
                                }
                                load_stats.loaded += 1;
                            }
                            // Unknown state from a future minor change:
                            // ignore the record rather than misread it.
                            _ => load_stats.wrong_version += 1,
                        }
                    }
                    Ok(_) => load_stats.wrong_version += 1,
                    // A line that will not parse as the current schema
                    // but still carries a version stamp is an old-schema
                    // record (e.g. v1 without `state`), not a torn write.
                    Err(_) => match serde::json::from_str::<VersionProbe>(&line) {
                        Ok(probe) if probe.v != JOURNAL_SCHEMA_VERSION => {
                            load_stats.wrong_version += 1
                        }
                        _ => load_stats.torn += 1,
                    },
                }
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(Journal {
            path,
            file,
            records,
            checkpoints,
            load_stats,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn load_stats(&self) -> JournalLoadStats {
        self.load_stats
    }

    /// Number of distinct keys currently replayable.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Raw payload JSON for `key`, if journaled.
    pub fn lookup(&self, key: &JobKey) -> Option<&str> {
        self.records.get(key).map(|s| s.as_str())
    }

    /// Decode a journaled payload into its result type.
    pub fn decode<R: Deserialize>(&self, key: &JobKey) -> Option<Result<R, JobError>> {
        self.lookup(key).map(|payload| {
            serde::json::from_str::<R>(payload).map_err(|e| JobError::Io {
                detail: format!("journal payload for {key} failed to decode: {e:?}"),
            })
        })
    }

    /// Latest checkpoint payload for `key`, unless a `done` record has
    /// superseded it.
    pub fn lookup_checkpoint(&self, key: &JobKey) -> Option<&str> {
        self.checkpoints.get(key).map(|s| s.as_str())
    }

    /// Decode a journaled checkpoint payload.
    pub fn decode_checkpoint<R: Deserialize>(&self, key: &JobKey) -> Option<Result<R, JobError>> {
        self.lookup_checkpoint(key).map(|payload| {
            serde::json::from_str::<R>(payload).map_err(|e| JobError::Corrupt {
                detail: format!("journal checkpoint for {key} failed to decode: {e:?}"),
            })
        })
    }

    fn append<R: Serialize>(
        &mut self,
        key: &JobKey,
        state: &str,
        body: &R,
    ) -> Result<String, JobError> {
        let payload = serde::json::to_string(body);
        let rec = JournalRecord {
            v: JOURNAL_SCHEMA_VERSION,
            key: key.clone(),
            state: state.to_string(),
            payload: payload.clone(),
        };
        let mut line = serde::json::to_string(&rec);
        line.push('\n');
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        Ok(payload)
    }

    /// Append one completed job. The record is written as a single line
    /// and flushed before returning, so a later crash cannot lose it.
    /// Completion supersedes any checkpoint recorded for the same key.
    pub fn record<R: Serialize>(&mut self, key: &JobKey, result: &R) -> Result<(), JobError> {
        let payload = self.append(key, STATE_DONE, result)?;
        self.checkpoints.remove(key);
        self.records.insert(key.clone(), payload);
        Ok(())
    }

    /// Append a mid-run checkpoint marker for `key`. The payload is
    /// campaign-defined — typically the snapshot cycle plus enough
    /// metadata to locate the snapshot file — and is returned by
    /// [`lookup_checkpoint`] on resume until a `done` record lands.
    pub fn record_checkpoint<R: Serialize>(
        &mut self,
        key: &JobKey,
        checkpoint: &R,
    ) -> Result<(), JobError> {
        let payload = self.append(key, STATE_CHECKPOINTED, checkpoint)?;
        if !self.records.contains_key(key) {
            self.checkpoints.insert(key.clone(), payload);
        }
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> JobError {
    JobError::Io {
        detail: e.to_string(),
    }
}

/// FNV-1a over the canonical text of a campaign configuration — the
/// standard way to derive [`JobKey::config_hash`].
pub fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sim-harness-journal").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn key(seed: u64) -> JobKey {
        JobKey::new("bench-baseline", "icount", seed, fnv1a("cfg"))
    }

    #[test]
    fn roundtrip_and_replay() {
        let dir = scratch("roundtrip_and_replay");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"alpha".to_string()).unwrap();
            j.record(&key(2), &"beta".to_string()).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.load_stats().loaded, 2);
        assert_eq!(j.decode::<String>(&key(1)).unwrap().unwrap(), "alpha");
        assert_eq!(j.decode::<String>(&key(2)).unwrap().unwrap(), "beta");
        assert!(j.lookup(&key(3)).is_none());
    }

    #[test]
    fn later_record_wins() {
        let dir = scratch("later_record_wins");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"old".to_string()).unwrap();
            j.record(&key(1), &"new".to_string()).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.decode::<String>(&key(1)).unwrap().unwrap(), "new");
    }

    #[test]
    fn torn_tail_line_is_discarded() {
        let dir = scratch("torn_tail_line_is_discarded");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"kept".to_string()).unwrap();
        }
        // Simulate a crash mid-append: half a record, no newline.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(Journal::FILE_NAME))
            .unwrap();
        f.write_all(b"{\"v\":1,\"key\":{\"exhi").unwrap();
        drop(f);

        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.load_stats().torn, 1);
        assert_eq!(j.decode::<String>(&key(1)).unwrap().unwrap(), "kept");
    }

    #[test]
    fn wrong_schema_version_is_skipped() {
        let dir = scratch("wrong_schema_version_is_skipped");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"v1".to_string()).unwrap();
        }
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(Journal::FILE_NAME))
            .unwrap();
        let future = JournalRecord {
            v: JOURNAL_SCHEMA_VERSION + 1,
            key: key(2),
            state: STATE_DONE.to_string(),
            payload: "\"future\"".to_string(),
        };
        let mut line = serde::json::to_string(&future);
        line.push('\n');
        f.write_all(line.as_bytes()).unwrap();
        drop(f);

        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.load_stats().wrong_version, 1);
        assert!(j.lookup(&key(2)).is_none());
    }

    #[test]
    fn v1_records_without_state_count_as_wrong_version() {
        let dir = scratch("v1_records_without_state");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"current".to_string()).unwrap();
        }
        // A v1-era line: valid JSON, version stamp, but no `state`
        // field. It must be classified as an old schema, not a torn
        // write, and must not replay.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(Journal::FILE_NAME))
            .unwrap();
        f.write_all(
            b"{\"v\":1,\"key\":{\"exhibit\":\"bench-baseline\",\"scheme\":\"icount\",\
              \"seed\":9,\"config_hash\":1},\"payload\":\"\\\"old\\\"\"}\n",
        )
        .unwrap();
        drop(f);

        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.load_stats().wrong_version, 1);
        assert_eq!(j.load_stats().torn, 0);
        assert!(j.lookup(&key(9)).is_none());
    }

    #[test]
    fn checkpoint_roundtrips_until_done_supersedes() {
        let dir = scratch("checkpoint_roundtrips");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record_checkpoint(&key(1), &"cycle-10000".to_string())
                .unwrap();
            j.record_checkpoint(&key(1), &"cycle-20000".to_string())
                .unwrap();
            j.record_checkpoint(&key(2), &"cycle-10000".to_string())
                .unwrap();
            // Key 2 finishes; its checkpoint is now obsolete.
            j.record(&key(2), &"result".to_string()).unwrap();
            assert!(j.lookup_checkpoint(&key(2)).is_none());
        }
        let j = Journal::open(&dir).unwrap();
        // Latest checkpoint wins for the still-running job.
        assert_eq!(
            j.decode_checkpoint::<String>(&key(1)).unwrap().unwrap(),
            "cycle-20000"
        );
        // The finished job replays its result, not its checkpoint.
        assert!(j.lookup_checkpoint(&key(2)).is_none());
        assert_eq!(j.decode::<String>(&key(2)).unwrap().unwrap(), "result");
        // Checkpoints never appear in the completed-replay map.
        assert!(j.lookup(&key(1)).is_none());
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn undecodable_checkpoint_reports_corrupt() {
        let dir = scratch("undecodable_checkpoint");
        let mut j = Journal::open(&dir).unwrap();
        j.record_checkpoint(&key(1), &"not-a-number".to_string())
            .unwrap();
        let err = j.decode_checkpoint::<u64>(&key(1)).unwrap().unwrap_err();
        assert!(
            matches!(err, JobError::Corrupt { .. }),
            "expected Corrupt, got {err:?}"
        );
    }

    #[test]
    fn slug_is_filesystem_safe() {
        let k = JobKey::new("fault-inject", "DVM/aggr", 7, 0xdead_beef);
        let slug = k.slug();
        assert_eq!(slug, "fault-inject-dvm-aggr-s7-cdeadbeef");
        assert!(slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_eq!(fnv1a("campaign"), fnv1a("campaign"));
    }
}
