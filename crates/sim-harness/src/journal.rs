//! Append-only JSONL checkpoint journal for resumable campaigns.
//!
//! One line per completed job. A crash while appending can tear at most
//! the final line; [`Journal::open`] tolerates that by discarding any
//! unparseable tail and counting it, so `--resume` loses at most the
//! one job that was mid-write.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::JobError;

/// Version stamped into every record; records with a different version
/// are skipped (and counted) on load so old journals never corrupt a
/// resumed campaign silently.
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// Identity of one unit of campaign work. Two runs of the same binary
/// with the same key must produce the same result (simulations are
/// deterministic given their seed), which is what makes journal replay
/// sound; `config_hash` exists to invalidate records when the campaign
/// configuration changes between runs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobKey {
    /// Campaign family, e.g. `"bench-baseline"` or `"fault-inject"`.
    pub exhibit: String,
    /// Scheme / configuration label within the campaign.
    pub scheme: String,
    /// Seed (or salt) distinguishing statistical repetitions.
    pub seed: u64,
    /// FNV-1a hash of the campaign configuration (see [`fnv1a`]).
    pub config_hash: u64,
}

impl JobKey {
    pub fn new(exhibit: &str, scheme: &str, seed: u64, config_hash: u64) -> JobKey {
        JobKey {
            exhibit: exhibit.to_string(),
            scheme: scheme.to_string(),
            seed,
            config_hash,
        }
    }

    /// Filesystem/trace-safe label: non-alphanumeric runs collapse to
    /// a single `-`.
    pub fn slug(&self) -> String {
        let raw = format!(
            "{}-{}-s{}-c{:08x}",
            self.exhibit, self.scheme, self.seed, self.config_hash
        );
        let mut out = String::with_capacity(raw.len());
        let mut last_dash = false;
        for ch in raw.chars() {
            if ch.is_ascii_alphanumeric() {
                out.push(ch.to_ascii_lowercase());
                last_dash = false;
            } else if !last_dash {
                out.push('-');
                last_dash = true;
            }
        }
        out.trim_matches('-').to_string()
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} seed={} cfg={:08x}",
            self.exhibit, self.scheme, self.seed, self.config_hash
        )
    }
}

/// One journal line: schema version, key, and the job's result as an
/// embedded JSON string (kept opaque so the journal layer does not need
/// to know campaign result types).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    pub v: u32,
    pub key: JobKey,
    pub payload: String,
}

/// Statistics from loading an existing journal file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalLoadStats {
    /// Records accepted into the replay map.
    pub loaded: usize,
    /// Lines that failed to parse (torn tail, corruption).
    pub torn: usize,
    /// Parsed records whose schema version did not match.
    pub wrong_version: usize,
}

/// Append-only JSONL journal living at `<dir>/journal.jsonl`.
pub struct Journal {
    path: PathBuf,
    file: File,
    records: BTreeMap<JobKey, String>,
    load_stats: JournalLoadStats,
}

impl Journal {
    /// File name used inside the campaign directory.
    pub const FILE_NAME: &'static str = "journal.jsonl";

    /// Open (creating if absent) the journal in `dir`, replaying any
    /// existing records. Unparseable lines are discarded and counted
    /// as `torn`; parseable records with a different schema version are
    /// counted as `wrong_version`. When the same key appears more than
    /// once, the later record wins.
    pub fn open(dir: &Path) -> Result<Journal, JobError> {
        fs::create_dir_all(dir).map_err(io_err)?;
        let path = dir.join(Self::FILE_NAME);
        let mut records = BTreeMap::new();
        let mut load_stats = JournalLoadStats::default();
        if path.exists() {
            let reader = BufReader::new(File::open(&path).map_err(io_err)?);
            for line in reader.lines() {
                let line = line.map_err(io_err)?;
                if line.trim().is_empty() {
                    continue;
                }
                match serde::json::from_str::<JournalRecord>(&line) {
                    Ok(rec) if rec.v == JOURNAL_SCHEMA_VERSION => {
                        records.insert(rec.key, rec.payload);
                        load_stats.loaded += 1;
                    }
                    Ok(_) => load_stats.wrong_version += 1,
                    Err(_) => load_stats.torn += 1,
                }
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(Journal {
            path,
            file,
            records,
            load_stats,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn load_stats(&self) -> JournalLoadStats {
        self.load_stats
    }

    /// Number of distinct keys currently replayable.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Raw payload JSON for `key`, if journaled.
    pub fn lookup(&self, key: &JobKey) -> Option<&str> {
        self.records.get(key).map(|s| s.as_str())
    }

    /// Decode a journaled payload into its result type.
    pub fn decode<R: Deserialize>(&self, key: &JobKey) -> Option<Result<R, JobError>> {
        self.lookup(key).map(|payload| {
            serde::json::from_str::<R>(payload).map_err(|e| JobError::Io {
                detail: format!("journal payload for {key} failed to decode: {e:?}"),
            })
        })
    }

    /// Append one completed job. The record is written as a single line
    /// and flushed before returning, so a later crash cannot lose it.
    pub fn record<R: Serialize>(&mut self, key: &JobKey, result: &R) -> Result<(), JobError> {
        let payload = serde::json::to_string(result);
        let rec = JournalRecord {
            v: JOURNAL_SCHEMA_VERSION,
            key: key.clone(),
            payload: payload.clone(),
        };
        let mut line = serde::json::to_string(&rec);
        line.push('\n');
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        self.records.insert(key.clone(), payload);
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> JobError {
    JobError::Io {
        detail: e.to_string(),
    }
}

/// FNV-1a over the canonical text of a campaign configuration — the
/// standard way to derive [`JobKey::config_hash`].
pub fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sim-harness-journal").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn key(seed: u64) -> JobKey {
        JobKey::new("bench-baseline", "icount", seed, fnv1a("cfg"))
    }

    #[test]
    fn roundtrip_and_replay() {
        let dir = scratch("roundtrip_and_replay");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"alpha".to_string()).unwrap();
            j.record(&key(2), &"beta".to_string()).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.load_stats().loaded, 2);
        assert_eq!(j.decode::<String>(&key(1)).unwrap().unwrap(), "alpha");
        assert_eq!(j.decode::<String>(&key(2)).unwrap().unwrap(), "beta");
        assert!(j.lookup(&key(3)).is_none());
    }

    #[test]
    fn later_record_wins() {
        let dir = scratch("later_record_wins");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"old".to_string()).unwrap();
            j.record(&key(1), &"new".to_string()).unwrap();
        }
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.decode::<String>(&key(1)).unwrap().unwrap(), "new");
    }

    #[test]
    fn torn_tail_line_is_discarded() {
        let dir = scratch("torn_tail_line_is_discarded");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"kept".to_string()).unwrap();
        }
        // Simulate a crash mid-append: half a record, no newline.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(Journal::FILE_NAME))
            .unwrap();
        f.write_all(b"{\"v\":1,\"key\":{\"exhi").unwrap();
        drop(f);

        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.load_stats().torn, 1);
        assert_eq!(j.decode::<String>(&key(1)).unwrap().unwrap(), "kept");
    }

    #[test]
    fn wrong_schema_version_is_skipped() {
        let dir = scratch("wrong_schema_version_is_skipped");
        {
            let mut j = Journal::open(&dir).unwrap();
            j.record(&key(1), &"v1".to_string()).unwrap();
        }
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(Journal::FILE_NAME))
            .unwrap();
        let future = JournalRecord {
            v: JOURNAL_SCHEMA_VERSION + 1,
            key: key(2),
            payload: "\"v2\"".to_string(),
        };
        let mut line = serde::json::to_string(&future);
        line.push('\n');
        f.write_all(line.as_bytes()).unwrap();
        drop(f);

        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(j.load_stats().wrong_version, 1);
        assert!(j.lookup(&key(2)).is_none());
    }

    #[test]
    fn slug_is_filesystem_safe() {
        let k = JobKey::new("fault-inject", "DVM/aggr", 7, 0xdead_beef);
        let slug = k.slug();
        assert_eq!(slug, "fault-inject-dvm-aggr-s7-cdeadbeef");
        assert!(slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_eq!(fnv1a("campaign"), fnv1a("campaign"));
    }
}
