//! Crash-safe file writes.

use std::fs;
use std::io;
use std::path::Path;

/// Write `contents` to `path` atomically: the bytes go to a `.tmp`
/// sibling first and are moved into place with `fs::rename`, so readers
/// (and a campaign resuming after a crash) see either the old file or
/// the new one, never a torn half-write.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sim-harness-fsutil").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("writes_and_replaces");
        let path = dir.join("report.json");
        atomic_write(&path, "{\"v\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        atomic_write(&path, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        // No stray temp file remains.
        assert!(!dir.join("report.json.tmp").exists());
    }

    #[test]
    fn creates_missing_parent_dirs() {
        let dir = scratch("creates_missing_parent_dirs");
        let path = dir.join("a/b/c.txt");
        atomic_write(&path, "deep").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "deep");
    }
}
