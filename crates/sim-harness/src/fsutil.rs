//! Crash-safe file writes.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// Write `contents` to `path` atomically and durably: the bytes go to a
/// `.tmp` sibling first, are fsynced, moved into place with
/// `fs::rename`, and then the *parent directory* is fsynced too. The
/// rename gives atomicity (readers see the old file or the new one,
/// never a torn half-write); the two fsyncs give durability across
/// power loss — without the directory fsync the rename itself can be
/// lost, leaving a fully written file that simply is not there after
/// reboot, which for snapshot rotation would silently roll a resumed
/// campaign back one checkpoint further than reported.
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    atomic_write_bytes(path, contents.as_bytes())
}

/// Byte-slice variant of [`atomic_write`] (snapshot files are binary).
pub fn atomic_write_bytes(path: &Path, contents: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Fsync the directory containing `path` so a just-completed rename
/// survives power loss. Directories cannot be opened for syncing on
/// every platform; where they cannot, durability degrades to what the
/// filesystem offers and this is a no-op.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            File::open(parent)?.sync_all()?;
        }
    }
    let _ = path;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sim-harness-fsutil").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = scratch("writes_and_replaces");
        let path = dir.join("report.json");
        atomic_write(&path, "{\"v\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        atomic_write(&path, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        // No stray temp file remains.
        assert!(!dir.join("report.json.tmp").exists());
    }

    #[test]
    fn creates_missing_parent_dirs() {
        let dir = scratch("creates_missing_parent_dirs");
        let path = dir.join("a/b/c.txt");
        atomic_write(&path, "deep").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "deep");
    }

    #[test]
    fn binary_contents_roundtrip() {
        let dir = scratch("binary_contents_roundtrip");
        let path = dir.join("state.snap");
        let payload: Vec<u8> = (0..=255u8).collect();
        atomic_write_bytes(&path, &payload).unwrap();
        assert_eq!(fs::read(&path).unwrap(), payload);
        assert!(!dir.join("state.snap.tmp").exists());
    }
}
