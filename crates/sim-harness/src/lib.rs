//! # `sim-harness` — resilient execution for long simulation campaigns
//!
//! The paper's evidence rests on multi-seed, multi-scheme campaigns
//! that run for hours; the execution layer therefore has to tolerate
//! failures instead of aborting on the first one. This crate supervises
//! campaign-shaped work — many independent, deterministic jobs fanned
//! out over a worker pool — with the reliability mechanisms the raw
//! `std::thread::scope` fan-out lacked:
//!
//! * **Panic isolation** — every job runs under `catch_unwind`; a
//!   panicking simulation becomes a typed [`JobError::Panic`] for *that
//!   job* instead of poisoning the whole campaign.
//! * **Wall-clock deadlines** — a monitor thread cancels overrunning
//!   jobs through the simulator's cooperative
//!   [`CancelToken`](smt_sim::CancelToken) (polled on the 10K-cycle
//!   interval clock), layering host-time bounds over the simulated
//!   commit watchdog.
//! * **Bounded retry with exponential backoff** — transient failures
//!   get [`HarnessConfig::max_attempts`] tries, spaced by [`Backoff`].
//! * **Quarantine** — jobs that keep failing are sidelined in a
//!   [`Quarantine`] registry; the campaign completes with an explicit
//!   quarantined section instead of dying.
//! * **Checkpoint–resume** — each completed job appends one record to a
//!   schema-versioned JSONL [`Journal`] keyed by
//!   [`JobKey`] `(exhibit, scheme, seed, config-hash)`; re-running the
//!   campaign against the same journal replays completed jobs from disk
//!   and only simulates the remainder. The journal load tolerates a
//!   torn final record, so a crash at any byte boundary loses at most
//!   the job that was being written.
//! * **Mid-run snapshots** — jobs that honor
//!   [`HarnessConfig::snapshot_every`] persist versioned, checksummed
//!   pipeline snapshots through a rotating [`SnapshotStore`] and mark
//!   the journal `checkpointed`; a resumed campaign restores the latest
//!   valid snapshot (falling back past corrupt files, failing typed
//!   with [`JobError::Corrupt`] when none survive) and continues
//!   bit-identically instead of re-simulating from cycle zero.
//! * **Graceful interrupt** — a SIGINT or SIGTERM (see [`signal`])
//!   stops job claiming, drains or checkpoints in-flight work, and
//!   leaves the journal complete; a second signal exits immediately.
//!
//! Everything the supervisor does is observable: `harness.*` counters
//! land in a [`sim_metrics::Metrics`] registry and job lifecycle events
//! are emitted as [`sim_trace::TraceEvent::Harness`] records, so
//! retries and quarantines show up in run manifests and Chrome traces
//! next to the simulations they supervised.

pub mod backoff;
pub mod error;
pub mod fsutil;
pub mod journal;
pub mod quarantine;
pub mod signal;
pub mod snapshot;
pub mod supervisor;

pub use backoff::Backoff;
pub use error::JobError;
pub use fsutil::{atomic_write, atomic_write_bytes};
pub use journal::{fnv1a, JobKey, Journal, JOURNAL_SCHEMA_VERSION};
pub use quarantine::{Quarantine, QuarantineEntry};
pub use snapshot::{LoadedSnapshot, SnapshotStore};
pub use supervisor::{
    default_jobs, run_journaled, run_journaled_in, run_supervised, set_default_jobs,
    CampaignOutcome, CampaignProgress, HarnessConfig, HarnessObservers, HarnessStats, JobCtx,
    JobOutcome,
};
