//! The supervised worker pool: claim → attempt → classify → retry →
//! quarantine, with deadlines enforced by a monitor thread and results
//! streamed back to the caller in input-slot order.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim_metrics::Metrics;
use sim_profile::heartbeat::Heartbeat;
use sim_profile::Profiler;
use sim_trace::{TraceEvent, Tracer};
use smt_sim::CancelToken;

use crate::backoff::Backoff;
use crate::error::JobError;
use crate::journal::{JobKey, Journal};
use crate::quarantine::{Quarantine, QuarantineEntry};
use crate::signal;

/// Supervision policy for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Attempts per job before giving up (>= 1).
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// Failures before a job is quarantined. Effectively capped at
    /// `max_attempts` — a job cannot fail more often than it is tried.
    pub quarantine_threshold: u32,
    /// Wall-clock budget per attempt; `None` disables the monitor.
    pub deadline: Option<Duration>,
    /// Worker-pool width; `None` falls back to [`default_jobs`].
    pub jobs: Option<usize>,
    /// Checkpoint cadence in simulated cycles; `None` keeps the
    /// simulator's default interval. Jobs read this through
    /// [`JobCtx::snapshot_every`] — the harness itself never snapshots,
    /// it only carries the policy to the closures that can.
    pub snapshot_every: Option<u64>,
    /// Paranoid mode: jobs should run structural invariant checks at
    /// every snapshot boundary and fail fast (as `JobError::Diverged`)
    /// on the first violation instead of writing a poisoned checkpoint.
    pub selfcheck: bool,
    /// Live progress line on stderr. Even when `true`, the line is
    /// drawn only while stderr is a TTY, and is suppressed (and erased)
    /// for the whole of a SIGINT drain.
    pub heartbeat: bool,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig {
            max_attempts: 3,
            backoff: Backoff::standard(),
            quarantine_threshold: 3,
            deadline: None,
            jobs: None,
            snapshot_every: None,
            selfcheck: false,
            heartbeat: true,
        }
    }
}

/// Per-attempt context handed to the job closure. Long-running jobs
/// should thread `cancel` into their [`smt_sim::Pipeline`] (via
/// `set_cancel_token`) so deadline enforcement can actually stop them.
pub struct JobCtx {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Cooperative cancellation token for this attempt.
    pub cancel: CancelToken,
    /// Checkpoint cadence requested by [`HarnessConfig::snapshot_every`].
    pub snapshot_every: Option<u64>,
    /// Paranoid invariant checking requested by
    /// [`HarnessConfig::selfcheck`].
    pub selfcheck: bool,
    /// Campaign-wide progress feed: thread
    /// [`CampaignProgress::cycle_counter`] into the simulator and
    /// declare cycle budgets so the heartbeat can show an ETA.
    pub progress: Arc<CampaignProgress>,
    deadline_hit: Arc<AtomicBool>,
}

impl JobCtx {
    /// True once the monitor thread has expired this attempt's
    /// wall-clock deadline (the cancel token fires at the same moment).
    pub fn deadline_expired(&self) -> bool {
        self.deadline_hit.load(Ordering::Acquire)
    }
}

/// Final disposition of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<R> {
    Completed {
        value: R,
        /// Attempts actually executed (0 when replayed from journal).
        attempts: u32,
        /// True when the value came from the checkpoint journal.
        from_journal: bool,
    },
    /// The job exhausted its retries or hit the quarantine threshold.
    Quarantined { error: JobError, attempts: u32 },
    /// Never attempted: shutdown was requested before it was claimed.
    Skipped,
}

impl<R> JobOutcome<R> {
    pub fn value(&self) -> Option<&R> {
        match self {
            JobOutcome::Completed { value, .. } => Some(value),
            _ => None,
        }
    }
}

/// Aggregate counters for one campaign run; mirrors the `harness.*`
/// metrics so manifests can embed them without a metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarnessStats {
    pub completed: u64,
    pub resumed: u64,
    pub retries: u64,
    pub panics: u64,
    pub deadlines: u64,
    pub watchdogs: u64,
    pub diverged: u64,
    pub io_errors: u64,
    pub corrupt: u64,
    pub quarantined: u64,
    pub skipped: u64,
}

impl HarnessStats {
    fn count_failure(&mut self, err: &JobError) {
        match err {
            JobError::Panic { .. } => self.panics += 1,
            JobError::Deadline { .. } => self.deadlines += 1,
            JobError::Watchdog { .. } => self.watchdogs += 1,
            JobError::Diverged { .. } => self.diverged += 1,
            JobError::Io { .. } => self.io_errors += 1,
            JobError::Corrupt { .. } => self.corrupt += 1,
        }
    }
}

/// Everything a campaign produced, including what it could *not*
/// produce: quarantined jobs are listed explicitly instead of silently
/// missing from the results.
#[derive(Debug)]
pub struct CampaignOutcome<R> {
    /// One entry per input item, in input order.
    pub jobs: Vec<(JobKey, JobOutcome<R>)>,
    /// True when a shutdown request (SIGINT or injected flag) stopped
    /// the campaign before every job was attempted.
    pub interrupted: bool,
    pub stats: HarnessStats,
    pub quarantine: Vec<QuarantineEntry>,
}

impl<R> CampaignOutcome<R> {
    /// Completed values in input order (journal replays included).
    pub fn values(&self) -> Vec<&R> {
        self.jobs.iter().filter_map(|(_, o)| o.value()).collect()
    }

    pub fn fully_completed(&self) -> bool {
        !self.interrupted && self.quarantine.is_empty() && self.stats.skipped == 0
    }

    /// Process exit status under the campaign exit-code contract:
    /// 0 = complete, 2 = partial (quarantined jobs), 130 = interrupted.
    pub fn exit_code(&self) -> i32 {
        if self.interrupted {
            signal::EXIT_INTERRUPTED
        } else if !self.quarantine.is_empty() {
            2
        } else {
            0
        }
    }
}

/// Shared live-progress feed for the campaign heartbeat. Jobs bump the
/// cycle counter (threaded into the simulator via
/// `Pipeline::set_progress_counter`) and declare their cycle budgets;
/// the supervisor tracks job completion and the monitor thread renders
/// the combined state as the heartbeat line.
#[derive(Debug, Default)]
pub struct CampaignProgress {
    jobs_total: AtomicUsize,
    jobs_done: AtomicUsize,
    /// Simulated cycles completed across all jobs, in an `Arc` so the
    /// same counter can be handed to `Pipeline::set_progress_counter`.
    cycles: Arc<AtomicU64>,
    /// Sum of declared per-job cycle budgets (0 = unknown).
    cycles_total: AtomicU64,
}

impl CampaignProgress {
    /// The shared cycle counter, in the form the simulator accepts.
    pub fn cycle_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.cycles)
    }

    /// Declare `cycles` of expected simulated work (called once per
    /// job as it learns its budget); feeds the ETA denominator.
    pub fn add_cycles_total(&self, cycles: u64) {
        self.cycles_total.fetch_add(cycles, Ordering::Relaxed);
    }

    /// `(jobs_done, jobs_total, cycles, cycles_total)`.
    pub fn snapshot(&self) -> (usize, usize, u64, u64) {
        (
            self.jobs_done.load(Ordering::Relaxed),
            self.jobs_total.load(Ordering::Relaxed),
            self.cycles.load(Ordering::Relaxed),
            self.cycles_total.load(Ordering::Relaxed),
        )
    }
}

/// Observability wiring plus the shutdown source. With `shutdown:
/// None` the supervisor watches the process-global SIGINT flag (see
/// [`signal`]); tests inject their own flag so parallel test runs
/// cannot interfere with each other.
#[derive(Clone, Default)]
pub struct HarnessObservers {
    pub metrics: Metrics,
    pub tracer: Tracer,
    /// Host-side span profiler; journal and snapshot I/O record here.
    pub profiler: Profiler,
    /// Live-progress feed shared by jobs, supervisor and heartbeat.
    pub progress: Arc<CampaignProgress>,
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl HarnessObservers {
    pub fn off() -> HarnessObservers {
        HarnessObservers {
            metrics: Metrics::off(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
            progress: Arc::new(CampaignProgress::default()),
            shutdown: None,
        }
    }

    fn shutdown_requested(&self) -> bool {
        match &self.shutdown {
            Some(flag) => flag.load(Ordering::SeqCst),
            None => signal::interrupted(),
        }
    }
}

static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default worker count (the CLI's `--jobs`).
/// Zero restores auto-detection.
pub fn set_default_jobs(n: usize) {
    DEFAULT_JOBS.store(n, Ordering::SeqCst);
}

/// The worker count used when [`HarnessConfig::jobs`] is `None`: the
/// value from [`set_default_jobs`], else `available_parallelism`.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

const C_COMPLETED: &str = "harness.jobs_completed";
const C_RESUMED: &str = "harness.jobs_resumed";
const C_QUARANTINED: &str = "harness.jobs_quarantined";
const C_SKIPPED: &str = "harness.jobs_skipped";
const C_RETRIES: &str = "harness.retries";
const C_JOURNAL_TORN: &str = "harness.journal.torn_records";
const C_JOURNAL_WRONG_VERSION: &str = "harness.journal.wrong_version_records";
const C_JOURNAL_WRITE_ERRORS: &str = "harness.journal.write_errors";

fn failure_counter(err: &JobError) -> &'static str {
    match err {
        JobError::Panic { .. } => "harness.failures.panic",
        JobError::Deadline { .. } => "harness.failures.deadline",
        JobError::Watchdog { .. } => "harness.failures.watchdog",
        JobError::Diverged { .. } => "harness.failures.diverged",
        JobError::Io { .. } => "harness.failures.io",
        JobError::Corrupt { .. } => "harness.failures.corrupt",
    }
}

/// Sleep in small slices so a shutdown request cuts the wait short.
/// Returns true when shutdown was requested.
fn sleep_interruptible(total: Duration, obs: &HarnessObservers) -> bool {
    let slice = Duration::from_millis(10);
    let until = Instant::now() + total;
    loop {
        if obs.shutdown_requested() {
            return true;
        }
        let now = Instant::now();
        if now >= until {
            return false;
        }
        std::thread::sleep(slice.min(until - now));
    }
}

/// A monitor-board slot for one in-flight attempt: its wall-clock
/// expiry (when a deadline is configured), its token to cancel, and
/// the flag that re-classifies its failure as `Deadline`. The monitor
/// also fires the token on a shutdown request, so an interrupted
/// checkpointing job stops at its next snapshot boundary instead of
/// running its full budget out.
type DeadlineSlot = Option<(Option<Instant>, CancelToken, Arc<AtomicBool>)>;

/// Run `items` through the supervised pool. `f` is invoked as
/// `f(&item, &ctx)` and may fail typed (`Err(JobError)`), panic, or
/// overrun its deadline — all three become per-job outcomes rather
/// than campaign aborts. `on_complete` fires on the *caller's* thread,
/// in completion order, once per freshly completed job (journaling
/// hook). Results come back in input-slot order, which callers that
/// fold floating-point summaries rely on for determinism.
pub fn run_supervised<T, R, F, C>(
    items: Vec<(JobKey, T)>,
    f: F,
    cfg: &HarnessConfig,
    obs: &HarnessObservers,
    mut on_complete: C,
) -> CampaignOutcome<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T, &JobCtx) -> Result<R, JobError> + Sync,
    C: FnMut(&JobKey, &R),
{
    let n = items.len();
    let workers = cfg.jobs.unwrap_or_else(default_jobs).max(1).min(n.max(1));
    let max_attempts = cfg.max_attempts.max(1);
    let effective_threshold = cfg.quarantine_threshold.clamp(1, max_attempts);
    let started_at = Instant::now();
    obs.progress.jobs_total.fetch_add(n, Ordering::Relaxed);

    let quarantine = Mutex::new(Quarantine::new(effective_threshold));
    let stats = Mutex::new(HarnessStats::default());
    let next = AtomicUsize::new(0);
    let board: Vec<Mutex<DeadlineSlot>> = (0..workers).map(|_| Mutex::new(None)).collect();
    let monitor_stop = AtomicBool::new(false);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, JobOutcome<R>)>();

    let mut slots: Vec<Option<JobOutcome<R>>> = (0..n).map(|_| None).collect();

    let at_ms = |t: Instant| t.duration_since(started_at).as_millis() as u64;
    let trace = |key: &JobKey, attempt: u32, phase: &str, detail: &str| {
        obs.tracer.emit(|| TraceEvent::Harness {
            at_ms: at_ms(Instant::now()),
            job: key.slug(),
            attempt,
            phase: phase.to_string(),
            detail: detail.to_string(),
        });
    };

    std::thread::scope(|scope| {
        // Monitor: cancels any attempt whose wall-clock budget expired,
        // and — on a shutdown request — cancels every in-flight attempt
        // so cooperative jobs stop (having checkpointed) at their next
        // interval boundary instead of draining their full budget.
        // Spawned unconditionally: with `obs.shutdown` unset the
        // shutdown source is the process-global SIGINT/SIGTERM flag,
        // which can flip at any moment.
        {
            let board = &board;
            let monitor_stop = &monitor_stop;
            let mut heartbeat = if cfg.heartbeat {
                Heartbeat::stderr()
            } else {
                Heartbeat::with_enabled(false)
            };
            scope.spawn(move || {
                while !monitor_stop.load(Ordering::SeqCst) {
                    let shutdown = obs.shutdown_requested();
                    for slot in board {
                        let mut slot = slot.lock();
                        if let Some((expires, token, hit)) = slot.as_ref() {
                            if expires.is_some_and(|at| Instant::now() >= at) {
                                hit.store(true, Ordering::Release);
                                token.cancel();
                                *slot = None;
                            } else if shutdown {
                                // Not a deadline: leave `hit` unset so
                                // the worker classifies the fallout as
                                // an interrupt, not a timeout.
                                token.cancel();
                                *slot = None;
                            }
                        }
                    }
                    // Live status line (TTY only, throttled inside
                    // `Heartbeat`); erased and silenced for the whole
                    // of a shutdown drain so Ctrl-C output stays clean.
                    if shutdown {
                        if let Some(erase) = heartbeat.clear() {
                            eprint!("{erase}");
                            let _ = std::io::stderr().flush();
                        }
                    } else {
                        let (jobs_done, jobs_total, cycles, cycles_total) = obs.progress.snapshot();
                        if let Some(line) = heartbeat.tick(
                            started_at.elapsed().as_secs_f64(),
                            jobs_done,
                            jobs_total,
                            cycles,
                            cycles_total,
                        ) {
                            eprint!("\r\x1b[K{line}");
                            let _ = std::io::stderr().flush();
                        }
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                if let Some(erase) = heartbeat.clear() {
                    eprint!("{erase}");
                    let _ = std::io::stderr().flush();
                }
            });
        }

        for worker_id in 0..workers {
            let tx = tx.clone();
            let items = &items;
            let f = &f;
            let next = &next;
            let quarantine = &quarantine;
            let stats = &stats;
            let board = &board;
            let trace = &trace;
            scope.spawn(move || {
                loop {
                    if obs.shutdown_requested() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= n {
                        break;
                    }
                    let (key, item) = &items[i];
                    let mut attempt = 0u32;
                    let outcome = loop {
                        attempt += 1;
                        if attempt > 1 {
                            obs.metrics.counter_add(C_RETRIES, 1);
                            stats.lock().retries += 1;
                            trace(key, attempt, "retried", "backoff elapsed, retrying");
                            if sleep_interruptible(cfg.backoff.delay_before(attempt), obs) {
                                // Shutdown mid-backoff: leave the job
                                // unfinished so a resume can retry it.
                                break JobOutcome::Skipped;
                            }
                        }

                        let cancel = CancelToken::new();
                        let deadline_hit = Arc::new(AtomicBool::new(false));
                        let ctx = JobCtx {
                            attempt,
                            cancel: cancel.clone(),
                            snapshot_every: cfg.snapshot_every,
                            selfcheck: cfg.selfcheck,
                            progress: Arc::clone(&obs.progress),
                            deadline_hit: Arc::clone(&deadline_hit),
                        };
                        *board[worker_id].lock() = Some((
                            cfg.deadline.map(|budget| Instant::now() + budget),
                            cancel,
                            Arc::clone(&deadline_hit),
                        ));
                        trace(key, attempt, "started", "");
                        let result = catch_unwind(AssertUnwindSafe(|| f(item, &ctx)));
                        *board[worker_id].lock() = None;

                        let result = match result {
                            Ok(Ok(value)) => Ok(value),
                            Ok(Err(_)) | Err(_) if ctx.deadline_expired() => {
                                // The deadline fired during this attempt;
                                // whatever error surfaced is downstream
                                // fallout of the cancellation.
                                Err(JobError::Deadline {
                                    limit_ms: cfg
                                        .deadline
                                        .map(|d| d.as_millis() as u64)
                                        .unwrap_or(0),
                                })
                            }
                            Ok(Err(err)) => Err(err),
                            Err(payload) => Err(JobError::from_panic(payload)),
                        };

                        match result {
                            Ok(value) => {
                                obs.metrics.counter_add(C_COMPLETED, 1);
                                stats.lock().completed += 1;
                                trace(key, attempt, "completed", "");
                                break JobOutcome::Completed {
                                    value,
                                    attempts: attempt,
                                    from_journal: false,
                                };
                            }
                            Err(err) if !ctx.deadline_expired() && obs.shutdown_requested() => {
                                // The monitor cancelled this attempt for
                                // the interrupt; the job is unfinished,
                                // not failed. Leave it skipped so a
                                // resume re-runs it — from its latest
                                // snapshot, if it wrote any.
                                trace(key, attempt, "interrupted", &err.to_string());
                                break JobOutcome::Skipped;
                            }
                            Err(err) => {
                                obs.metrics.counter_add(failure_counter(&err), 1);
                                stats.lock().count_failure(&err);
                                trace(key, attempt, "failed", &err.to_string());
                                let newly_quarantined = quarantine.lock().record_failure(key, &err);
                                if newly_quarantined || attempt >= max_attempts {
                                    obs.metrics.counter_add(C_QUARANTINED, 1);
                                    stats.lock().quarantined += 1;
                                    trace(key, attempt, "quarantined", &err.to_string());
                                    break JobOutcome::Quarantined {
                                        error: err,
                                        attempts: attempt,
                                    };
                                }
                            }
                        }
                    };
                    if tx.send((i, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Drain on the caller's thread so `on_complete` (the journal
        // hook) needs no synchronization of its own.
        while let Ok((idx, outcome)) = rx.recv() {
            if !matches!(outcome, JobOutcome::Skipped) {
                obs.progress.jobs_done.fetch_add(1, Ordering::Relaxed);
            }
            if let JobOutcome::Completed {
                value,
                from_journal: false,
                ..
            } = &outcome
            {
                on_complete(&items[idx].0, value);
            }
            slots[idx] = Some(outcome);
        }
        monitor_stop.store(true, Ordering::SeqCst);
    });

    let interrupted = obs.shutdown_requested();
    let mut stats = stats.into_inner();
    let quarantine = quarantine.into_inner().report();
    let jobs: Vec<(JobKey, JobOutcome<R>)> = items
        .into_iter()
        .zip(slots)
        .map(|((key, _), slot)| {
            let outcome = slot.unwrap_or(JobOutcome::Skipped);
            if matches!(outcome, JobOutcome::Skipped) {
                stats.skipped += 1;
                obs.metrics.counter_add(C_SKIPPED, 1);
            }
            (key, outcome)
        })
        .collect();

    CampaignOutcome {
        jobs,
        interrupted,
        stats,
        quarantine,
    }
}

/// [`run_supervised`] plus checkpoint–resume: completed jobs found in
/// `dir/journal.jsonl` are replayed from disk without re-simulating,
/// and every fresh completion is appended to the journal before the
/// campaign moves on — so an interrupted campaign re-run with the same
/// directory picks up exactly where it stopped.
pub fn run_journaled<T, R, F>(
    dir: &Path,
    items: Vec<(JobKey, T)>,
    f: F,
    cfg: &HarnessConfig,
    obs: &HarnessObservers,
) -> Result<CampaignOutcome<R>, JobError>
where
    T: Send + Sync,
    R: Send + Serialize + Deserialize,
    F: Fn(&T, &JobCtx) -> Result<R, JobError> + Sync,
{
    let journal = Mutex::new(Journal::open(dir)?);
    run_journaled_in(&journal, items, f, cfg, obs)
}

/// [`run_journaled`] against a journal the caller opened (and keeps a
/// handle to). Campaigns whose job closures write their own journal
/// records mid-run — `checkpointed` markers at snapshot boundaries —
/// share one `Mutex<Journal>` between this supervisor (which appends
/// `done` records as jobs complete) and the closures, so every append
/// lands in the same serialized stream.
pub fn run_journaled_in<T, R, F>(
    journal: &Mutex<Journal>,
    items: Vec<(JobKey, T)>,
    f: F,
    cfg: &HarnessConfig,
    obs: &HarnessObservers,
) -> Result<CampaignOutcome<R>, JobError>
where
    T: Send + Sync,
    R: Send + Serialize + Deserialize,
    F: Fn(&T, &JobCtx) -> Result<R, JobError> + Sync,
{
    let load = journal.lock().load_stats();
    if load.torn > 0 {
        obs.metrics.counter_add(C_JOURNAL_TORN, load.torn as u64);
    }
    if load.wrong_version > 0 {
        obs.metrics
            .counter_add(C_JOURNAL_WRONG_VERSION, load.wrong_version as u64);
    }

    let started_at = Instant::now();
    let _replay_span = obs.profiler.span("journal.replay");
    let mut replayed: Vec<(usize, JobKey, R)> = Vec::new();
    let mut fresh: Vec<(usize, (JobKey, T))> = Vec::new();
    for (idx, (key, item)) in items.into_iter().enumerate() {
        match journal.lock().decode::<R>(&key) {
            Some(Ok(value)) => {
                obs.metrics.counter_add(C_RESUMED, 1);
                obs.tracer.emit(|| TraceEvent::Harness {
                    at_ms: started_at.elapsed().as_millis() as u64,
                    job: key.slug(),
                    attempt: 0,
                    phase: "resumed".to_string(),
                    detail: "replayed from journal".to_string(),
                });
                replayed.push((idx, key, value));
            }
            // An undecodable payload is treated as absent: re-run it.
            Some(Err(_)) | None => fresh.push((idx, (key, item))),
        }
    }
    let resumed = replayed.len() as u64;
    drop(_replay_span);
    // Replayed jobs count as finished work for the heartbeat (their
    // cycle budgets are never declared, so ETA covers fresh jobs only).
    obs.progress
        .jobs_total
        .fetch_add(resumed as usize, Ordering::Relaxed);
    obs.progress
        .jobs_done
        .fetch_add(resumed as usize, Ordering::Relaxed);

    let fresh_indices: Vec<usize> = fresh.iter().map(|(idx, _)| *idx).collect();
    let fresh_items: Vec<(JobKey, T)> = fresh.into_iter().map(|(_, pair)| pair).collect();

    let sub = run_supervised(fresh_items, f, cfg, obs, |key, value: &R| {
        let _span = obs.profiler.span("journal.record");
        if journal.lock().record(key, value).is_err() {
            obs.metrics.counter_add(C_JOURNAL_WRITE_ERRORS, 1);
        }
    });

    // Reassemble into input order: journal replays and fresh outcomes
    // interleave exactly as the caller enumerated the items.
    let total = resumed as usize + sub.jobs.len();
    let mut slots: Vec<Option<(JobKey, JobOutcome<R>)>> = (0..total).map(|_| None).collect();
    for (idx, key, value) in replayed {
        slots[idx] = Some((
            key,
            JobOutcome::Completed {
                value,
                attempts: 0,
                from_journal: true,
            },
        ));
    }
    for (slot_idx, job) in fresh_indices.into_iter().zip(sub.jobs) {
        slots[slot_idx] = Some(job);
    }

    let mut stats = sub.stats;
    stats.resumed = resumed;
    Ok(CampaignOutcome {
        jobs: slots.into_iter().map(|s| s.expect("slot filled")).collect(),
        interrupted: sub.interrupted,
        stats,
        quarantine: sub.quarantine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::fnv1a;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::fs;
    use std::path::PathBuf;

    fn key(seed: u64) -> JobKey {
        JobKey::new("test", "unit", seed, fnv1a("supervisor-tests"))
    }

    fn items(n: u64) -> Vec<(JobKey, u64)> {
        (0..n).map(|s| (key(s), s)).collect()
    }

    fn obs_with_flag() -> (HarnessObservers, Arc<AtomicBool>) {
        let flag = Arc::new(AtomicBool::new(false));
        let obs = HarnessObservers {
            metrics: Metrics::new(),
            shutdown: Some(Arc::clone(&flag)),
            ..HarnessObservers::off()
        };
        (obs, flag)
    }

    fn fast_cfg() -> HarnessConfig {
        HarnessConfig {
            max_attempts: 3,
            backoff: Backoff::none(),
            quarantine_threshold: 3,
            jobs: Some(2),
            ..HarnessConfig::default()
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("sim-harness-supervisor")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn results_come_back_in_slot_order() {
        let (obs, _) = obs_with_flag();
        let out = run_supervised(
            items(8),
            |seed, _ctx| Ok::<u64, JobError>(seed * 2),
            &fast_cfg(),
            &obs,
            |_, _: &u64| {},
        );
        assert!(out.fully_completed());
        assert_eq!(out.exit_code(), 0);
        let values: Vec<u64> = out.values().into_iter().copied().collect();
        assert_eq!(values, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(out.stats.completed, 8);
    }

    #[test]
    fn ctx_carries_snapshot_policy() {
        let (obs, _) = obs_with_flag();
        let cfg = HarnessConfig {
            snapshot_every: Some(5_000),
            selfcheck: true,
            ..fast_cfg()
        };
        let out = run_supervised(
            items(1),
            |_seed, ctx: &JobCtx| {
                assert_eq!(ctx.snapshot_every, Some(5_000));
                assert!(ctx.selfcheck);
                Ok::<u64, JobError>(0)
            },
            &cfg,
            &obs,
            |_, _: &u64| {},
        );
        assert!(out.fully_completed());
    }

    #[test]
    fn campaign_progress_tracks_jobs_and_cycles() {
        let (obs, _) = obs_with_flag();
        let cfg = HarnessConfig {
            heartbeat: false,
            ..fast_cfg()
        };
        let out = run_supervised(
            items(4),
            |seed, ctx: &JobCtx| {
                // Simulate what a real job does: declare its cycle budget
                // up front, then feed cycle progress into the shared
                // counter as the run advances.
                ctx.progress.add_cycles_total(1_000);
                ctx.progress
                    .cycle_counter()
                    .fetch_add(1_000, Ordering::Relaxed);
                Ok::<u64, JobError>(*seed)
            },
            &cfg,
            &obs,
            |_, _: &u64| {},
        );
        assert!(out.fully_completed());
        let (done, total, cycles, cycles_total) = obs.progress.snapshot();
        assert_eq!((done, total), (4, 4));
        assert_eq!(cycles, 4_000);
        assert_eq!(cycles_total, 4_000);
    }

    #[test]
    fn panicking_job_is_quarantined_not_fatal() {
        let (obs, _) = obs_with_flag();
        let out = run_supervised(
            items(3),
            |seed: &u64, _ctx| {
                if *seed == 1 {
                    panic!("seed 1 explodes");
                }
                Ok::<u64, JobError>(*seed)
            },
            &fast_cfg(),
            &obs,
            |_, _: &u64| {},
        );
        assert!(!out.interrupted);
        assert_eq!(out.exit_code(), 2, "partial completion");
        assert_eq!(out.quarantine.len(), 1);
        assert_eq!(out.quarantine[0].key, key(1));
        assert!(matches!(
            out.quarantine[0].error,
            JobError::Panic { ref message } if message.contains("seed 1 explodes")
        ));
        assert_eq!(out.stats.completed, 2);
        assert_eq!(out.stats.quarantined, 1);
        assert_eq!(out.stats.panics, 3, "one per attempt");
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("harness.jobs_completed"), Some(2));
        assert_eq!(snap.counter("harness.failures.panic"), Some(3));
        assert_eq!(snap.counter("harness.jobs_quarantined"), Some(1));
    }

    #[test]
    fn flaky_job_succeeds_on_retry() {
        let (obs, _) = obs_with_flag();
        let attempts_seen = Mutex::new(HashMap::<u64, u32>::new());
        let out = run_supervised(
            items(4),
            |seed: &u64, ctx| {
                *attempts_seen.lock().entry(*seed).or_insert(0) += 1;
                if *seed == 2 && ctx.attempt < 3 {
                    return Err(JobError::Io {
                        detail: "transient".into(),
                    });
                }
                Ok::<u64, JobError>(*seed + 100)
            },
            &fast_cfg(),
            &obs,
            |_, _: &u64| {},
        );
        assert!(out.fully_completed());
        assert_eq!(out.values().len(), 4);
        assert_eq!(out.stats.retries, 2);
        assert_eq!(out.stats.io_errors, 2);
        assert_eq!(attempts_seen.lock()[&2], 3);
        match &out.jobs[2].1 {
            JobOutcome::Completed {
                attempts,
                from_journal,
                ..
            } => {
                assert_eq!(*attempts, 3);
                assert!(!from_journal);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("harness.retries"), Some(2));
    }

    #[test]
    fn deadline_cancels_overrunning_job() {
        let (obs, _) = obs_with_flag();
        let cfg = HarnessConfig {
            max_attempts: 1,
            backoff: Backoff::none(),
            quarantine_threshold: 1,
            deadline: Some(Duration::from_millis(60)),
            jobs: Some(1),
            ..HarnessConfig::default()
        };
        let out = run_supervised(
            vec![(key(0), 0u64)],
            |_seed, ctx: &JobCtx| {
                // A well-behaved job: polls its token like the pipeline
                // interval clock does, erroring out when cancelled.
                let start = Instant::now();
                while !ctx.cancel.is_cancelled() {
                    if start.elapsed() > Duration::from_secs(10) {
                        return Err(JobError::Diverged {
                            detail: "cancel never arrived".into(),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(JobError::Watchdog {
                    detail: "stopped early".into(),
                })
            },
            &cfg,
            &obs,
            |_, _: &u64| {},
        );
        assert_eq!(out.quarantine.len(), 1);
        assert!(
            matches!(out.quarantine[0].error, JobError::Deadline { limit_ms: 60 }),
            "deadline overrides the job's own error: {:?}",
            out.quarantine[0].error
        );
        assert_eq!(out.stats.deadlines, 1);
    }

    #[test]
    fn shutdown_drains_in_flight_and_skips_the_rest() {
        let (obs, flag) = obs_with_flag();
        let cfg = HarnessConfig {
            jobs: Some(1),
            ..fast_cfg()
        };
        let out = run_supervised(
            items(5),
            |seed: &u64, _ctx| {
                if *seed == 1 {
                    // Simulate Ctrl-C arriving while job 1 runs.
                    flag.store(true, Ordering::SeqCst);
                }
                Ok::<u64, JobError>(*seed)
            },
            &cfg,
            &obs,
            |_, _: &u64| {},
        );
        assert!(out.interrupted);
        assert_eq!(out.exit_code(), signal::EXIT_INTERRUPTED);
        // Jobs 0 and 1 finished (the in-flight job drains), 2..5 were
        // never claimed.
        assert_eq!(out.stats.completed, 2);
        assert_eq!(out.stats.skipped, 3);
        assert!(matches!(out.jobs[4].1, JobOutcome::Skipped));
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("harness.jobs_skipped"), Some(3));
    }

    #[test]
    fn journaled_campaign_resumes_without_rerunning() {
        let dir = scratch("resumes_without_rerunning");
        let cfg = fast_cfg();
        let runs = AtomicUsize::new(0);
        let job = |seed: &u64, _ctx: &JobCtx| {
            runs.fetch_add(1, Ordering::SeqCst);
            Ok::<u64, JobError>(seed * 7)
        };

        let (obs, _) = obs_with_flag();
        let first = run_journaled(&dir, items(4), job, &cfg, &obs).unwrap();
        assert!(first.fully_completed());
        assert_eq!(runs.load(Ordering::SeqCst), 4);

        let (obs2, _) = obs_with_flag();
        let second = run_journaled(&dir, items(4), job, &cfg, &obs2).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 4, "no job re-ran");
        assert_eq!(second.stats.resumed, 4);
        assert_eq!(second.stats.completed, 0);
        let firsts: Vec<u64> = first.values().into_iter().copied().collect();
        let seconds: Vec<u64> = second.values().into_iter().copied().collect();
        assert_eq!(firsts, seconds);
        assert!(second.jobs.iter().all(|(_, o)| matches!(
            o,
            JobOutcome::Completed {
                from_journal: true,
                ..
            }
        )));
        let snap = obs2.metrics.snapshot();
        assert_eq!(snap.counter("harness.jobs_resumed"), Some(4));
    }

    #[test]
    fn interrupted_campaign_resumes_to_identical_results() {
        let clean_dir = scratch("interrupt_clean");
        let int_dir = scratch("interrupt_resumed");
        let cfg = HarnessConfig {
            jobs: Some(1),
            ..fast_cfg()
        };
        let job = |seed: &u64, _ctx: &JobCtx| Ok::<u64, JobError>(seed.wrapping_mul(31) ^ 5);

        let (obs, _) = obs_with_flag();
        let clean = run_journaled(&clean_dir, items(6), job, &cfg, &obs).unwrap();

        // Interrupt after two completions.
        let (obs_int, flag) = obs_with_flag();
        let interrupted = run_journaled(
            &int_dir,
            items(6),
            |seed: &u64, ctx: &JobCtx| {
                if *seed == 1 {
                    flag.store(true, Ordering::SeqCst);
                }
                job(seed, ctx)
            },
            &cfg,
            &obs_int,
        )
        .unwrap();
        assert!(interrupted.interrupted);
        assert!(interrupted.stats.skipped > 0);

        // Resume against the same directory: journal replays the done
        // jobs, the rest run fresh, and the final values match the
        // uninterrupted campaign exactly.
        let (obs_res, _) = obs_with_flag();
        let resumed = run_journaled(&int_dir, items(6), job, &cfg, &obs_res).unwrap();
        assert!(resumed.fully_completed());
        assert_eq!(resumed.stats.resumed, 2);
        let clean_vals: Vec<u64> = clean.values().into_iter().copied().collect();
        let resumed_vals: Vec<u64> = resumed.values().into_iter().copied().collect();
        assert_eq!(clean_vals, resumed_vals);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        // Crash-tolerance: truncate the journal at ANY byte boundary
        // (simulating a crash mid-append) and the resumed campaign
        // still reconstructs a byte-identical final report.
        #[test]
        fn journal_truncated_anywhere_resumes_identically(cut in 0usize..600) {
            let dir = scratch(&format!("proptest_cut_{cut}"));
            let cfg = fast_cfg();
            let job = |seed: &u64, _ctx: &JobCtx| Ok::<u64, JobError>(seed * seed + 13);

            let (obs, _) = obs_with_flag();
            let clean = run_journaled(&dir, items(5), job, &cfg, &obs).unwrap();
            let clean_report = serde::json::to_string(
                &clean.values().into_iter().copied().collect::<Vec<u64>>(),
            );

            // Crash: the journal survives only up to `cut` bytes.
            let path = dir.join(Journal::FILE_NAME);
            let bytes = fs::read(&path).unwrap();
            let cut = cut.min(bytes.len());
            fs::write(&path, &bytes[..cut]).unwrap();

            let (obs2, _) = obs_with_flag();
            let resumed = run_journaled(&dir, items(5), job, &cfg, &obs2).unwrap();
            prop_assert!(resumed.fully_completed());
            let resumed_report = serde::json::to_string(
                &resumed.values().into_iter().copied().collect::<Vec<u64>>(),
            );
            prop_assert_eq!(clean_report, resumed_report);
        }
    }
}
