//! On-disk rotation of mid-run simulator snapshots.
//!
//! A [`SnapshotStore`] owns the snapshot files for one job (one
//! [`JobKey`](crate::JobKey) slug) inside a campaign directory. Writes
//! go through [`crate::fsutil::atomic_write_bytes`] (tmp + fsync +
//! rename + parent-dir fsync) so a crash can never leave a torn
//! snapshot under the final name, and the store keeps the last
//! [`SnapshotStore::KEEP`] generations so that even a snapshot that
//! lands on disk intact but fails its *content* checksum on resume
//! (bit rot, truncation by an external actor) still leaves an older
//! generation to fall back to.
//!
//! The store is deliberately ignorant of the snapshot payload format —
//! decoding (and therefore integrity checking) is the caller's
//! `decode` closure, which for pipeline snapshots is
//! `Pipeline::restore_snapshot` with its magic/schema/config-hash/CRC
//! validation. The store's job is purely: newest first, skip invalid,
//! typed [`JobError::Corrupt`] when nothing valid remains.

use std::fs;
use std::path::{Path, PathBuf};

use crate::error::JobError;
use crate::fsutil::atomic_write_bytes;

/// A successfully loaded snapshot plus where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedSnapshot<R> {
    /// Simulated cycle the snapshot was taken at (from the file name).
    pub cycle: u64,
    /// Whatever the caller's decode closure produced.
    pub value: R,
    /// Newer snapshot files that failed to decode and were skipped to
    /// reach this one. Zero on the happy path; non-zero means the
    /// resume silently lost `skipped_corrupt` checkpoint intervals.
    pub skipped_corrupt: usize,
}

/// Rotating snapshot directory for one job.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    slug: String,
}

impl SnapshotStore {
    /// Generations retained after each save. Two, not one: the freshest
    /// snapshot is the one most at risk (it was being written closest
    /// to any crash), so a fallback must always exist.
    pub const KEEP: usize = 2;

    /// File extension for snapshot files.
    pub const EXT: &'static str = "snap";

    /// Store for job `slug` under `dir/snapshots/`.
    pub fn new(dir: &Path, slug: &str) -> SnapshotStore {
        SnapshotStore {
            dir: dir.join("snapshots"),
            slug: slug.to_string(),
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path a snapshot at `cycle` lives at. Cycle counts are
    /// zero-padded so lexicographic and numeric order agree.
    pub fn path_for(&self, cycle: u64) -> PathBuf {
        self.dir
            .join(format!("{}.c{:015}.{}", self.slug, cycle, Self::EXT))
    }

    /// Persist `bytes` as the snapshot for `cycle`, then prune old
    /// generations down to [`Self::KEEP`].
    pub fn save(&self, cycle: u64, bytes: &[u8]) -> Result<PathBuf, JobError> {
        let path = self.path_for(cycle);
        atomic_write_bytes(&path, bytes).map_err(|e| JobError::Io {
            detail: format!("writing snapshot {}: {e}", path.display()),
        })?;
        self.prune()?;
        Ok(path)
    }

    /// All snapshot files for this slug, newest (highest cycle) first.
    pub fn list(&self) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let prefix = format!("{}.c", self.slug);
        let suffix = format!(".{}", Self::EXT);
        let mut found: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name().into_string().ok()?;
                let digits = name.strip_prefix(&prefix)?.strip_suffix(&suffix)?;
                let cycle: u64 = digits.parse().ok()?;
                Some((cycle, entry.path()))
            })
            .collect();
        found.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        found
    }

    /// Load the newest snapshot that `decode` accepts, skipping (not
    /// deleting) newer files that fail. Returns:
    ///
    /// * `Ok(None)` — no snapshot files exist; start from cycle 0.
    /// * `Ok(Some(loaded))` — a valid snapshot; `skipped_corrupt > 0`
    ///   when newer generations had to be skipped to find it.
    /// * `Err(JobError::Corrupt)` — snapshots exist but every one of
    ///   them failed to decode; resuming would silently replay from
    ///   scratch, so the caller must decide that explicitly.
    pub fn load_latest_valid<R>(
        &self,
        mut decode: impl FnMut(&[u8]) -> Result<R, String>,
    ) -> Result<Option<LoadedSnapshot<R>>, JobError> {
        let files = self.list();
        if files.is_empty() {
            return Ok(None);
        }
        let mut failures: Vec<String> = Vec::new();
        for (cycle, path) in &files {
            let verdict = match fs::read(path) {
                Ok(bytes) => decode(&bytes),
                // An unreadable file is as useless as a corrupt one for
                // resuming; fall through to the next generation.
                Err(e) => Err(format!("read failed: {e}")),
            };
            match verdict {
                Ok(value) => {
                    return Ok(Some(LoadedSnapshot {
                        cycle: *cycle,
                        value,
                        skipped_corrupt: failures.len(),
                    }))
                }
                Err(why) => failures.push(format!("{} (cycle {cycle}): {why}", path.display())),
            }
        }
        Err(JobError::Corrupt {
            detail: format!(
                "all {} snapshot(s) for {} are invalid: {}",
                failures.len(),
                self.slug,
                failures.join("; ")
            ),
        })
    }

    /// Remove every snapshot file for this slug (a completed job's
    /// snapshots are dead weight once its final result is journaled).
    pub fn clear(&self) -> Result<(), JobError> {
        for (_, path) in self.list() {
            fs::remove_file(&path).map_err(|e| JobError::Io {
                detail: format!("removing snapshot {}: {e}", path.display()),
            })?;
        }
        Ok(())
    }

    fn prune(&self) -> Result<(), JobError> {
        for (_, path) in self.list().into_iter().skip(Self::KEEP) {
            fs::remove_file(&path).map_err(|e| JobError::Io {
                detail: format!("pruning snapshot {}: {e}", path.display()),
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sim-harness-snapshot").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Toy "format": 8-byte payload, last byte is a xor checksum of the
    /// first seven. Stands in for the real container's CRC.
    fn encode(body: [u8; 7]) -> Vec<u8> {
        let check = body.iter().fold(0u8, |a, b| a ^ b);
        let mut v = body.to_vec();
        v.push(check);
        v
    }

    fn decode(bytes: &[u8]) -> Result<[u8; 7], String> {
        if bytes.len() != 8 {
            return Err(format!("bad length {}", bytes.len()));
        }
        let body: [u8; 7] = bytes[..7].try_into().unwrap();
        if body.iter().fold(0u8, |a, b| a ^ b) != bytes[7] {
            return Err("checksum mismatch".to_string());
        }
        Ok(body)
    }

    #[test]
    fn empty_store_loads_none() {
        let dir = scratch("empty_store_loads_none");
        let store = SnapshotStore::new(&dir, "job-a");
        assert!(store.list().is_empty());
        assert!(store.load_latest_valid(decode).unwrap().is_none());
    }

    #[test]
    fn saves_rotate_keeping_last_two() {
        let dir = scratch("saves_rotate");
        let store = SnapshotStore::new(&dir, "job-a");
        for cycle in [10_000u64, 20_000, 30_000] {
            store.save(cycle, &encode([cycle as u8; 7])).unwrap();
        }
        let cycles: Vec<u64> = store.list().into_iter().map(|(c, _)| c).collect();
        assert_eq!(cycles, vec![30_000, 20_000], "newest first, pruned to 2");

        let loaded = store.load_latest_valid(decode).unwrap().unwrap();
        assert_eq!(loaded.cycle, 30_000);
        assert_eq!(loaded.skipped_corrupt, 0);
        assert_eq!(loaded.value, [48u8; 7]); // 30_000 as u8
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = scratch("corrupt_falls_back");
        let store = SnapshotStore::new(&dir, "job-a");
        store.save(10_000, &encode([1; 7])).unwrap();
        store.save(20_000, &encode([2; 7])).unwrap();

        // Flip one bit in the newest snapshot.
        let newest = store.path_for(20_000);
        let mut bytes = fs::read(&newest).unwrap();
        bytes[3] ^= 0x10;
        fs::write(&newest, &bytes).unwrap();

        let loaded = store.load_latest_valid(decode).unwrap().unwrap();
        assert_eq!(loaded.cycle, 10_000, "fell back past the corrupt file");
        assert_eq!(loaded.skipped_corrupt, 1);
        assert_eq!(loaded.value, [1; 7]);
    }

    #[test]
    fn all_corrupt_is_a_typed_error() {
        let dir = scratch("all_corrupt");
        let store = SnapshotStore::new(&dir, "job-a");
        store.save(10_000, &encode([1; 7])).unwrap();
        store.save(20_000, &encode([2; 7])).unwrap();
        for cycle in [10_000u64, 20_000] {
            let path = store.path_for(cycle);
            let mut bytes = fs::read(&path).unwrap();
            bytes[0] ^= 0x01;
            fs::write(&path, &bytes).unwrap();
        }
        let err = store.load_latest_valid(decode).unwrap_err();
        assert!(
            matches!(err, JobError::Corrupt { ref detail } if detail.contains("checksum mismatch")),
            "expected Corrupt listing the failures, got {err:?}"
        );
    }

    #[test]
    fn stores_for_different_slugs_are_disjoint() {
        let dir = scratch("disjoint_slugs");
        let a = SnapshotStore::new(&dir, "job-a");
        let b = SnapshotStore::new(&dir, "job-b");
        a.save(10_000, &encode([7; 7])).unwrap();
        assert!(b.list().is_empty());
        assert!(b.load_latest_valid(decode).unwrap().is_none());
        assert_eq!(a.list().len(), 1);
    }

    #[test]
    fn clear_removes_only_this_slug() {
        let dir = scratch("clear_removes");
        let a = SnapshotStore::new(&dir, "job-a");
        let b = SnapshotStore::new(&dir, "job-b");
        a.save(10_000, &encode([1; 7])).unwrap();
        b.save(10_000, &encode([2; 7])).unwrap();
        a.clear().unwrap();
        assert!(a.list().is_empty());
        assert_eq!(b.list().len(), 1);
    }
}
