//! The typed failure taxonomy of supervised jobs.

use serde::{Deserialize, Serialize};

/// Why one job attempt failed. The taxonomy drives both policy (which
/// failures are worth retrying) and accounting (each kind has its own
/// `harness.*` counter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobError {
    /// The job's closure panicked; `message` is the downcast payload.
    Panic { message: String },
    /// The wall-clock deadline expired and the job was cancelled
    /// through its cooperative token.
    Deadline { limit_ms: u64 },
    /// The simulation tripped its commit-starvation watchdog or cycle
    /// ceiling (simulated-time hang, as opposed to host-time overrun).
    Watchdog { detail: String },
    /// The job produced a result that failed its own consistency check
    /// (e.g. a digest mismatch against a golden run).
    Diverged { detail: String },
    /// Filesystem or serialization failure.
    Io { detail: String },
    /// Persisted state (a checkpoint snapshot, typically) failed its
    /// integrity check — checksum mismatch, truncation, or an invariant
    /// violation caught while decoding. Distinct from `Io` because the
    /// bytes were *readable* but wrong, which points at torn writes or
    /// bit rot rather than a filesystem error, and because recovery
    /// differs: fall back to an older snapshot instead of retrying.
    Corrupt { detail: String },
}

impl JobError {
    /// Stable, short kind label (metric suffixes, trace details).
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panic { .. } => "panic",
            JobError::Deadline { .. } => "deadline",
            JobError::Watchdog { .. } => "watchdog",
            JobError::Diverged { .. } => "diverged",
            JobError::Io { .. } => "io",
            JobError::Corrupt { .. } => "corrupt",
        }
    }

    /// Extract a printable message from a `catch_unwind` payload.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> JobError {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        JobError::Panic { message }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panic { message } => write!(f, "panic: {message}"),
            JobError::Deadline { limit_ms } => {
                write!(f, "deadline: exceeded {limit_ms} ms wall clock")
            }
            JobError::Watchdog { detail } => write!(f, "watchdog: {detail}"),
            JobError::Diverged { detail } => write!(f, "diverged: {detail}"),
            JobError::Io { detail } => write!(f, "io: {detail}"),
            JobError::Corrupt { detail } => write!(f, "corrupt: {detail}"),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_displayed() {
        let cases = [
            (
                JobError::Panic {
                    message: "boom".into(),
                },
                "panic",
            ),
            (JobError::Deadline { limit_ms: 500 }, "deadline"),
            (
                JobError::Watchdog {
                    detail: "no commit for 20000 cycles".into(),
                },
                "watchdog",
            ),
            (
                JobError::Diverged {
                    detail: "digest mismatch".into(),
                },
                "diverged",
            ),
            (
                JobError::Io {
                    detail: "disk full".into(),
                },
                "io",
            ),
            (
                JobError::Corrupt {
                    detail: "snapshot checksum mismatch".into(),
                },
                "corrupt",
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            assert!(err.to_string().starts_with(kind), "{err}");
            let text = serde::json::to_string(&err);
            let back: JobError = serde::json::from_str(&text).unwrap();
            assert_eq!(back, err);
        }
    }

    #[test]
    fn panic_payloads_downcast() {
        let err = JobError::from_panic(Box::new("static str"));
        assert_eq!(
            err,
            JobError::Panic {
                message: "static str".into()
            }
        );
        let err = JobError::from_panic(Box::new(String::from("owned")));
        assert_eq!(
            err,
            JobError::Panic {
                message: "owned".into()
            }
        );
        let err = JobError::from_panic(Box::new(42u32));
        assert!(matches!(err, JobError::Panic { message } if message.contains("non-string")));
    }
}
