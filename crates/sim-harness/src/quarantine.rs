//! Quarantine registry: sideline jobs that keep failing so the rest of
//! the campaign can complete.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::JobError;
use crate::journal::JobKey;

/// One quarantined job, as reported in the campaign manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    pub key: JobKey,
    /// Total failed attempts before quarantine.
    pub failures: u32,
    /// The last error observed — usually the most informative one.
    pub error: JobError,
}

/// Tracks per-job failure counts and quarantines a job once it reaches
/// `threshold` failures. A quarantined job is never retried again in
/// this campaign; it appears in [`Quarantine::report`] instead of
/// silently vanishing from the results.
#[derive(Debug)]
pub struct Quarantine {
    threshold: u32,
    counts: HashMap<JobKey, u32>,
    entries: Vec<QuarantineEntry>,
}

impl Quarantine {
    /// `threshold` is clamped to at least 1 (a threshold of 0 would
    /// quarantine jobs that never failed).
    pub fn new(threshold: u32) -> Quarantine {
        Quarantine {
            threshold: threshold.max(1),
            counts: HashMap::new(),
            entries: Vec::new(),
        }
    }

    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Record one failed attempt. Returns `true` when this failure
    /// crosses the threshold and the job becomes newly quarantined.
    pub fn record_failure(&mut self, key: &JobKey, err: &JobError) -> bool {
        let count = self.counts.entry(key.clone()).or_insert(0);
        *count += 1;
        if *count == self.threshold {
            self.entries.push(QuarantineEntry {
                key: key.clone(),
                failures: *count,
                error: err.clone(),
            });
            true
        } else {
            false
        }
    }

    pub fn is_quarantined(&self, key: &JobKey) -> bool {
        self.counts
            .get(key)
            .map(|c| *c >= self.threshold)
            .unwrap_or(false)
    }

    pub fn failures(&self, key: &JobKey) -> u32 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Quarantined jobs in the order they were quarantined.
    pub fn report(&self) -> Vec<QuarantineEntry> {
        self.entries.clone()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JobKey;

    fn key(seed: u64) -> JobKey {
        JobKey::new("fig1", "base", seed, 0)
    }

    fn err() -> JobError {
        JobError::Panic {
            message: "boom".into(),
        }
    }

    #[test]
    fn quarantines_at_threshold() {
        let mut q = Quarantine::new(3);
        assert!(!q.record_failure(&key(1), &err()));
        assert!(!q.is_quarantined(&key(1)));
        assert!(!q.record_failure(&key(1), &err()));
        assert!(q.record_failure(&key(1), &err())); // third strike
        assert!(q.is_quarantined(&key(1)));
        // Further failures don't re-report it as newly quarantined.
        assert!(!q.record_failure(&key(1), &err()));
        assert_eq!(q.failures(&key(1)), 4);
        assert_eq!(q.report().len(), 1);
        assert_eq!(q.report()[0].failures, 3);
    }

    #[test]
    fn jobs_are_tracked_independently() {
        let mut q = Quarantine::new(2);
        q.record_failure(&key(1), &err());
        q.record_failure(&key(2), &err());
        assert!(!q.is_quarantined(&key(1)));
        assert!(!q.is_quarantined(&key(2)));
        assert!(q.record_failure(&key(2), &err()));
        assert!(q.is_quarantined(&key(2)));
        assert!(!q.is_quarantined(&key(1)));
    }

    #[test]
    fn threshold_zero_clamps_to_one() {
        let mut q = Quarantine::new(0);
        assert_eq!(q.threshold(), 1);
        assert!(q.record_failure(&key(1), &err()));
        assert!(q.is_quarantined(&key(1)));
    }

    #[test]
    fn entry_records_last_error_kind() {
        let mut q = Quarantine::new(1);
        let e = JobError::Deadline { limit_ms: 100 };
        q.record_failure(&key(9), &e);
        let report = q.report();
        assert_eq!(report[0].error, e);
        assert_eq!(report[0].key, key(9));
    }
}
