//! Exponential backoff schedule for job retries.

use std::time::Duration;

/// Exponential backoff policy: the delay before attempt `n` (n >= 2) is
/// `base_ms * factor^(n-2)`, saturating at `cap_ms`. Attempt 1 never
/// waits — the schedule only spaces *retries*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry (attempt 2), in milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per further retry.
    pub factor: u32,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
}

impl Backoff {
    /// The default campaign policy: 250 ms, doubling, capped at 8 s.
    pub fn standard() -> Backoff {
        Backoff {
            base_ms: 250,
            factor: 2,
            cap_ms: 8_000,
        }
    }

    /// No waiting between retries (tests, fast-failing campaigns).
    pub fn none() -> Backoff {
        Backoff {
            base_ms: 0,
            factor: 1,
            cap_ms: 0,
        }
    }

    /// Delay to sleep *before* starting `attempt` (1-based). Attempt 1
    /// is the initial try and gets no delay; attempt 2 waits `base_ms`;
    /// each later attempt multiplies by `factor`, saturating at
    /// `cap_ms`. All arithmetic saturates rather than overflowing.
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let mut delay = self.base_ms;
        for _ in 0..attempt.saturating_sub(2) {
            delay = delay.saturating_mul(self.factor as u64);
            if delay >= self.cap_ms {
                break;
            }
        }
        Duration::from_millis(delay.min(self.cap_ms))
    }
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_schedule_doubles_until_cap() {
        let b = Backoff::standard();
        assert_eq!(b.delay_before(1), Duration::ZERO);
        assert_eq!(b.delay_before(2), Duration::from_millis(250));
        assert_eq!(b.delay_before(3), Duration::from_millis(500));
        assert_eq!(b.delay_before(4), Duration::from_millis(1_000));
        assert_eq!(b.delay_before(5), Duration::from_millis(2_000));
        assert_eq!(b.delay_before(6), Duration::from_millis(4_000));
        assert_eq!(b.delay_before(7), Duration::from_millis(8_000));
        // Saturated at the cap from here on.
        assert_eq!(b.delay_before(8), Duration::from_millis(8_000));
        assert_eq!(b.delay_before(60), Duration::from_millis(8_000));
    }

    #[test]
    fn none_never_waits() {
        let b = Backoff::none();
        for attempt in 0..10 {
            assert_eq!(b.delay_before(attempt), Duration::ZERO);
        }
    }

    #[test]
    fn huge_attempts_do_not_overflow() {
        let b = Backoff {
            base_ms: u64::MAX / 2,
            factor: u32::MAX,
            cap_ms: u64::MAX,
        };
        // Must not panic in debug builds (overflow checks are on).
        let d = b.delay_before(u32::MAX);
        assert!(d >= Duration::from_millis(u64::MAX / 2));
    }
}
