//! Deterministic checkpoint/restore substrate.
//!
//! Long SMT simulations are preemptible work: a campaign job that hits
//! its wall-clock deadline or a SIGTERM should park its simulated
//! cycles on disk, not discard them. This crate is the serialization
//! substrate that makes that possible without dragging in an external
//! serialization framework (the build environment is offline):
//!
//! * [`Snap`] — a minimal save/load trait over a little-endian binary
//!   codec ([`SnapWriter`] / [`SnapReader`]). Implemented here for
//!   primitives, tuples, arrays, `Option`, `Vec`, `VecDeque`,
//!   `String`; simulator crates implement it for their own state.
//! * A **snapshot container** ([`write_container`] /
//!   [`read_container`]): magic, schema version, config-hash binding,
//!   cycle stamp, and a CRC32 over everything after the magic. A snapshot
//!   with any flipped bit fails the CRC and is rejected with a typed
//!   [`SnapError`]; a snapshot from a different machine/workload
//!   configuration fails the config-hash binding. Restores never
//!   silently accept mismatched state.
//!
//! The codec is deliberately positional (no field tags): snapshots are
//! written and read by the same binary, bound by `SNAPSHOT_SCHEMA_VERSION`,
//! so self-description would buy nothing and cost determinism-relevant
//! bytes. Everything is little-endian and bit-exact — `f64` round-trips
//! through `to_bits` so restored accumulators are *identical*, not just
//! approximately equal, which the resume-identity guarantee requires.

use std::collections::VecDeque;

/// Bump when the serialized layout of any snapshotted structure
/// changes. Restore rejects other versions with
/// [`SnapError::SchemaMismatch`] rather than misinterpreting bytes.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// Leading magic of a snapshot container file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SMTSNAP\x01";

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// Reader ran past the end of the payload (torn or truncated data).
    Eof,
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// Container written by a different snapshot schema.
    SchemaMismatch { found: u32, expected: u32 },
    /// Container written under a different machine/workload config.
    ConfigMismatch { found: u64, expected: u64 },
    /// CRC32 over the container body does not match — at least one bit
    /// of the file differs from what was written.
    ChecksumMismatch { found: u32, expected: u32 },
    /// Payload decoded but a value was structurally impossible
    /// (bad enum tag, occupancy above capacity, ...).
    Corrupt(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Eof => write!(f, "unexpected end of snapshot data"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::SchemaMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot schema v{found}, this binary expects v{expected}"
                )
            }
            SnapError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot bound to config {found:#018x}, run uses {expected:#018x}"
            ),
            SnapError::ChecksumMismatch { found, expected } => write!(
                f,
                "snapshot checksum {found:#010x} != computed {expected:#010x} (corrupt file)"
            ),
            SnapError::Corrupt(detail) => write!(f, "corrupt snapshot payload: {detail}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only little-endian byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Serialize any [`Snap`] value (convenience for call chains).
    pub fn put<T: Snap>(&mut self, v: &T) {
        v.save(self);
    }
}

/// Positional reader over a snapshot payload. Every read is
/// bounds-checked; running off the end is [`SnapError::Eof`], never a
/// panic — torn files must surface as typed corruption.
#[derive(Debug)]
pub struct SnapReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(data: &'a [u8]) -> SnapReader<'a> {
        SnapReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take_bytes(1)?[0])
    }

    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take_bytes(2)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    /// Deserialize any [`Snap`] value (convenience for call chains).
    pub fn get<T: Snap>(&mut self) -> Result<T, SnapError> {
        T::load(self)
    }

    /// A collection length; rejects lengths that could not possibly fit
    /// in the remaining payload so a corrupt length fails fast instead
    /// of attempting a giant allocation.
    pub fn get_len(&mut self) -> Result<usize, SnapError> {
        let n = self.get_u64()? as usize;
        if n > self.remaining() {
            return Err(SnapError::Corrupt(format!(
                "collection length {n} exceeds remaining {} payload bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

/// Bit-exact save/load of one value through the snapshot codec.
pub trait Snap: Sized {
    fn save(&self, w: &mut SnapWriter);
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snap for u8 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u8()
    }
}

impl Snap for u16 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u16(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u16()
    }
}

impl Snap for u32 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u32(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u32()
    }
}

impl Snap for u64 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.get_u64()
    }
}

impl Snap for usize {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("usize overflow: {v}")))
    }
}

impl Snap for i64 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.get_u64()? as i64)
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.to_bits());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(r.get_u64()?))
    }
}

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(*self as u8);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Corrupt(format!("bad bool tag {other}"))),
        }
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let bytes = r.take_bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("non-UTF-8 string".into()))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            other => Err(SnapError::Corrupt(format!("bad Option tag {other}"))),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_len()?;
        let mut out = VecDeque::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Corrupt("array length".into()))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the checksum every snapshot container
// carries. Table-driven; the table is built at compile time.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Snapshot container: magic | body | crc32(body), where
// body = schema u32 | config_hash u64 | cycle u64 | payload_len u64 | payload.
// ---------------------------------------------------------------------------

/// Header fields of a decoded snapshot container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    pub schema: u32,
    pub config_hash: u64,
    /// Simulated cycle at which the snapshot was taken.
    pub cycle: u64,
}

/// Wrap a serialized payload in the checksummed container format.
pub fn write_container(config_hash: u64, cycle: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(28 + payload.len());
    body.extend_from_slice(&SNAPSHOT_SCHEMA_VERSION.to_le_bytes());
    body.extend_from_slice(&config_hash.to_le_bytes());
    body.extend_from_slice(&cycle.to_le_bytes());
    body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    body.extend_from_slice(payload);
    let crc = crc32(&body);
    let mut out = Vec::with_capacity(8 + body.len() + 4);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validate and unwrap a snapshot container. The CRC is checked
/// *before* any field is trusted, so a file with any flipped bit —
/// header or payload — is rejected, never partially interpreted.
/// `expected_config_hash` binds the snapshot to the current run
/// configuration.
pub fn read_container(
    data: &[u8],
    expected_config_hash: u64,
) -> Result<(SnapshotHeader, &[u8]), SnapError> {
    if data.len() < 8 || data[..8] != SNAPSHOT_MAGIC {
        return Err(SnapError::BadMagic);
    }
    if data.len() < 8 + 28 + 4 {
        return Err(SnapError::Eof);
    }
    let body = &data[8..data.len() - 4];
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    let computed = crc32(body);
    if stored_crc != computed {
        return Err(SnapError::ChecksumMismatch {
            found: stored_crc,
            expected: computed,
        });
    }
    let mut r = SnapReader::new(body);
    let schema = r.get_u32()?;
    if schema != SNAPSHOT_SCHEMA_VERSION {
        return Err(SnapError::SchemaMismatch {
            found: schema,
            expected: SNAPSHOT_SCHEMA_VERSION,
        });
    }
    let config_hash = r.get_u64()?;
    if config_hash != expected_config_hash {
        return Err(SnapError::ConfigMismatch {
            found: config_hash,
            expected: expected_config_hash,
        });
    }
    let cycle = r.get_u64()?;
    let payload_len = r.get_u64()? as usize;
    if payload_len != r.remaining() {
        return Err(SnapError::Corrupt(format!(
            "payload length {payload_len} != {} bytes present",
            r.remaining()
        )));
    }
    let payload = r.take_bytes(payload_len)?;
    Ok((
        SnapshotHeader {
            schema,
            config_hash,
            cycle,
        },
        payload,
    ))
}

/// Read just the cycle stamp of a valid container (used to order
/// snapshot files without decoding payloads). Fails on any corruption,
/// exactly like [`read_container`], but does not check the config hash.
pub fn peek_cycle(data: &[u8]) -> Result<u64, SnapError> {
    if data.len() < 8 || data[..8] != SNAPSHOT_MAGIC {
        return Err(SnapError::BadMagic);
    }
    if data.len() < 8 + 28 + 4 {
        return Err(SnapError::Eof);
    }
    let body = &data[8..data.len() - 4];
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    let computed = crc32(body);
    if stored_crc != computed {
        return Err(SnapError::ChecksumMismatch {
            found: stored_crc,
            expected: computed,
        });
    }
    let mut r = SnapReader::new(body);
    let _schema = r.get_u32()?;
    let _config_hash = r.get_u64()?;
    r.get_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_bit_exact() {
        let mut w = SnapWriter::new();
        w.put(&0xABu8);
        w.put(&0xBEEFu16);
        w.put(&0xDEAD_BEEFu32);
        w.put(&u64::MAX);
        w.put(&usize::MAX);
        w.put(&(-42i64));
        w.put(&f64::NAN);
        w.put(&(-0.0f64));
        w.put(&true);
        w.put(&String::from("naïve"));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get::<u8>().unwrap(), 0xAB);
        assert_eq!(r.get::<u16>().unwrap(), 0xBEEF);
        assert_eq!(r.get::<u32>().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get::<u64>().unwrap(), u64::MAX);
        assert_eq!(r.get::<usize>().unwrap(), usize::MAX);
        assert_eq!(r.get::<i64>().unwrap(), -42);
        // f64 must round-trip by bits, including NaN payload and -0.0.
        assert_eq!(r.get::<f64>().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get::<f64>().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get::<bool>().unwrap());
        assert_eq!(r.get::<String>().unwrap(), "naïve");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn containers_roundtrip() {
        let mut w = SnapWriter::new();
        w.put(&vec![1u64, 2, 3]);
        w.put(&Some(7u32));
        w.put(&Option::<u32>::None);
        w.put(&[9u8; 4]);
        w.put(&(1u32, 2u64));
        let mut dq = VecDeque::new();
        dq.push_back(5u16);
        dq.push_back(6u16);
        w.put(&dq);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get::<Option<u32>>().unwrap(), Some(7));
        assert_eq!(r.get::<Option<u32>>().unwrap(), None);
        assert_eq!(r.get::<[u8; 4]>().unwrap(), [9; 4]);
        assert_eq!(r.get::<(u32, u64)>().unwrap(), (1, 2));
        assert_eq!(r.get::<VecDeque<u16>>().unwrap(), dq);
    }

    #[test]
    fn truncated_reads_are_eof_not_panic() {
        let mut w = SnapWriter::new();
        w.put(&0xFFFF_FFFFu32);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..2]);
        assert_eq!(r.get::<u32>(), Err(SnapError::Eof));
    }

    #[test]
    fn absurd_collection_length_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // claimed length far past payload end
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(r.get::<Vec<u8>>(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn bad_enum_tags_rejected() {
        let mut r = SnapReader::new(&[9]);
        assert!(matches!(r.get::<bool>(), Err(SnapError::Corrupt(_))));
        let mut r = SnapReader::new(&[7, 0, 0, 0, 0]);
        assert!(matches!(r.get::<Option<u32>>(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_roundtrip_and_header() {
        let payload = b"simulator state bytes";
        let file = write_container(0x1234_5678_9ABC_DEF0, 40_000, payload);
        let (hdr, body) = read_container(&file, 0x1234_5678_9ABC_DEF0).unwrap();
        assert_eq!(hdr.schema, SNAPSHOT_SCHEMA_VERSION);
        assert_eq!(hdr.cycle, 40_000);
        assert_eq!(body, payload);
        assert_eq!(peek_cycle(&file).unwrap(), 40_000);
    }

    #[test]
    fn every_flipped_bit_is_rejected() {
        let file = write_container(42, 10_000, b"payload");
        for byte in 0..file.len() {
            for bit in 0..8 {
                let mut bad = file.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    read_container(&bad, 42).is_err(),
                    "flip at byte {byte} bit {bit} was silently accepted"
                );
            }
        }
    }

    #[test]
    fn config_hash_binding_enforced() {
        let file = write_container(1, 0, b"x");
        assert!(matches!(
            read_container(&file, 2),
            Err(SnapError::ConfigMismatch {
                found: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn truncated_container_rejected() {
        let file = write_container(1, 0, b"some payload");
        for cut in [0, 7, 8, 20, file.len() - 5, file.len() - 1] {
            assert!(
                read_container(&file[..cut], 1).is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn wrong_magic_is_bad_magic() {
        let mut file = write_container(1, 0, b"x");
        file[0] = b'X';
        assert_eq!(read_container(&file, 1).unwrap_err(), SnapError::BadMagic);
        assert_eq!(peek_cycle(&file).unwrap_err(), SnapError::BadMagic);
    }
}
