//! Property tests for the pipeline containers and policy algebra.

use micro_isa::OpClass;
use proptest::prelude::*;
use smt_sim::fu::FuPools;
use smt_sim::iq::IssueQueue;
use smt_sim::issue::{IssuePolicy, OldestFirst, ReadyInst};
use smt_sim::layout;

fn arb_ready(n: usize) -> impl Strategy<Value = Vec<ReadyInst>> {
    prop::collection::vec((0u64..10_000, prop::bool::ANY), 0..n).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (seq, ace))| ReadyInst {
                id: i,
                seq: seq * 16 + i as u64, // unique ages
                tid: (i % 4) as u8,
                op: OpClass::IAlu,
                ace_hint: ace,
                wrong_path: false,
            })
            .collect()
    })
}

proptest! {
    /// Oldest-first is a permutation sorted by age.
    #[test]
    fn oldest_first_is_an_age_sorted_permutation(ready in arb_ready(64)) {
        let mut sorted = ready.clone();
        OldestFirst.prioritize(&mut sorted);
        prop_assert_eq!(sorted.len(), ready.len());
        for w in sorted.windows(2) {
            prop_assert!(w[0].seq <= w[1].seq);
        }
        let mut a: Vec<u64> = ready.iter().map(|r| r.seq).collect();
        let mut b: Vec<u64> = sorted.iter().map(|r| r.seq).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The issue-queue container tracks occupancy, membership and the
    /// hint-bit counter exactly through arbitrary insert/remove
    /// interleavings.
    #[test]
    fn issue_queue_bookkeeping(ops in prop::collection::vec((0usize..32, prop::bool::ANY), 1..200)) {
        let mut iq = IssueQueue::new(32);
        let mut resident: Vec<(usize, bool)> = Vec::new();
        for (id, ace) in ops {
            if let Some(pos) = resident.iter().position(|&(i, _)| i == id) {
                let (_, was_ace) = resident.remove(pos);
                iq.remove(id, was_ace, (id % 4) as u8);
            } else if !iq.is_full() {
                iq.insert(id, ace, (id % 4) as u8);
                resident.push((id, ace));
            }
            prop_assert_eq!(iq.len(), resident.len());
            let expect_bits: u64 = resident
                .iter()
                .map(|&(_, a)| layout::iq_ace_bits(a) as u64)
                .sum();
            prop_assert_eq!(iq.hint_bits_resident(), expect_bits);
            let expect_t0 = resident.iter().filter(|&&(i, _)| i % 4 == 0).count();
            prop_assert_eq!(iq.thread_occupancy(0), expect_t0);
        }
    }

    /// Function-unit pools never oversubscribe: within one cycle, a pool
    /// grants at most its unit count.
    #[test]
    fn fu_pools_never_oversubscribe(requests in prop::collection::vec(0usize..5, 1..64)) {
        let sizes = [3usize, 2, 2, 3, 1];
        let ops = [OpClass::IAlu, OpClass::IMul, OpClass::Load, OpClass::FAlu, OpClass::FSqrt];
        let mut fu = FuPools::new(sizes);
        let mut granted = [0usize; 5];
        for pool in requests {
            if fu.can_issue(ops[pool], 0) {
                fu.issue(ops[pool], 0);
                granted[pool] += 1;
            }
        }
        for i in 0..5 {
            prop_assert!(granted[i] <= sizes[i], "pool {i}: {} > {}", granted[i], sizes[i]);
        }
    }
}
