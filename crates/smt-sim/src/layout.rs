//! Bit layout of an issue-queue entry, shared by the pipeline's online
//! hint-bit counter (DVM's ACE-bit counter of Section 5.1) and the
//! ground-truth AVF accounting in the `avf` crate.
//!
//! Following Mukherjee et al.'s bit-level methodology, each IQ entry
//! stores the 64-bit encoded instruction word plus 8 bits of issue-queue
//! state (valid, ready, thread id, age tag):
//!
//! * A resident **ACE instruction** exposes its whole payload: the 64
//!   encoded bits plus 4 of the status bits — a corrupted operand tag,
//!   opcode or immediate all change architectural results.
//! * A resident **un-ACE instruction** still exposes the bits required to
//!   *recognise* it as un-ACE and retire it correctly: opcode (5), the
//!   ACE-hint bit itself (1) and the 4 live status bits — 10 bits (the
//!   paper: "un-ACE instructions also contain ACE-bits (e.g. opcode)").
//! * A **squashed** (wrong-path or rolled-back) instruction exposes
//!   nothing: any corruption is discarded with it.
//! * An **empty entry** exposes nothing.

/// Total storage bits per IQ entry.
pub const IQ_ENTRY_BITS: u32 = micro_isa::ENCODED_BITS + 8;

/// ACE bits exposed by a resident ACE instruction.
pub const ACE_INST_BITS: u32 = micro_isa::ENCODED_BITS + 4;

/// ACE bits exposed by a resident un-ACE (but committed) instruction.
pub const UNACE_INST_BITS: u32 = 10;

/// ACE bits exposed by a squashed instruction (none).
pub const SQUASHED_INST_BITS: u32 = 0;

/// ACE bits an instruction standing in the IQ exposes, given its
/// (profiled or ground-truth) ACE-ness.
#[inline]
pub fn iq_ace_bits(is_ace: bool) -> u32 {
    if is_ace {
        ACE_INST_BITS
    } else {
        UNACE_INST_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn layout_is_consistent() {
        assert_eq!(IQ_ENTRY_BITS, 72);
        assert!(ACE_INST_BITS <= IQ_ENTRY_BITS);
        assert!(UNACE_INST_BITS < ACE_INST_BITS);
        assert_eq!(SQUASHED_INST_BITS, 0);
    }

    #[test]
    fn ace_bits_dispatch() {
        assert_eq!(iq_ace_bits(true), ACE_INST_BITS);
        assert_eq!(iq_ace_bits(false), UNACE_INST_BITS);
    }
}
