//! Bit layout of an issue-queue entry, shared by the pipeline's online
//! hint-bit counter (DVM's ACE-bit counter of Section 5.1) and the
//! ground-truth AVF accounting in the `avf` crate.
//!
//! Following Mukherjee et al.'s bit-level methodology, each IQ entry
//! stores the 64-bit encoded instruction word plus 8 bits of issue-queue
//! state (valid, ready, thread id, age tag):
//!
//! * A resident **ACE instruction** exposes its whole payload: the 64
//!   encoded bits plus 4 of the status bits — a corrupted operand tag,
//!   opcode or immediate all change architectural results.
//! * A resident **un-ACE instruction** still exposes the bits required to
//!   *recognise* it as un-ACE and retire it correctly: opcode (5), the
//!   ACE-hint bit itself (1) and the 4 live status bits — 10 bits (the
//!   paper: "un-ACE instructions also contain ACE-bits (e.g. opcode)").
//! * A **squashed** (wrong-path or rolled-back) instruction exposes
//!   nothing: any corruption is discarded with it.
//! * An **empty entry** exposes nothing.

/// Total storage bits per IQ entry.
pub const IQ_ENTRY_BITS: u32 = micro_isa::ENCODED_BITS + 8;

/// ACE bits exposed by a resident ACE instruction.
pub const ACE_INST_BITS: u32 = micro_isa::ENCODED_BITS + 4;

/// ACE bits exposed by a resident un-ACE (but committed) instruction.
pub const UNACE_INST_BITS: u32 = 10;

/// ACE bits exposed by a squashed instruction (none).
pub const SQUASHED_INST_BITS: u32 = 0;

/// ACE bits an instruction standing in the IQ exposes, given its
/// (profiled or ground-truth) ACE-ness.
#[inline]
pub fn iq_ace_bits(is_ace: bool) -> u32 {
    if is_ace {
        ACE_INST_BITS
    } else {
        UNACE_INST_BITS
    }
}

/// First status bit of an IQ entry (the encoded word occupies `0..64`).
pub const STATUS_LO: u32 = micro_isa::ENCODED_BITS;
/// Live status bits: valid, ready, thread id, age tag.
pub const LIVE_STATUS_BITS: u32 = 4;

/// What flipping one stored IQ-entry bit does to a *resident* (not
/// squashed) instruction. This is the single-event-upset view of the
/// same taxonomy `iq_ace_bits` weights:
///
/// * **Select-critical** bits — opcode (the entry can no longer be
///   decoded/matched for select), the ACE-hint bit and the 4 live
///   status bits (valid/ready/tid/age: wakeup and age-based select
///   break). These are the 10 bits a committed *un-ACE* instruction
///   still exposes: corruption is never silent, it derails retirement
///   itself (hang, or a malformed commit a real machine would
///   machine-check).
/// * **Payload** bits — destination/source tags and the immediate
///   (the remaining 58 word bits): corruption rides the instruction's
///   *result* through the dataflow and matters exactly when that result
///   reaches an architectural sink — the definition of dataflow
///   ACE-ness, and the 58-bit gap between `ACE_INST_BITS` and
///   `UNACE_INST_BITS`.
/// * **Dead** bits — the 4 status bits even an ACE instruction never
///   exposes: always masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IqBitClass {
    SelectCritical,
    Payload,
    Dead,
}

/// Classify one of the [`IQ_ENTRY_BITS`] stored bits. Panics if `bit`
/// is out of range.
#[inline]
pub fn iq_bit_class(bit: u32) -> IqBitClass {
    assert!(bit < IQ_ENTRY_BITS, "IQ bit {bit} out of range");
    let f_end = micro_isa::encoding::fields::ACE_BIT; // opcode ends, hint follows
    if bit <= f_end || (STATUS_LO..STATUS_LO + LIVE_STATUS_BITS).contains(&bit) {
        IqBitClass::SelectCritical
    } else if bit < STATUS_LO {
        IqBitClass::Payload
    } else {
        IqBitClass::Dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn layout_is_consistent() {
        assert_eq!(IQ_ENTRY_BITS, 72);
        assert!(ACE_INST_BITS <= IQ_ENTRY_BITS);
        assert!(UNACE_INST_BITS < ACE_INST_BITS);
        assert_eq!(SQUASHED_INST_BITS, 0);
    }

    #[test]
    fn ace_bits_dispatch() {
        assert_eq!(iq_ace_bits(true), ACE_INST_BITS);
        assert_eq!(iq_ace_bits(false), UNACE_INST_BITS);
    }

    #[test]
    fn bit_classes_tile_the_entry_consistently() {
        // The class populations must reproduce the ACE weights: the
        // select-critical set is exactly what an un-ACE instruction
        // exposes, and select-critical + payload is what an ACE
        // instruction exposes.
        let mut select = 0;
        let mut payload = 0;
        let mut dead = 0;
        for bit in 0..IQ_ENTRY_BITS {
            match iq_bit_class(bit) {
                IqBitClass::SelectCritical => select += 1,
                IqBitClass::Payload => payload += 1,
                IqBitClass::Dead => dead += 1,
            }
        }
        assert_eq!(select, UNACE_INST_BITS);
        assert_eq!(select + payload, ACE_INST_BITS);
        assert_eq!(select + payload + dead, IQ_ENTRY_BITS);
    }

    #[test]
    fn bit_class_spot_checks() {
        use micro_isa::encoding::fields;
        assert_eq!(iq_bit_class(fields::OPCODE_LO), IqBitClass::SelectCritical);
        assert_eq!(iq_bit_class(fields::ACE_BIT), IqBitClass::SelectCritical);
        assert_eq!(iq_bit_class(fields::DEST_LO), IqBitClass::Payload);
        assert_eq!(iq_bit_class(fields::IMM_LO), IqBitClass::Payload);
        assert_eq!(iq_bit_class(STATUS_LO), IqBitClass::SelectCritical);
        assert_eq!(iq_bit_class(STATUS_LO + LIVE_STATUS_BITS), IqBitClass::Dead);
        assert_eq!(iq_bit_class(IQ_ENTRY_BITS - 1), IqBitClass::Dead);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_class_range_checked() {
        let _ = iq_bit_class(IQ_ENTRY_BITS);
    }
}
