//! # `smt-sim` — the out-of-order SMT pipeline
//!
//! A cycle-level simultaneous-multithreading processor model in the
//! M-Sim/SimpleScalar tradition, built from scratch for the issue-queue
//! reliability study. One [`Pipeline`] simulates the paper's Table 2
//! machine: 8-wide fetch/issue/commit, a 96-entry shared issue queue with
//! wakeup/select, per-thread 96-entry ROBs and 48-entry LSQs, the five
//! function-unit pools, gshare+BTB+RAS branch prediction and the shared
//! two-level cache hierarchy.
//!
//! Pipeline stages run back-to-front each cycle (commit → writeback →
//! issue → dispatch → fetch) so same-cycle structural hazards resolve
//! conservatively:
//!
//! ```text
//!  fetch ──► fetch queues ──► dispatch ──► IQ ──► issue ──► FUs ──► done
//!  (policy)  (per thread)     (governor)  (policy)                  │
//!     ▲                                                     commit ◄┘
//!     └───────── squash / redirect on mispredict & FLUSH ────────────
//! ```
//!
//! The three *policy seams* the paper's mechanisms plug into:
//!
//! * [`FetchPolicy`](fetch::FetchPolicy) — ICOUNT (default), STALL,
//!   FLUSH, DG and PDG are built in;
//! * [`IssuePolicy`](issue::IssuePolicy) — baseline oldest-first; the
//!   `iq-reliability` crate provides VISA;
//! * [`DispatchGovernor`](dispatch::DispatchGovernor) — baseline
//!   unlimited; `iq-reliability` provides opt1, opt2 and DVM.
//!
//! Vulnerability accounting attaches through [`events::SimObserver`]:
//! the pipeline reports each retired (committed or squashed) instruction
//! with its full per-structure residency timing, plus cheap per-cycle
//! aggregates (ready-queue composition, online hint-bit counts) that the
//! paper's DVM hardware would compute with counters.

pub mod cancel;
pub mod config;
pub mod dispatch;
pub mod events;
pub mod fetch;
pub mod fu;
pub mod iq;
pub mod issue;
pub mod layout;
pub mod pipeline;
pub mod scoreboard;
pub mod stats;
pub mod types;

pub use cancel::CancelToken;
pub use config::{MachineConfig, SimLimits, DEFAULT_WATCHDOG_CYCLES};
pub use dispatch::{DispatchGovernor, GovernorView, UnlimitedDispatch};
pub use events::{NullObserver, RetireEvent, RetireKind, SimObserver};
pub use fetch::{
    DataGating, FetchPolicy, FetchPolicyKind, Flush, Icount, PredictiveDataGating, Stall,
};
pub use issue::{IssuePolicy, OldestFirst, ReadyInst};
pub use layout::{iq_bit_class, IqBitClass};
pub use pipeline::inject::{
    AppliedFault, InjectableState, Occupant, RobBitKind, Structure, REGS_PER_THREAD,
};
pub use pipeline::{HookAction, Pipeline, SimResult, DEFAULT_INTERVAL_CYCLES};
pub use stats::{IntervalSnapshot, SimStats};
