//! The shared issue queue container.
//!
//! Stores the IDs of resident instructions (the slab holds the payload)
//! plus the running hint-bit total the DVM hardware would keep in its
//! ACE-bit counter. Entry order is not maintained here: age-based
//! selection uses the global `seq` carried by each instruction.

use crate::layout;
use crate::types::InstId;
use sim_snapshot::{SnapError, SnapReader, SnapWriter};

/// The shared issue queue of the SMT processor.
pub struct IssueQueue {
    capacity: usize,
    entries: Vec<InstId>,
    /// Σ over resident instructions of their hint-derived ACE bits —
    /// the online ACE-bit counter of the paper's Section 5.1.
    hint_bits: u64,
    /// Per-thread occupancy (who is hogging the shared queue).
    per_thread: [usize; micro_isa::MAX_THREADS],
}

impl IssueQueue {
    pub fn new(capacity: usize) -> IssueQueue {
        assert!(capacity > 0);
        IssueQueue {
            capacity,
            entries: Vec::with_capacity(capacity),
            hint_bits: 0,
            per_thread: [0; micro_isa::MAX_THREADS],
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Current hint-bit ACE total (the hardware counter value).
    pub fn hint_bits_resident(&self) -> u64 {
        self.hint_bits
    }

    /// Occupancy attributable to one thread.
    pub fn thread_occupancy(&self, tid: micro_isa::ThreadId) -> usize {
        self.per_thread[tid as usize]
    }

    /// Allocate an entry. Panics if full (the dispatch stage checks).
    pub fn insert(&mut self, id: InstId, ace_hint: bool, tid: micro_isa::ThreadId) {
        assert!(!self.is_full(), "IQ overflow");
        debug_assert!(!self.entries.contains(&id), "duplicate IQ entry");
        self.entries.push(id);
        self.hint_bits += layout::iq_ace_bits(ace_hint) as u64;
        self.per_thread[tid as usize] += 1;
    }

    /// Free the entry of `id` (at writeback or squash). Panics if absent.
    pub fn remove(&mut self, id: InstId, ace_hint: bool, tid: micro_isa::ThreadId) {
        let pos = self
            .entries
            .iter()
            .position(|&e| e == id)
            .expect("removing instruction not in IQ");
        self.entries.swap_remove(pos);
        self.hint_bits -= layout::iq_ace_bits(ace_hint) as u64;
        self.per_thread[tid as usize] -= 1;
    }

    pub fn contains(&self, id: InstId) -> bool {
        self.entries.contains(&id)
    }

    /// Testing hook: skew the hardware ACE-bit counter without touching
    /// the entries it mirrors — models a soft error in the counter
    /// itself, which the `--selfcheck` invariant sweep must catch.
    #[doc(hidden)]
    pub fn skew_hint_bits(&mut self, delta: u64) {
        self.hint_bits = self.hint_bits.wrapping_add(delta);
    }

    /// The occupant of physical slot `idx`, if the slot is allocated.
    /// Slot numbering reflects the collapsing-queue storage order
    /// (`swap_remove` compaction): slots `0..len()` are occupied,
    /// `len()..capacity()` are empty. Fault injection samples this
    /// space uniformly.
    pub fn entry_at(&self, idx: usize) -> Option<InstId> {
        assert!(idx < self.capacity, "IQ slot {idx} out of range");
        self.entries.get(idx).copied()
    }

    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        self.entries.iter().copied()
    }

    /// Serialize the queue contents. The `entries` vector is written
    /// verbatim: `swap_remove` compaction makes physical slot order
    /// history-dependent, and fault injection samples slots by index,
    /// so order must survive a round-trip for bit-identical resume.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put(&self.entries);
        w.put(&self.hint_bits);
        let pt: Vec<u64> = self.per_thread.iter().map(|&n| n as u64).collect();
        w.put(&pt);
    }

    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let entries: Vec<InstId> = r.get()?;
        let hint_bits = r.get_u64()?;
        let pt: Vec<u64> = r.get()?;
        if entries.len() > self.capacity {
            return Err(SnapError::Corrupt(format!(
                "IQ occupancy {} exceeds capacity {}",
                entries.len(),
                self.capacity
            )));
        }
        if pt.len() != micro_isa::MAX_THREADS {
            return Err(SnapError::Corrupt(format!(
                "IQ per-thread table has {} slots, expected {}",
                pt.len(),
                micro_isa::MAX_THREADS
            )));
        }
        if pt.iter().sum::<u64>() != entries.len() as u64 {
            return Err(SnapError::Corrupt(
                "IQ per-thread occupancy does not sum to entry count".into(),
            ));
        }
        self.entries = entries;
        self.hint_bits = hint_bits;
        for (dst, &src) in self.per_thread.iter_mut().zip(pt.iter()) {
            *dst = src as usize;
        }
        Ok(())
    }

    /// Remove every entry satisfying `pred`; calls `on_removed` for each.
    /// Used by squash paths, which know each instruction's hint and
    /// thread from the slab.
    pub fn retain_with(
        &mut self,
        mut pred: impl FnMut(InstId) -> bool,
        mut on_removed: impl FnMut(InstId),
        hint_of: impl Fn(InstId) -> bool,
        tid_of: impl Fn(InstId) -> micro_isa::ThreadId,
    ) {
        let mut i = 0;
        while i < self.entries.len() {
            let id = self.entries[i];
            if pred(id) {
                i += 1;
            } else {
                self.entries.swap_remove(i);
                self.hint_bits -= layout::iq_ace_bits(hint_of(id)) as u64;
                self.per_thread[tid_of(id) as usize] -= 1;
                on_removed(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{ACE_INST_BITS, UNACE_INST_BITS};

    #[test]
    fn insert_remove_tracks_occupancy_and_bits() {
        let mut iq = IssueQueue::new(4);
        iq.insert(1, true, 0);
        iq.insert(2, false, 1);
        assert_eq!(iq.len(), 2);
        assert_eq!(
            iq.hint_bits_resident(),
            (ACE_INST_BITS + UNACE_INST_BITS) as u64
        );
        iq.remove(1, true, 0);
        assert_eq!(iq.hint_bits_resident(), UNACE_INST_BITS as u64);
        assert!(!iq.contains(1));
        assert!(iq.contains(2));
    }

    #[test]
    fn capacity_enforced() {
        let mut iq = IssueQueue::new(2);
        iq.insert(1, false, 0);
        iq.insert(2, false, 1);
        assert!(iq.is_full());
    }

    #[test]
    #[should_panic(expected = "IQ overflow")]
    fn overflow_panics() {
        let mut iq = IssueQueue::new(1);
        iq.insert(1, false, 0);
        iq.insert(2, false, 1);
    }

    #[test]
    #[should_panic(expected = "not in IQ")]
    fn removing_absent_panics() {
        let mut iq = IssueQueue::new(2);
        iq.remove(9, false, 0);
    }

    #[test]
    fn retain_with_squashes_and_reports() {
        let mut iq = IssueQueue::new(8);
        for id in 0..6 {
            iq.insert(id, id % 2 == 0, 0);
        }
        let mut removed = Vec::new();
        iq.retain_with(|id| id < 3, |id| removed.push(id), |id| id % 2 == 0, |_| 0);
        removed.sort_unstable();
        assert_eq!(removed, vec![3, 4, 5]);
        assert_eq!(iq.len(), 3);
        // Bits for ids 0 (ACE), 1 (un-ACE), 2 (ACE).
        assert_eq!(
            iq.hint_bits_resident(),
            (2 * ACE_INST_BITS + UNACE_INST_BITS) as u64
        );
    }
}
