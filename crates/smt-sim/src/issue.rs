//! Issue-selection policies.
//!
//! Every cycle the pipeline gathers the *ready queue* — the IQ entries
//! whose source operands are complete — and hands it to the active
//! [`IssuePolicy`] for prioritisation. The pipeline then walks the
//! returned order, issuing instructions while issue bandwidth and
//! function units last. The baseline is oldest-first (by global fetch
//! age); the paper's VISA policy (ready ACE instructions first, each
//! class in program order) lives in the `iq-reliability` crate.

use crate::types::InstId;
use micro_isa::{DynSeq, OpClass, ThreadId};

/// A ready-to-execute IQ entry, as shown to issue policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyInst {
    pub id: InstId,
    /// Global fetch age (smaller = older; doubles as program order:
    /// within a thread, fetch order *is* program order).
    pub seq: DynSeq,
    pub tid: ThreadId,
    pub op: OpClass,
    /// The decoded ACE-ness hint (the paper's profiled ISA bit).
    pub ace_hint: bool,
    pub wrong_path: bool,
}

/// An issue-selection policy: order the ready queue, highest priority
/// first. The pipeline issues in the returned order subject to width and
/// function-unit constraints.
pub trait IssuePolicy {
    fn name(&self) -> &'static str;
    fn prioritize(&mut self, ready: &mut Vec<ReadyInst>);
}

/// Baseline selection: oldest instruction first, regardless of ACE-ness.
#[derive(Debug, Default, Clone, Copy)]
pub struct OldestFirst;

impl IssuePolicy for OldestFirst {
    fn name(&self) -> &'static str {
        "oldest-first"
    }

    fn prioritize(&mut self, ready: &mut Vec<ReadyInst>) {
        // `seq` is globally unique, so this key is a total order: the
        // outcome cannot depend on the incoming list order (which is IQ
        // storage order, scrambled by swap_remove compaction), and
        // `sort_unstable` has no ties whose relative order it could
        // scramble. Every issue policy must preserve this property —
        // replay determinism (and the fault-injection golden-run
        // comparison built on it) depends on total-order tie-breaks.
        ready.sort_unstable_by_key(|r| r.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn ready(seq: DynSeq, ace: bool) -> ReadyInst {
        ReadyInst {
            id: seq as InstId,
            seq,
            tid: 0,
            op: OpClass::IAlu,
            ace_hint: ace,
            wrong_path: false,
        }
    }

    #[test]
    fn oldest_first_sorts_by_age() {
        let mut v = vec![ready(5, true), ready(1, false), ready(9, true)];
        OldestFirst.prioritize(&mut v);
        let seqs: Vec<u64> = v.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 5, 9]);
    }

    #[test]
    fn oldest_first_ignores_aceness() {
        let mut v = vec![ready(2, false), ready(1, true)];
        OldestFirst.prioritize(&mut v);
        assert_eq!(v[0].seq, 1);
        let mut v = vec![ready(2, true), ready(1, false)];
        OldestFirst.prioritize(&mut v);
        assert_eq!(v[0].seq, 1);
    }

    #[test]
    fn oldest_first_invariant_to_input_permutation() {
        // The ready list inherits the IQ's swap_remove storage order;
        // selection must erase it (see the comment in `prioritize`).
        let base = vec![
            ready(7, true),
            ready(3, false),
            ready(12, true),
            ready(1, true),
            ready(9, false),
        ];
        for rot in 0..base.len() {
            let mut v = base.clone();
            v.rotate_left(rot);
            OldestFirst.prioritize(&mut v);
            let seqs: Vec<u64> = v.iter().map(|r| r.seq).collect();
            assert_eq!(seqs, vec![1, 3, 7, 9, 12]);
        }
    }
}
