//! Observer hooks: how vulnerability analysis attaches to the pipeline.
//!
//! The AVF methodology needs, for every dynamic instruction, (a) its
//! ground-truth ACE-ness — computable only from the *committed* stream —
//! and (b) how long it occupied each structure. The pipeline therefore
//! reports every retired instruction (committed or squashed) once, with
//! its complete timing record; the `avf` crate folds these into bit-level
//! per-structure AVF without the pipeline knowing anything about ACE
//! analysis.

use micro_isa::DynInst;

/// Why an instruction left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireKind {
    /// Architecturally committed.
    Commit,
    /// Squashed: wrong path, branch recovery, or FLUSH rollback.
    Squash,
}

/// One retired instruction with its full residency timing.
///
/// Structure residencies derive as:
/// * IQ: `[dispatch_cycle, complete_cycle)` — the simulator follows the
///   M-Sim/RUU convention of freeing IQ entries at writeback — or
///   `[dispatch_cycle, retire_cycle)` if squashed first;
/// * ROB: `[dispatch_cycle, retire_cycle)`;
/// * LSQ (memory ops): `[dispatch_cycle, retire_cycle)`;
/// * FU: `[issue_cycle, complete_cycle)`;
/// * register file: from producer completion until architectural
///   overwrite — derived downstream from the committed stream.
#[derive(Debug, Clone)]
pub struct RetireEvent {
    pub inst: DynInst,
    pub kind: RetireKind,
    pub fetch_cycle: u64,
    pub dispatch_cycle: Option<u64>,
    pub issue_cycle: Option<u64>,
    pub complete_cycle: Option<u64>,
    /// Commit cycle, or the cycle the squash happened.
    pub retire_cycle: u64,
    /// This load missed the L2.
    pub l2_miss: bool,
}

impl RetireEvent {
    /// Cycles this instruction held an IQ entry.
    pub fn iq_residency(&self) -> u64 {
        let Some(d) = self.dispatch_cycle else {
            return 0;
        };
        let leave = self.complete_cycle.unwrap_or(self.retire_cycle);
        leave.saturating_sub(d)
    }

    /// Cycles this instruction held a ROB entry.
    pub fn rob_residency(&self) -> u64 {
        match self.dispatch_cycle {
            Some(d) => self.retire_cycle.saturating_sub(d),
            None => 0,
        }
    }

    /// Cycles this instruction occupied a function unit.
    pub fn fu_residency(&self) -> u64 {
        match (self.issue_cycle, self.complete_cycle) {
            (Some(i), Some(c)) => c.saturating_sub(i),
            (Some(i), None) => self.retire_cycle.saturating_sub(i),
            _ => 0,
        }
    }

    /// Cycles this instruction held an LSQ entry (memory ops only).
    pub fn lsq_residency(&self) -> u64 {
        if self.inst.op.is_mem() {
            self.rob_residency()
        } else {
            0
        }
    }
}

/// Pipeline observer. All hooks have empty defaults; implement what you
/// need. The pipeline calls `on_commit`/`on_squash` exactly once per
/// dynamic instruction, in retirement order per thread (commits are
/// per-thread program order; squashes interleave).
pub trait SimObserver {
    fn on_commit(&mut self, _ev: &RetireEvent) {}
    fn on_squash(&mut self, _ev: &RetireEvent) {}
    /// Called once when the simulation stops, with the final cycle count.
    fn on_finish(&mut self, _final_cycle: u64) {}
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use micro_isa::OpClass;

    fn ev(op: OpClass) -> RetireEvent {
        RetireEvent {
            inst: DynInst {
                seq: 0,
                tid: 0,
                dyn_idx: 0,
                pc: 0,
                op,
                dest: None,
                srcs: [None, None],
                mem_addr: None,
                ctrl: None,
                ace_hint: false,
                wrong_path: false,
            },
            kind: RetireKind::Commit,
            fetch_cycle: 10,
            dispatch_cycle: Some(12),
            issue_cycle: Some(20),
            complete_cycle: Some(25),
            retire_cycle: 30,
            l2_miss: false,
        }
    }

    #[test]
    fn residencies_from_timing() {
        let e = ev(OpClass::Load);
        assert_eq!(e.iq_residency(), 13);
        assert_eq!(e.rob_residency(), 18);
        assert_eq!(e.fu_residency(), 5);
        assert_eq!(e.lsq_residency(), 18);
    }

    #[test]
    fn non_mem_has_no_lsq_residency() {
        let e = ev(OpClass::IAlu);
        assert_eq!(e.lsq_residency(), 0);
    }

    #[test]
    fn squashed_before_issue_counts_until_retire() {
        let mut e = ev(OpClass::IAlu);
        e.kind = RetireKind::Squash;
        e.issue_cycle = None;
        e.complete_cycle = None;
        assert_eq!(e.iq_residency(), 18);
        assert_eq!(e.fu_residency(), 0);
    }

    #[test]
    fn never_dispatched_occupies_nothing() {
        let mut e = ev(OpClass::IAlu);
        e.dispatch_cycle = None;
        e.issue_cycle = None;
        e.complete_cycle = None;
        assert_eq!(e.iq_residency(), 0);
        assert_eq!(e.rob_residency(), 0);
    }
}
