//! Cooperative cancellation for long simulations.
//!
//! A [`CancelToken`] is a cheap cloneable flag an external supervisor
//! (the campaign harness's wall-clock deadline monitor, a SIGINT
//! handler) sets to ask a running [`Pipeline`](crate::Pipeline) to stop.
//! The pipeline polls it on its sampling-interval clock (every 10K
//! cycles by default), so a runaway or merely slow simulation winds down
//! within one interval instead of having to be killed with its thread —
//! its statistics, tracer and metrics registry all stay usable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag. Clones observe the same flag; the default
/// token is never cancelled (and costs one relaxed load to poll).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
