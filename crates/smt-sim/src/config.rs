//! Machine configuration (the paper's Table 2) and simulation limits.

use mem_hier::HierarchyConfig;

/// Full microarchitecture configuration of the simulated SMT processor.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Fetch/issue/commit width (Table 2: 8).
    pub width: usize,
    /// Maximum threads fetched per cycle (ICOUNT.2.8-style front end).
    pub fetch_threads_per_cycle: usize,
    /// Per-thread fetch queue capacity.
    pub fetch_queue_size: usize,
    /// Shared issue queue entries (Table 2: 96).
    pub iq_size: usize,
    /// Reorder buffer entries per thread (Table 2: 96).
    pub rob_size: usize,
    /// Load/store queue entries per thread (Table 2: 48).
    pub lsq_size: usize,
    /// Number of hardware contexts.
    pub num_threads: usize,
    /// Function-unit pool sizes, indexed by `FuKind::index()`
    /// (Table 2: 8 I-ALU, 4 I-MUL/DIV, 4 load/store, 8 FP-ALU, 4 FP-MUL/DIV).
    pub fu_pool_sizes: [usize; 5],
    /// Cache/TLB/memory configuration.
    pub memory: HierarchyConfig,
    /// FLUSH fires only when IQ occupancy reaches this fraction of
    /// capacity: the policy exists to de-clog the shared queue, and
    /// rolling a thread back while entries are plentiful is pure waste.
    pub flush_clog_threshold: f64,
    /// Minimum cycles between rollbacks of one thread; within the
    /// cooldown repeated misses degrade to STALL-style fetch gating.
    pub flush_cooldown: u64,
    /// Miss-status-holding registers per thread: the maximum loads a
    /// thread may have outstanding past the L1D. A load that would
    /// exceed it stays in the IQ (ready but not issuable) until an MSHR
    /// frees — bounding per-thread memory-level parallelism the way real
    /// cache controllers do.
    pub mshr_per_thread: u32,
    /// Optional higher-fidelity memory ordering: when enabled, a load
    /// may not issue while an older same-thread store's address is
    /// unresolved, and a load whose address matches an in-flight older
    /// store is satisfied by store-to-load forwarding (1-cycle, no cache
    /// access). Off by default: the paper-calibrated runs use the
    /// simpler unordered model (see the pipeline module docs).
    pub lsq_disambiguation: bool,
}

impl MachineConfig {
    /// The paper's Table 2 machine with 4 hardware contexts (the
    /// experiments all run 4-context workloads).
    pub fn table2() -> MachineConfig {
        MachineConfig {
            width: 8,
            fetch_threads_per_cycle: 2,
            fetch_queue_size: 32,
            iq_size: 96,
            rob_size: 96,
            lsq_size: 48,
            num_threads: 4,
            fu_pool_sizes: [8, 4, 4, 8, 4],
            memory: HierarchyConfig::default(),
            flush_clog_threshold: 0.5,
            flush_cooldown: 200,
            mshr_per_thread: 8,
            lsq_disambiguation: false,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 || self.iq_size == 0 || self.rob_size == 0 {
            return Err("zero width/IQ/ROB".into());
        }
        if self.num_threads == 0 || self.num_threads > micro_isa::MAX_THREADS {
            return Err(format!("num_threads {} out of range", self.num_threads));
        }
        if self.fetch_threads_per_cycle == 0 {
            return Err("fetch_threads_per_cycle must be >= 1".into());
        }
        if self.fu_pool_sizes.contains(&0) {
            return Err("empty function-unit pool".into());
        }
        if self.mshr_per_thread == 0 {
            return Err("mshr_per_thread must be >= 1".into());
        }
        Ok(())
    }
}

/// Commit-starvation watchdog default: generous enough that the
/// longest legitimate commit gap (back-to-back L2 misses on every
/// thread) never trips it.
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 200_000;

/// When to stop a simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimLimits {
    /// Stop once this many instructions have committed in total
    /// (the paper runs 400 M; scaled-down runs use 0.5–4 M).
    pub max_instructions: u64,
    /// Hard cycle ceiling (deadlock backstop).
    pub max_cycles: u64,
    /// Declare the run deadlocked after this many cycles without a
    /// single commit. Fault-injection campaigns tighten it so a hung
    /// trial is detected within its cycle budget instead of waiting
    /// out the full default.
    pub watchdog_cycles: u64,
}

impl SimLimits {
    pub fn instructions(n: u64) -> SimLimits {
        SimLimits {
            max_instructions: n,
            // Even at IPC 0.05 the budget fits; beyond this something hangs.
            max_cycles: n.saturating_mul(40).max(1_000_000),
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
        }
    }

    /// Run for a fixed number of cycles (used by interval-statistics
    /// experiments, which need a fixed number of sampling intervals
    /// regardless of the scheme's IPC).
    pub fn cycles(n: u64) -> SimLimits {
        SimLimits {
            max_instructions: u64::MAX,
            max_cycles: n,
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
        }
    }

    /// Override the commit-starvation watchdog.
    pub fn with_watchdog(mut self, cycles: u64) -> SimLimits {
        assert!(cycles > 0, "watchdog must be positive");
        self.watchdog_cycles = cycles;
        self
    }

    /// Whether hitting the cycle ceiling is the intended stop (cycle
    /// budget) rather than a deadlock symptom (instruction budget).
    pub fn cycle_limited(&self) -> bool {
        self.max_instructions == u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let c = MachineConfig::table2();
        c.validate().unwrap();
        assert_eq!(c.width, 8);
        assert_eq!(c.iq_size, 96);
        assert_eq!(c.rob_size, 96);
        assert_eq!(c.lsq_size, 48);
        assert_eq!(c.fu_pool_sizes, [8, 4, 4, 8, 4]);
        assert_eq!(c.num_threads, 4);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = MachineConfig::table2();
        c.num_threads = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::table2();
        c.num_threads = 99;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::table2();
        c.fu_pool_sizes[2] = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn limits_scale_cycle_ceiling() {
        let l = SimLimits::instructions(1_000_000);
        assert_eq!(l.max_instructions, 1_000_000);
        assert!(l.max_cycles >= 40_000_000);
        assert_eq!(l.watchdog_cycles, DEFAULT_WATCHDOG_CYCLES);
    }

    #[test]
    fn watchdog_is_overridable() {
        let l = SimLimits::cycles(50_000).with_watchdog(2_000);
        assert_eq!(l.watchdog_cycles, 2_000);
        assert_eq!(l.max_cycles, 50_000);
    }
}
