//! Dispatch governors — the resource-allocation seam.
//!
//! The paper's opt1 (dynamic IQ resource allocation, Figure 3), opt2
//! (L2-miss-sensitive allocation, Figure 4) and DVM (Section 5) all act
//! at dispatch: they decide, cycle by cycle, whether another instruction
//! may be granted an IQ entry. The pipeline exposes the machine state
//! they key on through [`GovernorView`] and calls the hooks below; the
//! implementations live in the `iq-reliability` crate. The baseline
//! governor grants everything the structural resources allow.

use crate::stats::IntervalSnapshot;
use micro_isa::ThreadId;

/// Per-thread state visible to policies.
#[derive(Debug, Clone, Copy)]
pub struct ThreadView {
    pub tid: ThreadId,
    /// Instructions waiting in this thread's fetch queue.
    pub fetch_queue_len: usize,
    /// Of those, how many carry the ACE-ness hint (DVM's restore rule
    /// picks the thread with the fewest).
    pub fetch_queue_ace: usize,
    /// Outstanding L2-missing loads.
    pub l2_pending: u32,
    /// Outstanding L1D-missing loads (DG/PDG gate on this).
    pub l1d_pending: u32,
    /// Thread is rolled back and fetch-blocked by the FLUSH mechanism.
    pub flush_blocked: bool,
    /// Instructions in flight (fetched but not yet committed/squashed) —
    /// the ICOUNT priority key.
    pub in_flight: usize,
    /// IQ entries currently held by this thread.
    pub iq_occupancy: usize,
    /// ROB entries of this thread holding ACE-hinted instructions —
    /// the occupancy signal for ROB-level vulnerability management
    /// (the paper's "extend to other structures" direction).
    pub rob_ace: usize,
}

/// Machine state handed to dispatch governors every cycle.
#[derive(Debug, Clone, Copy)]
pub struct GovernorView<'a> {
    pub now: u64,
    pub iq_size: usize,
    /// Occupied IQ entries.
    pub iq_len: usize,
    /// IQ entries whose operands are ready (the ready queue).
    pub ready_len: usize,
    /// IQ entries still waiting on operands (the waiting queue).
    pub waiting_len: usize,
    /// Statistics of the most recently completed sampling interval.
    pub last_interval: &'a IntervalSnapshot,
    /// Σ over cycles of the hint-tagged ACE bits resident in the IQ since
    /// the current interval started — DVM's online ACE-bit counter.
    pub interval_hint_bits: u64,
    /// Cycles elapsed in the current interval.
    pub interval_cycles: u64,
    pub threads: &'a [ThreadView],
}

impl GovernorView<'_> {
    /// DVM's online IQ AVF estimate for the running interval: ACE-bit
    /// counter / (cycles × total IQ bits). Uses the hint-bit layout of
    /// [`crate::layout`].
    pub fn online_avf_estimate(&self) -> f64 {
        if self.interval_cycles == 0 {
            return 0.0;
        }
        let total_bits = self.iq_size as u64 * crate::layout::IQ_ENTRY_BITS as u64;
        self.interval_hint_bits as f64 / (self.interval_cycles * total_bits) as f64
    }
}

/// A dispatch governor: grants or denies IQ allocation.
pub trait DispatchGovernor {
    fn name(&self) -> &'static str;

    /// Called once per cycle before any dispatch decisions.
    fn begin_cycle(&mut self, _view: &GovernorView) {}

    /// Called at each sampling-interval boundary with the snapshot of the
    /// interval that just closed (the paper samples every 10K cycles).
    fn on_interval(&mut self, _snapshot: &IntervalSnapshot, _view: &GovernorView) {}

    /// May thread `tid` be granted one more IQ entry this cycle?
    /// Structural limits (IQ/ROB/LSQ full) are enforced by the pipeline
    /// regardless of the answer.
    fn allow_dispatch(&mut self, _view: &GovernorView, _tid: ThreadId) -> bool {
        true
    }

    /// A load from `tid` just missed the L2 (DVM triggers its response
    /// immediately on this event).
    fn on_l2_miss(&mut self, _tid: ThreadId) {}

    /// opt2's escape hatch: when `true`, the pipeline applies FLUSH
    /// fetch-policy behaviour this cycle regardless of the configured
    /// fetch policy.
    fn flush_override(&self) -> bool {
        false
    }

    /// Hand the governor a tracer so its control decisions (cap changes,
    /// mode switches, DVM trigger/restore) land in the audit log. The
    /// pipeline calls this from [`Pipeline::set_tracer`]; governors with
    /// no audit-worthy state ignore it.
    ///
    /// [`Pipeline::set_tracer`]: crate::pipeline::Pipeline::set_tracer
    fn set_tracer(&mut self, _tracer: sim_trace::Tracer) {}

    /// Hand the governor a metrics handle so its control state (IQL cap,
    /// flush mode, wq_ratio, trigger/restore counts) is recorded as
    /// gauges and counters alongside the trace audit log. The pipeline
    /// calls this from [`Pipeline::set_metrics`]; governors with no
    /// numeric state ignore it.
    ///
    /// [`Pipeline::set_metrics`]: crate::pipeline::Pipeline::set_metrics
    fn set_metrics(&mut self, _metrics: sim_metrics::Metrics) {}

    /// Serialize mutable governor state (stateless governors write
    /// nothing). Tracer/metrics handles are *not* state: they are
    /// re-attached by the harness after restore.
    fn save_state(&self, _w: &mut sim_snapshot::SnapWriter) {}

    /// Restore mutable governor state saved by [`Self::save_state`].
    fn restore_state(
        &mut self,
        _r: &mut sim_snapshot::SnapReader<'_>,
    ) -> Result<(), sim_snapshot::SnapError> {
        Ok(())
    }
}

/// Baseline: dispatch everything the structural resources allow.
#[derive(Debug, Default, Clone, Copy)]
pub struct UnlimitedDispatch;

impl DispatchGovernor for UnlimitedDispatch {
    fn name(&self) -> &'static str {
        "unlimited"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> IntervalSnapshot {
        IntervalSnapshot::default()
    }

    #[test]
    fn unlimited_always_allows() {
        let snap = snapshot();
        let view = GovernorView {
            now: 0,
            iq_size: 96,
            iq_len: 95,
            ready_len: 50,
            waiting_len: 45,
            last_interval: &snap,
            interval_hint_bits: 0,
            interval_cycles: 0,
            threads: &[],
        };
        let mut g = UnlimitedDispatch;
        assert!(g.allow_dispatch(&view, 0));
        assert!(!g.flush_override());
    }

    #[test]
    fn online_avf_estimate_math() {
        let snap = snapshot();
        // 96-entry IQ, 72 bits each = 6912 bits. Half the bits ACE for
        // 100 cycles → estimate 0.5.
        let view = GovernorView {
            now: 100,
            iq_size: 96,
            iq_len: 0,
            ready_len: 0,
            waiting_len: 0,
            last_interval: &snap,
            interval_hint_bits: 100 * 6912 / 2,
            interval_cycles: 100,
            threads: &[],
        };
        assert!((view.online_avf_estimate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_estimate_is_zero() {
        let snap = snapshot();
        let view = GovernorView {
            now: 0,
            iq_size: 96,
            iq_len: 0,
            ready_len: 0,
            waiting_len: 0,
            last_interval: &snap,
            interval_hint_bits: 0,
            interval_cycles: 0,
            threads: &[],
        };
        assert_eq!(view.online_avf_estimate(), 0.0);
    }
}
