//! SMT fetch policies: ICOUNT, STALL, FLUSH, DG and PDG.
//!
//! All five share ICOUNT's thread ordering (fewest in-flight instructions
//! first — Tullsen et al., ISCA 1996) and differ in when they *gate* a
//! thread or *flush* it:
//!
//! * **ICOUNT** — ordering only.
//! * **STALL** (Tullsen & Brown, MICRO 2001) — stop fetching for a thread
//!   with an outstanding L2-missing load.
//! * **FLUSH** (same paper) — additionally roll the thread back past the
//!   missing load, freeing every pipeline resource it held, and keep it
//!   fetch-blocked until the miss returns. The rollback itself is
//!   performed by the pipeline ([`flush_on_l2_miss`](FetchPolicy::flush_on_l2_miss)).
//! * **DG** (El-Moursy & Albonesi, HPCA 2003) — gate a thread once its
//!   outstanding L1D misses exceed a threshold.
//! * **PDG** — gate on *predicted* outstanding misses, using a per-thread
//!   2-bit miss predictor indexed by load PC, trained at execute.

use crate::dispatch::ThreadView;
use micro_isa::{DynSeq, Pc, ThreadId};
use sim_snapshot::{SnapError, SnapReader, SnapWriter};

/// Machine state visible to fetch policies (per-thread).
#[derive(Debug, Clone, Copy)]
pub struct FetchView<'a> {
    pub now: u64,
    pub threads: &'a [ThreadView],
}

/// Which built-in policy a box was made from (used by experiment naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchPolicyKind {
    Icount,
    Stall,
    Flush,
    Dg,
    Pdg,
}

impl FetchPolicyKind {
    pub const ALL: [FetchPolicyKind; 5] = [
        FetchPolicyKind::Icount,
        FetchPolicyKind::Stall,
        FetchPolicyKind::Flush,
        FetchPolicyKind::Dg,
        FetchPolicyKind::Pdg,
    ];

    pub fn label(self) -> &'static str {
        match self {
            FetchPolicyKind::Icount => "ICOUNT",
            FetchPolicyKind::Stall => "STALL",
            FetchPolicyKind::Flush => "FLUSH",
            FetchPolicyKind::Dg => "DG",
            FetchPolicyKind::Pdg => "PDG",
        }
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn FetchPolicy> {
        match self {
            FetchPolicyKind::Icount => Box::new(Icount),
            FetchPolicyKind::Stall => Box::new(Stall),
            FetchPolicyKind::Flush => Box::new(Flush),
            FetchPolicyKind::Dg => Box::new(DataGating::default()),
            FetchPolicyKind::Pdg => Box::new(PredictiveDataGating::default()),
        }
    }
}

/// A fetch policy: thread ordering + gating (+ optional flush trigger).
pub trait FetchPolicy {
    fn name(&self) -> &'static str;
    fn kind(&self) -> FetchPolicyKind;

    /// Thread priority order for this cycle (ICOUNT by default).
    fn thread_order(&mut self, view: &FetchView) -> Vec<ThreadId> {
        icount_order(view)
    }

    /// Is thread `tid` fetch-gated this cycle?
    fn gate(&self, _view: &FetchView, _tid: ThreadId) -> bool {
        false
    }

    /// Should the pipeline roll a thread back (FLUSH-style) when one of
    /// its loads misses the L2?
    fn flush_on_l2_miss(&self) -> bool {
        false
    }

    /// A load was fetched (PDG tracks predicted misses from here).
    fn on_load_fetched(&mut self, _tid: ThreadId, _seq: DynSeq, _pc: Pc) {}

    /// A load issued and its cache access resolved (training hook).
    fn on_load_issued(&mut self, _tid: ThreadId, _pc: Pc, _l1_miss: bool) {}

    /// A load finished or was squashed (PDG releases its tracking).
    fn on_load_gone(&mut self, _tid: ThreadId, _seq: DynSeq) {}

    /// Serialize mutable policy state (stateless policies write nothing).
    fn save_state(&self, _w: &mut SnapWriter) {}

    /// Restore mutable policy state saved by [`Self::save_state`].
    fn restore_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

/// ICOUNT ordering: fewest in-flight instructions first; ties by thread
/// id for determinism. Flush-blocked threads are excluded (they cannot
/// fetch at all).
pub fn icount_order(view: &FetchView) -> Vec<ThreadId> {
    let mut order: Vec<&ThreadView> = view.threads.iter().filter(|t| !t.flush_blocked).collect();
    order.sort_by_key(|t| (t.in_flight, t.tid));
    order.iter().map(|t| t.tid).collect()
}

/// The default ICOUNT policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct Icount;

impl FetchPolicy for Icount {
    fn name(&self) -> &'static str {
        "ICOUNT"
    }
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::Icount
    }
}

/// STALL: ICOUNT + gate threads with outstanding L2-missing loads.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stall;

impl FetchPolicy for Stall {
    fn name(&self) -> &'static str {
        "STALL"
    }
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::Stall
    }
    fn gate(&self, view: &FetchView, tid: ThreadId) -> bool {
        view.threads[tid as usize].l2_pending > 0
    }
}

/// FLUSH: STALL + pipeline rollback of the offending thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct Flush;

impl FetchPolicy for Flush {
    fn name(&self) -> &'static str {
        "FLUSH"
    }
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::Flush
    }
    fn gate(&self, view: &FetchView, tid: ThreadId) -> bool {
        // The rollback sets `flush_blocked`, which already blocks fetch;
        // gate on the miss too in case the rollback was skipped (e.g. all
        // other threads blocked).
        view.threads[tid as usize].l2_pending > 0
    }
    fn flush_on_l2_miss(&self) -> bool {
        true
    }
}

/// DG: gate a thread whose outstanding L1D misses exceed a threshold.
#[derive(Debug, Clone, Copy)]
pub struct DataGating {
    pub l1_miss_threshold: u32,
}

impl Default for DataGating {
    fn default() -> Self {
        DataGating {
            l1_miss_threshold: 2,
        }
    }
}

impl FetchPolicy for DataGating {
    fn name(&self) -> &'static str {
        "DG"
    }
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::Dg
    }
    fn gate(&self, view: &FetchView, tid: ThreadId) -> bool {
        view.threads[tid as usize].l1d_pending >= self.l1_miss_threshold
    }
}

/// PDG: gate on *predicted* outstanding L1D misses.
pub struct PredictiveDataGating {
    pub threshold: u32,
    table_bits: u32,
    /// Per-thread 2-bit miss-prediction counters indexed by load PC.
    tables: Vec<Vec<u8>>,
    /// Per-thread in-flight loads predicted to miss.
    predicted: Vec<Vec<DynSeq>>,
}

impl Default for PredictiveDataGating {
    fn default() -> Self {
        PredictiveDataGating {
            threshold: 2,
            table_bits: 10,
            tables: Vec::new(),
            predicted: Vec::new(),
        }
    }
}

impl PredictiveDataGating {
    fn ensure_thread(&mut self, tid: ThreadId) {
        let need = tid as usize + 1;
        while self.tables.len() < need {
            self.tables.push(vec![1u8; 1 << self.table_bits]); // weakly hit
            self.predicted.push(Vec::new());
        }
    }

    fn index(&self, pc: Pc) -> usize {
        (pc as usize) & ((1 << self.table_bits) - 1)
    }

    /// Predicted-outstanding-miss count for a thread (test hook).
    pub fn predicted_pending(&self, tid: ThreadId) -> usize {
        self.predicted
            .get(tid as usize)
            .map(|v| v.len())
            .unwrap_or(0)
    }
}

impl FetchPolicy for PredictiveDataGating {
    fn name(&self) -> &'static str {
        "PDG"
    }
    fn kind(&self) -> FetchPolicyKind {
        FetchPolicyKind::Pdg
    }

    fn gate(&self, _view: &FetchView, tid: ThreadId) -> bool {
        self.predicted_pending(tid) >= self.threshold as usize
    }

    fn on_load_fetched(&mut self, tid: ThreadId, seq: DynSeq, pc: Pc) {
        self.ensure_thread(tid);
        let idx = self.index(pc);
        if self.tables[tid as usize][idx] >= 2 {
            self.predicted[tid as usize].push(seq);
        }
    }

    fn on_load_issued(&mut self, tid: ThreadId, pc: Pc, l1_miss: bool) {
        self.ensure_thread(tid);
        let idx = self.index(pc);
        let c = &mut self.tables[tid as usize][idx];
        *c = if l1_miss {
            (*c + 1).min(3)
        } else {
            c.saturating_sub(1)
        };
    }

    fn on_load_gone(&mut self, tid: ThreadId, seq: DynSeq) {
        if let Some(list) = self.predicted.get_mut(tid as usize) {
            if let Some(pos) = list.iter().position(|&s| s == seq) {
                list.swap_remove(pos);
            }
        }
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.put(&self.tables);
        w.put(&self.predicted);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tables: Vec<Vec<u8>> = r.get()?;
        let predicted: Vec<Vec<DynSeq>> = r.get()?;
        if tables.len() != predicted.len() {
            return Err(SnapError::Corrupt(
                "PDG tables/predicted thread counts disagree".into(),
            ));
        }
        let table_len = 1usize << self.table_bits;
        for t in &tables {
            if t.len() != table_len {
                return Err(SnapError::Corrupt(format!(
                    "PDG table size {} does not match configured {table_len}",
                    t.len()
                )));
            }
            if t.iter().any(|&c| c > 3) {
                return Err(SnapError::Corrupt("PDG 2-bit counter out of range".into()));
            }
        }
        self.tables = tables;
        self.predicted = predicted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(tid: ThreadId, in_flight: usize, l2: u32, l1: u32, blocked: bool) -> ThreadView {
        ThreadView {
            tid,
            fetch_queue_len: 0,
            fetch_queue_ace: 0,
            l2_pending: l2,
            l1d_pending: l1,
            flush_blocked: blocked,
            in_flight,
            iq_occupancy: 0,
            rob_ace: 0,
        }
    }

    #[test]
    fn icount_orders_by_in_flight() {
        let threads = [
            tv(0, 30, 0, 0, false),
            tv(1, 5, 0, 0, false),
            tv(2, 10, 0, 0, false),
        ];
        let view = FetchView {
            now: 0,
            threads: &threads,
        };
        assert_eq!(icount_order(&view), vec![1, 2, 0]);
    }

    #[test]
    fn icount_excludes_flush_blocked() {
        let threads = [tv(0, 1, 0, 0, true), tv(1, 50, 0, 0, false)];
        let view = FetchView {
            now: 0,
            threads: &threads,
        };
        assert_eq!(icount_order(&view), vec![1]);
    }

    #[test]
    fn stall_gates_on_l2_pending() {
        let threads = [tv(0, 0, 1, 0, false), tv(1, 0, 0, 0, false)];
        let view = FetchView {
            now: 0,
            threads: &threads,
        };
        let p = Stall;
        assert!(p.gate(&view, 0));
        assert!(!p.gate(&view, 1));
        assert!(!p.flush_on_l2_miss());
    }

    #[test]
    fn flush_requests_rollback() {
        assert!(Flush.flush_on_l2_miss());
        assert!(!Icount.flush_on_l2_miss());
    }

    #[test]
    fn dg_gates_on_l1_threshold() {
        let threads = [tv(0, 0, 0, 2, false), tv(1, 0, 0, 1, false)];
        let view = FetchView {
            now: 0,
            threads: &threads,
        };
        let p = DataGating::default();
        assert!(p.gate(&view, 0));
        assert!(!p.gate(&view, 1));
    }

    #[test]
    fn pdg_learns_missing_loads() {
        let mut p = PredictiveDataGating::default();
        let threads = [tv(0, 0, 0, 0, false)];
        let view = FetchView {
            now: 0,
            threads: &threads,
        };
        // Cold: weakly-hit, nothing predicted.
        p.on_load_fetched(0, 1, 0x40);
        assert_eq!(p.predicted_pending(0), 0);
        // Train misses at this PC.
        p.on_load_issued(0, 0x40, true);
        p.on_load_issued(0, 0x40, true);
        // Now fetches of that PC are tracked as predicted misses.
        p.on_load_fetched(0, 2, 0x40);
        p.on_load_fetched(0, 3, 0x40);
        assert_eq!(p.predicted_pending(0), 2);
        assert!(p.gate(&view, 0));
        p.on_load_gone(0, 2);
        assert!(!p.gate(&view, 0));
        // Training hits drives the counter back down.
        p.on_load_issued(0, 0x40, false);
        p.on_load_issued(0, 0x40, false);
        p.on_load_issued(0, 0x40, false);
        p.on_load_fetched(0, 4, 0x40);
        assert_eq!(p.predicted_pending(0), 1, "only seq 3 left");
    }

    #[test]
    fn kinds_build_matching_policies() {
        for kind in FetchPolicyKind::ALL {
            let p = kind.build();
            assert_eq!(p.kind(), kind);
            assert_eq!(p.name(), kind.label());
        }
    }
}
