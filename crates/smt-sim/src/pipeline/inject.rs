//! Fault-injection mutation surface: bit-accurate views over the live
//! issue queue, reorder buffers and register scoreboards, plus the
//! `inject_*_bit` entry points a Monte-Carlo campaign uses to flip one
//! sampled bit mid-simulation.
//!
//! The pipeline does not decide a trial's *outcome* — it only reports
//! what the flipped bit structurally is ([`AppliedFault`]) and, where
//! the fault model requires it, perturbs its own state:
//!
//! * A **select-critical** IQ/ROB bit on a not-yet-issued victim sets
//!   [`crate::types::InstInfo::inhibit_issue`], making the entry
//!   invisible to issue select. Whether that ends in a commit-watchdog
//!   hang or is swept away by a squash plays out in real pipeline
//!   dynamics, not in classifier guesswork.
//! * A **payload** bit is *not* applied microarchitecturally: the
//!   corrupted field rides the victim's result through the dataflow, so
//!   the campaign's architectural emulator perturbs the victim's result
//!   value at commit and checks whether it reaches a sink. Keeping the
//!   timing-simulation state untouched guarantees the faulty run's
//!   retirement stream aligns cycle-for-cycle with the golden run.
//! * A **dead** bit (or an empty slot) cannot matter; the caller can
//!   classify it as masked without re-simulating.
//!
//! ROB and register-file bit widths belong to the AVF model (the `avf`
//! crate, which depends on this one), so [`Pipeline::rob_state`] /
//! [`Pipeline::rf_state`] take the per-entry width as a parameter and
//! [`Pipeline::inject_rob_bit`] takes the already-classified
//! [`RobBitKind`] rather than a raw bit index.

use micro_isa::{OpClass, Reg, ThreadId, NUM_FP_REGS, NUM_INT_REGS};

use super::Pipeline;
use crate::layout::{self, IqBitClass};
use crate::types::{InstInfo, InstStage};

/// Architectural registers per hardware context (int ++ fp flat space).
pub const REGS_PER_THREAD: usize = NUM_INT_REGS + NUM_FP_REGS;

/// A structure a fault can be injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Structure {
    IssueQueue,
    Rob,
    RegFile,
}

impl Structure {
    pub fn as_str(self) -> &'static str {
        match self {
            Structure::IssueQueue => "iq",
            Structure::Rob => "rob",
            Structure::RegFile => "rf",
        }
    }
}

/// Snapshot of the instruction occupying a sampled slot at injection
/// time — everything the campaign needs to find the victim again in the
/// retirement stream and reason about its fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupant {
    /// Global dynamic sequence number (unique across threads).
    pub seq: u64,
    pub tid: ThreadId,
    pub op: OpClass,
    pub ace_hint: bool,
    /// Fetched down a mispredicted path; a squash will sweep it away.
    pub wrong_path: bool,
    /// Already issued to a function unit (still IQ-resident until
    /// writeback, still ROB-resident until commit).
    pub issued: bool,
    /// Finished execution, waiting to commit in order (ROB only; the IQ
    /// entry is freed at writeback).
    pub completed: bool,
}

impl Occupant {
    fn of(info: &InstInfo) -> Occupant {
        Occupant {
            seq: info.inst.seq,
            tid: info.inst.tid,
            op: info.inst.op,
            ace_hint: info.inst.ace_hint,
            wrong_path: info.inst.wrong_path,
            issued: info.stage == InstStage::Issued,
            completed: info.stage == InstStage::Completed,
        }
    }
}

/// Bit class of a ROB entry bit, pre-classified by the caller against
/// the AVF model's ROB layout (`avf::layout`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobBitKind {
    /// Retirement-control state (completion flag, exception bits, PC
    /// low bits): corruption derails retirement itself.
    Control,
    /// The buffered result value: live until writeback publishes it.
    Payload,
    /// Bits the AVF model never counts as ACE.
    Dead,
}

/// What a single injected bit flip structurally amounted to. The
/// campaign maps this to an outcome (masked / SDC / detected / hang)
/// by comparing the perturbed run against the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppliedFault {
    /// The sampled slot held no instruction: masked by definition.
    EmptySlot,
    /// The sampled bit is dead in the occupant's current state: masked
    /// by definition, no re-simulation needed.
    DeadBit { victim: Occupant },
    /// A dataflow-payload bit flipped: the victim's *result* is
    /// corrupted. No pipeline state was mutated; the caller perturbs
    /// the victim's emulated result at commit.
    Payload { victim: Occupant, word_bit: u32 },
    /// A select/retirement-critical bit flipped. `inhibited` reports
    /// whether the pipeline actually blinded issue select to the entry
    /// (only possible while the victim is waiting in the IQ); an
    /// already-issued victim instead models a machine-check at retire.
    RetireCritical { victim: Occupant, inhibited: bool },
    /// An architectural register bit flipped. No pipeline state is
    /// mutated; the caller XORs the register in its architectural
    /// emulator and watches whether the corruption reaches a sink.
    RegBit {
        tid: ThreadId,
        reg_index: usize,
        bit: u32,
        /// Sequence number of the in-flight producer about to overwrite
        /// the register, if any (its completion masks the flip).
        pending_producer: Option<u64>,
    },
}

impl AppliedFault {
    /// The victim's sequence number, when a specific instruction was hit.
    pub fn victim_seq(&self) -> Option<u64> {
        match self {
            AppliedFault::EmptySlot | AppliedFault::RegBit { .. } => None,
            AppliedFault::DeadBit { victim }
            | AppliedFault::Payload { victim, .. }
            | AppliedFault::RetireCritical { victim, .. } => Some(victim.seq),
        }
    }
}

/// Uniform sampling surface over one injectable structure: a grid of
/// `entries() × entry_bits()` bits, some of which are occupied.
pub trait InjectableState {
    fn structure(&self) -> Structure;
    /// Number of physical slots (all of them samplable, occupied or not).
    fn entries(&self) -> usize;
    /// Stored bits per slot.
    fn entry_bits(&self) -> u32;
    /// The instruction occupying `entry`, if any.
    fn occupant(&self, entry: usize) -> Option<Occupant>;
    /// Occupied-slot count (for campaign occupancy accounting).
    fn occupancy(&self) -> usize;
}

/// Live view of the shared issue queue.
pub struct IqState<'a> {
    pipe: &'a Pipeline,
}

impl InjectableState for IqState<'_> {
    fn structure(&self) -> Structure {
        Structure::IssueQueue
    }

    fn entries(&self) -> usize {
        self.pipe.iq.capacity()
    }

    fn entry_bits(&self) -> u32 {
        layout::IQ_ENTRY_BITS
    }

    fn occupant(&self, entry: usize) -> Option<Occupant> {
        let id = self.pipe.iq.entry_at(entry)?;
        Some(Occupant::of(self.pipe.slab.get(id)))
    }

    fn occupancy(&self) -> usize {
        self.pipe.iq.len()
    }
}

/// Live view of the per-thread reorder buffers, flattened to one entry
/// space: entry `e` is slot `e % rob_size` of thread `e / rob_size`,
/// slot 0 being the oldest in-flight instruction of that thread.
pub struct RobState<'a> {
    pipe: &'a Pipeline,
    entry_bits: u32,
}

impl InjectableState for RobState<'_> {
    fn structure(&self) -> Structure {
        Structure::Rob
    }

    fn entries(&self) -> usize {
        self.pipe.threads.len() * self.pipe.config.rob_size
    }

    fn entry_bits(&self) -> u32 {
        self.entry_bits
    }

    fn occupant(&self, entry: usize) -> Option<Occupant> {
        let (tid, slot) = self.pipe.rob_flat(entry);
        let id = *self.pipe.threads[tid].rob.get(slot)?;
        Some(Occupant::of(self.pipe.slab.get(id)))
    }

    fn occupancy(&self) -> usize {
        self.pipe.threads.iter().map(|t| t.rob.len()).sum()
    }
}

/// Live view of the architectural register files: entry `e` is flat
/// register `e % 64` of thread `e / 64`. Architectural state is always
/// "occupied"; `occupant` reports the in-flight *producer* about to
/// overwrite the register, and `occupancy` counts registers with one.
pub struct RfState<'a> {
    pipe: &'a Pipeline,
    reg_bits: u32,
}

impl InjectableState for RfState<'_> {
    fn structure(&self) -> Structure {
        Structure::RegFile
    }

    fn entries(&self) -> usize {
        self.pipe.threads.len() * REGS_PER_THREAD
    }

    fn entry_bits(&self) -> u32 {
        self.reg_bits
    }

    fn occupant(&self, entry: usize) -> Option<Occupant> {
        let (tid, reg) = self.pipe.rf_flat(entry);
        let id = self.pipe.threads[tid].scoreboard.producer_of(reg)?;
        Some(Occupant::of(self.pipe.slab.get(id)))
    }

    fn occupancy(&self) -> usize {
        self.pipe
            .threads
            .iter()
            .map(|t| t.scoreboard.pending_count())
            .sum()
    }
}

impl Pipeline {
    /// Injectable view of the shared issue queue.
    pub fn iq_state(&self) -> IqState<'_> {
        IqState { pipe: self }
    }

    /// Injectable view of the per-thread ROBs. `entry_bits` comes from
    /// the AVF model's ROB layout.
    pub fn rob_state(&self, entry_bits: u32) -> RobState<'_> {
        RobState {
            pipe: self,
            entry_bits,
        }
    }

    /// Injectable view of the architectural register files. `reg_bits`
    /// comes from the AVF model's register layout.
    pub fn rf_state(&self, reg_bits: u32) -> RfState<'_> {
        RfState {
            pipe: self,
            reg_bits,
        }
    }

    fn rob_flat(&self, entry: usize) -> (usize, usize) {
        let tid = entry / self.config.rob_size;
        assert!(tid < self.threads.len(), "ROB entry {entry} out of range");
        (tid, entry % self.config.rob_size)
    }

    fn rf_flat(&self, entry: usize) -> (usize, Reg) {
        let tid = entry / REGS_PER_THREAD;
        assert!(tid < self.threads.len(), "RF entry {entry} out of range");
        (tid, Reg::from_flat_index(entry % REGS_PER_THREAD))
    }

    /// Flip stored bit `bit` of IQ slot `entry`.
    pub fn inject_iq_bit(&mut self, entry: usize, bit: u32) -> AppliedFault {
        let Some(id) = self.iq.entry_at(entry) else {
            return AppliedFault::EmptySlot;
        };
        let victim = Occupant::of(self.slab.get(id));
        match layout::iq_bit_class(bit) {
            IqBitClass::Dead => AppliedFault::DeadBit { victim },
            IqBitClass::Payload => AppliedFault::Payload {
                victim,
                word_bit: bit,
            },
            IqBitClass::SelectCritical => {
                let inhibited = !victim.issued;
                if inhibited {
                    self.slab.get_mut(id).inhibit_issue = true;
                }
                AppliedFault::RetireCritical { victim, inhibited }
            }
        }
    }

    /// Flip a ROB bit of flattened slot `entry`, pre-classified by the
    /// caller as `kind`. `word_bit` is the raw bit index within the
    /// entry (carried through so payload perturbations stay
    /// bit-dependent).
    pub fn inject_rob_bit(
        &mut self,
        entry: usize,
        word_bit: u32,
        kind: RobBitKind,
    ) -> AppliedFault {
        let (tid, slot) = self.rob_flat(entry);
        let Some(&id) = self.threads[tid].rob.get(slot) else {
            return AppliedFault::EmptySlot;
        };
        let victim = Occupant::of(self.slab.get(id));
        match kind {
            RobBitKind::Dead => AppliedFault::DeadBit { victim },
            // The buffered result is live only until writeback: once the
            // occupant has completed, consumers have already read the
            // published value and the ROB copy is dead.
            RobBitKind::Payload if victim.completed => AppliedFault::DeadBit { victim },
            RobBitKind::Payload => AppliedFault::Payload { victim, word_bit },
            RobBitKind::Control => {
                let inhibited = !victim.issued && !victim.completed;
                if inhibited {
                    self.slab.get_mut(id).inhibit_issue = true;
                }
                AppliedFault::RetireCritical { victim, inhibited }
            }
        }
    }

    /// Flip architectural-register bit `bit` of flattened RF slot
    /// `entry`. Never mutates pipeline state: register values live in
    /// the campaign's architectural emulator.
    pub fn inject_rf_bit(&mut self, entry: usize, bit: u32) -> AppliedFault {
        let (tid, reg) = self.rf_flat(entry);
        let pending_producer = self.threads[tid]
            .scoreboard
            .producer_of(reg)
            .map(|pid| self.slab.get(pid).inst.seq);
        AppliedFault::RegBit {
            tid: tid as ThreadId,
            reg_index: reg.flat_index(),
            bit,
            pending_producer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, SimLimits};
    use crate::events::NullObserver;
    use crate::pipeline::PipelinePolicies;
    use std::sync::Arc;
    use workload_gen::{generate_program, model_by_name};

    fn pipeline_after(cycles: u64) -> Pipeline {
        let programs = ["bzip2", "gcc", "mcf", "eon"]
            .iter()
            .map(|n| Arc::new(generate_program(&model_by_name(n).unwrap())))
            .collect();
        let mut p = Pipeline::new(
            MachineConfig::table2(),
            programs,
            PipelinePolicies::default(),
        );
        let mut obs = NullObserver;
        for _ in 0..cycles {
            p.step(&mut obs);
        }
        p
    }

    #[test]
    fn views_report_consistent_geometry() {
        let p = pipeline_after(500);
        let iq = p.iq_state();
        assert_eq!(iq.entries(), 96);
        assert_eq!(iq.entry_bits(), layout::IQ_ENTRY_BITS);
        assert!(iq.occupancy() > 0, "IQ empty after 500 cycles");
        assert!(iq.occupancy() <= iq.entries());

        let rob = p.rob_state(40);
        assert_eq!(rob.entries(), 4 * 96);
        assert_eq!(rob.entry_bits(), 40);
        assert!(rob.occupancy() > 0);

        let rf = p.rf_state(64);
        assert_eq!(rf.entries(), 4 * REGS_PER_THREAD);
        assert_eq!(rf.entry_bits(), 64);
    }

    #[test]
    fn occupant_enumeration_matches_occupancy() {
        let p = pipeline_after(500);
        let iq = p.iq_state();
        let seen = (0..iq.entries())
            .filter(|&e| iq.occupant(e).is_some())
            .count();
        assert_eq!(seen, iq.occupancy());
        let rob = p.rob_state(40);
        let seen = (0..rob.entries())
            .filter(|&e| rob.occupant(e).is_some())
            .count();
        assert_eq!(seen, rob.occupancy());
    }

    #[test]
    fn iq_injection_classifies_by_bit() {
        let mut p = pipeline_after(500);
        let occupied = (0..96)
            .find(|&e| p.iq_state().occupant(e).is_some())
            .expect("no occupied IQ slot");
        let victim = p.iq_state().occupant(occupied).unwrap();

        // Dead status bit: masked without mutation.
        match p.inject_iq_bit(occupied, layout::IQ_ENTRY_BITS - 1) {
            AppliedFault::DeadBit { victim: v } => assert_eq!(v.seq, victim.seq),
            other => panic!("expected DeadBit, got {other:?}"),
        }

        // Payload bit: reported, no pipeline mutation.
        match p.inject_iq_bit(occupied, micro_isa::encoding::fields::IMM_LO) {
            AppliedFault::Payload {
                victim: v,
                word_bit,
            } => {
                assert_eq!(v.seq, victim.seq);
                assert_eq!(word_bit, micro_isa::encoding::fields::IMM_LO);
            }
            other => panic!("expected Payload, got {other:?}"),
        }

        // Empty slot (sample beyond occupancy; the queue is collapsing,
        // so slot len..capacity is empty — find one).
        if let Some(empty) = (0..96).find(|&e| p.iq_state().occupant(e).is_none()) {
            assert_eq!(p.inject_iq_bit(empty, 0), AppliedFault::EmptySlot);
        }
    }

    #[test]
    fn select_critical_flip_inhibits_unissued_victim() {
        let mut p = pipeline_after(500);
        let iq = p.iq_state();
        let waiting = (0..96).find(|&e| matches!(iq.occupant(e), Some(o) if !o.issued));
        let Some(entry) = waiting else {
            return; // nothing waiting this cycle; geometry tests cover the rest
        };
        let victim = p.iq_state().occupant(entry).unwrap();
        match p.inject_iq_bit(entry, 0) {
            AppliedFault::RetireCritical {
                victim: v,
                inhibited,
            } => {
                assert_eq!(v.seq, victim.seq);
                assert!(inhibited, "unissued victim must be inhibited");
            }
            other => panic!("expected RetireCritical, got {other:?}"),
        }
    }

    #[test]
    fn inhibited_instruction_hangs_the_machine() {
        // A select-critical flip on a waiting instruction must starve
        // commit (the thread can never retire past it) and trip the
        // watchdog within its budget rather than the cycle ceiling.
        let mut p = pipeline_after(500);
        let entry = (0..96)
            .find(|&e| matches!(p.iq_state().occupant(e), Some(o) if !o.issued && !o.wrong_path));
        let Some(entry) = entry else { return };
        p.inject_iq_bit(entry, 0);
        let r = p.run(
            SimLimits::cycles(60_000).with_watchdog(5_000),
            &mut NullObserver,
        );
        assert!(r.deadlocked, "inhibited correct-path inst did not hang");
    }

    #[test]
    fn rob_injection_maps_flattened_entries() {
        let mut p = pipeline_after(500);
        let rob = p.rob_state(40);
        let occupied = (0..rob.entries())
            .find(|&e| rob.occupant(e).is_some())
            .expect("no occupied ROB slot");
        let victim = rob.occupant(occupied).unwrap();
        assert_eq!(victim.tid as usize, occupied / 96);
        match p.inject_rob_bit(occupied, 7, RobBitKind::Payload) {
            AppliedFault::Payload {
                victim: v,
                word_bit,
            } => {
                assert_eq!(v.seq, victim.seq);
                assert_eq!(word_bit, 7);
            }
            AppliedFault::DeadBit { victim: v } => {
                // Completed occupant: buffered result already published.
                assert_eq!(v.seq, victim.seq);
                assert!(v.completed);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            p.inject_rob_bit(occupied, 39, RobBitKind::Dead),
            AppliedFault::DeadBit { victim },
        );
    }

    #[test]
    fn rf_injection_reports_producer() {
        let mut p = pipeline_after(500);
        let (entries, produced) = {
            let rf = p.rf_state(64);
            let n = rf.entries();
            let produced = (0..n)
                .find(|&e| rf.occupant(e).is_some())
                .map(|e| (e, rf.occupant(e).map(|o| o.seq)));
            (n, produced)
        };
        for e in [0, entries - 1] {
            match p.inject_rf_bit(e, 63) {
                AppliedFault::RegBit {
                    tid,
                    reg_index,
                    bit,
                    ..
                } => {
                    assert_eq!(tid as usize, e / REGS_PER_THREAD);
                    assert_eq!(reg_index, e % REGS_PER_THREAD);
                    assert_eq!(bit, 63);
                }
                other => panic!("expected RegBit, got {other:?}"),
            }
        }
        if let Some((e, producer_seq)) = produced {
            match p.inject_rf_bit(e, 0) {
                AppliedFault::RegBit {
                    pending_producer, ..
                } => assert_eq!(pending_producer, producer_seq),
                other => panic!("expected RegBit, got {other:?}"),
            }
        }
    }
}
