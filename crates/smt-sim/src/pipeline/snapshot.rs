//! Checkpoint/restore and online self-checks for the live pipeline.
//!
//! A snapshot serializes the *complete* mutable simulator state — slab,
//! per-thread front-end/ROB/scoreboard state, IQ contents in storage
//! order, function units, branch predictor, cache hierarchy, completion
//! events, statistics, open-interval accumulators, fetch-policy and
//! governor state, and the attached metrics registry — such that a
//! freshly constructed pipeline restored from it continues
//! *bit-identically* to the uninterrupted run. Anything reconstructible
//! from the configuration (programs, policies, structure geometry) is
//! not stored; a configuration fingerprint binds each snapshot to the
//! exact machine + workload + policy tuple that produced it.
//!
//! Snapshots are taken cooperatively on the sampling-interval boundary
//! via [`Pipeline::run_hooked`], the same poll point the cancellation
//! token uses, so no mid-cycle state (stage latches) ever needs to be
//! serialized.

use super::{Pipeline, SimResult, ThreadState};
use crate::config::SimLimits;
use crate::events::SimObserver;
use crate::layout;
use crate::types::{InstId, InstStage};
use sim_snapshot::{
    read_container, write_container, SnapError, SnapReader, SnapWriter, SnapshotHeader,
};
use std::cmp::Reverse;

/// Decision returned by a [`Pipeline::run_hooked`] interval hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookAction {
    /// Keep simulating.
    Continue,
    /// Stop the run now (reported as a cancelled result, exactly like
    /// the cancel token) — used by the harness to checkpoint-and-exit
    /// on a deadline or termination signal.
    Stop,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

impl Pipeline {
    /// Fingerprint of everything a snapshot does *not* store but resume
    /// correctness depends on: machine configuration, sampling interval,
    /// policy identities and per-thread workload fingerprints. A
    /// snapshot container is bound to this value; restoring under a
    /// different configuration is rejected before any state is touched.
    pub fn config_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, format!("{:?}", self.config).as_bytes());
        fnv1a(&mut h, &self.interval_cycles.to_le_bytes());
        fnv1a(&mut h, self.policies.fetch.name().as_bytes());
        fnv1a(&mut h, self.policies.issue.name().as_bytes());
        fnv1a(&mut h, self.policies.governor.name().as_bytes());
        for t in &self.threads {
            fnv1a(&mut h, &(t.engine.program().len() as u64).to_le_bytes());
            fnv1a(&mut h, &t.engine.program().entry.to_le_bytes());
        }
        h
    }

    /// Serialize the full live state into `w`. The inverse is
    /// [`Pipeline::restore_state`] on a freshly constructed pipeline
    /// with the same configuration, programs and policies.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put(&(self.threads.len() as u64));
        w.put(&self.interval_cycles);
        w.put(&self.now);
        w.put(&self.next_seq);
        w.put(&self.commit_rr);
        w.put(&self.dispatch_rr);
        self.slab.save_state(w);
        for t in &self.threads {
            save_thread(t, w);
        }
        self.iq.save_state(w);
        self.fu.save_state(w);
        self.bpred.save_state(w);
        self.mem.save_state(w);
        // Completion events, canonically ordered. The binary heap's
        // internal layout is insertion-history-dependent, but its pop
        // order is not: (cycle, id, seq) triples are distinct, so a
        // rebuilt heap replays writebacks identically.
        let mut events: Vec<(u64, u64, u64)> = self
            .events
            .iter()
            .map(|Reverse((c, id, seq))| (*c, *id as u64, *seq))
            .collect();
        events.sort_unstable();
        w.put(&events);
        self.stats.save_state(w);
        w.put(&self.iv_start);
        w.put(&self.iv_committed);
        w.put(&self.iv_l2_misses);
        w.put(&self.iv_ready_sum);
        w.put(&self.iv_ready_ace_sum);
        w.put(&self.iv_iq_sum);
        w.put(&self.iv_hint_bits);
        w.put(&self.iv_mem_base);
        w.put(&self.last_interval);
        w.put(&self.last_commit_cycle);
        w.put(&self.thread_last_commit);
        w.put(&self.measure_start);
        w.put(&self.cur_ready_len);
        w.put(&self.cur_waiting_len);
        w.put(&self.interval_index);
        self.policies.fetch.save_state(w);
        self.policies.governor.save_state(w);
        self.metrics.save_state(w);
    }

    /// Restore state serialized by [`Pipeline::save_state`]. The
    /// pipeline must have been constructed with the same configuration,
    /// programs and policies (callers normally guarantee this via the
    /// [`Pipeline::config_hash`] container binding; the structural
    /// checks here are a second line of defence). On error the pipeline
    /// is left partially restored and must be discarded.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let threads = r.get_u64()? as usize;
        if threads != self.threads.len() {
            return Err(SnapError::Corrupt(format!(
                "snapshot has {threads} threads, pipeline has {}",
                self.threads.len()
            )));
        }
        let interval = r.get_u64()?;
        if interval != self.interval_cycles {
            return Err(SnapError::Corrupt(format!(
                "snapshot interval {interval} != configured {}",
                self.interval_cycles
            )));
        }
        self.now = r.get()?;
        self.next_seq = r.get()?;
        self.commit_rr = r.get()?;
        self.dispatch_rr = r.get()?;
        self.slab.restore_state(r)?;
        for i in 0..threads {
            restore_thread(&mut self.threads[i], r)?;
        }
        self.iq.restore_state(r)?;
        self.fu.restore_state(r)?;
        self.bpred.restore_state(r)?;
        self.mem.restore_state(r)?;
        let events: Vec<(u64, u64, u64)> = r.get()?;
        self.events = events
            .into_iter()
            .map(|(c, id, seq)| Reverse((c, id as InstId, seq)))
            .collect();
        self.stats.restore_state(r)?;
        self.iv_start = r.get()?;
        self.iv_committed = r.get()?;
        self.iv_l2_misses = r.get()?;
        self.iv_ready_sum = r.get()?;
        self.iv_ready_ace_sum = r.get()?;
        self.iv_iq_sum = r.get()?;
        self.iv_hint_bits = r.get()?;
        self.iv_mem_base = r.get()?;
        self.last_interval = r.get()?;
        self.last_commit_cycle = r.get()?;
        let tlc: Vec<u64> = r.get()?;
        if tlc.len() != self.thread_last_commit.len() {
            return Err(SnapError::Corrupt(
                "thread commit-watermark count mismatch".into(),
            ));
        }
        self.thread_last_commit = tlc;
        self.measure_start = r.get()?;
        self.cur_ready_len = r.get()?;
        self.cur_waiting_len = r.get()?;
        self.interval_index = r.get()?;
        self.policies.fetch.restore_state(r)?;
        self.policies.governor.restore_state(r)?;
        self.metrics.restore_state(r)?;
        Ok(())
    }

    /// Serialize into a self-validating container (magic, schema
    /// version, configuration binding, CRC).
    pub fn save_snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.save_state(&mut w);
        write_container(self.config_hash(), self.now, &w.into_bytes())
    }

    /// Restore from a container produced by [`Pipeline::save_snapshot`].
    /// Returns the header on success. Any flipped bit in `data` fails
    /// the CRC; a configuration mismatch fails the binding check; both
    /// leave the pipeline untouched. Payload decode errors leave it
    /// partially restored — discard it.
    pub fn restore_snapshot(&mut self, data: &[u8]) -> Result<SnapshotHeader, SnapError> {
        let (header, payload) = read_container(data, self.config_hash())?;
        let mut r = SnapReader::new(payload);
        self.restore_state(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapError::Corrupt(format!(
                "{} trailing bytes after pipeline state",
                r.remaining()
            )));
        }
        Ok(header)
    }

    /// Testing hook for the `--selfcheck` regression path: skew the
    /// live IQ ACE-bit counter without touching the entries it mirrors,
    /// modelling a soft error in the counter hardware itself.
    #[doc(hidden)]
    pub fn corrupt_iq_ace_counter(&mut self, delta: u64) {
        self.iq.skew_hint_bits(delta);
    }

    /// Structural invariant sweep for paranoid (`--selfcheck`) mode.
    ///
    /// Verifies queue-occupancy bounds, ACE-bit conservation between
    /// the per-instruction hints in the slab and the live counters the
    /// governors act on, rename/scoreboard consistency and per-thread
    /// resource accounting. Returns a diagnostic description of the
    /// first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let fail =
            |msg: String| -> Result<(), String> { Err(format!("cycle {}: {msg}", self.now)) };

        // --- IQ occupancy bounds and per-thread attribution ---
        if self.iq.len() > self.config.iq_size {
            return fail(format!(
                "IQ occupancy {} exceeds capacity {}",
                self.iq.len(),
                self.config.iq_size
            ));
        }
        let per_thread_sum: usize = (0..micro_isa::MAX_THREADS)
            .map(|t| self.iq.thread_occupancy(t as micro_isa::ThreadId))
            .sum();
        if per_thread_sum != self.iq.len() {
            return fail(format!(
                "IQ per-thread occupancy sums to {per_thread_sum}, entry count is {}",
                self.iq.len()
            ));
        }

        // --- ACE-bit conservation: recompute the hardware counter from
        //     the resident instructions' hints ---
        let mut hint_bits = 0u64;
        let mut per_thread = [0usize; micro_isa::MAX_THREADS];
        for id in self.iq.iter() {
            if !self.slab.contains(id) {
                return fail(format!("IQ entry {id} references a dead slab slot"));
            }
            let info = self.slab.get(id);
            if !matches!(info.stage, InstStage::Dispatched | InstStage::Issued) {
                return fail(format!(
                    "IQ entry {id} (seq {}) in stage {:?}",
                    info.inst.seq, info.stage
                ));
            }
            hint_bits += layout::iq_ace_bits(info.inst.ace_hint) as u64;
            per_thread[info.inst.tid as usize] += 1;
        }
        if hint_bits != self.iq.hint_bits_resident() {
            return fail(format!(
                "IQ ACE-bit counter {} != {} recomputed from resident hints \
                 (counter and contents have diverged)",
                self.iq.hint_bits_resident(),
                hint_bits
            ));
        }
        for (tid, &n) in per_thread.iter().enumerate() {
            let tracked = self.iq.thread_occupancy(tid as micro_isa::ThreadId);
            if n != tracked {
                return fail(format!(
                    "IQ thread {tid} occupancy counter {tracked} != {n} resident entries"
                ));
            }
        }

        // --- per-thread resource accounting ---
        let mut live_total = 0usize;
        for (tid, t) in self.threads.iter().enumerate() {
            if t.fetch_queue.len() > self.config.fetch_queue_size {
                return fail(format!("thread {tid} fetch queue over capacity"));
            }
            if t.rob.len() > self.config.rob_size {
                return fail(format!("thread {tid} ROB over capacity"));
            }
            if t.lsq_used > self.config.lsq_size {
                return fail(format!("thread {tid} LSQ over capacity"));
            }
            live_total += t.fetch_queue.len() + t.rob.len();
            if t.in_flight != t.fetch_queue.len() + t.rob.len() {
                return fail(format!(
                    "thread {tid} in_flight {} != fetch_queue {} + rob {}",
                    t.in_flight,
                    t.fetch_queue.len(),
                    t.rob.len()
                ));
            }
            let mut fq_ace = 0usize;
            for &id in &t.fetch_queue {
                if !self.slab.contains(id) {
                    return fail(format!("thread {tid} fetch queue holds dead id {id}"));
                }
                let info = self.slab.get(id);
                if info.stage != InstStage::Fetched {
                    return fail(format!(
                        "thread {tid} fetch-queue entry {id} in stage {:?}",
                        info.stage
                    ));
                }
                if info.inst.ace_hint {
                    fq_ace += 1;
                }
            }
            if fq_ace != t.fq_ace_count {
                return fail(format!(
                    "thread {tid} fetch-queue ACE counter {} != {fq_ace} recounted",
                    t.fq_ace_count
                ));
            }
            let (mut rob_ace, mut lsq, mut l2p, mut l1p) = (0usize, 0usize, 0u32, 0u32);
            let mut prev_seq = 0u64;
            for &id in &t.rob {
                if !self.slab.contains(id) {
                    return fail(format!("thread {tid} ROB holds dead id {id}"));
                }
                let info = self.slab.get(id);
                if info.stage == InstStage::Fetched {
                    return fail(format!(
                        "thread {tid} ROB entry {id} still in Fetched stage"
                    ));
                }
                if info.inst.seq <= prev_seq {
                    return fail(format!(
                        "thread {tid} ROB not age-ordered at seq {}",
                        info.inst.seq
                    ));
                }
                prev_seq = info.inst.seq;
                if info.inst.ace_hint {
                    rob_ace += 1;
                }
                if info.inst.op.is_mem() {
                    lsq += 1;
                }
                if info.inst.op == micro_isa::OpClass::Load && info.stage == InstStage::Issued {
                    if info.l2_miss {
                        l2p += 1;
                    }
                    if info.l1_miss {
                        l1p += 1;
                    }
                }
            }
            if rob_ace != t.rob_ace_count {
                return fail(format!(
                    "thread {tid} ROB ACE counter {} != {rob_ace} recounted",
                    t.rob_ace_count
                ));
            }
            if lsq != t.lsq_used {
                return fail(format!(
                    "thread {tid} LSQ counter {} != {lsq} memory ops resident",
                    t.lsq_used
                ));
            }
            if l2p != t.l2_pending {
                return fail(format!(
                    "thread {tid} l2_pending {} != {l2p} in-flight L2-missing loads",
                    t.l2_pending
                ));
            }
            if l1p != t.l1d_pending {
                return fail(format!(
                    "thread {tid} l1d_pending {} != {l1p} in-flight L1D-missing loads",
                    t.l1d_pending
                ));
            }
            // --- rename/scoreboard consistency: every producer entry
            //     must name a live, not-yet-completed instruction of
            //     this thread whose destination is that register ---
            for (flat, id) in t.scoreboard.producers() {
                if !self.slab.contains(id) {
                    return fail(format!(
                        "thread {tid} scoreboard reg {flat} names dead producer {id}"
                    ));
                }
                let info = self.slab.get(id);
                if info.inst.tid as usize != tid {
                    return fail(format!(
                        "thread {tid} scoreboard reg {flat} names foreign producer {id}"
                    ));
                }
                if info.stage == InstStage::Completed {
                    return fail(format!(
                        "thread {tid} scoreboard reg {flat} names completed producer {id}"
                    ));
                }
                if info.inst.dest.map(|d| d.flat_index()) != Some(flat) {
                    return fail(format!(
                        "thread {tid} scoreboard reg {flat} producer {id} writes {:?}",
                        self.slab.get(id).inst.dest
                    ));
                }
            }
        }
        if live_total != self.slab.live_count() {
            return fail(format!(
                "slab holds {} live records, queues reference {live_total}",
                self.slab.live_count()
            ));
        }
        Ok(())
    }

    /// [`Pipeline::run`] with a cooperative hook invoked at every
    /// sampling-interval boundary (before the cancellation poll). The
    /// harness uses it to take checkpoints and run `--selfcheck`
    /// invariant sweeps on the interval clock; a hook returning
    /// [`HookAction::Stop`] ends the run like a cancellation.
    pub fn run_hooked(
        &mut self,
        limits: SimLimits,
        observer: &mut dyn SimObserver,
        hook: &mut dyn FnMut(&mut Pipeline) -> HookAction,
    ) -> SimResult {
        let mut deadlocked = false;
        let mut cancelled = false;
        while self.stats.total_committed() < limits.max_instructions {
            if self.now - self.measure_start >= limits.max_cycles {
                deadlocked = !limits.cycle_limited();
                break;
            }
            // Interval boundary: hook first (checkpoints see the state
            // the continuation will resume from), then the cancel poll.
            if (self.now - self.measure_start).is_multiple_of(self.interval_cycles) {
                if hook(self) == HookAction::Stop {
                    cancelled = true;
                    break;
                }
                if self.cancel.is_cancelled() {
                    cancelled = true;
                    break;
                }
            }
            let now = self.now;
            if self
                .thread_last_commit
                .iter()
                .any(|&c| now.saturating_sub(c) > limits.watchdog_cycles)
            {
                deadlocked = true;
                break;
            }
            self.step(observer);
        }
        self.stats.cycles = self.now - self.measure_start;
        observer.on_finish(self.now);
        SimResult {
            stats: self.stats.clone(),
            deadlocked,
            cancelled,
        }
    }
}

fn save_thread(t: &ThreadState, w: &mut SnapWriter) {
    t.engine.save_state(w);
    w.put(&t.fetch_queue);
    w.put(&t.fq_ace_count);
    w.put(&t.wrong_path_pc);
    w.put(&t.pending_mispredict);
    w.put(&t.rob);
    w.put(&t.rob_ace_count);
    w.put(&t.lsq_used);
    t.scoreboard.save_state(w);
    w.put(&t.in_flight);
    w.put(&t.l2_pending);
    w.put(&t.l1d_pending);
    w.put(&t.flush_blocked);
    w.put(&t.flush_wait_on);
    w.put(&t.flush_ok_after);
    w.put(&t.ifetch_stall_until);
}

fn restore_thread(t: &mut ThreadState, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
    t.engine.restore_state(r)?;
    t.fetch_queue = r.get()?;
    t.fq_ace_count = r.get()?;
    t.wrong_path_pc = r.get()?;
    t.pending_mispredict = r.get()?;
    t.rob = r.get()?;
    t.rob_ace_count = r.get()?;
    t.lsq_used = r.get()?;
    t.scoreboard.restore_state(r)?;
    t.in_flight = r.get()?;
    t.l2_pending = r.get()?;
    t.l1d_pending = r.get()?;
    t.flush_blocked = r.get()?;
    t.flush_wait_on = r.get()?;
    t.flush_ok_after = r.get()?;
    t.ifetch_stall_until = r.get()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::events::NullObserver;
    use crate::fetch::FetchPolicyKind;
    use crate::pipeline::{PipelinePolicies, DEFAULT_INTERVAL_CYCLES};
    use std::sync::Arc;
    use workload_gen::{generate_program_salted, model_by_name};

    fn mini(names: [&str; 4], salt: u64, fetch: FetchPolicyKind) -> Pipeline {
        let programs = names
            .iter()
            .map(|n| Arc::new(generate_program_salted(&model_by_name(n).unwrap(), salt)))
            .collect();
        Pipeline::new(
            MachineConfig::table2(),
            programs,
            PipelinePolicies {
                fetch: fetch.build(),
                ..Default::default()
            },
        )
    }

    /// Interrupt a run at an interval boundary, restore onto a fresh
    /// pipeline, continue — the final *complete machine state* must be
    /// byte-identical to an uninterrupted run's.
    fn assert_resume_identity(names: [&str; 4], salt: u64, fetch: FetchPolicyKind) {
        let limits = SimLimits::instructions(100_000);

        let mut reference = mini(names, salt, fetch);
        let r_ref = reference.run(limits, &mut NullObserver);
        assert!(!r_ref.deadlocked && !r_ref.cancelled);
        let ref_bytes = reference.save_snapshot();

        let mut first = mini(names, salt, fetch);
        let mut snap: Option<Vec<u8>> = None;
        let r_first = first.run_hooked(limits, &mut NullObserver, &mut |p| {
            if p.cycle() >= DEFAULT_INTERVAL_CYCLES {
                snap = Some(p.save_snapshot());
                return HookAction::Stop;
            }
            HookAction::Continue
        });
        assert!(r_first.cancelled, "hook stop reports as cancellation");
        let snap = snap.expect("run crossed an interval boundary");

        let mut resumed = mini(names, salt, fetch);
        let header = resumed.restore_snapshot(&snap).unwrap();
        assert!(header.cycle >= DEFAULT_INTERVAL_CYCLES);
        resumed.check_invariants().unwrap();
        let r_res = resumed.run(limits, &mut NullObserver);
        assert!(!r_res.deadlocked && !r_res.cancelled);

        assert_eq!(r_res.stats.cycles, r_ref.stats.cycles);
        assert_eq!(
            r_res.stats.committed_per_thread,
            r_ref.stats.committed_per_thread
        );
        assert_eq!(
            resumed.save_snapshot(),
            ref_bytes,
            "resumed end state differs from uninterrupted run"
        );
    }

    #[test]
    fn resume_is_bit_identical_icount() {
        assert_resume_identity(["gcc", "mcf", "vpr", "perlbmk"], 0, FetchPolicyKind::Icount);
    }

    #[test]
    fn resume_is_bit_identical_flush_mem_mix() {
        assert_resume_identity(["mcf", "equake", "vpr", "swim"], 1, FetchPolicyKind::Flush);
    }

    #[test]
    fn resume_is_bit_identical_pdg() {
        assert_resume_identity(["gcc", "mcf", "vpr", "perlbmk"], 2, FetchPolicyKind::Pdg);
    }

    #[test]
    fn invariants_hold_at_every_interval_boundary() {
        let mut p = mini(["gcc", "mcf", "vpr", "perlbmk"], 0, FetchPolicyKind::Flush);
        let mut boundaries = 0usize;
        let r = p.run_hooked(
            SimLimits::instructions(80_000),
            &mut NullObserver,
            &mut |p| {
                p.check_invariants().unwrap();
                boundaries += 1;
                HookAction::Continue
            },
        );
        assert!(!r.deadlocked);
        assert!(boundaries >= 2, "run crossed {boundaries} boundaries");
    }

    #[test]
    fn selfcheck_catches_corrupted_ace_counter() {
        let mut p = mini(["gcc", "mcf", "vpr", "perlbmk"], 0, FetchPolicyKind::Icount);
        p.run(SimLimits::cycles(3_000), &mut NullObserver);
        p.check_invariants().unwrap();
        p.corrupt_iq_ace_counter(crate::layout::ACE_INST_BITS as u64);
        let err = p.check_invariants().unwrap_err();
        assert!(
            err.contains("ACE-bit counter"),
            "diagnostic names the counter: {err}"
        );
    }

    #[test]
    fn any_flipped_bit_in_snapshot_is_rejected() {
        let mut p = mini(["gcc", "mcf", "vpr", "perlbmk"], 0, FetchPolicyKind::Icount);
        p.run(SimLimits::cycles(1_000), &mut NullObserver);
        let snap = p.save_snapshot();
        // Flip one bit in a handful of positions spread over the file
        // (the exhaustive sweep lives in sim-snapshot's own tests).
        for pos in [0, snap.len() / 3, snap.len() / 2, snap.len() - 1] {
            let mut bad = snap.clone();
            bad[pos] ^= 0x10;
            let mut q = mini(["gcc", "mcf", "vpr", "perlbmk"], 0, FetchPolicyKind::Icount);
            assert!(
                q.restore_snapshot(&bad).is_err(),
                "flipped bit at byte {pos} accepted"
            );
        }
    }

    #[test]
    fn snapshot_bound_to_configuration() {
        let mut p = mini(["gcc", "mcf", "vpr", "perlbmk"], 0, FetchPolicyKind::Icount);
        p.run(SimLimits::cycles(1_000), &mut NullObserver);
        let snap = p.save_snapshot();
        // Different workload salt → different programs → rejected.
        let mut q = mini(["gcc", "mcf", "vpr", "perlbmk"], 7, FetchPolicyKind::Icount);
        assert!(matches!(
            q.restore_snapshot(&snap),
            Err(SnapError::ConfigMismatch { .. })
        ));
        // Different fetch policy → rejected.
        let mut q = mini(["gcc", "mcf", "vpr", "perlbmk"], 0, FetchPolicyKind::Stall);
        assert!(matches!(
            q.restore_snapshot(&snap),
            Err(SnapError::ConfigMismatch { .. })
        ));
    }
}
