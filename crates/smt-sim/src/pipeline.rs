//! The cycle loop: an 8-wide out-of-order SMT pipeline.
//!
//! Stages run back-to-front each cycle (commit → writeback → issue →
//! dispatch → fetch), so a resource freed in cycle *n* is reusable in
//! cycle *n+1*, never earlier — the conservative choice for structural
//! hazards.
//!
//! ## Speculation model
//!
//! The functional front end ([`ThreadEngine`]) always knows the correct
//! path, so a misprediction is *detected at fetch* (predicted next PC ≠
//! recorded outcome) and modelled by switching the thread to wrong-path
//! fetch: real instructions from the predicted target, marked
//! `wrong_path`, which consume fetch/IQ/ROB/FU resources until the
//! mispredicted branch resolves at execute and recovery squashes them.
//! This reproduces the timing and occupancy effects of speculation — the
//! things AVF cares about — without a rename-checkpoint machine.
//!
//! ## FLUSH rollback
//!
//! When the active policy requests it, an L2-missing load rolls its
//! thread back: every instruction younger than the load is squashed,
//! correct-path victims are re-queued in the engine's replay buffer, and
//! the thread stays fetch-blocked until the miss returns (Tullsen &
//! Brown's FLUSH).
//!
//! ## Known simplifications (documented, deliberate)
//!
//! * No load/store disambiguation or store-to-load forwarding: memory ops
//!   issue when their register sources are ready. The paper's mechanisms
//!   respond to IQ residency and L2-miss clog, both of which survive this
//!   simplification.
//! * Stores access the data cache at execute rather than commit.
//! * No physical register file: wakeup uses a per-thread architectural
//!   scoreboard (see `scoreboard.rs`).

use crate::cancel::CancelToken;
use crate::config::{MachineConfig, SimLimits};
use crate::dispatch::{DispatchGovernor, GovernorView, ThreadView, UnlimitedDispatch};
use crate::events::{RetireEvent, RetireKind, SimObserver};
use crate::fetch::{FetchPolicy, FetchView, Icount};
use crate::fu::FuPools;
use crate::iq::IssueQueue;
use crate::issue::{IssuePolicy, OldestFirst, ReadyInst};
use crate::scoreboard::Scoreboard;
use crate::stats::{IntervalSnapshot, SimStats};
use crate::types::{InstId, InstInfo, InstSlab, InstStage};
use branch_pred::BranchPredictor;
use mem_hier::MemoryHierarchy;
use micro_isa::{BranchKind, DynInst, OpClass, Pc, ThreadId};
use sim_metrics::Metrics;
use sim_profile::Profiler;
use sim_trace::timing::{Stage, StageProfile};
use sim_trace::{FlushReason, TraceEvent, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;
use workload_gen::{Program, ThreadEngine};

pub mod inject;
pub mod snapshot;

pub use snapshot::HookAction;

/// The paper's sampling interval (Sections 2.2 and 5.1).
pub const DEFAULT_INTERVAL_CYCLES: u64 = 10_000;

/// The three policy seams, bundled.
pub struct PipelinePolicies {
    pub fetch: Box<dyn FetchPolicy>,
    pub issue: Box<dyn IssuePolicy>,
    pub governor: Box<dyn DispatchGovernor>,
}

impl Default for PipelinePolicies {
    fn default() -> Self {
        PipelinePolicies {
            fetch: Box::new(Icount),
            issue: Box::new(OldestFirst),
            governor: Box::new(UnlimitedDispatch),
        }
    }
}

struct ThreadState {
    engine: ThreadEngine,
    fetch_queue: VecDeque<InstId>,
    /// Hint-tagged instructions in the fetch queue (DVM restore rule).
    fq_ace_count: usize,
    /// Active wrong-path fetch: the next wrong PC to fetch from.
    wrong_path_pc: Option<Pc>,
    /// The unresolved mispredicted branch that put us on the wrong path.
    pending_mispredict: Option<InstId>,
    rob: VecDeque<InstId>,
    /// ACE-hinted instructions currently in this thread's ROB.
    rob_ace_count: usize,
    lsq_used: usize,
    scoreboard: Scoreboard,
    in_flight: usize,
    l2_pending: u32,
    l1d_pending: u32,
    flush_blocked: bool,
    flush_wait_on: Option<InstId>,
    /// Earliest cycle this thread may be flushed again (cooldown after a
    /// rollback, so repeated misses degrade to STALL-style gating instead
    /// of rollback thrash).
    flush_ok_after: u64,
    ifetch_stall_until: u64,
}

/// Result of a completed simulation.
pub struct SimResult {
    pub stats: SimStats,
    /// The run hit the cycle ceiling or a commit-starvation watchdog.
    pub deadlocked: bool,
    /// The run stopped early because its [`CancelToken`] was set (a
    /// wall-clock deadline or shutdown request, not a machine symptom).
    pub cancelled: bool,
}

/// The simulated SMT processor.
pub struct Pipeline {
    config: MachineConfig,
    policies: PipelinePolicies,
    slab: InstSlab,
    threads: Vec<ThreadState>,
    iq: IssueQueue,
    fu: FuPools,
    bpred: BranchPredictor,
    mem: MemoryHierarchy,
    /// Completion events: (cycle, id, seq) — seq guards against slab
    /// slot recycling.
    events: BinaryHeap<Reverse<(u64, InstId, u64)>>,
    next_seq: u64,
    now: u64,
    commit_rr: usize,
    dispatch_rr: usize,
    stats: SimStats,
    interval_cycles: u64,
    // Running accumulators for the open interval.
    iv_start: u64,
    iv_committed: u64,
    iv_l2_misses: u64,
    iv_ready_sum: u64,
    iv_ready_ace_sum: u64,
    iv_iq_sum: u64,
    iv_hint_bits: u64,
    /// Memory-hierarchy counter reading at the open interval's start,
    /// so rollover can sample windowed miss rates from the monotonic
    /// totals.
    iv_mem_base: mem_hier::HierarchyStats,
    last_interval: IntervalSnapshot,
    last_commit_cycle: u64,
    /// Per-context commit watermarks: an SMT machine keeps retiring
    /// around a single starved thread, so the forward-progress watchdog
    /// must watch each context, not the machine-wide commit stream.
    thread_last_commit: Vec<u64>,
    /// Cycle at which measurement started (post-warmup).
    measure_start: u64,
    /// Ready/waiting split of the IQ as sampled by the most recent issue
    /// stage (consumed by dispatch governors the same cycle).
    cur_ready_len: usize,
    cur_waiting_len: usize,
    /// Structured event tracer; `Tracer::off()` (the default) makes
    /// every emission site a single branch on a `None`.
    tracer: Tracer,
    /// Quantitative metrics registry handle; `Metrics::off()` (the
    /// default) reduces every recording site to one branch.
    metrics: Metrics,
    /// Opt-in per-stage wall-clock self-profiling.
    profile: StageProfile,
    /// Hierarchical host-side span profiler (`sim-profile`); the
    /// default `Profiler::off()` makes every span site one branch.
    profiler: Profiler,
    /// Whether the cycle in flight is one the span profiler measures —
    /// the stage-sampling clock gates both instruments, so inner span
    /// sites (memory hierarchy) check this bool, not the profiler.
    profiling_cycle: bool,
    /// Host-clock anchor of the open interval. `Some` enables
    /// `host.cycles_per_sec` / `host.instrs_per_sec` telemetry at
    /// rollover; `None` (default) keeps wall-clock noise out of
    /// metricized runs so their exports stay host-independent.
    host_clock: Option<Instant>,
    /// Shared simulated-cycle counter bumped at every interval rollover
    /// — the campaign heartbeat's progress feed.
    progress: Option<Arc<AtomicU64>>,
    /// Cooperative cancellation flag, polled on the sampling-interval
    /// clock by `run` and `warm_up`. Defaults to a never-set token.
    cancel: CancelToken,
    /// Zero-based index of the next sampling interval to close (reset by
    /// `warm_up` so it matches `stats.intervals` indexing).
    interval_index: u64,
}

impl Pipeline {
    /// Build a pipeline running `programs` (one per hardware context).
    pub fn new(
        config: MachineConfig,
        programs: Vec<Arc<Program>>,
        policies: PipelinePolicies,
    ) -> Pipeline {
        config.validate().expect("invalid machine config");
        assert_eq!(
            programs.len(),
            config.num_threads,
            "one program per hardware context"
        );
        let threads = programs
            .into_iter()
            .enumerate()
            .map(|(tid, p)| ThreadState {
                engine: ThreadEngine::new(p, tid as ThreadId),
                fetch_queue: VecDeque::with_capacity(config.fetch_queue_size),
                fq_ace_count: 0,
                wrong_path_pc: None,
                pending_mispredict: None,
                rob: VecDeque::with_capacity(config.rob_size),
                rob_ace_count: 0,
                lsq_used: 0,
                scoreboard: Scoreboard::new(),
                in_flight: 0,
                l2_pending: 0,
                l1d_pending: 0,
                flush_blocked: false,
                flush_wait_on: None,
                flush_ok_after: 0,
                ifetch_stall_until: 0,
            })
            .collect();
        Pipeline {
            iq: IssueQueue::new(config.iq_size),
            fu: FuPools::new(config.fu_pool_sizes),
            bpred: BranchPredictor::table2(config.num_threads),
            mem: MemoryHierarchy::new(config.memory),
            slab: InstSlab::new(),
            threads,
            events: BinaryHeap::new(),
            next_seq: 1,
            now: 0,
            commit_rr: 0,
            dispatch_rr: 0,
            stats: SimStats::new(config.num_threads),
            interval_cycles: DEFAULT_INTERVAL_CYCLES,
            iv_start: 0,
            iv_committed: 0,
            iv_l2_misses: 0,
            iv_ready_sum: 0,
            iv_ready_ace_sum: 0,
            iv_iq_sum: 0,
            iv_hint_bits: 0,
            iv_mem_base: mem_hier::HierarchyStats::default(),
            last_interval: IntervalSnapshot::default(),
            last_commit_cycle: 0,
            thread_last_commit: vec![0; config.num_threads],
            measure_start: 0,
            cur_ready_len: 0,
            cur_waiting_len: 0,
            tracer: Tracer::off(),
            metrics: Metrics::off(),
            profile: StageProfile::new(false),
            profiler: Profiler::off(),
            profiling_cycle: false,
            host_clock: None,
            progress: None,
            cancel: CancelToken::default(),
            interval_index: 0,
            config,
            policies,
        }
    }

    /// Override the sampling-interval length (default 10K cycles) —
    /// exposed for the paper's interval-size ablation.
    pub fn set_interval_cycles(&mut self, cycles: u64) {
        assert!(cycles > 0);
        self.interval_cycles = cycles;
    }

    /// Attach a structured-event tracer. The same tracer handle is
    /// forwarded to the dispatch governor so its control decisions land
    /// in the audit log alongside the pipeline events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.policies.governor.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attach a metrics registry handle. The same handle is forwarded to
    /// the dispatch governor so its control state (caps, modes, ratios)
    /// is recorded alongside the pipeline's IQ/AVF/memory series — all
    /// on the sampling-interval clock the governor decisions key on.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.policies.governor.set_metrics(metrics.clone());
        self.metrics = metrics;
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Enable/disable per-stage wall-clock self-profiling (off by
    /// default: it costs several `Instant::now()` calls per cycle).
    pub fn set_stage_profiling(&mut self, enabled: bool) {
        self.profile.set_enabled(enabled);
    }

    pub fn stage_profile(&self) -> &StageProfile {
        &self.profile
    }

    /// Measure 1-in-`n` cycles in the stage/span profilers (default
    /// [`sim_trace::timing::DEFAULT_SAMPLE_EVERY`]).
    pub fn set_stage_sample_every(&mut self, n: u32) {
        self.profile.set_sample_every(n);
    }

    /// Attach a hierarchical host-side span profiler. Span measurement
    /// rides the stage-sampling clock, so attaching an enabled profiler
    /// also turns on stage profiling and host-throughput telemetry.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        if profiler.is_on() {
            self.profile.set_enabled(true);
            self.set_host_telemetry(true);
        }
        self.profiler = profiler;
    }

    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Enable `host.cycles_per_sec` / `host.instrs_per_sec` interval
    /// telemetry (one wall-clock read per rollover). Off by default so
    /// metricized runs record only host-independent series.
    pub fn set_host_telemetry(&mut self, on: bool) {
        self.host_clock = if on { Some(Instant::now()) } else { None };
    }

    /// Attach a shared cycle counter bumped at every interval rollover;
    /// the campaign supervisor reads it to drive the live heartbeat.
    pub fn set_progress_counter(&mut self, counter: Arc<AtomicU64>) {
        self.progress = Some(counter);
    }

    /// Attach a cooperative cancellation token. `run` and `warm_up`
    /// poll it once per sampling interval (10K cycles by default) and
    /// return early when it is set — the deadline mechanism of the
    /// campaign harness stops a runaway simulation without killing the
    /// worker thread that owns it.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Run until `limits` are reached, reporting retirements to
    /// `observer`. Cooperative cancellation is polled on the interval
    /// clock so the atomic load costs nothing on the per-cycle path
    /// (see [`Pipeline::run_hooked`] for the checkpointing variant —
    /// this is the same loop with a no-op hook, so checkpointed and
    /// plain runs are cycle-identical by construction).
    pub fn run(&mut self, limits: SimLimits, observer: &mut dyn SimObserver) -> SimResult {
        self.run_hooked(limits, observer, &mut |_| HookAction::Continue)
    }

    /// Warm caches, predictors and queues by running `insts` committed
    /// instructions unobserved, then reset all measurement state. Plays
    /// the role of the paper's SimPoint fast-forward: detailed statistics
    /// start from a warmed machine. Returns the cycle measurement starts
    /// at — pass it to `AvfCollector`-style observers so their interval
    /// indexing aligns.
    pub fn warm_up(&mut self, insts: u64) -> u64 {
        let mut sink = crate::events::NullObserver;
        let target = self.stats.total_committed() + insts;
        while self.stats.total_committed() < target
            && self.now.saturating_sub(self.last_commit_cycle)
                <= crate::config::DEFAULT_WATCHDOG_CYCLES
        {
            // Warmup is often the longest phase of a run, so deadlines
            // must be able to stop it too (same interval-clock poll as
            // `run`).
            if self.now.is_multiple_of(self.interval_cycles) && self.cancel.is_cancelled() {
                break;
            }
            self.step(&mut sink);
        }
        let n = self.threads.len();
        self.stats = SimStats::new(n);
        self.measure_start = self.now;
        self.iv_start = self.now;
        self.iv_committed = 0;
        self.iv_l2_misses = 0;
        self.iv_ready_sum = 0;
        self.iv_ready_ace_sum = 0;
        self.iv_iq_sum = 0;
        self.iv_hint_bits = 0;
        self.iv_mem_base = self.mem.stats();
        self.interval_index = 0;
        // Interval indices restart here; drop warmup-phase metric
        // accumulation so exported series cover the measured window only
        // (gauges persist — they are the governors' live state).
        self.metrics.reset_accumulated();
        self.last_commit_cycle = self.now;
        self.thread_last_commit.fill(self.now);
        self.now
    }

    /// Advance one cycle. Stage timing is sampled: even with profiling
    /// enabled, only 1-in-N cycles take the instrumented path (N =
    /// [`StageProfile::sample_every`]); the rest pay a single branch.
    pub fn step(&mut self, observer: &mut dyn SimObserver) {
        if self.profile.should_sample() {
            self.step_profiled(observer);
        } else {
            self.commit_stage(observer);
            self.writeback_stage(observer);
            self.issue_stage(observer);
            self.dispatch_stage();
            self.fetch_stage();
        }
        self.end_of_cycle();
        self.now += 1;
    }

    /// `step` with per-stage wall-clock accounting, taken only on
    /// sampled cycles. When a span profiler is attached, the same
    /// sampled cycles also populate its hierarchical tree (a `cycle`
    /// root with one child per stage, memory accesses nested below).
    fn step_profiled(&mut self, observer: &mut dyn SimObserver) {
        self.profiling_cycle = self.profiler.is_on();
        let _cycle = self.profiler.span("cycle");
        let t0 = Instant::now();
        {
            let _s = self.profiler.span("commit");
            self.commit_stage(observer);
        }
        let t1 = Instant::now();
        {
            let _s = self.profiler.span("writeback");
            self.writeback_stage(observer);
        }
        let t2 = Instant::now();
        {
            let _s = self.profiler.span("issue");
            self.issue_stage(observer);
        }
        let t3 = Instant::now();
        {
            let _s = self.profiler.span("dispatch");
            self.dispatch_stage();
        }
        let t4 = Instant::now();
        {
            let _s = self.profiler.span("fetch");
            self.fetch_stage();
        }
        let t5 = Instant::now();
        self.profile.record(Stage::Commit, t1 - t0);
        self.profile.record(Stage::Writeback, t2 - t1);
        self.profile.record(Stage::Issue, t3 - t2);
        self.profile.record(Stage::Dispatch, t4 - t3);
        self.profile.record(Stage::Fetch, t5 - t4);
        self.profile.tick_cycle();
        self.profiling_cycle = false;
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn commit_stage(&mut self, observer: &mut dyn SimObserver) {
        let mut budget = self.config.width;
        let n = self.threads.len();
        for i in 0..n {
            let tid = (self.commit_rr + i) % n;
            let mut retired = 0usize;
            while budget > 0 {
                let Some(&head) = self.threads[tid].rob.front() else {
                    break;
                };
                if self.slab.get(head).stage != InstStage::Completed {
                    break;
                }
                self.threads[tid].rob.pop_front();
                let info = self.slab.remove(head);
                debug_assert!(!info.inst.wrong_path, "wrong-path inst at commit");
                let t = &mut self.threads[tid];
                t.in_flight -= 1;
                if info.inst.ace_hint {
                    t.rob_ace_count -= 1;
                }
                if info.inst.op.is_mem() {
                    t.lsq_used -= 1;
                }
                self.stats.committed_per_thread[tid] += 1;
                self.iv_committed += 1;
                self.last_commit_cycle = self.now;
                self.thread_last_commit[tid] = self.now;
                observer.on_commit(&Self::retire_event(&info, RetireKind::Commit, self.now));
                budget -= 1;
                retired += 1;
            }
            if retired > 0 {
                self.tracer.emit(|| TraceEvent::Commit {
                    cycle: self.now,
                    tid,
                    count: retired,
                });
            }
        }
        self.commit_rr = (self.commit_rr + 1) % n;
    }

    // ------------------------------------------------------------------
    // writeback / branch resolution
    // ------------------------------------------------------------------

    fn writeback_stage(&mut self, observer: &mut dyn SimObserver) {
        let mut completed = 0usize;
        loop {
            match self.events.peek() {
                Some(&Reverse((t, _, _))) if t <= self.now => {}
                _ => break,
            }
            let Reverse((_, id, seq)) = self.events.pop().unwrap();
            // Stale event (instruction squashed; slot possibly recycled).
            if !self.slab.contains(id) || self.slab.get(id).inst.seq != seq {
                continue;
            }
            self.complete_inst(id, observer);
            completed += 1;
        }
        if completed > 0 {
            self.tracer.emit(|| TraceEvent::Writeback {
                cycle: self.now,
                count: completed,
            });
        }
    }

    fn complete_inst(&mut self, id: InstId, observer: &mut dyn SimObserver) {
        let (tid, op, dest, l1_miss, l2_miss, wrong_path, mispredicted, inst_seq);
        {
            let info = self.slab.get_mut(id);
            debug_assert_eq!(info.stage, InstStage::Issued);
            info.stage = InstStage::Completed;
            info.complete_cycle = Some(self.now);
            tid = info.inst.tid as usize;
            op = info.inst.op;
            dest = info.inst.dest;
            l1_miss = info.l1_miss;
            l2_miss = info.l2_miss;
            wrong_path = info.inst.wrong_path;
            mispredicted = info.mispredicted;
            inst_seq = info.inst.seq;
        }
        // Free the IQ entry (writeback-freed, M-Sim/RUU style).
        {
            let hint = self.slab.get(id).inst.ace_hint;
            if self.iq.contains(id) {
                self.iq.remove(id, hint, self.slab.get(id).inst.tid);
                self.tracer.emit(|| TraceEvent::IqFree {
                    cycle: self.now,
                    tid,
                    seq: inst_seq,
                    occupancy: self.iq.len(),
                });
            }
        }
        // Scoreboard release + IQ wakeup.
        if let Some(d) = dest {
            self.threads[tid].scoreboard.clear_if_producer(d, id);
        }
        let iq_ids: Vec<InstId> = self.iq.iter().collect();
        for e in iq_ids {
            let info = self.slab.get_mut(e);
            for w in &mut info.waiting_on {
                if *w == Some(id) {
                    *w = None;
                }
            }
        }
        // Load bookkeeping.
        if op == OpClass::Load {
            let t = &mut self.threads[tid];
            if l2_miss {
                t.l2_pending -= 1;
                if t.flush_wait_on == Some(id) {
                    t.flush_blocked = false;
                    t.flush_wait_on = None;
                }
            }
            if l1_miss {
                t.l1d_pending -= 1;
            }
            self.policies.fetch.on_load_gone(tid as ThreadId, inst_seq);
        }
        // Branch resolution (correct-path only; wrong-path control never
        // trains or recovers).
        if op.is_control() && !wrong_path {
            let info = self.slab.get(id);
            let ctrl = info.inst.ctrl.expect("control inst without outcome");
            let pc = info.inst.pc;
            let kind = branch_kind(op);
            let fetch_history = info.bp_history;
            let taken = ctrl.taken;
            let target = ctrl.next_pc;
            self.bpred.resolve(
                tid as ThreadId,
                pc,
                kind,
                taken,
                target,
                Some(fetch_history),
            );
            if mispredicted {
                self.recover_mispredict(tid, id, observer);
            }
        }
    }

    /// Squash the wrong-path instructions fetched after a mispredicted
    /// branch, restore predictor state, and resume correct-path fetch.
    fn recover_mispredict(
        &mut self,
        tid: usize,
        branch_id: InstId,
        observer: &mut dyn SimObserver,
    ) {
        debug_assert_eq!(self.threads[tid].pending_mispredict, Some(branch_id));
        // Everything wrong-path in this thread is younger than the branch.
        let squashed = self.collect_squash(tid, |info| info.inst.wrong_path);
        self.tracer.emit(|| TraceEvent::Flush {
            cycle: self.now,
            tid,
            squashed: squashed.len(),
            reason: FlushReason::Misprediction,
        });
        self.apply_squash(tid, &squashed, observer);

        // Restore predictor state to the branch's checkpoint, then apply
        // its resolved effect.
        let info = self.slab.get(branch_id);
        let ras = info.bp_ras.clone().unwrap_or_default();
        let history = info.bp_history;
        let kind = branch_kind(info.inst.op);
        let taken = info.inst.ctrl.unwrap().taken;
        let fallthrough = info.inst.pc + 1;
        self.bpred.recover(tid as ThreadId, history, &ras);
        self.bpred
            .apply_resolved(tid as ThreadId, kind, taken, fallthrough);

        let t = &mut self.threads[tid];
        t.wrong_path_pc = None;
        t.pending_mispredict = None;
    }

    // ------------------------------------------------------------------
    // squash machinery (shared by recovery and FLUSH)
    // ------------------------------------------------------------------

    /// Remove from the fetch queue and ROB every instruction of `tid`
    /// matching `victim`; returns the removed ids (unordered).
    fn collect_squash(&mut self, tid: usize, victim: impl Fn(&InstInfo) -> bool) -> Vec<InstId> {
        let mut out = Vec::new();
        let slab = &self.slab;
        let t = &mut self.threads[tid];
        let mut keep_fq = VecDeque::with_capacity(t.fetch_queue.len());
        for id in t.fetch_queue.drain(..) {
            if victim(slab.get(id)) {
                out.push(id);
            } else {
                keep_fq.push_back(id);
            }
        }
        t.fetch_queue = keep_fq;
        let mut keep_rob = VecDeque::with_capacity(t.rob.len());
        for id in t.rob.drain(..) {
            if victim(slab.get(id)) {
                out.push(id);
            } else {
                keep_rob.push_back(id);
            }
        }
        t.rob = keep_rob;
        out
    }

    /// Release all resources of squashed instructions, emit squash
    /// events, and rebuild the thread scoreboard.
    fn apply_squash(&mut self, tid: usize, squashed: &[InstId], observer: &mut dyn SimObserver) {
        for &id in squashed {
            // IQ entry.
            let hint = self.slab.get(id).inst.ace_hint;
            if self.iq.contains(id) {
                self.iq.remove(id, hint, self.slab.get(id).inst.tid);
                self.tracer.emit(|| TraceEvent::IqFree {
                    cycle: self.now,
                    tid,
                    seq: self.slab.get(id).inst.seq,
                    occupancy: self.iq.len(),
                });
            }
            let info = self.slab.remove(id);
            let t = &mut self.threads[tid];
            t.in_flight -= 1;
            match info.stage {
                InstStage::Fetched => {
                    if info.inst.ace_hint {
                        t.fq_ace_count -= 1;
                    }
                }
                InstStage::Dispatched | InstStage::Issued | InstStage::Completed => {
                    if info.inst.op.is_mem() {
                        t.lsq_used -= 1;
                    }
                    if info.inst.ace_hint {
                        t.rob_ace_count -= 1;
                    }
                }
            }
            // In-flight load counters (only loads still executing hold
            // them; completed loads already released).
            if info.inst.op == OpClass::Load && info.stage == InstStage::Issued {
                if info.l2_miss {
                    t.l2_pending -= 1;
                }
                if info.l1_miss {
                    t.l1d_pending -= 1;
                }
            }
            if info.inst.op == OpClass::Load {
                // Release fetch-policy tracking (PDG) for every squashed
                // load, including ones still in the fetch queue — they
                // were registered at fetch.
                self.policies
                    .fetch
                    .on_load_gone(tid as ThreadId, info.inst.seq);
            }
            self.stats.squashed += 1;
            observer.on_squash(&Self::retire_event(&info, RetireKind::Squash, self.now));
        }
        // Rebuild the scoreboard from the surviving ROB contents
        // (oldest → youngest keeps the youngest producer per register).
        let rob: Vec<InstId> = self.threads[tid].rob.iter().copied().collect();
        let mut sb = Scoreboard::new();
        for id in rob {
            let info = self.slab.get(id);
            if info.stage != InstStage::Completed {
                if let Some(d) = info.inst.dest {
                    sb.set_producer(d, id);
                }
            }
        }
        self.threads[tid].scoreboard = sb;
    }

    /// FLUSH rollback: squash everything in `tid` younger than `load_id`,
    /// replay the correct-path victims, and fetch-block the thread until
    /// the miss returns.
    fn flush_thread(&mut self, tid: usize, load_id: InstId, observer: &mut dyn SimObserver) {
        let load_seq = self.slab.get(load_id).inst.seq;
        let squashed = self.collect_squash(tid, |info| info.inst.seq > load_seq);

        // Restore predictor state to the oldest squashed correct-path
        // branch's checkpoint (squashing un-does its speculative push).
        let mut oldest_branch: Option<(u64, u32, Vec<Pc>)> = None;
        for &id in &squashed {
            let info = self.slab.get(id);
            if info.inst.op.is_control() && !info.inst.wrong_path {
                let key = info.inst.seq;
                if oldest_branch
                    .as_ref()
                    .map(|(s, _, _)| key < *s)
                    .unwrap_or(true)
                {
                    oldest_branch = Some((
                        key,
                        info.bp_history,
                        info.bp_ras.clone().unwrap_or_default(),
                    ));
                }
            }
        }
        // Collect correct-path victims for replay (ascending dyn_idx).
        let mut replay: Vec<DynInst> = squashed
            .iter()
            .map(|&id| self.slab.get(id).inst.clone())
            .filter(|i| !i.wrong_path)
            .collect();
        replay.sort_unstable_by_key(|i| i.dyn_idx);

        // If the pending mispredicted branch is among the victims, the
        // wrong path dies with it.
        if let Some(b) = self.threads[tid].pending_mispredict {
            if squashed.contains(&b) {
                self.threads[tid].pending_mispredict = None;
                self.threads[tid].wrong_path_pc = None;
            }
        }

        self.apply_squash(tid, &squashed, observer);
        if let Some((_, history, ras)) = oldest_branch {
            self.bpred.recover(tid as ThreadId, history, &ras);
        }
        // Attribute the rollback: a governor override (opt2 escalation)
        // is the paper's reliability response; otherwise it is the
        // configured FLUSH fetch policy doing its normal de-clogging.
        self.tracer.emit(|| TraceEvent::Flush {
            cycle: self.now,
            tid,
            squashed: squashed.len(),
            reason: if self.policies.governor.flush_override() {
                FlushReason::L2Miss
            } else {
                FlushReason::FetchPolicy
            },
        });
        self.threads[tid].engine.push_replay(replay);
        let t = &mut self.threads[tid];
        t.flush_blocked = true;
        t.flush_wait_on = Some(load_id);
        t.flush_ok_after = self.now + self.config.flush_cooldown;
        self.stats.flushes += 1;
    }

    // ------------------------------------------------------------------
    // issue
    // ------------------------------------------------------------------

    fn issue_stage(&mut self, observer: &mut dyn SimObserver) {
        // Gather the ready queue. Following the M-Sim/RUU model, an IQ
        // entry stays allocated until *writeback*, so the ready queue the
        // paper measures contains both selectable entries (operands ready,
        // not yet issued) and entries already executing. Only the former
        // are candidates for selection.
        let mut ready: Vec<ReadyInst> = Vec::new();
        let mut executing = 0usize;
        let mut executing_ace = 0usize;
        for id in self.iq.iter() {
            let info = self.slab.get(id);
            if info.stage == InstStage::Dispatched && info.sources_ready() && !info.inhibit_issue {
                ready.push(ReadyInst {
                    id,
                    seq: info.inst.seq,
                    tid: info.inst.tid,
                    op: info.inst.op,
                    ace_hint: info.inst.ace_hint,
                    wrong_path: info.inst.wrong_path,
                });
            } else if info.stage == InstStage::Issued {
                executing += 1;
                if info.inst.ace_hint {
                    executing_ace += 1;
                }
            }
        }
        let rql = ready.len() + executing;
        let ace_ready = ready.iter().filter(|r| r.ace_hint).count() + executing_ace;
        self.stats.diag_ready_selectable += ready.len() as u64;
        self.stats.diag_ready_selectable_ace += ready.iter().filter(|r| r.ace_hint).count() as u64;
        self.stats.diag_executing += executing as u64;
        self.stats.diag_executing_ace += executing_ace as u64;
        self.stats.diag_ready_wrong_path += ready.iter().filter(|r| r.wrong_path).count() as u64;
        // Publish the ready/waiting split for this cycle's dispatch
        // governors. "Ready" uses the paper's ready-queue definition
        // (operands available — waiting-to-issue or executing, the same
        // population the Figure 2 histogram counts); "waiting" is the
        // rest of the IQ, still blocked on operands. DVM's wq_ratio is a
        // ratio of these two.
        self.cur_ready_len = rql;
        self.cur_waiting_len = self.iq.len() - rql;
        self.stats
            .ready_queue_hist
            .record(rql, ace_ready as f64, rql as f64);
        self.stats.ready_len_sum += rql as u64;
        self.iv_ready_sum += rql as u64;
        self.iv_ready_ace_sum += ace_ready as u64;

        self.policies.issue.prioritize(&mut ready);

        let mut issued = 0usize;
        let flush_active =
            self.policies.fetch.flush_on_l2_miss() || self.policies.governor.flush_override();
        for r in ready {
            if issued >= self.config.width {
                break;
            }
            // The entry may have been squashed by a flush earlier in this
            // same loop.
            if !self.slab.contains(r.id) || self.slab.get(r.id).inst.seq != r.seq {
                continue;
            }
            if self.slab.get(r.id).stage != InstStage::Dispatched {
                continue;
            }
            if !self.fu.can_issue(r.op, self.now) {
                continue;
            }
            // MSHR limit: a load cannot issue while its thread already
            // has `mshr_per_thread` loads outstanding past the L1D.
            if r.op == OpClass::Load
                && self.threads[r.tid as usize].l1d_pending >= self.config.mshr_per_thread
            {
                continue;
            }
            // Optional memory disambiguation: hold the load while an
            // older same-thread store's address is unknown; forward from
            // a matching in-flight store.
            let mut forwarded = false;
            if self.config.lsq_disambiguation && r.op == OpClass::Load {
                match self.older_store_state(r.id) {
                    OlderStore::Unresolved => continue,
                    OlderStore::Forward => forwarded = true,
                    OlderStore::None => {}
                }
            }
            let base = self.fu.issue(r.op, self.now);
            let tid = r.tid as usize;

            let mut latency = base;
            let mut l1_miss = false;
            let mut l2_miss = false;
            if r.op.is_mem() && !forwarded {
                let addr = self.slab.get(r.id).inst.mem_addr.expect("mem op w/o addr");
                let access = {
                    let _m = if self.profiling_cycle {
                        self.profiler.span("mem.data")
                    } else {
                        None
                    };
                    self.mem.access_data(r.tid, addr)
                };
                l1_miss = access.l1_miss;
                l2_miss = access.l2_miss;
                if r.op == OpClass::Load {
                    latency += access.latency;
                } // stores: address generation only; data drains post-commit.
            }

            {
                let info = self.slab.get_mut(r.id);
                info.stage = InstStage::Issued;
                info.issue_cycle = Some(self.now);
                info.l1_miss = l1_miss && r.op == OpClass::Load;
                info.l2_miss = l2_miss && r.op == OpClass::Load;
            }
            // RUU-style: the IQ entry is freed at writeback, not issue.
            self.events
                .push(Reverse((self.now + latency as u64, r.id, r.seq)));
            issued += 1;

            if r.op == OpClass::Load {
                let pc = self.slab.get(r.id).inst.pc;
                self.policies.fetch.on_load_issued(r.tid, pc, l1_miss);
                if l1_miss {
                    self.threads[tid].l1d_pending += 1;
                }
                if l2_miss {
                    self.threads[tid].l2_pending += 1;
                    self.stats.l2_misses += 1;
                    if r.wrong_path {
                        self.stats.l2_misses_wrong_path += 1;
                    }
                    self.iv_l2_misses += 1;
                    self.tracer.emit(|| TraceEvent::L2Miss {
                        cycle: self.now,
                        tid,
                        addr: self.slab.get(r.id).inst.mem_addr.unwrap_or(0),
                    });
                    self.policies.governor.on_l2_miss(r.tid);
                    // FLUSH rollback, subject to:
                    //  * correct-path loads only (a squashed-path miss
                    //    resolves itself);
                    //  * the thread is not already rolled back and is
                    //    past its cooldown (back-to-back misses degrade
                    //    to STALL-style fetch gating, not repeated
                    //    rollback thrash);
                    //  * the IQ is actually congested — FLUSH exists to
                    //    de-clog the shared queue; rolling back a thread
                    //    while entries are plentiful is pure waste;
                    //  * at least one other thread can still fetch (the
                    //    paper: FLUSH keeps at least one thread going).
                    if flush_active
                        && !r.wrong_path
                        && !self.threads[tid].flush_blocked
                        && self.now >= self.threads[tid].flush_ok_after
                        && self.iq.len() as f64
                            >= self.config.iq_size as f64 * self.config.flush_clog_threshold
                        && self.iq.thread_occupancy(r.tid) * self.config.num_threads
                            >= self.config.iq_size
                        && self
                            .threads
                            .iter()
                            .enumerate()
                            .any(|(i, t)| i != tid && !t.flush_blocked)
                    {
                        self.flush_thread(tid, r.id, observer);
                    }
                }
            } else if r.op.is_mem() && l2_miss {
                // Store misses count toward the interval L2-miss rate
                // (opt2's trigger) but do not stall the thread.
                self.stats.l2_misses += 1;
                self.stats.l2_misses_stores += 1;
                if r.wrong_path {
                    self.stats.l2_misses_wrong_path += 1;
                }
                self.iv_l2_misses += 1;
                self.tracer.emit(|| TraceEvent::L2Miss {
                    cycle: self.now,
                    tid,
                    addr: self.slab.get(r.id).inst.mem_addr.unwrap_or(0),
                });
            }
        }
        if issued > 0 {
            self.tracer.emit(|| TraceEvent::Issue {
                cycle: self.now,
                count: issued,
                ready_len: rql,
            });
        }
    }

    // ------------------------------------------------------------------
    // dispatch
    // ------------------------------------------------------------------

    fn thread_views(&self) -> Vec<ThreadView> {
        self.threads
            .iter()
            .enumerate()
            .map(|(tid, t)| ThreadView {
                tid: tid as ThreadId,
                fetch_queue_len: t.fetch_queue.len(),
                fetch_queue_ace: t.fq_ace_count,
                l2_pending: t.l2_pending,
                l1d_pending: t.l1d_pending,
                flush_blocked: t.flush_blocked,
                in_flight: t.in_flight,
                iq_occupancy: self.iq.thread_occupancy(tid as ThreadId),
                rob_ace: t.rob_ace_count,
            })
            .collect()
    }

    fn dispatch_stage(&mut self) {
        let views = self.thread_views();
        let n = self.threads.len();
        let mut iq_len = self.iq.len();
        {
            let view = GovernorView {
                now: self.now,
                iq_size: self.config.iq_size,
                iq_len,
                ready_len: self.cur_ready_len,
                waiting_len: self.cur_waiting_len,
                last_interval: &self.last_interval,
                interval_hint_bits: self.iv_hint_bits,
                interval_cycles: self.now - self.iv_start,
                threads: &views,
            };
            self.policies.governor.begin_cycle(&view);
        }

        let mut budget = self.config.width;
        let mut governor_blocked = false;
        for i in 0..n {
            let tid = (self.dispatch_rr + i) % n;
            let mut dispatched = 0usize;
            loop {
                if budget == 0 || iq_len >= self.config.iq_size {
                    break;
                }
                let t = &self.threads[tid];
                if t.flush_blocked {
                    break;
                }
                let Some(&head) = t.fetch_queue.front() else {
                    break;
                };
                if t.rob.len() >= self.config.rob_size {
                    break;
                }
                let is_mem = self.slab.get(head).inst.op.is_mem();
                if is_mem && t.lsq_used >= self.config.lsq_size {
                    break;
                }
                // Governor decision.
                let view = GovernorView {
                    now: self.now,
                    iq_size: self.config.iq_size,
                    iq_len,
                    ready_len: self.cur_ready_len,
                    waiting_len: self.cur_waiting_len,
                    last_interval: &self.last_interval,
                    interval_hint_bits: self.iv_hint_bits,
                    interval_cycles: self.now - self.iv_start,
                    threads: &views,
                };
                if !self
                    .policies
                    .governor
                    .allow_dispatch(&view, tid as ThreadId)
                {
                    governor_blocked = true;
                    break;
                }
                // Commit to dispatching `head`.
                let t = &mut self.threads[tid];
                t.fetch_queue.pop_front();
                let (dest, srcs, ace_hint);
                {
                    let info = self.slab.get(head);
                    dest = info.inst.dest;
                    srcs = info.inst.srcs;
                    ace_hint = info.inst.ace_hint;
                }
                if ace_hint {
                    t.fq_ace_count -= 1;
                }
                let mut waiting = [None, None];
                for (slot, src) in waiting.iter_mut().zip(srcs.iter()) {
                    if let Some(reg) = src {
                        *slot = t.scoreboard.producer_of(*reg);
                    }
                }
                if let Some(d) = dest {
                    t.scoreboard.set_producer(d, head);
                }
                if is_mem {
                    t.lsq_used += 1;
                }
                if ace_hint {
                    t.rob_ace_count += 1;
                }
                t.rob.push_back(head);
                {
                    let info = self.slab.get_mut(head);
                    info.stage = InstStage::Dispatched;
                    info.dispatch_cycle = Some(self.now);
                    info.waiting_on = waiting;
                }
                self.iq.insert(head, ace_hint, tid as ThreadId);
                iq_len += 1;
                budget -= 1;
                dispatched += 1;
                self.tracer.emit(|| TraceEvent::IqAllocate {
                    cycle: self.now,
                    tid,
                    seq: self.slab.get(head).inst.seq,
                    occupancy: iq_len,
                });
            }
            if dispatched > 0 {
                self.tracer.emit(|| TraceEvent::Dispatch {
                    cycle: self.now,
                    tid,
                    count: dispatched,
                });
            }
        }
        if governor_blocked && iq_len < self.config.iq_size {
            self.stats.governor_stall_cycles += 1;
        }
        self.dispatch_rr = (self.dispatch_rr + 1) % n;
    }

    // ------------------------------------------------------------------
    // fetch
    // ------------------------------------------------------------------

    fn fetch_stage(&mut self) {
        let views = self.thread_views();
        let order = {
            let view = FetchView {
                now: self.now,
                threads: &views,
            };
            self.policies.fetch.thread_order(&view)
        };
        let mut budget = self.config.width;
        let mut threads_used = 0usize;
        for tid in order {
            if budget == 0 || threads_used >= self.config.fetch_threads_per_cycle {
                break;
            }
            let tidx = tid as usize;
            {
                let t = &self.threads[tidx];
                if t.flush_blocked || self.now < t.ifetch_stall_until {
                    self.stats.fetch_blocked_stall += 1;
                    continue;
                }
                let view = FetchView {
                    now: self.now,
                    threads: &views,
                };
                if self.policies.fetch.gate(&view, tid) {
                    self.stats.fetch_blocked_gate += 1;
                    continue;
                }
                if t.fetch_queue.len() >= self.config.fetch_queue_size {
                    self.stats.fetch_blocked_fq_full += 1;
                    continue;
                }
            }
            // I-cache access for the fetch block's first PC.
            let first_pc = match self.threads[tidx].wrong_path_pc {
                Some(pc) => pc,
                None => self.threads[tidx].engine.peek_pc(),
            };
            let access = {
                let _m = if self.profiling_cycle {
                    self.profiler.span("mem.inst")
                } else {
                    None
                };
                self.mem.access_inst(tid, first_pc)
            };
            if access.l1_miss {
                self.threads[tidx].ifetch_stall_until = self.now + access.latency as u64;
                self.stats.fetch_blocked_icache += 1;
                continue;
            }
            threads_used += 1;
            self.stats.fetch_blocks += 1;

            let mut block = 0usize;
            while budget > 0
                && block < self.config.width
                && self.threads[tidx].fetch_queue.len() < self.config.fetch_queue_size
            {
                let stop_after = self.fetch_one(tidx);
                budget -= 1;
                block += 1;
                if stop_after {
                    break;
                }
            }
            if block > 0 {
                self.tracer.emit(|| TraceEvent::Fetch {
                    cycle: self.now,
                    tid: tidx,
                    count: block,
                });
            }
        }
    }

    /// Fetch a single instruction for thread `tidx`. Returns `true` if
    /// the fetch block must end (predicted-taken control flow).
    fn fetch_one(&mut self, tidx: usize) -> bool {
        let tid = tidx as ThreadId;
        let on_wrong_path = self.threads[tidx].wrong_path_pc.is_some();
        let mut inst = if let Some(wp_pc) = self.threads[tidx].wrong_path_pc {
            let i = self.threads[tidx].engine.wrong_path_at(wp_pc);
            // Advance the wrong path: follow the junk instruction's own
            // control flow; no predictor involvement (its state was
            // checkpointed at the mispredicted branch).
            let next = match i.ctrl {
                Some(c) if c.taken => c.next_pc,
                _ => wp_pc + 1,
            };
            self.threads[tidx].wrong_path_pc = Some(next);
            i
        } else {
            self.threads[tidx].engine.next_correct()
        };
        inst.seq = self.next_seq;
        self.next_seq += 1;
        self.stats.fetched += 1;
        if inst.wrong_path {
            self.stats.wrong_path_fetched += 1;
        }

        let mut info = InstInfo::new(inst, self.now);
        let mut stop = false;

        if info.inst.op.is_control() && !on_wrong_path {
            // Predict; detect misprediction by comparing with the
            // engine-recorded actual outcome.
            let pc = info.inst.pc;
            let kind = branch_kind(info.inst.op);
            info.bp_history = self.bpred.history_checkpoint(tid);
            info.bp_ras = Some(self.bpred.ras_checkpoint(tid));
            let pred = self.bpred.predict(tid, pc, kind, pc + 1);
            let actual = info.inst.ctrl.expect("control inst without outcome");
            let program_len = self.threads[tidx].engine.program().len() as u64;
            let pred_next = pred.next_pc % program_len;
            self.stats.branches += 1;
            if pred_next != actual.next_pc {
                info.mispredicted = true;
                self.stats.mispredicts += 1;
                self.threads[tidx].wrong_path_pc = Some(pred_next);
            }
            if pred.taken {
                stop = true; // a predicted-taken transfer ends the block
            }
        } else if info.inst.op.is_control() {
            // Wrong-path control: block ends if it "takes".
            stop = info.inst.ctrl.map(|c| c.taken).unwrap_or(false);
        }

        let is_load = info.inst.op == OpClass::Load;
        let ace = info.inst.ace_hint;
        let seq = info.inst.seq;
        let pc = info.inst.pc;
        let id = self.slab.insert(info);
        let t = &mut self.threads[tidx];
        t.fetch_queue.push_back(id);
        t.in_flight += 1;
        if ace {
            t.fq_ace_count += 1;
        }
        if is_load {
            self.policies.fetch.on_load_fetched(tid, seq, pc);
        }
        // A pending mispredict set *by this very instruction* means the
        // rest of the block is wrong-path — handled next iteration via
        // wrong_path_pc. Track the branch for recovery.
        if self.slab.get(id).mispredicted {
            self.threads[tidx].pending_mispredict = Some(id);
        }
        stop
    }

    // ------------------------------------------------------------------
    // end of cycle: occupancy sampling + interval bookkeeping
    // ------------------------------------------------------------------

    fn end_of_cycle(&mut self) {
        let iq_len = self.iq.len() as u64;
        self.stats.iq_occupancy_sum += iq_len;
        self.iv_iq_sum += iq_len;
        self.iv_hint_bits += self.iq.hint_bits_resident();

        if self.now + 1 - self.iv_start >= self.interval_cycles {
            let cycles = self.now + 1 - self.iv_start;
            let total_bits = self.config.iq_size as u64 * crate::layout::IQ_ENTRY_BITS as u64;
            let snapshot = IntervalSnapshot {
                start_cycle: self.iv_start,
                cycles,
                committed: self.iv_committed,
                l2_misses: self.iv_l2_misses,
                avg_ready_len: self.iv_ready_sum as f64 / cycles as f64,
                avg_ready_ace_len: self.iv_ready_ace_sum as f64 / cycles as f64,
                avg_iq_len: self.iv_iq_sum as f64 / cycles as f64,
                hint_avf: self.iv_hint_bits as f64 / (cycles * total_bits) as f64,
            };
            self.stats.interval_hint_avf.push(snapshot.hint_avf);
            self.stats.intervals.push(snapshot);
            let index = self.interval_index;
            self.interval_index += 1;
            self.tracer.emit(|| TraceEvent::IntervalRollover {
                cycle: self.now,
                index,
                ipc: snapshot.ipc(),
                hint_avf: snapshot.hint_avf,
                avg_ready_len: snapshot.avg_ready_len,
                avg_iq_len: snapshot.avg_iq_len,
                l2_misses: snapshot.l2_misses,
            });
            if self.metrics.is_on() {
                // Core IQ/AVF/throughput series on the interval clock.
                self.metrics.sample("ipc", index, || snapshot.ipc());
                self.metrics
                    .sample("iq.ready_len", index, || snapshot.avg_ready_len);
                self.metrics
                    .sample("iq.ace_fraction", index, || snapshot.ready_ace_fraction());
                self.metrics
                    .sample("iq.interval_avf", index, || snapshot.hint_avf);
                self.metrics
                    .sample("iq.occupancy", index, || snapshot.avg_iq_len);
                self.metrics
                    .sample("mem.l2_misses", index, || snapshot.l2_misses as f64);
                // Windowed hierarchy miss rates (monotonic counters
                // diffed against the interval-start reading).
                let mem_now = self.mem.stats();
                let window = mem_now.since(&self.iv_mem_base);
                self.metrics
                    .sample("mem.l1d_miss_rate", index, || window.l1d.miss_rate());
                self.metrics
                    .sample("mem.l2_miss_rate", index, || window.l2.miss_rate());
                self.iv_mem_base = mem_now;
                self.metrics.observe("interval.ipc", || snapshot.ipc());
                // Close the interval: gauge-backed governor series
                // (wq_ratio, IQL cap, flush mode) extend here too.
                self.metrics
                    .interval_rollover(index, snapshot.start_cycle, cycles);
            }
            // Host-side throughput telemetry: one wall-clock read per
            // rollover (never per cycle). The values are host noise by
            // design, which is why they only exist when opted in.
            if let Some(anchor) = self.host_clock {
                let host_now = Instant::now();
                let dt = host_now.duration_since(anchor).as_secs_f64();
                if dt > 0.0 && self.metrics.is_on() {
                    self.metrics
                        .gauge_set("host.cycles_per_sec", || cycles as f64 / dt);
                    self.metrics
                        .gauge_set("host.instrs_per_sec", || snapshot.committed as f64 / dt);
                    self.metrics
                        .sample("host.cycles_per_sec", index, || cycles as f64 / dt);
                    self.metrics.sample("host.instrs_per_sec", index, || {
                        snapshot.committed as f64 / dt
                    });
                }
                self.host_clock = Some(host_now);
            }
            if let Some(progress) = &self.progress {
                progress.fetch_add(cycles, Relaxed);
            }
            {
                let _g = self.profiler.span("governor.on_interval");
                let views = self.thread_views();
                let view = GovernorView {
                    now: self.now,
                    iq_size: self.config.iq_size,
                    iq_len: self.iq.len(),
                    ready_len: self.cur_ready_len,
                    waiting_len: self.cur_waiting_len,
                    last_interval: &snapshot,
                    interval_hint_bits: 0,
                    interval_cycles: 0,
                    threads: &views,
                };
                self.policies.governor.on_interval(&snapshot, &view);
            }
            self.last_interval = snapshot;
            self.iv_start = self.now + 1;
            self.iv_committed = 0;
            self.iv_l2_misses = 0;
            self.iv_ready_sum = 0;
            self.iv_ready_ace_sum = 0;
            self.iv_iq_sum = 0;
            self.iv_hint_bits = 0;
        }
    }

    /// Memory-ordering state of the stores older than `load_id` in its
    /// thread's ROB (used when `lsq_disambiguation` is on).
    fn older_store_state(&self, load_id: InstId) -> OlderStore {
        let load = self.slab.get(load_id);
        let tid = load.inst.tid as usize;
        let load_seq = load.inst.seq;
        let load_word = load.inst.mem_addr.map(|a| a / 8);
        let mut verdict = OlderStore::None;
        for &id in &self.threads[tid].rob {
            let info = self.slab.get(id);
            if info.inst.seq >= load_seq {
                break; // ROB is age-ordered; nothing older remains
            }
            if info.inst.op != OpClass::Store {
                continue;
            }
            match info.stage {
                // Address generation has not happened: conservative hold.
                InstStage::Fetched | InstStage::Dispatched => return OlderStore::Unresolved,
                InstStage::Issued | InstStage::Completed => {
                    if info.inst.mem_addr.map(|a| a / 8) == load_word {
                        // Youngest matching store wins; keep scanning for
                        // unresolved ones (which would override).
                        verdict = OlderStore::Forward;
                    }
                }
            }
        }
        verdict
    }

    fn retire_event(info: &InstInfo, kind: RetireKind, now: u64) -> RetireEvent {
        RetireEvent {
            inst: info.inst.clone(),
            kind,
            fetch_cycle: info.fetch_cycle,
            dispatch_cycle: info.dispatch_cycle,
            issue_cycle: info.issue_cycle,
            complete_cycle: info.complete_cycle,
            retire_cycle: now,
            l2_miss: info.l2_miss,
        }
    }
}

/// Disambiguation verdict for a load against its older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OlderStore {
    /// No older store interferes; access memory normally.
    None,
    /// An older store's address is still unknown: the load must wait.
    Unresolved,
    /// An older store to the same word is in flight: forward (1 cycle).
    Forward,
}

fn branch_kind(op: OpClass) -> BranchKind {
    match op {
        OpClass::CondBranch => BranchKind::Cond,
        OpClass::Jump => BranchKind::Jump,
        OpClass::Call => BranchKind::Call,
        OpClass::Ret => BranchKind::Ret,
        _ => unreachable!("not a control op: {op:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NullObserver;
    use workload_gen::{generate_program, generate_program_salted, model_by_name};

    fn mini_pipeline(names: [&str; 4]) -> Pipeline {
        mini_pipeline_salted(names, 0)
    }

    fn mini_pipeline_salted(names: [&str; 4], salt: u64) -> Pipeline {
        let programs = names
            .iter()
            .map(|n| Arc::new(generate_program_salted(&model_by_name(n).unwrap(), salt)))
            .collect();
        Pipeline::new(
            MachineConfig::table2(),
            programs,
            PipelinePolicies::default(),
        )
    }

    fn run_insts(p: &mut Pipeline, n: u64) -> SimResult {
        p.run(SimLimits::instructions(n), &mut NullObserver)
    }

    #[test]
    fn cancel_token_stops_run_within_one_interval() {
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let token = CancelToken::new();
        p.set_cancel_token(token.clone());
        // Uncancelled: the token costs nothing and the run completes.
        let r = p.run(SimLimits::cycles(5_000), &mut NullObserver);
        assert!(!r.cancelled && !r.deadlocked);
        assert_eq!(r.stats.cycles, 5_000);
        // Pre-cancelled: a would-be long run stops at the next interval
        // boundary instead of burning the full cycle budget.
        token.cancel();
        let before = p.cycle();
        let r = p.run(SimLimits::cycles(10_000_000), &mut NullObserver);
        assert!(r.cancelled, "cancelled run must report it");
        assert!(!r.deadlocked, "cancellation is not a deadlock symptom");
        assert!(
            p.cycle() - before <= DEFAULT_INTERVAL_CYCLES,
            "stopped within one interval, not after {} cycles",
            p.cycle() - before
        );
    }

    #[test]
    fn cancel_token_stops_warm_up() {
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let token = CancelToken::new();
        p.set_cancel_token(token.clone());
        token.cancel();
        let start = p.warm_up(100_000_000);
        // Warmup bailed out on the interval clock; measurement state is
        // still reset so a (short) measured run would be well-formed.
        assert!(start <= DEFAULT_INTERVAL_CYCLES);
        assert_eq!(p.stats().total_committed(), 0);
    }

    #[test]
    fn cpu_mix_commits_with_healthy_ipc() {
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let r = run_insts(&mut p, 40_000);
        assert!(!r.deadlocked, "deadlock");
        assert!(r.stats.total_committed() >= 40_000);
        let ipc = r.stats.throughput_ipc();
        assert!(ipc > 1.0, "CPU mix IPC too low: {ipc}");
        assert!(ipc <= 8.0, "IPC beyond machine width: {ipc}");
        // All four threads make progress.
        for (tid, &c) in r.stats.committed_per_thread.iter().enumerate() {
            assert!(c > 1000, "thread {tid} starved: {c}");
        }
    }

    #[test]
    fn mem_mix_runs_slower_than_cpu_mix() {
        // A single seeded draw from the workload generator is one sample;
        // asserting a 1.4x margin on it is hostage to that draw (the
        // vendored stand-in RNG narrows the MEM/CPU L2-miss gap to ~1.6x
        // vs the original generator's ~2.5x — see EXPERIMENTS.md). So
        // assert on the *median* over 5 independent seeds: the class
        // separation must hold for the typical draw, and IPC ordering
        // for the majority.
        let mut miss_ratios = Vec::new();
        let mut ipc_ordered = 0usize;
        for salt in 0..5u64 {
            // Warm both machines first: cold compulsory misses dominate
            // short unwarmed runs and mask the class difference.
            let mut cpu = mini_pipeline_salted(["bzip2", "eon", "gcc", "perlbmk"], salt);
            let mut mem = mini_pipeline_salted(["mcf", "equake", "vpr", "swim"], salt);
            cpu.warm_up(250_000);
            mem.warm_up(250_000);
            let rc = run_insts(&mut cpu, 30_000);
            let rm = run_insts(&mut mem, 30_000);
            assert!(!rc.deadlocked && !rm.deadlocked, "salt {salt} deadlocked");
            let rate = |r: &SimResult| r.stats.l2_misses as f64 / r.stats.cycles.max(1) as f64;
            miss_ratios.push(rate(&rm) / rate(&rc).max(1e-12));
            if rm.stats.throughput_ipc() < rc.stats.throughput_ipc() {
                ipc_ordered += 1;
            }
        }
        let median_ratio = sim_stats::median(&miss_ratios);
        assert!(
            median_ratio > 1.4,
            "median MEM/CPU L2-miss-rate ratio {median_ratio:.3} !> 1.4 (per-seed: {miss_ratios:?})"
        );
        assert!(
            ipc_ordered >= 3,
            "MEM IPC < CPU IPC held on only {ipc_ordered}/5 seeds"
        );
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = mini_pipeline(["gcc", "mcf", "vpr", "perlbmk"]);
        let mut b = mini_pipeline(["gcc", "mcf", "vpr", "perlbmk"]);
        let ra = run_insts(&mut a, 20_000);
        let rb = run_insts(&mut b, 20_000);
        assert_eq!(ra.stats.cycles, rb.stats.cycles);
        assert_eq!(ra.stats.committed_per_thread, rb.stats.committed_per_thread);
        assert_eq!(ra.stats.l2_misses, rb.stats.l2_misses);
        assert_eq!(ra.stats.mispredicts, rb.stats.mispredicts);
    }

    #[test]
    fn branches_and_mispredicts_happen() {
        let mut p = mini_pipeline(["gcc", "perlbmk", "facerec", "crafty"]);
        let r = run_insts(&mut p, 30_000);
        assert!(r.stats.branches > 1000);
        assert!(r.stats.mispredicts > 0, "no mispredicts at all?");
        let rate = r.stats.mispredict_rate();
        assert!(rate < 0.4, "implausible mispredict rate {rate}");
        assert!(r.stats.wrong_path_fetched > 0);
        assert!(r.stats.squashed > 0);
    }

    #[test]
    fn flush_policy_triggers_rollbacks_on_mem_mix() {
        let programs: Vec<_> = ["mcf", "equake", "vpr", "swim"]
            .iter()
            .map(|n| Arc::new(generate_program(&model_by_name(n).unwrap())))
            .collect();
        let mut p = Pipeline::new(
            MachineConfig::table2(),
            programs,
            PipelinePolicies {
                fetch: crate::fetch::FetchPolicyKind::Flush.build(),
                ..Default::default()
            },
        );
        let r = run_insts(&mut p, 30_000);
        assert!(!r.deadlocked);
        assert!(r.stats.flushes > 0, "FLUSH never fired on a MEM mix");
    }

    #[test]
    fn all_fetch_policies_complete() {
        for kind in crate::fetch::FetchPolicyKind::ALL {
            let programs: Vec<_> = ["gcc", "mcf", "vpr", "perlbmk"]
                .iter()
                .map(|n| Arc::new(generate_program(&model_by_name(n).unwrap())))
                .collect();
            let mut p = Pipeline::new(
                MachineConfig::table2(),
                programs,
                PipelinePolicies {
                    fetch: kind.build(),
                    ..Default::default()
                },
            );
            let r = run_insts(&mut p, 15_000);
            assert!(!r.deadlocked, "{:?} deadlocked", kind);
            assert!(r.stats.total_committed() >= 15_000, "{kind:?}");
        }
    }

    #[test]
    fn ready_queue_statistics_are_recorded() {
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let r = run_insts(&mut p, 30_000);
        let hist = &r.stats.ready_queue_hist;
        assert!(hist.histogram().total() > 0);
        // On a CPU-heavy 4-thread mix the ready queue should often exceed
        // the 8-wide issue width (the paper's key observation).
        let beyond_width = 1.0 - hist.histogram().fraction_below(9);
        assert!(
            beyond_width > 0.3,
            "ready queue rarely exceeds width: {beyond_width}"
        );
        // And a healthy share of ready instructions carry the ACE hint
        // (all control/store ops do even before profiling).
        // Before offline profiling, only stores/branches/outputs carry
        // the implicit hint, and they are short-residency ops, so their
        // share of the queue-resident population is small.
        let overall = hist.companion_overall().unwrap_or(0.0);
        assert!(overall > 0.01, "ACE share implausibly low: {overall}");
        assert!(overall < 0.5, "pre-profiling ACE share too high: {overall}");
    }

    #[test]
    fn intervals_close_every_10k_cycles() {
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let r = run_insts(&mut p, 60_000);
        assert!(!r.stats.intervals.is_empty());
        for (i, iv) in r.stats.intervals.iter().enumerate() {
            assert_eq!(iv.cycles, DEFAULT_INTERVAL_CYCLES, "interval {i}");
            assert!(iv.hint_avf >= 0.0 && iv.hint_avf <= 1.0);
            assert!(iv.avg_ready_ace_len <= iv.avg_ready_len);
        }
    }

    #[test]
    fn metrics_registry_samples_every_interval() {
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let metrics = Metrics::new();
        p.set_metrics(metrics.clone());
        let r = run_insts(&mut p, 60_000);
        let n = r.stats.intervals.len();
        assert!(n > 0);
        let snap = metrics.snapshot();
        assert_eq!(snap.intervals.len(), n);
        for name in [
            "ipc",
            "iq.ready_len",
            "iq.ace_fraction",
            "iq.interval_avf",
            "iq.occupancy",
            "mem.l2_misses",
            "mem.l1d_miss_rate",
            "mem.l2_miss_rate",
        ] {
            let series = snap
                .series(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(series.len(), n, "{name}");
            for (i, pt) in series.iter().enumerate() {
                assert_eq!(pt.interval, i as u64, "{name}");
                assert!(pt.value.is_finite(), "{name}");
            }
        }
        // The series agree with the pipeline's own interval snapshots.
        for (i, iv) in r.stats.intervals.iter().enumerate() {
            assert_eq!(
                snap.series("iq.interval_avf").unwrap()[i].value,
                iv.hint_avf
            );
            assert_eq!(snap.series("ipc").unwrap()[i].value, iv.ipc());
        }
        let ipc_hist = snap.histogram("interval.ipc").unwrap();
        assert_eq!(ipc_hist.count, n as u64);
        // Metrics collection must not perturb the simulation.
        let mut bare = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let rb = run_insts(&mut bare, 60_000);
        assert_eq!(rb.stats.cycles, r.stats.cycles);
        assert_eq!(rb.stats.committed_per_thread, r.stats.committed_per_thread);
    }

    #[test]
    fn profiler_collects_spans_and_host_telemetry_without_perturbing_sim() {
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let metrics = Metrics::new();
        let profiler = Profiler::new();
        p.set_metrics(metrics.clone());
        p.set_profiler(profiler.clone());
        p.set_stage_sample_every(8);
        let r = run_insts(&mut p, 60_000);
        let n = r.stats.intervals.len();
        assert!(n > 0);

        // Hierarchical spans: a cycle root with the five stages below.
        let snap = profiler.snapshot().unwrap();
        let paths: Vec<&str> = snap.rows.iter().map(|row| row.path.as_str()).collect();
        for path in ["cycle", "cycle;commit", "cycle;fetch", "cycle;issue"] {
            assert!(paths.contains(&path), "missing span {path}: {paths:?}");
        }
        assert!(
            paths
                .iter()
                .any(|p| p.starts_with("cycle;issue;mem.") || p.starts_with("cycle;fetch;mem.")),
            "memory accesses must nest under a stage: {paths:?}"
        );
        assert!(paths.contains(&"governor.on_interval"), "{paths:?}");

        // Sampling: the stage profile measured ~1-in-8 cycles.
        let sp = p.stage_profile();
        assert_eq!(sp.sample_every(), 8);
        assert!(sp.profiled_cycles() > 0);
        assert!(sp.profiled_cycles() <= sp.seen_cycles() / 8 + 1);

        // Host throughput telemetry rides the interval clock.
        let msnap = metrics.snapshot();
        for name in ["host.cycles_per_sec", "host.instrs_per_sec"] {
            assert!(msnap.gauge(name).unwrap() > 0.0, "{name}");
            let series = msnap.series(name).unwrap();
            assert_eq!(series.len(), n, "{name}");
            assert!(series.iter().all(|pt| pt.value > 0.0), "{name}");
        }

        // Profiling must not perturb the simulation.
        let mut bare = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let rb = run_insts(&mut bare, 60_000);
        assert_eq!(rb.stats.cycles, r.stats.cycles);
        assert_eq!(rb.stats.committed_per_thread, r.stats.committed_per_thread);
    }

    #[test]
    fn progress_counter_tracks_interval_rollovers() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        p.set_progress_counter(Arc::clone(&counter));
        let r = run_insts(&mut p, 60_000);
        let closed: u64 = r.stats.intervals.iter().map(|iv| iv.cycles).sum();
        assert!(closed > 0);
        assert_eq!(counter.load(Relaxed), closed);
    }

    /// The <2 % overhead budget for a disabled profiler, checked
    /// analytically: the unsampled fast path makes *zero* span calls
    /// (its only cost is the 1-in-N sampling branch), so budgeting it
    /// as if it still paid one full disabled `span()` call per cycle
    /// is a strict over-estimate — and even that must stay under 2 %
    /// of the measured per-cycle simulation cost.
    #[test]
    fn disabled_profiler_overhead_is_under_two_percent() {
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        p.warm_up(50_000);
        let t0 = std::time::Instant::now();
        let r = run_insts(&mut p, 60_000);
        let ns_per_cycle = t0.elapsed().as_nanos() as f64 / r.stats.cycles.max(1) as f64;
        let off_cost = sim_profile::disabled_span_cost_ns();
        assert!(
            off_cost < 0.02 * ns_per_cycle,
            "disabled span cost {off_cost:.2}ns !< 2% of {ns_per_cycle:.0}ns/cycle"
        );
    }

    #[test]
    fn warm_up_resets_metric_accumulation() {
        // warm_up restarts interval indexing at 0; the metrics registry
        // must drop warmup-phase accumulation with it, or measured
        // points share indices with warmup points and every exported
        // interval row carries two values per series.
        let mut p = mini_pipeline(["bzip2", "eon", "gcc", "perlbmk"]);
        let metrics = Metrics::new();
        p.set_metrics(metrics.clone());
        p.warm_up(50_000);
        let r = run_insts(&mut p, 60_000);
        let n = r.stats.intervals.len();
        assert!(n > 0);
        let snap = metrics.snapshot();
        assert_eq!(snap.intervals.len(), n, "measured intervals only");
        let ipc = snap.series("ipc").unwrap();
        assert_eq!(ipc.len(), n);
        for (i, pt) in ipc.iter().enumerate() {
            assert_eq!(pt.interval, i as u64, "indices unique and 0-based");
        }
        assert_eq!(snap.histogram("interval.ipc").unwrap().count, n as u64);
    }

    #[test]
    fn observer_sees_every_commit_in_program_order() {
        struct Orders {
            last_idx: Vec<Option<u64>>,
            commits: u64,
        }
        impl SimObserver for Orders {
            fn on_commit(&mut self, ev: &RetireEvent) {
                assert!(!ev.inst.wrong_path);
                let slot = &mut self.last_idx[ev.inst.tid as usize];
                if let Some(prev) = *slot {
                    assert_eq!(ev.inst.dyn_idx, prev + 1, "commit order broken");
                }
                *slot = Some(ev.inst.dyn_idx);
                self.commits += 1;
            }
        }
        let mut obs = Orders {
            last_idx: vec![None; 4],
            commits: 0,
        };
        let mut p = mini_pipeline(["gap", "facerec", "crafty", "mesa"]);
        p.run(SimLimits::instructions(20_000), &mut obs);
        assert!(obs.commits >= 20_000);
    }

    #[test]
    fn squash_events_only_for_squash_kinds() {
        struct Check;
        impl SimObserver for Check {
            fn on_squash(&mut self, ev: &RetireEvent) {
                assert_eq!(ev.kind, RetireKind::Squash);
            }
            fn on_commit(&mut self, ev: &RetireEvent) {
                assert_eq!(ev.kind, RetireKind::Commit);
                // Committed instructions must have full timing.
                assert!(ev.dispatch_cycle.is_some());
                assert!(ev.issue_cycle.is_some());
                assert!(ev.complete_cycle.is_some());
                let d = ev.dispatch_cycle.unwrap();
                let i = ev.issue_cycle.unwrap();
                let c = ev.complete_cycle.unwrap();
                assert!(ev.fetch_cycle <= d && d <= i && i < c && c <= ev.retire_cycle);
            }
        }
        let mut p = mini_pipeline(["gcc", "mcf", "vpr", "perlbmk"]);
        p.run(SimLimits::instructions(15_000), &mut Check);
    }

    #[test]
    fn mshr_limit_bounds_outstanding_misses() {
        let programs: Vec<_> = ["mcf", "equake", "vpr", "swim"]
            .iter()
            .map(|n| Arc::new(generate_program(&model_by_name(n).unwrap())))
            .collect();
        let run_with_mshr = |mshr: u32| {
            let mut cfg = MachineConfig::table2();
            cfg.mshr_per_thread = mshr;
            let mut p = Pipeline::new(cfg, programs.clone(), PipelinePolicies::default());
            p.run(SimLimits::instructions(20_000), &mut NullObserver)
        };
        let tight = run_with_mshr(1);
        let loose = run_with_mshr(8);
        assert!(!tight.deadlocked && !loose.deadlocked);
        // Serializing misses must cost throughput on a MEM mix.
        assert!(
            tight.stats.throughput_ipc() < loose.stats.throughput_ipc(),
            "mshr=1 {:.2} !< mshr=8 {:.2}",
            tight.stats.throughput_ipc(),
            loose.stats.throughput_ipc()
        );
    }

    #[test]
    fn lsq_disambiguation_mode_runs_and_orders_memory() {
        let programs: Vec<_> = ["gcc", "mcf", "vpr", "perlbmk"]
            .iter()
            .map(|n| Arc::new(generate_program(&model_by_name(n).unwrap())))
            .collect();
        let run_mode = |dis: bool| {
            let mut cfg = MachineConfig::table2();
            cfg.lsq_disambiguation = dis;
            let mut p = Pipeline::new(cfg, programs.clone(), PipelinePolicies::default());
            p.run(SimLimits::instructions(25_000), &mut NullObserver)
        };
        let plain = run_mode(false);
        let ordered = run_mode(true);
        assert!(!plain.deadlocked && !ordered.deadlocked);
        // Conservative ordering can only slow things down (or tie).
        assert!(
            ordered.stats.throughput_ipc() <= plain.stats.throughput_ipc() * 1.02,
            "ordered {:.2} vs plain {:.2}",
            ordered.stats.throughput_ipc(),
            plain.stats.throughput_ipc()
        );
        assert!(ordered.stats.total_committed() >= 25_000);
    }

    #[test]
    fn iq_never_exceeds_capacity() {
        let mut p = mini_pipeline(["mcf", "equake", "vpr", "swim"]);
        let mut obs = NullObserver;
        for _ in 0..30_000 {
            p.step(&mut obs);
            assert!(p.iq.len() <= p.config.iq_size);
        }
    }
}
