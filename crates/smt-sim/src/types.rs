//! In-flight instruction bookkeeping: a slab of [`InstInfo`] records
//! indexed by [`InstId`].

use micro_isa::{DynInst, Pc};
use sim_snapshot::{Snap, SnapError, SnapReader, SnapWriter};

/// Handle to an in-flight instruction record.
pub type InstId = usize;

/// Where an in-flight instruction currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstStage {
    /// In a per-thread fetch queue.
    Fetched,
    /// Holding IQ + ROB (+ LSQ) entries, waiting for operands or select.
    Dispatched,
    /// Executing on a function unit.
    Issued,
    /// Finished execution, waiting to commit in order.
    Completed,
}

/// Full bookkeeping for one in-flight instruction.
#[derive(Debug, Clone)]
pub struct InstInfo {
    pub inst: DynInst,
    pub stage: InstStage,
    pub fetch_cycle: u64,
    pub dispatch_cycle: Option<u64>,
    pub issue_cycle: Option<u64>,
    pub complete_cycle: Option<u64>,
    /// Outstanding register producers (cleared as they complete).
    pub waiting_on: [Option<InstId>; 2],
    /// This load missed the L2 (set at issue when the access resolves).
    pub l2_miss: bool,
    /// This load missed the L1D.
    pub l1_miss: bool,
    /// Correct-path control instruction whose fetch-time prediction was
    /// wrong; resolving it triggers recovery.
    pub mispredicted: bool,
    /// Gshare history checkpoint taken before this branch's prediction.
    pub bp_history: u32,
    /// RAS snapshot taken before this branch's prediction (branches only).
    pub bp_ras: Option<Vec<Pc>>,
    /// Fault-injection marker: a flipped select-critical IQ bit (opcode,
    /// valid, age tag) makes the entry invisible to issue select, so the
    /// instruction can never execute — the hang/squash race plays out in
    /// real pipeline dynamics (see `pipeline::inject`).
    pub inhibit_issue: bool,
}

impl InstInfo {
    pub fn new(inst: DynInst, fetch_cycle: u64) -> InstInfo {
        InstInfo {
            inst,
            stage: InstStage::Fetched,
            fetch_cycle,
            dispatch_cycle: None,
            issue_cycle: None,
            complete_cycle: None,
            waiting_on: [None, None],
            l2_miss: false,
            l1_miss: false,
            mispredicted: false,
            bp_history: 0,
            bp_ras: None,
            inhibit_issue: false,
        }
    }

    /// All register producers have completed.
    #[inline]
    pub fn sources_ready(&self) -> bool {
        self.waiting_on.iter().all(|w| w.is_none())
    }
}

impl Snap for InstStage {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            InstStage::Fetched => 0,
            InstStage::Dispatched => 1,
            InstStage::Issued => 2,
            InstStage::Completed => 3,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.get_u8()? {
            0 => InstStage::Fetched,
            1 => InstStage::Dispatched,
            2 => InstStage::Issued,
            3 => InstStage::Completed,
            t => return Err(SnapError::Corrupt(format!("bad InstStage tag {t}"))),
        })
    }
}

impl Snap for InstInfo {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.inst);
        w.put(&self.stage);
        w.put(&self.fetch_cycle);
        w.put(&self.dispatch_cycle);
        w.put(&self.issue_cycle);
        w.put(&self.complete_cycle);
        w.put(&self.waiting_on);
        w.put(&self.l2_miss);
        w.put(&self.l1_miss);
        w.put(&self.mispredicted);
        w.put(&self.bp_history);
        w.put(&self.bp_ras);
        w.put(&self.inhibit_issue);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(InstInfo {
            inst: r.get()?,
            stage: r.get()?,
            fetch_cycle: r.get()?,
            dispatch_cycle: r.get()?,
            issue_cycle: r.get()?,
            complete_cycle: r.get()?,
            waiting_on: r.get()?,
            l2_miss: r.get()?,
            l1_miss: r.get()?,
            mispredicted: r.get()?,
            bp_history: r.get()?,
            bp_ras: r.get()?,
            inhibit_issue: r.get()?,
        })
    }
}

/// A minimal slab allocator for instruction records. Free slots are
/// recycled LIFO; the live count is tracked for leak assertions.
#[derive(Debug, Default)]
pub struct InstSlab {
    slots: Vec<Option<InstInfo>>,
    free: Vec<InstId>,
    live: usize,
}

impl InstSlab {
    pub fn new() -> InstSlab {
        InstSlab::default()
    }

    pub fn insert(&mut self, info: InstInfo) -> InstId {
        self.live += 1;
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id].is_none());
                self.slots[id] = Some(info);
                id
            }
            None => {
                self.slots.push(Some(info));
                self.slots.len() - 1
            }
        }
    }

    pub fn remove(&mut self, id: InstId) -> InstInfo {
        let info = self.slots[id].take().expect("double free of InstId");
        self.free.push(id);
        self.live -= 1;
        info
    }

    #[inline]
    pub fn get(&self, id: InstId) -> &InstInfo {
        self.slots[id].as_ref().expect("stale InstId")
    }

    #[inline]
    pub fn get_mut(&mut self, id: InstId) -> &mut InstInfo {
        self.slots[id].as_mut().expect("stale InstId")
    }

    /// Is `id` currently live?
    #[inline]
    pub fn contains(&self, id: InstId) -> bool {
        self.slots.get(id).map(|s| s.is_some()).unwrap_or(false)
    }

    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Serialize the slab verbatim: slot array, LIFO free list and live
    /// count. The free-list order matters for bit-identical resume —
    /// slot recycling order determines future `InstId` assignment.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put(&self.slots);
        w.put(&self.free);
        w.put(&(self.live as u64));
    }

    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let slots: Vec<Option<InstInfo>> = r.get()?;
        let free: Vec<InstId> = r.get()?;
        let live = r.get_u64()? as usize;
        let occupied = slots.iter().filter(|s| s.is_some()).count();
        if occupied != live {
            return Err(SnapError::Corrupt(format!(
                "slab live count {live} != occupied slots {occupied}"
            )));
        }
        if free.len() + live != slots.len() {
            return Err(SnapError::Corrupt(format!(
                "slab free list len {} + live {live} != slots {}",
                free.len(),
                slots.len()
            )));
        }
        for &id in &free {
            if slots.get(id).map(|s| s.is_some()).unwrap_or(true) {
                return Err(SnapError::Corrupt(format!(
                    "slab free list references occupied or out-of-range slot {id}"
                )));
            }
        }
        self.slots = slots;
        self.free = free;
        self.live = live;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micro_isa::OpClass;

    fn dummy() -> DynInst {
        DynInst {
            seq: 1,
            tid: 0,
            dyn_idx: 0,
            pc: 0,
            op: OpClass::IAlu,
            dest: None,
            srcs: [None, None],
            mem_addr: None,
            ctrl: None,
            ace_hint: false,
            wrong_path: false,
        }
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut slab = InstSlab::new();
        let a = slab.insert(InstInfo::new(dummy(), 5));
        let b = slab.insert(InstInfo::new(dummy(), 6));
        assert_ne!(a, b);
        assert_eq!(slab.get(a).fetch_cycle, 5);
        assert_eq!(slab.live_count(), 2);
        let info = slab.remove(a);
        assert_eq!(info.fetch_cycle, 5);
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
        assert_eq!(slab.live_count(), 1);
    }

    #[test]
    fn slab_recycles_slots() {
        let mut slab = InstSlab::new();
        let a = slab.insert(InstInfo::new(dummy(), 1));
        slab.remove(a);
        let b = slab.insert(InstInfo::new(dummy(), 2));
        assert_eq!(a, b, "freed slot must be reused");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut slab = InstSlab::new();
        let a = slab.insert(InstInfo::new(dummy(), 1));
        slab.remove(a);
        slab.remove(a);
    }

    #[test]
    fn sources_ready_logic() {
        let mut info = InstInfo::new(dummy(), 0);
        assert!(info.sources_ready());
        info.waiting_on[0] = Some(7);
        assert!(!info.sources_ready());
        info.waiting_on[0] = None;
        assert!(info.sources_ready());
    }
}
