//! Function-unit pools.
//!
//! Five pools (Table 2). Pipelined units accept one new operation per
//! cycle; unpipelined units (dividers, sqrt) stay busy for the full
//! latency. Each unit tracks the cycle at which it next accepts work:
//! issuing marks the unit busy through at least the next cycle, so the
//! one-issue-per-unit-per-cycle port constraint falls out of the same
//! bookkeeping.

use micro_isa::{FuKind, OpClass};
use sim_snapshot::{SnapError, SnapReader, SnapWriter};

/// All function units of one processor.
pub struct FuPools {
    /// `busy_until[kind][unit]`: first cycle the unit can accept work.
    busy_until: [Vec<u64>; 5],
}

impl FuPools {
    pub fn new(pool_sizes: [usize; 5]) -> FuPools {
        FuPools {
            busy_until: pool_sizes.map(|n| {
                assert!(n > 0, "empty function-unit pool");
                vec![0u64; n]
            }),
        }
    }

    /// Table 2 pools: 8 I-ALU, 4 I-MUL/DIV, 4 load/store, 8 FP-ALU,
    /// 4 FP-MUL/DIV/SQRT.
    pub fn table2() -> FuPools {
        FuPools::new([8, 4, 4, 8, 4])
    }

    /// Can an op of this class be issued at `now`?
    pub fn can_issue(&self, op: OpClass, now: u64) -> bool {
        self.busy_until[op.fu_kind().index()]
            .iter()
            .any(|&b| b <= now)
    }

    /// Reserve a unit for `op` starting at `now`; returns the op's
    /// execution latency (excluding memory latency for loads/stores).
    /// Callers must have checked [`Self::can_issue`].
    pub fn issue(&mut self, op: OpClass, now: u64) -> u32 {
        let k = op.fu_kind().index();
        let unit = self.busy_until[k]
            .iter()
            .position(|&b| b <= now)
            .expect("issue() without can_issue()");
        let latency = op.base_latency();
        // Pipelined units are busy only for the issue cycle; unpipelined
        // ones block for the whole operation.
        self.busy_until[k][unit] = if op.pipelined() {
            now + 1
        } else {
            now + latency as u64
        };
        latency
    }

    /// Units of `kind` free at `now` (diagnostics).
    pub fn free_units(&self, kind: FuKind, now: u64) -> usize {
        self.busy_until[kind.index()]
            .iter()
            .filter(|&&b| b <= now)
            .count()
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        for pool in &self.busy_until {
            w.put(pool);
        }
    }

    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for pool in &mut self.busy_until {
            let loaded: Vec<u64> = r.get()?;
            if loaded.len() != pool.len() {
                return Err(SnapError::Corrupt(format!(
                    "function-unit pool size {} does not match configured {}",
                    loaded.len(),
                    pool.len()
                )));
            }
            *pool = loaded;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_width_limits_issue_per_cycle() {
        let mut fu = FuPools::table2();
        // 4 load/store ports.
        for _ in 0..4 {
            assert!(fu.can_issue(OpClass::Load, 0));
            fu.issue(OpClass::Load, 0);
        }
        assert!(!fu.can_issue(OpClass::Load, 0));
        // Other pools unaffected.
        assert!(fu.can_issue(OpClass::IAlu, 0));
    }

    #[test]
    fn pipelined_unit_frees_next_cycle() {
        let mut fu = FuPools::new([1, 1, 1, 1, 1]);
        assert_eq!(fu.issue(OpClass::IMul, 0), 3);
        assert!(!fu.can_issue(OpClass::IMul, 0), "port taken this cycle");
        assert!(fu.can_issue(OpClass::IMul, 1), "pipelined: next cycle ok");
    }

    #[test]
    fn unpipelined_unit_blocks_for_latency() {
        let mut fu = FuPools::new([1, 1, 1, 1, 1]);
        let lat = fu.issue(OpClass::IDiv, 0);
        assert_eq!(lat, 12);
        for cycle in 1..12 {
            assert!(!fu.can_issue(OpClass::IDiv, cycle), "cycle {cycle}");
        }
        assert!(fu.can_issue(OpClass::IDiv, 12));
    }

    #[test]
    fn branches_share_int_alu_pool() {
        let mut fu = FuPools::new([2, 1, 1, 1, 1]);
        fu.issue(OpClass::IAlu, 0);
        fu.issue(OpClass::CondBranch, 0);
        assert!(!fu.can_issue(OpClass::IAlu, 0));
        assert_eq!(fu.free_units(FuKind::IntAlu, 0), 0);
    }

    #[test]
    fn free_units_accounting() {
        let mut fu = FuPools::table2();
        assert_eq!(fu.free_units(FuKind::FpAlu, 0), 8);
        fu.issue(OpClass::FAlu, 0);
        assert_eq!(fu.free_units(FuKind::FpAlu, 0), 7);
    }

    #[test]
    #[should_panic(expected = "empty function-unit pool")]
    fn empty_pool_rejected() {
        let _ = FuPools::new([1, 0, 1, 1, 1]);
    }
}
