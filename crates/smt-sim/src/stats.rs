//! Simulation statistics: whole-run counters, the ready-queue/ACE
//! composition histogram of Figure 2, and per-interval snapshots.

use sim_snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use sim_stats::{CompanionHistogram, IntervalSeries};

/// Statistics of one closed sampling interval (default 10K cycles).
#[derive(Debug, Clone, Copy, Default)]
pub struct IntervalSnapshot {
    pub start_cycle: u64,
    pub cycles: u64,
    /// Instructions committed during the interval (all threads).
    pub committed: u64,
    /// L2 data misses observed during the interval — the count opt2
    /// compares against Tcache_miss.
    pub l2_misses: u64,
    /// Mean ready-queue length over the interval's cycles.
    pub avg_ready_len: f64,
    /// Mean count of ACE-hinted ready-queue entries over the interval's
    /// cycles (the per-length companion of Figure 2, on the interval
    /// clock).
    pub avg_ready_ace_len: f64,
    /// Mean IQ occupancy over the interval's cycles.
    pub avg_iq_len: f64,
    /// Online (hint-bit) IQ AVF estimate for the interval.
    pub hint_avf: f64,
}

impl IntervalSnapshot {
    /// Throughput IPC of the interval.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of ready-queue entries that were ACE-hinted, averaged
    /// over the interval.
    pub fn ready_ace_fraction(&self) -> f64 {
        if self.avg_ready_len <= 0.0 {
            0.0
        } else {
            (self.avg_ready_ace_len / self.avg_ready_len).clamp(0.0, 1.0)
        }
    }
}

impl Snap for IntervalSnapshot {
    fn save(&self, w: &mut SnapWriter) {
        w.put(&self.start_cycle);
        w.put(&self.cycles);
        w.put(&self.committed);
        w.put(&self.l2_misses);
        w.put(&self.avg_ready_len);
        w.put(&self.avg_ready_ace_len);
        w.put(&self.avg_iq_len);
        w.put(&self.hint_avf);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(IntervalSnapshot {
            start_cycle: r.get()?,
            cycles: r.get()?,
            committed: r.get()?,
            l2_misses: r.get()?,
            avg_ready_len: r.get()?,
            avg_ready_ace_len: r.get()?,
            avg_iq_len: r.get()?,
            hint_avf: r.get()?,
        })
    }
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    pub cycles: u64,
    pub committed_per_thread: Vec<u64>,
    pub squashed: u64,
    pub fetched: u64,
    pub wrong_path_fetched: u64,
    pub branches: u64,
    pub mispredicts: u64,
    pub l2_misses: u64,
    /// Of those, misses from wrong-path instructions (pollution).
    pub l2_misses_wrong_path: u64,
    /// Store-triggered L2 misses (no thread stall, but counted for opt2).
    pub l2_misses_stores: u64,
    pub flushes: u64,
    /// Σ of IQ occupancy per cycle (avg = / cycles).
    pub iq_occupancy_sum: u64,
    /// Σ of ready-queue length per cycle.
    pub ready_len_sum: u64,
    /// Cycles on which dispatch was blocked by the governor while IQ
    /// entries were free (the cost knob of opt1/DVM).
    pub governor_stall_cycles: u64,
    /// Front-end diagnostics: per-thread-attempt block outcomes.
    pub fetch_blocked_icache: u64,
    pub fetch_blocked_fq_full: u64,
    pub fetch_blocked_gate: u64,
    pub fetch_blocked_stall: u64,
    pub fetch_blocks: u64,
    /// Diagnostics: per-cycle sums of ready-queue composition.
    pub diag_ready_selectable: u64,
    pub diag_ready_selectable_ace: u64,
    pub diag_executing: u64,
    pub diag_executing_ace: u64,
    pub diag_ready_wrong_path: u64,
    /// Figure 2: ready-queue length distribution, each bucket carrying
    /// the hint-ACE fraction among the ready instructions.
    pub ready_queue_hist: CompanionHistogram,
    /// Per-interval online (hint) AVF estimates.
    pub interval_hint_avf: IntervalSeries,
    /// All closed interval snapshots in order.
    pub intervals: Vec<IntervalSnapshot>,
}

impl SimStats {
    pub fn new(num_threads: usize) -> SimStats {
        SimStats {
            committed_per_thread: vec![0; num_threads],
            ..SimStats::default()
        }
    }

    pub fn total_committed(&self) -> u64 {
        self.committed_per_thread.iter().sum()
    }

    /// Whole-run throughput IPC.
    pub fn throughput_ipc(&self) -> f64 {
        sim_stats::throughput_ipc(&self.committed_per_thread, self.cycles)
    }

    /// Whole-run harmonic IPC (fairness-aware).
    pub fn harmonic_ipc(&self) -> f64 {
        sim_stats::harmonic_ipc(&self.committed_per_thread, self.cycles)
    }

    /// Mean ready-queue length over the whole run.
    pub fn avg_ready_len(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ready_len_sum as f64 / self.cycles as f64
        }
    }

    /// Mean IQ occupancy over the whole run.
    pub fn avg_iq_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.iq_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        w.put(&self.cycles);
        w.put(&self.committed_per_thread);
        w.put(&self.squashed);
        w.put(&self.fetched);
        w.put(&self.wrong_path_fetched);
        w.put(&self.branches);
        w.put(&self.mispredicts);
        w.put(&self.l2_misses);
        w.put(&self.l2_misses_wrong_path);
        w.put(&self.l2_misses_stores);
        w.put(&self.flushes);
        w.put(&self.iq_occupancy_sum);
        w.put(&self.ready_len_sum);
        w.put(&self.governor_stall_cycles);
        w.put(&self.fetch_blocked_icache);
        w.put(&self.fetch_blocked_fq_full);
        w.put(&self.fetch_blocked_gate);
        w.put(&self.fetch_blocked_stall);
        w.put(&self.fetch_blocks);
        w.put(&self.diag_ready_selectable);
        w.put(&self.diag_ready_selectable_ace);
        w.put(&self.diag_executing);
        w.put(&self.diag_executing_ace);
        w.put(&self.diag_ready_wrong_path);
        w.put(&self.ready_queue_hist);
        w.put(&self.interval_hint_avf);
        w.put(&self.intervals);
    }

    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cycles = r.get()?;
        let committed_per_thread: Vec<u64> = r.get()?;
        if committed_per_thread.len() != self.committed_per_thread.len() {
            return Err(SnapError::Corrupt(format!(
                "stats thread count {} does not match configured {}",
                committed_per_thread.len(),
                self.committed_per_thread.len()
            )));
        }
        self.cycles = cycles;
        self.committed_per_thread = committed_per_thread;
        self.squashed = r.get()?;
        self.fetched = r.get()?;
        self.wrong_path_fetched = r.get()?;
        self.branches = r.get()?;
        self.mispredicts = r.get()?;
        self.l2_misses = r.get()?;
        self.l2_misses_wrong_path = r.get()?;
        self.l2_misses_stores = r.get()?;
        self.flushes = r.get()?;
        self.iq_occupancy_sum = r.get()?;
        self.ready_len_sum = r.get()?;
        self.governor_stall_cycles = r.get()?;
        self.fetch_blocked_icache = r.get()?;
        self.fetch_blocked_fq_full = r.get()?;
        self.fetch_blocked_gate = r.get()?;
        self.fetch_blocked_stall = r.get()?;
        self.fetch_blocks = r.get()?;
        self.diag_ready_selectable = r.get()?;
        self.diag_ready_selectable_ace = r.get()?;
        self.diag_executing = r.get()?;
        self.diag_executing_ace = r.get()?;
        self.diag_ready_wrong_path = r.get()?;
        self.ready_queue_hist = r.get()?;
        self.interval_hint_avf = r.get()?;
        self.intervals = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_ipc() {
        let s = IntervalSnapshot {
            cycles: 100,
            committed: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(IntervalSnapshot::default().ipc(), 0.0);
    }

    #[test]
    fn ready_ace_fraction_guards() {
        let s = IntervalSnapshot {
            avg_ready_len: 10.0,
            avg_ready_ace_len: 4.0,
            ..Default::default()
        };
        assert!((s.ready_ace_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(IntervalSnapshot::default().ready_ace_fraction(), 0.0);
        // Accumulator rounding can't push the fraction above 1.
        let odd = IntervalSnapshot {
            avg_ready_len: 1.0,
            avg_ready_ace_len: 1.5,
            ..Default::default()
        };
        assert_eq!(odd.ready_ace_fraction(), 1.0);
    }

    #[test]
    fn zero_cycle_interval_has_zero_ipc() {
        // A truncated run can close an interval with committed work but
        // zero elapsed cycles recorded; the ratio must stay finite.
        let s = IntervalSnapshot {
            cycles: 0,
            committed: 42,
            ..Default::default()
        };
        assert_eq!(s.ipc(), 0.0);
        assert!(s.ipc().is_finite());
    }

    #[test]
    fn aggregate_metrics() {
        let mut s = SimStats::new(2);
        s.cycles = 100;
        s.committed_per_thread = vec![100, 300];
        s.ready_len_sum = 2_000;
        s.iq_occupancy_sum = 5_000;
        s.branches = 50;
        s.mispredicts = 5;
        assert!((s.throughput_ipc() - 4.0).abs() < 1e-12);
        assert!((s.avg_ready_len() - 20.0).abs() < 1e-12);
        assert!((s.avg_iq_occupancy() - 50.0).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert_eq!(s.total_committed(), 400);
    }

    #[test]
    fn zero_cycle_stats_safe() {
        let s = SimStats::new(1);
        assert_eq!(s.throughput_ipc(), 0.0);
        assert_eq!(s.avg_ready_len(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
    }
}
