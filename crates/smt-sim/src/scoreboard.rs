//! Per-thread register scoreboard.
//!
//! Tracks, for every architectural register of a context, the most recent
//! *in-flight* producer. Dispatching instructions read it to find their
//! outstanding producers (wakeup dependencies); completing instructions
//! clear their own entry if still current. A register with no in-flight
//! producer is architecturally ready.
//!
//! The simulator does not model a physical register file: none of the
//! paper's mechanisms depend on rename capacity (the IQ, not the free
//! list, is the bottleneck being studied), so a scoreboard over
//! architectural registers gives identical wakeup timing at a fraction of
//! the complexity.

use crate::types::InstId;
use micro_isa::{Reg, NUM_FP_REGS, NUM_INT_REGS};
use sim_snapshot::{SnapError, SnapReader, SnapWriter};

const NUM_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// Scoreboard for one hardware context.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    producer: [Option<InstId>; NUM_REGS],
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard {
            producer: [None; NUM_REGS],
        }
    }
}

impl Scoreboard {
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// The in-flight producer of `reg`, if any.
    #[inline]
    pub fn producer_of(&self, reg: Reg) -> Option<InstId> {
        self.producer[reg.flat_index()]
    }

    /// Record `id` as the latest producer of `reg` (at dispatch).
    #[inline]
    pub fn set_producer(&mut self, reg: Reg, id: InstId) {
        self.producer[reg.flat_index()] = Some(id);
    }

    /// Clear `reg`'s producer if it is still `id` (at completion or
    /// squash). A newer producer must not be clobbered.
    #[inline]
    pub fn clear_if_producer(&mut self, reg: Reg, id: InstId) {
        let slot = &mut self.producer[reg.flat_index()];
        if *slot == Some(id) {
            *slot = None;
        }
    }

    /// Remove every entry whose producer satisfies `pred` — used when a
    /// squash kills a batch of in-flight instructions.
    pub fn clear_matching(&mut self, mut pred: impl FnMut(InstId) -> bool) {
        for slot in &mut self.producer {
            if let Some(id) = *slot {
                if pred(id) {
                    *slot = None;
                }
            }
        }
    }

    /// Number of registers with in-flight producers (diagnostics).
    pub fn pending_count(&self) -> usize {
        self.producer.iter().flatten().count()
    }

    pub fn save_state(&self, w: &mut SnapWriter) {
        for slot in &self.producer {
            w.put(slot);
        }
    }

    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for slot in &mut self.producer {
            *slot = r.get()?;
        }
        Ok(())
    }

    /// Iterate over registers with in-flight producers (self-checks).
    pub fn producers(&self) -> impl Iterator<Item = (usize, InstId)> + '_ {
        self.producer
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|id| (i, id)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_clear() {
        let mut sb = Scoreboard::new();
        let r = Reg::int(3);
        assert_eq!(sb.producer_of(r), None);
        sb.set_producer(r, 11);
        assert_eq!(sb.producer_of(r), Some(11));
        sb.clear_if_producer(r, 11);
        assert_eq!(sb.producer_of(r), None);
    }

    #[test]
    fn stale_clear_is_ignored() {
        let mut sb = Scoreboard::new();
        let r = Reg::fp(5);
        sb.set_producer(r, 1);
        sb.set_producer(r, 2); // newer producer
        sb.clear_if_producer(r, 1); // stale completion
        assert_eq!(sb.producer_of(r), Some(2));
    }

    #[test]
    fn int_and_fp_do_not_alias() {
        let mut sb = Scoreboard::new();
        sb.set_producer(Reg::int(4), 9);
        assert_eq!(sb.producer_of(Reg::fp(4)), None);
    }

    #[test]
    fn clear_matching_batch() {
        let mut sb = Scoreboard::new();
        sb.set_producer(Reg::int(1), 10);
        sb.set_producer(Reg::int(2), 20);
        sb.set_producer(Reg::int(3), 30);
        sb.clear_matching(|id| id >= 20);
        assert_eq!(sb.producer_of(Reg::int(1)), Some(10));
        assert_eq!(sb.producer_of(Reg::int(2)), None);
        assert_eq!(sb.producer_of(Reg::int(3)), None);
        assert_eq!(sb.pending_count(), 1);
    }
}
